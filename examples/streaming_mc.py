"""Streaming Monte Carlo: sharded, memory-bounded trial simulation.

The default ``mode="waves"`` engine keeps every net's per-trial arrays
alive — O(nets x trials) memory — which is what you want for waveform
inspection but caps how far the trusted Monte Carlo reference scales.
``mode="stream"`` folds each net's wave into O(1) sufficient statistics
(occurrence counts, arrival mean/variance, signal-probability and
toggling tallies) the moment its last consumer has read it, and can
split the trial budget into independently seeded shards executed on a
process pool.

Run:  PYTHONPATH=src python examples/streaming_mc.py
"""

import numpy as np

from repro.core.inputs import CONFIG_I
from repro.netlist.benchmarks import benchmark_circuit
from repro.sim import run_monte_carlo, sample_launch_points

netlist = benchmark_circuit("s1196")

# --- 1. Streaming run: statistics for every net, no retained waves. -------
stream = run_monte_carlo(netlist, CONFIG_I, n_trials=10_000,
                         rng=np.random.default_rng(0), mode="stream")
rise = stream.direction_stats(netlist.endpoints[0], "rise")
print(f"{netlist.name}: P(rise)={rise.probability:.3f} "
      f"arrival ~ ({rise.mean:.2f}, {rise.std:.2f})")
print(stream.summary())  # per-shard timing / peak-wave-memory counters

# --- 2. Sharded + parallel: same root seed => identical statistics. -------
# Shard streams come from SeedSequence.spawn, so the merged result depends
# only on (root seed, shard count) — never on the worker count.
a = run_monte_carlo(netlist, CONFIG_I, 10_000, rng=np.random.default_rng(7),
                    mode="stream", shards=8, workers=1)
b = run_monte_carlo(netlist, CONFIG_I, 10_000, rng=np.random.default_rng(7),
                    mode="stream", shards=8, workers=4)
net = netlist.endpoints[0]
assert a.accumulator(net) == b.accumulator(net)
print(f"workers=1 and workers=4 agree exactly on {net}")

# --- 3. Single-shard streaming is bit-exact against the wave engine. ------
samples = sample_launch_points(netlist, CONFIG_I, 2000,
                               np.random.default_rng(1))
waves = run_monte_carlo(netlist, CONFIG_I, 2000, samples=samples)
st = run_monte_carlo(netlist, CONFIG_I, 2000, samples=samples, mode="stream",
                     keep_nets=[net])  # keep_nets retains chosen waveforms
assert st.direction_stats(net, "fall") == waves.direction_stats(net, "fall")
assert np.array_equal(st.wave(net).time, waves.wave(net).time,
                      equal_nan=True)
print("single-shard streaming matches the wave engine bit for bit")
