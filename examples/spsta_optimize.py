#!/usr/bin/env python3
"""SPSTA-in-the-loop gate sizing with incremental cone re-timing.

The closed loop from docs/optimization.md, driven through the library
API:

1. size the s298 benchmark against a tight clock with the yield metric
   (greedy critical-cone moves, then a short annealing refinement),
2. show the re-timing economics — incremental gate evaluations per move
   against what full-analysis-per-move would have cost,
3. verify one move sequence bit-exactly against fresh full passes with
   ``IncrementalSpsta`` directly,
4. cross-check the final sizing with the Monte Carlo joint-yield
   oracle.

Run:  python examples/spsta_optimize.py
"""

import numpy as np

from repro.core.incremental_spsta import (
    IncrementalSpsta,
    assert_matches_full,
)
from repro.core.inputs import CONFIG_I
from repro.netlist.benchmarks import benchmark_circuit
from repro.opt import optimize_spsta
from repro.stats.normal import Normal

CLOCK = 5.0


def main() -> None:
    netlist = benchmark_circuit("s298")
    n_gates = len(netlist.combinational_gates)
    print(f"{netlist.name}: {n_gates} combinational gates, "
          f"clock {CLOCK:g}")

    # 1. optimize: greedy phase + annealing refinement, one seed.
    result = optimize_spsta(
        netlist, CLOCK, target_yield=0.999, max_area=8.0,
        anneal=True, anneal_moves=40,
        rng=np.random.default_rng(0), mc_validate=20_000)
    print(f"\nyield {result.metric_before:.4f} -> "
          f"{result.metric_after:.4f} "
          f"({'met' if result.met_target else 'missed'} target), "
          f"area cost {result.area_cost:g}")
    for gate, size in sorted(result.sizes.items()):
        print(f"  {gate}: x{size:g}")

    # 2. the re-timing economics.
    applied = sum(2 - move.accepted for move in result.moves)
    print(f"\nincremental re-timing: {result.recomputed_gates} gate "
          f"evaluations for {applied} delay edits")
    print(f"full-analysis-per-move would have cost "
          f"{applied * n_gates} ({applied} x {n_gates})")

    # 3. the bit-exactness guarantee, checked by hand: every repair
    # below is compared against a fresh naive full pass.
    inc = IncrementalSpsta(netlist, CONFIG_I)
    for i, gate in enumerate(g.name for g
                             in netlist.combinational_gates[:4]):
        stats = inc.set_delay(gate, Normal(1.0 + 0.2 * i, 0.05))
        nets = assert_matches_full(inc)
        print(f"edit {gate}: cone {stats.cone_size}, "
              f"{nets} nets verified bit-exact")

    # 4. the MC oracle's joint yield vs the SPSTA product.
    if result.mc_validation is not None:
        mc = result.mc_validation
        print(f"\nMC oracle: joint yield {mc.joint_yield:.4f} over "
              f"{mc.trials} shared trials "
              f"(SPSTA independence product: {result.metric_after:.4f})")


if __name__ == "__main__":
    main()
