#!/usr/bin/env python3
"""Regenerate the paper's Table 2 and the abstract's error summary.

Runs SPSTA, min/max-separated SSTA, and 10,000-trial Monte Carlo on all
nine ISCAS'89-profile benchmark circuits under both input configurations:

  (I)  P0 = P1 = Pr = Pf = 0.25   (signal probability 0.5)
  (II) P0=.75  P1=.15  Pr=.02  Pf=.08  (signal probability 0.2)

Run:  python examples/reproduce_table2.py [--trials 10000]
"""

import argparse

from repro.core.inputs import CONFIG_I, CONFIG_II
from repro.experiments.errors import error_summary, format_error_summary
from repro.experiments.table2 import format_table2, run_table2


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=10_000,
                        help="Monte Carlo trials per circuit")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    for label, config in (("I", CONFIG_I), ("II", CONFIG_II)):
        rows = run_table2(config, n_trials=args.trials, seed=args.seed)
        print(format_table2(rows, title=f"Table 2, configuration ({label})"))
        print()
        print(format_error_summary(
            error_summary(rows),
            title=f"Configuration ({label}) error vs Monte Carlo (%)"))
        print()


if __name__ == "__main__":
    main()
