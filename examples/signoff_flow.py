#!/usr/bin/env python3
"""A miniature signoff flow: NLDM timing -> statistical analysis -> report
-> yield-driven gate sizing.

Chains the library's production-flavoured pieces end to end on the s298
benchmark:

1. NLDM lookup-table STA with slew propagation gives topology-aware
   per-gate delays (fanout load, slew degradation);
2. the frozen NLDM delays drive SPSTA and the Monte Carlo simulator;
3. a consolidated timing report compares SSTA's always-switching miss
   probability with SPSTA's occurrence-weighted one;
4. greedy statistical gate sizing pushes the correlation-aware timing
   yield to target, reporting the area it cost.

Run:  python examples/signoff_flow.py
"""

import numpy as np

from repro.core.inputs import CONFIG_I
from repro.core.liberty import demo_library
from repro.core.nldm import FrozenDelays, run_nldm_sta
from repro.core.spsta import run_spsta
from repro.netlist.analysis import critical_endpoint
from repro.netlist.benchmarks import benchmark_circuit
from repro.opt.sizing import optimize_sizing
from repro.report import generate_report
from repro.sim.montecarlo import run_monte_carlo


def main() -> None:
    netlist = benchmark_circuit("s298")
    print(f"{netlist!r}\n")

    # 1. NLDM pass: loads, slews, per-gate delays (bundled .lib).
    library = demo_library()
    nldm = run_nldm_sta(netlist, library, input_slew=0.3)
    endpoint, depth = critical_endpoint(netlist)
    print("NLDM STA (bundled demo.lib):")
    print(f"  critical endpoint {endpoint} (structural depth {depth})")
    print(f"  NLDM arrival: {nldm.arrival[endpoint]:.3f}  "
          f"slew: {nldm.slew[endpoint]:.3f}  "
          f"load: {nldm.load[endpoint]:.3f}")
    heaviest = max(nldm.load, key=nldm.load.get)
    print(f"  heaviest net: {heaviest} (load {nldm.load[heaviest]:.2f})")

    # 2. statistical engines on the frozen NLDM delays.
    model = FrozenDelays.from_nldm(nldm)
    spsta = run_spsta(netlist, CONFIG_I, model)
    mc = run_monte_carlo(netlist, CONFIG_I, 10_000, model,
                         rng=np.random.default_rng(0))
    p, mu, sigma = spsta.report(endpoint, "rise")
    stats = mc.direction_stats(endpoint, "rise")
    print("\nStatistical timing under NLDM delays (rise at endpoint):")
    print(f"  SPSTA: P={p:.3f} mu={mu:.3f} sd={sigma:.3f}")
    print(f"  MC:    P={stats.probability:.3f} mu={stats.mean:.3f} "
          f"sd={stats.std:.3f}")

    # 3. signoff report at a moderately tight clock.
    clock = nldm.arrival[endpoint] * 1.05
    report = generate_report(netlist, clock_period=clock, stats=CONFIG_I,
                             delay_model=model, n_paths=2)
    print(f"\n{report.render(max_endpoints=5)}")

    # 4. yield-driven sizing (unit-delay abstraction inside the optimizer).
    # N(0, 1) launch arrivals put the critical endpoint near depth + 1, so
    # a clock of depth + 2 is tight-but-feasible for sizing to fix.
    sizing_clock = depth + 2.0
    result = optimize_sizing(netlist, clock_period=sizing_clock,
                             target_yield=0.95, max_area=12.0)
    print("\nGate sizing toward 95% yield at a unit-delay clock of "
          f"{sizing_clock:.1f}:")
    print(f"  yield {result.yield_before:.3f} -> {result.yield_after:.3f} "
          f"in {result.iterations} moves, area cost {result.area_cost:.2f}")
    if result.sizes:
        sized = ", ".join(f"{net}x{size:g}"
                          for net, size in sorted(result.sizes.items()))
        print(f"  resized gates: {sized}")


if __name__ == "__main__":
    main()
