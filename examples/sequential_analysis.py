#!/usr/bin/env python3
"""Sequential steady-state analysis: compute what the paper assumes.

The paper assigns four-value statistics to flip-flop outputs by fiat.  In a
real sequential circuit those statistics are produced by the circuit
itself: each DFF launches whatever its data input settled to last cycle.
This example closes the loop on the s27 benchmark:

1. iterate FF-output statistics to a fixpoint (independence-across-cycles
   approximation);
2. validate against a 30,000-cycle cycle-accurate sequential simulation
   (temporal correlation exact);
3. feed the converged statistics into SPSTA and compare the critical-
   endpoint report against the paper-style "assumed 0.25/0.25/0.25/0.25"
   launch statistics.

Run:  python examples/sequential_analysis.py
"""

import numpy as np

from repro.core.inputs import CONFIG_I
from repro.core.sequential import (
    run_sequential_monte_carlo,
    steady_state_launch_stats,
)
from repro.core.spsta import run_spsta
from repro.netlist.analysis import critical_endpoint
from repro.netlist.benchmarks import benchmark_circuit


def main() -> None:
    netlist = benchmark_circuit("s27")
    print(f"{netlist!r}\n")

    # 1. fixpoint iteration.
    fixpoint = steady_state_launch_stats(netlist, CONFIG_I)
    print(f"Fixpoint converged in {fixpoint.iterations} iterations "
          f"(residual {fixpoint.residual:.2e})")

    # 2. cycle-accurate validation.
    mc = run_sequential_monte_carlo(netlist, CONFIG_I, n_cycles=30_000,
                                    rng=np.random.default_rng(0))
    print("\nFF-output four-value statistics "
          "(fixpoint prediction | sequential MC):")
    header = f"{'FF':>5} {'P0':>13} {'P1':>13} {'Pr':>13} {'Pf':>13}"
    print(header)
    for ff in netlist.dffs:
        p = fixpoint.launch_stats[ff.name].prob4
        o = mc.prob4[ff.name]
        print(f"{ff.name:>5} "
              f"{p.p_zero:.3f}|{o.p_zero:.3f}   "
              f"{p.p_one:.3f}|{o.p_one:.3f}   "
              f"{p.p_rise:.3f}|{o.p_rise:.3f}   "
              f"{p.p_fall:.3f}|{o.p_fall:.3f}")
    print("(differences come from temporal/spatial correlation the "
          "fixpoint ignores)")

    # 3. SPSTA with computed vs assumed launch statistics.
    endpoint, depth = critical_endpoint(netlist)
    assumed = run_spsta(netlist, CONFIG_I)
    computed = run_spsta(netlist, dict(fixpoint.launch_stats))
    print(f"\nSPSTA at critical endpoint {endpoint} (depth {depth}):")
    for label, result in (("assumed 1/4-each FF stats", assumed),
                          ("computed steady-state stats", computed)):
        p, mu, sigma = result.report(endpoint, "rise")
        print(f"  {label:<28} rise P={p:.3f} mu={mu:.2f} sd={sigma:.2f}")
    print("\nThe gap shows how much the 'assigned FF statistics' shortcut")
    print("in the paper's setup can move endpoint timing statistics.")


if __name__ == "__main__":
    main()
