#!/usr/bin/env python3
"""Process-variation timing yield with the Sec. 3.6 variational engine.

Arrival times are first-order polynomials over two global process
parameters (channel length L, supply voltage V) plus independent local
noise.  Because every gate's delay shares the same global parameters, the
endpoints are *correlated* — the joint timing yield is far better than the
independence product would suggest.  This example:

1. runs the canonical-form analysis on the s344 benchmark,
2. prints per-endpoint sensitivities and 3-sigma corners,
3. sweeps the clock deadline and reports correlation-aware timing yield
   against the (wrong) per-endpoint independence estimate.

Run:  python examples/timing_yield.py
"""

import numpy as np

from repro.core.variational import (
    ProcessSpace,
    VariationalDelay,
    run_variational,
    timing_yield,
)
from repro.netlist.analysis import critical_endpoint
from repro.netlist.benchmarks import benchmark_circuit
from repro.stats.normal import Normal


def main() -> None:
    netlist = benchmark_circuit("s344")
    space = ProcessSpace(("L", "V"))
    delay = VariationalDelay(
        space, nominal=1.0,
        sensitivities={"L": 0.06, "V": 0.03},  # 6% / 3% per sigma
        local_sigma=0.03)
    result = run_variational(netlist, delay)

    endpoint, depth = critical_endpoint(netlist)
    worst = result.worst(endpoint)
    print(f"{netlist!r}")
    print(f"Critical endpoint {endpoint} (depth {depth}):")
    print(f"  arrival  = {worst.mean:.3f} "
          f"{worst.sensitivity('L'):+.3f}*L {worst.sensitivity('V'):+.3f}*V "
          f"(+ local sd {np.sqrt(worst.local_var):.3f})")
    print(f"  sigma    = {worst.sigma:.3f}")
    print(f"  slow corner (L=V=+3): {worst.at_corner({'L': 3, 'V': 3}):.3f}")
    print(f"  fast corner (L=V=-3): "
          f"{worst.at_corner({'L': -3, 'V': -3}):.3f}")

    endpoints = list(netlist.endpoints)
    print(f"\nTiming yield over all {len(endpoints)} endpoints:")
    print(f"{'deadline':>9} {'joint yield':>12} {'indep. product':>15}")
    for deadline in np.arange(depth - 1.0, depth + 6.0, 1.0):
        joint = timing_yield(result, endpoints, deadline, n_samples=20_000)
        product = 1.0
        for net in endpoints:
            form = result.worst(net)
            product *= Normal(form.mean, form.sigma).cdf(deadline)
        print(f"{deadline:>9.1f} {joint:>12.4f} {product:>15.4f}")
    print("\nThe joint yield exceeds the independence product because the")
    print("global parameters move every path together (systematic skew).")


if __name__ == "__main__":
    main()
