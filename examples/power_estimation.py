#!/usr/bin/env python3
"""Power estimation with the Sec. 2.2 substrate and SPSTA's TOP integrals.

Demonstrates, on the s27 benchmark:

1. the Figure 3 primitives (signal probability, Boolean-difference
   transition density) on a single AND gate;
2. per-net signal probabilities three ways — independent (Eq. 5),
   truncated first-order covariance tracking, and BDD-exact (Sec. 3.5) —
   showing what reconvergent fanout does to the cheap estimate;
3. per-net toggling rates from transition-density propagation (Eq. 6) vs
   SPSTA TOP-function integrals vs Monte Carlo observation;
4. a CV^2f dynamic-power estimate built from each rate source.

Run:  python examples/power_estimation.py
"""

import numpy as np

from repro.core.correlation import (
    correlated_signal_probabilities,
    exact_signal_probabilities,
)
from repro.core.inputs import CONFIG_I
from repro.core.probability import signal_probabilities
from repro.core.spsta import run_spsta
from repro.experiments.figures import figure3_example
from repro.netlist.benchmarks import benchmark_circuit
from repro.power.density import transition_densities
from repro.power.power import switching_power
from repro.sim.montecarlo import run_monte_carlo


def main() -> None:
    print("Figure 3 example (2-input AND, P=0.5, unit densities):")
    for key, (computed, expected) in figure3_example().items():
        print(f"  {key}: {computed} (expected {expected})")

    netlist = benchmark_circuit("s27")
    print(f"\n{netlist!r}")

    # --- signal probabilities three ways ---------------------------------
    indep = signal_probabilities(netlist, 0.5)
    truncated = correlated_signal_probabilities(netlist, 0.5)
    exact = exact_signal_probabilities(netlist, 0.5)
    print("\nSignal probabilities (P = 0.5 at launch points):")
    print(f"{'net':>6} {'Eq.5 indep':>11} {'trunc cov':>10} {'BDD exact':>10}")
    for gate in netlist.combinational_gates:
        n = gate.name
        print(f"{n:>6} {indep[n]:>11.4f} {truncated[n]:>10.4f} "
              f"{exact[n]:>10.4f}")
    err_i = np.mean([abs(indep[g.name] - exact[g.name])
                     for g in netlist.combinational_gates])
    err_t = np.mean([abs(truncated[g.name] - exact[g.name])
                     for g in netlist.combinational_gates])
    print(f"mean |error| vs exact: independent {err_i:.4f}, "
          f"truncated {err_t:.4f}")

    # --- toggling rates three ways ----------------------------------------
    rho_density = transition_densities(netlist, 0.5, CONFIG_I.toggling_rate)
    spsta = run_spsta(netlist, CONFIG_I)
    mc = run_monte_carlo(netlist, CONFIG_I, 50_000,
                         rng=np.random.default_rng(0))
    print("\nToggling rates (transitions/cycle):")
    print(f"{'net':>6} {'Eq.6 density':>13} {'SPSTA TOP':>10} {'MC':>8}")
    for gate in netlist.combinational_gates:
        n = gate.name
        print(f"{n:>6} {rho_density[n]:>13.4f} "
              f"{spsta.toggling_rate(n):>10.4f} "
              f"{mc.toggling_rate(n):>8.4f}")

    # --- dynamic power from each rate source ------------------------------
    print("\nDynamic power at Vdd=1V, 1GHz (CV^2f model):")
    for label, rates in (
            ("Eq. 6 density", rho_density),
            ("SPSTA TOP integrals",
             {n: spsta.toggling_rate(n) for n in netlist.nets}),
            ("Monte Carlo", {n: mc.toggling_rate(n) for n in netlist.nets})):
        report = switching_power(netlist, rates)
        print(f"  {label:<20} {report.total_watts * 1e6:8.3f} uW")
    top_net, top_w = switching_power(
        netlist, {n: mc.toggling_rate(n) for n in netlist.nets}
    ).top_consumers(1)[0]
    print(f"  hottest net: {top_net} ({top_w * 1e6:.3f} uW)")


if __name__ == "__main__":
    main()
