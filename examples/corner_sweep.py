#!/usr/bin/env python3
"""Scenario-batched corner sweep: one compile, many analyses.

Sweeps the s386 profile circuit across a 16-point delay-derate grid and
the paper's two input configurations, using `run_scenario_batch` — the
backend that compiles the netlist once and executes every scenario as a
single vectorized pass (docs/performance.md, "Scenario-batched
analysis").  Also shows the timed comparison against the pre-batching
loop and the classic PVT-style corner report.

Run:  python examples/corner_sweep.py
"""

import time

from repro import CONFIG_I, CONFIG_II, benchmark_circuit, critical_endpoint
from repro.core.corners import STANDARD_CORNERS, run_corners
from repro.core.delay import NormalDelay
from repro.core.scenario import (
    Scenario,
    derate_corners,
    run_scenario_batch,
    run_scenarios_looped,
    scenarios_from_corners,
)
from repro.core.spsta import GridAlgebra
from repro.stats.grid import TimeGrid


def main() -> None:
    netlist = benchmark_circuit("s386")
    endpoint, depth = critical_endpoint(netlist)
    print(f"Loaded {netlist!r}; critical endpoint {endpoint} "
          f"(depth {depth})\n")

    # 1. A 16-corner derate sweep, batched.  Every corner shares the
    #    compiled netlist and (same input statistics) the Eq. 11
    #    subset-weight tables; the grid rows propagate stacked.
    corners = derate_corners(0.8, 1.25, 16)
    scenarios = scenarios_from_corners(corners,
                                       NormalDelay(1.0, 0.1), CONFIG_I)
    grid = TimeGrid(-8.0, 45.0, 256)
    sweep = run_scenario_batch(netlist, scenarios, GridAlgebra(grid),
                               keep="endpoints")
    print(f"Batched {len(scenarios)} corners: compile "
          f"{sweep.compile_seconds * 1e3:.1f} ms, execute "
          f"{sweep.execute_seconds * 1e3:.1f} ms")
    for name in (corners[0].name, corners[-1].name):
        p, mu, sigma = sweep.result_for(name).report(endpoint, "rise")
        print(f"  {name}: rise P={p:.3f} arrival ~ ({mu:.2f}, "
              f"{sigma:.2f})")

    # 2. The same sweep through the pre-batching loop — the
    #    differential-test oracle and the benchmark baseline.
    t0 = time.perf_counter()
    run_scenarios_looped(netlist, scenarios, lambda: GridAlgebra(grid))
    looped = time.perf_counter() - t0
    batched = sweep.compile_seconds + sweep.execute_seconds
    print(f"Looped reference: {looped * 1e3:.0f} ms "
          f"({looped / batched:.1f}x slower)\n")

    # 3. Scenarios are not just delay corners: mix input configurations
    #    in the same batch (Table-3 style).
    mixed = (Scenario("config-I", CONFIG_I, NormalDelay(1.0, 0.1)),
             Scenario("config-II", CONFIG_II, NormalDelay(1.0, 0.1)))
    msweep = run_scenario_batch(netlist, mixed, GridAlgebra(grid))
    for scenario in mixed:
        p, mu, sigma = msweep.result_for(scenario.name).report(endpoint,
                                                               "rise")
        print(f"{scenario.name}: rise P={p:.3f} arrival ~ ({mu:.2f}, "
              f"{sigma:.2f})")

    # 4. run_corners with `stats` routes through the batched backend and
    #    adds the SPSTA worst-arrival column to the PVT report.
    print("\nStandard PVT corners (SPSTA worst endpoint arrival):")
    rows = run_corners(netlist, STANDARD_CORNERS, stats=CONFIG_I)
    for row in rows.values():
        worst = row.spsta_worst
        arrival = (f"N({worst.mu:.2f}, {worst.sigma:.2f})"
                   if worst is not None else "n/a")
        print(f"  {row.corner.name:>8}: {arrival}")

    print("\nSame sweep from the shell:")
    print("  spsta sweep s386 --derate-grid=0.8:1.25:16 --algebra grid "
          "--grid=-8:45:256 --compare-looped")


if __name__ == "__main__":
    main()
