#!/usr/bin/env python3
"""Analyze your own circuit: build or parse a netlist, inspect TOP shapes.

Shows the full API surface on a hand-written circuit:

1. parse a ``.bench`` netlist from text (the ISCAS'89 format);
2. run SPSTA with all three TOP abstractions (moments / Gaussian mixture /
   numeric grid) and compare the conditional arrival shapes they report;
3. regenerate the paper's Figure 4 contrast (MAX vs WEIGHTED SUM) at one
   gate of the circuit;
4. demonstrate four-value glitch filtering on a concrete trial.

Run:  python examples/custom_circuit.py
"""


from repro.core.inputs import CONFIG_I
from repro.core.spsta import (
    GridAlgebra,
    MixtureAlgebra,
    MomentAlgebra,
    run_spsta,
)
from repro.logic.fourvalue import Logic4
from repro.netlist.bench import parse_bench
from repro.sim.reference import simulate_trial
from repro.stats.grid import TimeGrid

BENCH_TEXT = """
# A small arbiter-like circuit.
INPUT(req0)
INPUT(req1)
INPUT(enable)
OUTPUT(grant0)
OUTPUT(grant1)
OUTPUT(busy)

n0 = NOT(req1)
grant0 = AND(req0, n0, enable)
n1 = NOT(req0)
grant1 = AND(req1, n1, enable)
busy = OR(grant0, grant1)
"""


def main() -> None:
    netlist = parse_bench(BENCH_TEXT, name="arbiter")
    print(f"Parsed {netlist!r}")

    # --- three TOP abstractions on the same circuit -----------------------
    grid = TimeGrid(-8.0, 12.0, 4096)
    engines = {
        "moments": MomentAlgebra(),
        "mixture(8)": MixtureAlgebra(8),
        "grid": GridAlgebra(grid),
    }
    print("\nTOP report at net 'busy' (rise):")
    print(f"{'engine':>12} {'P':>8} {'mean':>8} {'sigma':>8}")
    for label, algebra in engines.items():
        result = run_spsta(netlist, CONFIG_I, algebra=algebra)
        p, mu, sd = result.report("busy", "rise")
        print(f"{label:>12} {p:>8.4f} {mu:>8.4f} {sd:>8.4f}")
    print("(weights agree exactly; shapes agree to approximation error)")

    # --- the mixture engine exposes the multi-modal shape ------------------
    mixture = run_spsta(netlist, CONFIG_I, algebra=MixtureAlgebra(8))
    top = mixture.tops["busy"].rise
    print(f"\n'busy' rise TOP as a Gaussian mixture "
          f"(weight {top.weight:.4f}):")
    for comp in top.conditional.components:
        print(f"  {comp.weight:.3f} * N({comp.mu:+.3f}, {comp.sigma:.3f})")

    # --- Figure 4 in miniature --------------------------------------------
    from repro.experiments.figures import figure4_series
    series = figure4_series(signal_probability=0.9, sigma1=0.5, sigma2=1.5)
    print("\nFigure 4 contrast (2-input AND, P=0.9 inputs):")
    print(f"  MAX result:          skew {series.max_skewness:+.3f}, "
          f"std {series.max_std:.3f}")
    print(f"  WEIGHTED SUM result: skew {series.weighted_sum_skewness:+.3f}, "
          f"std {series.weighted_sum_std:.3f}")

    # --- glitch filtering on a concrete trial ------------------------------
    print("\nFour-value trial: req0 rises @0.2, req1 falls @0.7, enable=1")
    states = simulate_trial(netlist, {
        "req0": (Logic4.RISE, 0.2),
        "req1": (Logic4.FALL, 0.7),
        "enable": (Logic4.ONE, None),
    })
    for net in ("n0", "grant0", "grant1", "busy"):
        symbol, t = states[net]
        when = "-" if t is None else f"@{t:.2f}"
        print(f"  {net:>7}: {symbol} {when}")
    print("grant0 needs req0=1 AND req1=0: both transitions must land, so")
    print("it rises at the LATER cause (the paper's MAX semantics), while")
    print("simultaneous r/f combinations elsewhere are glitch-filtered.")


if __name__ == "__main__":
    main()
