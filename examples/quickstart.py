#!/usr/bin/env python3
"""Quickstart: run all three analyzers on a benchmark circuit.

Loads the bundled ISCAS'89 s27 circuit, asserts the paper's configuration
(I) input statistics at every launch point, and compares SPSTA, SSTA, and a
10,000-trial Monte Carlo simulation at the most critical endpoint —
a miniature of the paper's Table 2.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CONFIG_I,
    benchmark_circuit,
    critical_endpoint,
    run_monte_carlo,
    run_spsta,
    run_ssta,
    run_sta,
)


def main() -> None:
    netlist = benchmark_circuit("s27")
    print(f"Loaded {netlist!r}")

    endpoint, depth = critical_endpoint(netlist)
    print(f"Critical endpoint: {endpoint} at structural depth {depth}\n")

    # 1. Deterministic STA: the two bounds of the paper's Figure 1.
    sta = run_sta(netlist)
    lo, hi = sta.endpoint_window(endpoint)
    print(f"STA arrival window:          [{lo:.2f}, {hi:.2f}]")

    # 2. The SSTA baseline: always-switching rise/fall distributions.
    ssta = run_ssta(netlist)
    pair = ssta.endpoint(endpoint)
    print(f"SSTA rise arrival:           N({pair.rise.mu:.2f}, "
          f"{pair.rise.sigma:.2f})")
    print(f"SSTA fall arrival:           N({pair.fall.mu:.2f}, "
          f"{pair.fall.sigma:.2f})")

    # 3. SPSTA: input-statistics-aware TOP functions (the contribution).
    spsta = run_spsta(netlist, CONFIG_I)
    for direction in ("rise", "fall"):
        p, mu, sigma = spsta.report(endpoint, direction)
        print(f"SPSTA {direction:<5} P={p:.3f}  arrival ~ ({mu:.2f}, "
              f"{sigma:.2f})")
    print(f"SPSTA signal probability:    "
          f"{spsta.prob4[endpoint].signal_probability:.3f}")
    print(f"SPSTA toggling rate:         "
          f"{spsta.toggling_rate(endpoint):.3f} transitions/cycle")

    # 4. Monte Carlo ground truth on the same statistics.
    mc = run_monte_carlo(netlist, CONFIG_I, n_trials=10_000,
                         rng=np.random.default_rng(0))
    for direction in ("rise", "fall"):
        stats = mc.direction_stats(endpoint, direction)
        print(f"MC    {direction:<5} P={stats.probability:.3f}  "
              f"arrival ~ ({stats.mean:.2f}, {stats.std:.2f})  "
              f"[{stats.n_occurrences} occurrences]")

    print("\nNote how SPSTA's P/mu/sigma track the simulator while SSTA")
    print("reports a single always-switching distribution with a collapsed")
    print("sigma — the paper's core observation.")


if __name__ == "__main__":
    main()
