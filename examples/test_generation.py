#!/usr/bin/env python3
"""Testability analysis and test generation on the signal-probability
substrate.

The same machinery SPSTA uses for timing (signal probabilities, Boolean
differences, BDDs) powers manufacturing test:

1. COP testability: per-net controllability/observability, per-fault
   random-pattern detectability — straight from Eq. 5 and Eq. 7;
2. random-pattern test-length estimates and expected coverage curves;
3. BDD-based deterministic ATPG for the hard faults: miter construction,
   exact test cubes, redundancy (untestability) proofs;
4. a greedy complete test set with fault-simulation credit.

Run:  python examples/test_generation.py
"""

from repro.netlist.benchmarks import benchmark_circuit
from repro.testability import (
    compute_cop,
    patterns_for_confidence,
    random_pattern_coverage,
)
from repro.testability.atpg import AtpgEngine, generate_test_set


def main() -> None:
    netlist = benchmark_circuit("s27")
    print(f"{netlist!r}\n")

    # 1. COP measures.
    cop = compute_cop(netlist, 0.5)
    print("Hardest faults for random patterns (COP detectability):")
    for fault, d in cop.hardest_faults(5):
        needed = patterns_for_confidence(d, 0.95)
        needed_text = (
            "untestable by random patterns" if needed == float("inf")
            else f"~{needed:.0f} patterns for 95% confidence")
        print(f"  {str(fault):>9}: D={d:.4f}  ({needed_text})")

    # 2. coverage curve.
    print("\nExpected random-pattern stuck-at coverage:")
    for n in (8, 32, 128, 512):
        pct = 100 * random_pattern_coverage(cop, n)
        print(f"  {n:>4} patterns: {pct:.1f}%")

    # 3. deterministic ATPG for the hardest fault.
    hardest, d = cop.hardest_faults(1)[0]
    engine = AtpgEngine(netlist)
    vector = engine.generate_test(hardest)
    print(f"\nDeterministic test for the hardest fault {hardest} "
          f"(D={d:.4f}):")
    if vector is None:
        print("  fault is UNTESTABLE (redundant logic) — proven by BDD miter")
    else:
        bits = " ".join(f"{net}={v}" for net, v in sorted(vector.items()))
        print(f"  {bits}")

    # 4. complete greedy test set.
    result = generate_test_set(netlist)
    print(f"\nComplete test set: {len(result.vectors)} vectors cover "
          f"{len(result.covered)} faults "
          f"({len(result.untestable)} untestable), "
          f"coverage of testable faults {100 * result.coverage:.1f}%")
    first = result.vectors[0]
    print(f"  first vector detects {len(first.targets)} faults at once")


if __name__ == "__main__":
    main()
