#!/usr/bin/env python3
"""Hierarchical partition-parallel analysis: regions, caching, resume.

Partitions a circuit at its register boundaries, analyzes the regions
on the resilient worker pool, and stitches the per-region interface
models back into an ordinary whole-design result
(docs/performance.md, "Hierarchical partition-parallel analysis").
Shows the bit-exact match against the flat engine, interface-model
reuse across runs via the on-disk store, deadline-bounded partial runs
that resume from the store, and the replicated-tile dedup that carries
the 10^6-gate benchmark.

Run:  python examples/hier_analysis.py
"""

import tempfile
import time

from repro import benchmark_circuit, critical_endpoint
from repro.core.inputs import CONFIG_I
from repro.core.spsta import run_spsta
from repro.hier import AlgebraSpec, InterfaceModelStore, run_hier
from repro.netlist.generator import TiledProfile, generate_tiled_circuit


def main() -> None:
    netlist = benchmark_circuit("s1238")
    endpoint, depth = critical_endpoint(netlist)
    print(f"Loaded {netlist!r}; critical endpoint {endpoint} "
          f"(depth {depth})\n")

    # 1. Partition into four regions and analyze.  s1238's combinational
    #    logic is one monolithic blob, so the partitioner falls back to
    #    level-band cuts: a chained region DAG, scheduled in waves.
    run = run_hier(netlist, CONFIG_I, n_regions=4, keep="all")
    print(run.partition.summary())
    for report in run.reports:
        print(f"  {report.format()}")

    # 2. The stitched result is an ordinary SpstaResult, and for the
    #    closed-form algebras it matches the flat engine bit-exactly:
    #    every region rerun is the unmodified fast engine seeded with
    #    the exact upstream boundary TOPs.
    flat = run_spsta(netlist, CONFIG_I)
    p_h, mu_h, sd_h = run.result.report(endpoint, "rise")
    p_f, mu_f, sd_f = flat.report(endpoint, "rise")
    assert (p_h, mu_h, sd_h) == (p_f, mu_f, sd_f)
    print(f"\n{endpoint} rise: P={p_h:.4f} arrival ~ ({mu_h:.3f}, "
          f"{sd_h:.3f})  [identical flat vs hierarchical]\n")

    # 3. Interface models persist: a store-backed rerun recomputes
    #    nothing — and because cache hits need no dispatch, even a
    #    zero-second deadline completes against a populated store.
    #    That is the resume loop: a run cut by a deadline persists what
    #    it finished, and the follow-up call computes only the rest.
    with tempfile.TemporaryDirectory() as tmp:
        store = InterfaceModelStore(tmp)
        run_hier(netlist, CONFIG_I, n_regions=4, store=store)
        warm = run_hier(netlist, CONFIG_I, n_regions=4,
                        store=InterfaceModelStore(tmp))
        print(f"Store-backed rerun: {warm.cache_hits} cache hits, "
              f"{warm.cache_misses} misses")

        cut = run_hier(netlist, CONFIG_I, n_regions=4,
                       store=InterfaceModelStore(tmp), deadline=0.0)
        print(f"deadline=0 against the warm store: "
              f"complete={cut.complete} "
              f"(all {cut.cache_hits} regions served from cache)")

    # 4. Replicated structures are analyzed once.  Sixteen tiles with
    #    only two distinct structures: two analyses, fourteen interface
    #    models translated to the clones' net names.  This dedup is what
    #    lets the 10^6-gate benchmark (benchmarks/test_bench_hier.py)
    #    finish in seconds-per-region under a 2 GiB budget.
    profile = TiledProfile(name="tiles", n_tiles=16, gates_per_tile=600,
                           tile_variants=2, seed=0)
    tiled = generate_tiled_circuit(profile)
    t0 = time.perf_counter()
    scale = run_hier(tiled, CONFIG_I, algebra_spec=AlgebraSpec.moment(),
                     n_regions=16, keep="interface")
    seconds = time.perf_counter() - t0
    computed = sum(1 for r in scale.reports if r.source == "computed")
    print(f"\n{len(tiled.gates)} gates in 16 tiles: {computed} regions "
          f"computed, {scale.dedup_hits} deduplicated, "
          f"{seconds * 1e3:.0f} ms total")

    print("\nSame analyses from the shell:")
    print("  spsta hier s1238 --partitions 4 --compare-flat")
    print("  spsta hier s1238 --partitions 4 --cache im-cache")
    print("  spsta analyze s1238 --partition 4 --trials 0")


if __name__ == "__main__":
    main()
