#!/usr/bin/env python3
"""Crosstalk aggressor alignment: SPSTA statistics vs SSTA pessimism.

The paper's Sec. 1 argument in executable form: "the probability for two
signals to arrive at about the same time to activate the crosstalk coupling
effect cannot be accurately estimated in SSTA, it can only be assumed".

This example builds an RC stage for a victim net coupled to an aggressor,
takes the aggressor's transition statistics from an actual SPSTA run on the
s27 benchmark, and compares:

- the statistical victim delay (TOP-weighted Miller factors),
- the SSTA-style worst case (aggressor always opposing, kappa = 2),
- a joint Monte Carlo reference.

Run:  python examples/crosstalk_alignment.py
"""

import numpy as np

from repro.core.inputs import CONFIG_I
from repro.core.spsta import run_spsta
from repro.interconnect import (
    AlignmentWindow,
    CoupledStage,
    crosstalk_delay_distribution,
    sample_crosstalk_delays,
    worst_case_crosstalk_delay,
)
from repro.interconnect.rctree import RCTree
from repro.netlist.benchmarks import benchmark_circuit
from repro.stats.normal import Normal


def main() -> None:
    # --- the victim interconnect: a small RC tree with a coupled segment --
    tree = RCTree(root_capacitance=0.2, driver_resistance=2.0)
    tree.add_segment("mid", "root", resistance=1.0, capacitance=0.5)
    tree.add_sink("sink", "mid", resistance=1.0, wire_capacitance=0.3,
                  load_capacitance=0.4)
    stage = CoupledStage.from_rc(tree, sink="sink", coupling_node="mid",
                                 coupling_cap=0.6)
    print("Victim stage from RC tree:")
    print(f"  Elmore delay with quiet aggressor (kappa=1): "
          f"{stage.base_delay:.3f}")
    print(f"  delay swing per Miller step:                 "
          f"+/-{stage.coupling_delta:.3f}")

    # --- aggressor statistics from a real SPSTA run ------------------------
    netlist = benchmark_circuit("s27")
    spsta = run_spsta(netlist, CONFIG_I)
    aggressor_net = netlist.endpoints[0]
    rise = spsta.tops[aggressor_net].rise
    fall = spsta.tops[aggressor_net].fall
    print(f"\nAggressor = {netlist.name} net {aggressor_net}: "
          f"P(rise)={rise.weight:.3f}, P(fall)={fall.weight:.3f}")

    victim_arrival = Normal(4.0, 1.0)
    window = AlignmentWindow(width=2.0)
    args = (stage, victim_arrival, "rise",
            (rise.weight, rise.conditional),
            (fall.weight, fall.conditional), window)

    mixture, kappas = crosstalk_delay_distribution(*args)
    print("\nMiller-factor probabilities (SPSTA-driven):")
    for kappa in (0.0, 1.0, 2.0):
        print(f"  kappa={kappa:.0f}: {kappas[kappa]:.4f}")

    worst = worst_case_crosstalk_delay(stage, victim_arrival)
    samples = sample_crosstalk_delays(*args, n_samples=200_000,
                                      rng=np.random.default_rng(0))
    print("\nVictim output arrival (victim switching at "
          f"N({victim_arrival.mu}, {victim_arrival.sigma})):")
    print(f"  statistical (SPSTA):  mean {mixture.mean():.3f}  "
          f"sd {mixture.std():.3f}")
    print(f"  Monte Carlo:          mean {samples.mean():.3f}  "
          f"sd {samples.std():.3f}")
    print(f"  SSTA worst case:      mean {worst.mu:.3f}  "
          f"sd {worst.sigma:.3f}")
    pessimism = worst.mu - samples.mean()
    print(f"\nWorst-case pessimism on this stage: +{pessimism:.3f} "
          f"({100 * pessimism / samples.mean():.1f}% of the actual mean),")
    print("bought by assuming an alignment that occurs with probability "
          f"{kappas[2.0]:.4f}.")


if __name__ == "__main__":
    main()
