"""Cross-engine differential conformance harness.

The repo computes the same per-net arrival statistics five ways — moment,
mixture, and grid TOP algebras, each through a naive and a fast engine,
plus two Monte Carlo simulators.  This package sweeps every engine pair
over fuzzed random circuits and ISCAS benches under per-pair tolerance
policies (:mod:`repro.verify.policies`), with Monte Carlo as the
ground-truth oracle, and turns the stats layer's mass-conservation /
NaN-sentinel counters into hard failures.  ``spsta verify`` runs the sweep
from the command line and emits a machine-readable JSON report; CI runs it
on every push.  See ``docs/verification.md``.
"""

from repro.verify.harness import (
    CircuitConformance,
    ConformanceReport,
    Divergence,
    PairCheck,
    run_conformance,
    verify_circuit,
)
from repro.verify.policies import (
    CONTAINMENT_POLICIES,
    GUARDRAIL_MAX_CLIP_FRACTION,
    POLICIES,
    ContainmentPolicy,
    TolerancePolicy,
)

__all__ = [
    "CircuitConformance",
    "ConformanceReport",
    "CONTAINMENT_POLICIES",
    "ContainmentPolicy",
    "Divergence",
    "GUARDRAIL_MAX_CLIP_FRACTION",
    "PairCheck",
    "POLICIES",
    "TolerancePolicy",
    "run_conformance",
    "verify_circuit",
]
