"""Differential conformance sweep over every engine pair.

One :func:`verify_circuit` call runs a circuit through all six SPSTA
engine/algebra combinations, the scenario-batched backend
(:mod:`repro.core.scenario`) on every algebra, the hierarchical
partition scheduler (:mod:`repro.hier`, ``keep="all"``) on every
algebra, plus both Monte Carlo simulators, then checks every pair named
in
:data:`repro.verify.policies.POLICIES` net by net:

- replication pairs (``fast-vs-naive/*``, ``batched-vs-fast/*``,
  ``hier-vs-flat/*``, ``wave-vs-stream/mc``) over every net — the
  engines share their mathematics, so any visible disagreement is a bug;
- abstraction pairs (``*-vs-grid``) and statistical pairs (``*-vs-mc``)
  over the netlist's endpoints, where the tolerance policy encodes the
  modelling error the pair is *allowed* to have;
- containment policies (``bounds-vs-bdd/exact``, size-gated, slack 0;
  ``bounds-vs-mc/hoeffding``) over every net — the certified SP
  intervals of :func:`repro.bounds.compute_bounds` must *contain* the
  reference, because a sound bound that excludes an exact value is a
  soundness bug, not modelling error.

The sweep also enforces the stats layer's numerical guardrails: the grid
runs must actually exercise the mass-conservation accounting
(``mass_checks > 0``) and must never clip more than
:data:`~repro.verify.policies.GUARDRAIL_MAX_CLIP_FRACTION` of any
density's mass off the grid edge.  :func:`run_conformance` fuzzes random
circuits (seeded, reproducible) alongside ISCAS benches and aggregates
everything into a :class:`ConformanceReport` with a JSON serialization for
CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import json
import math
import time
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.corners import Corner, ScaledDelay
from repro.core.delay import DelayModel, NormalDelay, UnitDelay
from repro.core.inputs import CONFIG_I, InputStats
from repro.core.profiling import SpstaProfile
from repro.core.incremental_spsta import IncrementalSpsta
from repro.core.scenario import Scenario, run_scenario_batch
from repro.core.spsta import (
    GridAlgebra,
    MixtureAlgebra,
    MomentAlgebra,
    SpstaResult,
    run_spsta,
)
from repro.hier import AlgebraSpec, run_hier
from repro.lint.engine import LintConfig, preflight as lint_preflight
from repro.netlist.analysis import net_depths
from repro.netlist.benchmarks import benchmark_circuit
from repro.netlist.core import Netlist
from repro.netlist.generator import GeneratorProfile, generate_circuit
from repro.sim.montecarlo import run_monte_carlo
from repro.sim.parallel import RetryPolicy
from repro.stats.grid import TimeGrid
from repro.stats.normal import Normal
from repro.bounds import (
    Interval,
    compute_bounds,
    hoeffding_slack,
    sample_signal_probabilities,
)
from repro.logic.bdd import BDDManager
from repro.verify.policies import (
    CONTAINMENT_POLICIES,
    GUARDRAIL_MAX_CLIP_FRACTION,
    POLICIES,
    ContainmentPolicy,
    TolerancePolicy,
)

#: Grid pitch used by the sweep: an exact divisor of the unit gate delay,
#: so delay shifts land on whole bins and the grid engines carry no
#: avoidable discretization drift into the comparison.
GRID_BINS_PER_UNIT = 32

#: Margin (in time units) added on both sides of the circuit's depth span
#: so launch densities (N(0,1) tails) and delay spread stay on-grid; with
#: it, the mass guardrail passing is a *property of the sweep*, not luck.
GRID_MARGIN = 8.0

#: Region count used for the sweep's hierarchical runs: enough that every
#: bundled bench actually splits (multi-region DAG, real boundary pins)
#: while staying fast on the fuzzed circuits.
HIER_SWEEP_REGIONS = 3

DEFAULT_TRIALS = 20_000
DEFAULT_BENCHES: Tuple[str, ...] = ("s27", "s208")

#: (probability, mean, std, occurrence count or None) for one transition —
#: the common currency every engine's result is adapted into.
_Stats = Tuple[float, float, float, Optional[int]]
_StatsFn = Callable[[str, str], _Stats]


@dataclass(frozen=True)
class Divergence:
    """One compared quantity that exceeded its pair's tolerance."""

    pair: str
    net: str
    direction: str
    metric: str          # "probability" | "mean" | "std"
    value_a: float
    value_b: float
    delta: float
    tolerance: float

    def describe(self) -> str:
        return (f"{self.pair} @ {self.net}/{self.direction}: "
                f"{self.metric} {self.value_a:.6g} vs {self.value_b:.6g} "
                f"(delta {self.delta:.3g} > tol {self.tolerance:.3g})")

    def to_dict(self) -> Dict[str, object]:
        return {"pair": self.pair, "net": self.net,
                "direction": self.direction, "metric": self.metric,
                "value_a": self.value_a, "value_b": self.value_b,
                "delta": self.delta, "tolerance": self.tolerance}


@dataclass
class PairCheck:
    """Result of sweeping one engine pair over one circuit."""

    pair: str
    n_nets: int
    n_comparisons: int
    max_delta: Dict[str, float]
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.divergences

    def to_dict(self) -> Dict[str, object]:
        return {"pair": self.pair, "nets": self.n_nets,
                "comparisons": self.n_comparisons,
                "max_delta": dict(self.max_delta),
                "passed": self.passed,
                "divergences": [d.to_dict() for d in self.divergences]}


@dataclass
class CircuitConformance:
    """All pair checks plus the guardrail audit for one circuit."""

    circuit: str
    kind: str                      # "random" | "bench"
    n_gates: int
    depth: int
    seconds: float
    checks: List[PairCheck]
    guardrail: Dict[str, float]
    guardrail_failures: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return (not self.guardrail_failures
                and all(check.passed for check in self.checks))

    @property
    def divergences(self) -> List[Divergence]:
        return [d for check in self.checks for d in check.divergences]

    def to_dict(self) -> Dict[str, object]:
        return {"circuit": self.circuit, "kind": self.kind,
                "gates": self.n_gates, "depth": self.depth,
                "seconds": round(self.seconds, 3),
                "passed": self.passed,
                "checks": [check.to_dict() for check in self.checks],
                "guardrail": dict(self.guardrail),
                "guardrail_failures": list(self.guardrail_failures)}


@dataclass
class ConformanceReport:
    """Machine-readable outcome of a full conformance sweep."""

    seed: int
    trials: int
    circuits: List[CircuitConformance]

    @property
    def passed(self) -> bool:
        return all(circuit.passed for circuit in self.circuits)

    @property
    def n_comparisons(self) -> int:
        return sum(check.n_comparisons
                   for circuit in self.circuits for check in circuit.checks)

    def to_dict(self) -> Dict[str, object]:
        return {"report": "spsta-conformance",
                "seed": self.seed,
                "trials": self.trials,
                "guardrail_max_clip_fraction": GUARDRAIL_MAX_CLIP_FRACTION,
                "passed": self.passed,
                "comparisons": self.n_comparisons,
                "policies": {name: {"abs_probability": p.abs_probability,
                                    "abs_mean": p.abs_mean,
                                    "abs_std": p.abs_std,
                                    "min_occurrences": p.min_occurrences,
                                    "endpoints_only": p.endpoints_only}
                             for name, p in POLICIES.items()},
                "containment_policies": {
                    name: {"slack": c.slack, "delta": c.delta,
                           "max_launch_points": c.max_launch_points}
                    for name, c in CONTAINMENT_POLICIES.items()},
                "circuits": [circuit.to_dict()
                             for circuit in self.circuits]}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        lines = [f"conformance sweep: seed {self.seed}, "
                 f"{self.trials} MC trials, {len(self.circuits)} circuits, "
                 f"{self.n_comparisons} comparisons"]
        for circuit in self.circuits:
            verdict = "pass" if circuit.passed else "FAIL"
            lines.append(
                f"  {circuit.circuit} ({circuit.kind}, "
                f"{circuit.n_gates} gates, depth {circuit.depth}): "
                f"{verdict} in {circuit.seconds:.1f}s, worst clip fraction "
                f"{circuit.guardrail.get('max_clip_fraction', 0.0):.3g}")
            for failure in circuit.guardrail_failures:
                lines.append(f"    guardrail: {failure}")
            for divergence in circuit.divergences:
                lines.append(f"    {divergence.describe()}")
        lines.append("=> " + ("PASS" if self.passed else "FAIL"))
        return "\n".join(lines)


def _spsta_stats(result: SpstaResult) -> _StatsFn:
    def get(net: str, direction: str) -> _Stats:
        p, mean, std = result.report(net, direction)
        return p, mean, std, None
    return get


def _mc_stats(result) -> _StatsFn:
    def get(net: str, direction: str) -> _Stats:
        stats = result.direction_stats(net, direction)
        return stats.probability, stats.mean, stats.std, stats.n_occurrences
    return get


def _compare_pair(policy: TolerancePolicy, nets: Sequence[str],
                  stats_a: _StatsFn, stats_b: _StatsFn) -> PairCheck:
    """Sweep one engine pair over ``nets`` under its tolerance policy."""
    check = PairCheck(pair=policy.pair, n_nets=len(nets), n_comparisons=0,
                      max_delta={"probability": 0.0, "mean": 0.0,
                                 "std": 0.0})

    def record(net: str, direction: str, metric: str, a: float, b: float,
               tolerance: float) -> None:
        delta = abs(a - b)
        check.n_comparisons += 1
        check.max_delta[metric] = max(check.max_delta[metric], delta)
        if delta > tolerance:
            check.divergences.append(Divergence(
                pair=policy.pair, net=net, direction=direction,
                metric=metric, value_a=a, value_b=b, delta=delta,
                tolerance=tolerance))

    for net in nets:
        for direction in ("rise", "fall"):
            p_a, mean_a, std_a, count_a = stats_a(net, direction)
            p_b, mean_b, std_b, count_b = stats_b(net, direction)
            record(net, direction, "probability", p_a, p_b,
                   policy.abs_probability)
            # Conditional moments are compared only where both engines
            # agree the transition occurs (a weight mismatch is already a
            # probability divergence) and, for statistical pairs, where
            # the oracle saw enough occurrences for its estimate to carry
            # less noise than the tolerance.
            if not (math.isfinite(mean_a) and math.isfinite(mean_b)):
                continue
            counts = [c for c in (count_a, count_b) if c is not None]
            if counts and min(counts) < policy.min_occurrences:
                continue
            record(net, direction, "mean", mean_a, mean_b, policy.abs_mean)
            record(net, direction, "std", std_a, std_b, policy.abs_std)
    return check


def _containment_check(policy: ContainmentPolicy,
                       intervals: Dict[str, Interval],
                       reference: Dict[str, float],
                       slack: float) -> PairCheck:
    """Assert every reference value lands inside its certified interval
    (widened by ``slack``).  The recorded delta is the escape distance —
    0 for every contained net — so ``max_delta`` doubles as an audit of
    how close the references come to the certified edges."""
    check = PairCheck(pair=policy.pair, n_nets=len(reference),
                      n_comparisons=0,
                      max_delta={"probability": 0.0, "mean": 0.0,
                                 "std": 0.0})
    for net, value in reference.items():
        interval = intervals[net]
        escape = max(interval.lo - slack - value,
                     value - interval.hi - slack, 0.0)
        check.n_comparisons += 1
        check.max_delta["probability"] = max(
            check.max_delta["probability"], escape)
        if escape > 0.0:
            nearest = (interval.lo if value < interval.lo
                       else interval.hi)
            check.divergences.append(Divergence(
                pair=policy.pair, net=net, direction="value",
                metric="probability", value_a=value, value_b=nearest,
                delta=escape, tolerance=slack))
    return check


#: Node budget for the containment sweep's global BDD collapse; circuits
#: under the launch-point gate of ``bounds-vs-bdd/exact`` stay far below
#: it, and hitting it skips the exact check rather than failing the run.
_CONTAINMENT_BDD_NODES = 1 << 20


def _exact_signal_probabilities(
        netlist: Netlist, launch: Union[float, Mapping[str, float]],
        ) -> Optional[Dict[str, float]]:
    """Exact per-net SP via one shared global BDD, or None if the node
    budget is exhausted."""
    manager = BDDManager(max_nodes=_CONTAINMENT_BDD_NODES)
    funcs: Dict[str, int] = {}
    try:
        for net in netlist.launch_points:
            funcs[net] = manager.var(net)
        for gate in netlist.combinational_gates:
            funcs[gate.name] = manager.apply_gate(
                gate.gate_type, [funcs[src] for src in gate.inputs])
    except MemoryError:
        return None
    probs = {net: (launch if isinstance(launch, float) else launch[net])
             for net in netlist.launch_points}
    return {net: manager.signal_probability(f, probs)
            for net, f in funcs.items()}


def _move_schedule(netlist: Netlist) -> List[str]:
    """Deterministic optimizer-style move targets for the incremental
    check: gates at the 20/50/80% marks of the topological order, so the
    repaired cones span shallow, mid, and deep fan-out."""
    gates = [g.name for g in netlist.combinational_gates]
    if not gates:
        return []
    picks = [gates[(len(gates) * fraction) // 10]
             for fraction in (2, 5, 8)]
    return list(dict.fromkeys(picks))


def sweep_grid_for(netlist: Netlist) -> TimeGrid:
    """The conformance sweep's grid for a circuit: unit-delay-aligned pitch
    (:data:`GRID_BINS_PER_UNIT` bins per time unit) spanning the circuit's
    depth with :data:`GRID_MARGIN` of headroom on both sides."""
    depth = max(net_depths(netlist).values(), default=1)
    start = -GRID_MARGIN
    stop = depth + GRID_MARGIN
    n = GRID_BINS_PER_UNIT * int(round(stop - start)) + 1
    return TimeGrid(start, stop, n)


def verify_circuit(netlist: Netlist,
                   config: InputStats = CONFIG_I,
                   *,
                   trials: int = DEFAULT_TRIALS,
                   seed: int = 0,
                   delay_model: DelayModel = UnitDelay(),
                   kind: str = "bench",
                   preflight: bool = True,
                   mc_retry: Optional[RetryPolicy] = None
                   ) -> CircuitConformance:
    """Run every engine on one circuit and check every pair's policy.

    Each SPSTA run gets a fresh algebra (its own mass ledger and caches)
    and its own :class:`SpstaProfile`; the two Monte Carlo runs replay the
    same root seed, which makes ``wave-vs-stream/mc`` a bit-exactness
    check, not a statistical one.

    Unless ``preflight=False``, the circuit first passes through the
    static linter (``repro.lint``) configured exactly like the sweep —
    same trials, delay model, and grid — so a pathological circuit (wide
    parity gate, undersized grid, structural damage) fails fast with
    diagnostics instead of a mid-propagation traceback; error-level
    findings raise :class:`~repro.lint.engine.LintFailure`.

    ``mc_retry`` hardens the streaming oracle run against transient
    shard failures (retries re-run the identical seed stream, so a
    retried run stays bit-exact — see docs/robustness.md).
    """
    t0 = time.perf_counter()
    grid = sweep_grid_for(netlist)
    if preflight:
        lint_preflight(netlist, LintConfig(
            input_stats=config, delay_model=delay_model, grid=grid,
            trials=trials))
    depth = max(net_depths(netlist).values(), default=1)

    algebra_factories = {"moment": MomentAlgebra,
                         "mixture": MixtureAlgebra,
                         "grid": lambda: GridAlgebra(grid)}
    runs: Dict[Tuple[str, str], object] = {}
    profiles: Dict[Tuple[str, str], SpstaProfile] = {}
    for algebra_name, factory in algebra_factories.items():
        for engine in ("naive", "fast"):
            profile = SpstaProfile()
            runs[(algebra_name, engine)] = run_spsta(
                netlist, config, delay_model, factory(),
                engine=engine, profile=profile)
            profiles[(algebra_name, engine)] = profile

    # The scenario-batched backend: the nominal scenario reruns the
    # direct engines' exact workload, and a derated companion scenario
    # rides along so the stacked executor is exercised with real
    # cross-scenario batching (b=2), not just the degenerate case.
    scenarios = (Scenario("nominal", config, delay_model),
                 Scenario("derate", config,
                          ScaledDelay(delay_model, Corner("derate", 1.1))))
    batched_runs: Dict[str, SpstaResult] = {}
    for algebra_name, factory in algebra_factories.items():
        profile = SpstaProfile()
        sweep = run_scenario_batch(netlist, scenarios, factory(),
                                   profile=profile)
        batched_runs[algebra_name] = sweep.result_for("nominal")
        profiles[(algebra_name, "batched")] = profile

    # The hierarchical scheduler, keep="all", so every interior net of
    # every region lands in the merged result and the hier-vs-flat
    # policies compare the complete net set, not just boundaries.
    hier_runs: Dict[str, SpstaResult] = {}
    for algebra_name, factory in algebra_factories.items():
        profile = SpstaProfile()
        spec = AlgebraSpec.from_algebra(factory())
        hier_runs[algebra_name] = run_hier(
            netlist, config, delay_model, spec,
            n_regions=HIER_SWEEP_REGIONS, keep="all",
            profile=profile).result
        profiles[(algebra_name, "hier")] = profile

    # The incremental SPSTA engine: replay an optimizer-style move
    # schedule (overrides spread across the topological order, plus one
    # revert) through the worklist repair, then rerun a fresh naive full
    # pass over the *same* effective delays.  The incremental-vs-full
    # policies are bit-exact for every algebra, which is what licenses
    # `optimize_spsta` to trust per-move cone repair.
    incremental_runs: Dict[str, Tuple[SpstaResult, SpstaResult]] = {}
    schedule = _move_schedule(netlist)
    for algebra_name, factory in algebra_factories.items():
        inc = IncrementalSpsta(netlist, config, delay_model, factory())
        for i, gate_name in enumerate(schedule):
            inc.set_delay(gate_name, Normal(1.2 + 0.05 * i, 0.03))
        if schedule:
            inc.clear_delay(schedule[0])
        full = run_spsta(netlist, config, inc.effective_delay_model(),
                         factory(), engine="naive")
        incremental_runs[algebra_name] = (inc.result(), full)

    mc_wave = run_monte_carlo(netlist, config, trials, delay_model,
                              rng=np.random.default_rng(seed))
    mc_stream = run_monte_carlo(netlist, config, trials, delay_model,
                                rng=np.random.default_rng(seed),
                                mode="stream", shards=1, retry=mc_retry)

    all_nets = sorted(runs[("moment", "naive")].tops)
    endpoints = list(dict.fromkeys(netlist.endpoints))
    mc_nets = sorted(mc_wave.nets)

    sides: Dict[str, Tuple[_StatsFn, Sequence[str]]] = {
        "moment": (_spsta_stats(runs[("moment", "fast")]), all_nets),
        "mixture": (_spsta_stats(runs[("mixture", "fast")]), all_nets),
        "grid": (_spsta_stats(runs[("grid", "fast")]), all_nets),
        "mc": (_mc_stats(mc_wave), mc_nets),
    }

    checks: List[PairCheck] = []
    for algebra_name in ("moment", "mixture", "grid"):
        policy = POLICIES[f"fast-vs-naive/{algebra_name}"]
        checks.append(_compare_pair(
            policy, all_nets,
            _spsta_stats(runs[(algebra_name, "fast")]),
            _spsta_stats(runs[(algebra_name, "naive")])))
    for algebra_name in ("moment", "mixture", "grid"):
        policy = POLICIES[f"batched-vs-fast/{algebra_name}"]
        checks.append(_compare_pair(
            policy, all_nets,
            _spsta_stats(batched_runs[algebra_name]),
            _spsta_stats(runs[(algebra_name, "fast")])))
    for algebra_name in ("moment", "mixture", "grid"):
        policy = POLICIES[f"hier-vs-flat/{algebra_name}"]
        checks.append(_compare_pair(
            policy, all_nets,
            _spsta_stats(hier_runs[algebra_name]),
            _spsta_stats(runs[(algebra_name, "fast")])))
    for algebra_name in ("moment", "mixture", "grid"):
        policy = POLICIES[f"incremental-vs-full/{algebra_name}"]
        inc_result, full_result = incremental_runs[algebra_name]
        checks.append(_compare_pair(
            policy, all_nets,
            _spsta_stats(inc_result), _spsta_stats(full_result)))
    checks.append(_compare_pair(
        POLICIES["wave-vs-stream/mc"], mc_nets,
        _mc_stats(mc_wave), _mc_stats(mc_stream)))
    checks.append(_compare_pair(
        POLICIES["batched-vs-mc"], endpoints,
        _spsta_stats(batched_runs["grid"]), _mc_stats(mc_wave)))
    for pair in ("moment-vs-grid", "mixture-vs-grid",
                 "moment-vs-mc", "mixture-vs-mc", "grid-vs-mc"):
        policy = POLICIES[pair]
        name_a, name_b = pair.split("-vs-")
        nets = endpoints if policy.endpoints_only else all_nets
        checks.append(_compare_pair(policy, nets,
                                    sides[name_a][0], sides[name_b][0]))

    # Containment: the certified SP intervals of the bounds engine must
    # contain an exact-BDD reference (slack 0, size-gated) and a sampled
    # reference (Hoeffding slack) — soundness, not tolerance, so any
    # escape fails the sweep.
    launch_sp = config.signal_probability
    certified = compute_bounds(netlist, stats=config)
    bdd_policy = CONTAINMENT_POLICIES["bounds-vs-bdd/exact"]
    if (bdd_policy.max_launch_points is None
            or len(netlist.launch_points) <= bdd_policy.max_launch_points):
        exact = _exact_signal_probabilities(netlist, launch_sp)
        if exact is not None:
            checks.append(_containment_check(
                bdd_policy, certified.sp, exact, bdd_policy.slack))
    mc_policy = CONTAINMENT_POLICIES["bounds-vs-mc/hoeffding"]
    assert mc_policy.delta is not None
    sampled = sample_signal_probabilities(
        netlist, launch=launch_sp, trials=trials,
        rng=np.random.default_rng(seed))
    checks.append(_containment_check(
        mc_policy, certified.sp, sampled,
        hoeffding_slack(trials, mc_policy.delta)))

    guardrail = {"mass_checks": 0.0, "clipped_mass": 0.0,
                 "clip_events": 0.0, "max_clip_fraction": 0.0,
                 "finite_checks": 0.0}
    for engine in ("naive", "fast", "batched", "hier"):
        profile = profiles[("grid", engine)]
        guardrail["mass_checks"] += profile.mass_checks
        guardrail["clipped_mass"] += profile.clipped_mass
        guardrail["clip_events"] += profile.clip_events
        guardrail["finite_checks"] += profile.finite_checks
        guardrail["max_clip_fraction"] = max(
            guardrail["max_clip_fraction"], profile.max_clip_fraction)

    guardrail_failures: List[str] = []
    if guardrail["mass_checks"] == 0:
        guardrail_failures.append(
            "mass-conservation accounting never ran on the grid engines")
    if guardrail["max_clip_fraction"] > GUARDRAIL_MAX_CLIP_FRACTION:
        guardrail_failures.append(
            f"worst clipped-mass fraction "
            f"{guardrail['max_clip_fraction']:.3g} exceeds "
            f"{GUARDRAIL_MAX_CLIP_FRACTION:.3g} — the sweep grid does not "
            f"cover the circuit's arrival window")

    return CircuitConformance(
        circuit=netlist.name, kind=kind,
        n_gates=len(netlist.combinational_gates), depth=depth,
        seconds=time.perf_counter() - t0,
        checks=checks, guardrail=guardrail,
        guardrail_failures=guardrail_failures)


#: Fuzz shapes cycle through this family: wide and shallow, many launch
#: points per gate.  Narrow/deep random circuits reconverge so heavily
#: that the paper's independence approximation (Sec. 4) dominates the
#: comparison and the Monte Carlo oracle stops measuring implementation
#: correctness — on such circuits SPSTA can report p > 0 for transitions
#: that are structurally impossible.  The wide family keeps the
#: approximation's bias within the statistical pairs' tolerance, like the
#: ISCAS benches the paper evaluates on.
_FUZZ_SHAPES: Tuple[Tuple[int, int, int, int, int, float], ...] = (
    # (n_inputs, n_outputs, n_dffs, n_gates, depth, xor_fraction)
    (12, 4, 6, 30, 4, 0.0),
    (14, 4, 8, 36, 5, 0.0),
    (12, 4, 6, 32, 4, 0.15),   # exercises the parity (Eq. 12) path
)


def fuzz_profiles(seed: int, count: int) -> List[GeneratorProfile]:
    """Deterministic fuzzing schedule: ``count`` circuit profiles drawn
    from :data:`_FUZZ_SHAPES` with per-profile seeds derived from the
    root seed."""
    profiles = []
    for i in range(count):
        n_inputs, n_outputs, n_dffs, n_gates, depth, xor = \
            _FUZZ_SHAPES[i % len(_FUZZ_SHAPES)]
        profiles.append(GeneratorProfile(
            name=f"fuzz-{seed}-{i}",
            n_inputs=n_inputs, n_outputs=n_outputs, n_dffs=n_dffs,
            n_gates=n_gates, depth=depth,
            seed=seed * 7919 + i, xor_fraction=xor))
    return profiles


#: Retry policy for the conformance sweep's streaming-MC oracle runs: a
#: long sweep should not be lost to one transient shard fault, and a
#: retried shard replays the identical seed stream, so the sweep's
#: bit-exactness checks are unaffected.
CONFORMANCE_RETRY = RetryPolicy(max_attempts=2, backoff_base=0.1)


def run_conformance(seed: int = 0,
                    n_random: int = 3,
                    benches: Sequence[str] = DEFAULT_BENCHES,
                    trials: int = DEFAULT_TRIALS,
                    config: InputStats = CONFIG_I,
                    mc_retry: Optional[RetryPolicy] = CONFORMANCE_RETRY
                    ) -> ConformanceReport:
    """The full sweep: fuzzed random circuits plus ISCAS benches.

    Random circuits run under :class:`NormalDelay` (exercises the grid
    engines' Gaussian-kernel FFT convolution path); benches run under
    :class:`UnitDelay` (exercises the pure-shift path and matches the
    paper's Table 2 setup).
    """
    circuits: List[CircuitConformance] = []
    for i, profile in enumerate(fuzz_profiles(seed, n_random)):
        circuits.append(verify_circuit(
            generate_circuit(profile), config, trials=trials,
            seed=seed * 10_007 + i, delay_model=NormalDelay(1.0, 0.1),
            kind="random", mc_retry=mc_retry))
    for i, name in enumerate(benches):
        circuits.append(verify_circuit(
            benchmark_circuit(name), config, trials=trials,
            seed=seed * 10_007 + n_random + i, delay_model=UnitDelay(),
            kind="bench", mc_retry=mc_retry))
    return ConformanceReport(seed=seed, trials=trials, circuits=circuits)
