"""Per-engine-pair tolerance policies for the conformance sweep.

Every policy documents *why* two engines are allowed to differ and by how
much; the harness fails a run the moment any compared quantity exceeds its
policy.  Three regimes:

- **replication** pairs (fast vs naive on the same algebra) share the
  mathematics and differ only in evaluation order, so their tolerances are
  rounding-level: bit-exact for the closed-form algebras, a few ULPs of
  batched-SIMD division noise for the grid algebra (see
  ``_run_controlling_jobs``).
- **abstraction** pairs (moment / mixture vs the numerically exact grid)
  differ by Clark's moment-matching error on MAX/MIN, which grows with
  depth; tolerances follow the envelope measured across the evaluation
  suite (``tests/test_spsta_algebras.py`` pins the same numbers at test
  scale) with headroom.
- **statistical** pairs (anything vs the Monte Carlo oracle) carry both
  the abstraction error and the sampling error of a finite-trial
  simulation, so they compare only transitions with enough occurrences and
  use tolerances sized for the default trial budget *plus* the independence
  approximation's error on reconvergent circuits (paper Sec. 4).

A fourth regime covers the interval bounds engine (``repro.bounds``):
**containment** policies (:data:`CONTAINMENT_POLICIES`) do not compare
two point estimates — they assert that a certified interval *contains*
a reference value.  A sound bound admits no tolerance: the exact-BDD
reference must land inside at slack 0, and the sampling reference only
gets the Hoeffding half-width its finite trial count mathematically
requires.  Any violation is a soundness bug, never "modelling error".

Tolerances are calibrated on the sweep's own evaluation set (seeds 0-2,
s27/s208); they are conformance bounds for that set, not universal error
guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

#: A run fails outright if any grid engine clips more than this fraction of
#: a density's mass off the grid edge (tracks
#: :data:`repro.stats.grid.MASS_WARN_FRACTION`): a conforming sweep must use
#: a grid that actually covers the circuit's arrival window.
GUARDRAIL_MAX_CLIP_FRACTION = 1e-6


@dataclass(frozen=True)
class TolerancePolicy:
    """Allowed per-net disagreement between one engine pair.

    ``abs_probability`` bounds occurrence-probability deltas,
    ``abs_mean``/``abs_std`` the conditional moment deltas (compared only
    when both engines agree the transition occurs).  ``min_occurrences``
    (statistical pairs) skips moment comparison for transitions the oracle
    saw fewer times than this; ``endpoints_only`` restricts the comparison
    to the netlist's endpoints (abstraction/statistical pairs, where
    interior-net noise adds nothing the endpoint check does not cover).
    """

    pair: str
    description: str
    abs_probability: float
    abs_mean: float
    abs_std: float
    min_occurrences: int = 0
    endpoints_only: bool = False


POLICIES: Dict[str, TolerancePolicy] = {
    policy.pair: policy for policy in (
        TolerancePolicy(
            pair="fast-vs-naive/moment",
            description="Same Clark formulas, cached weight tables fold in "
                        "the naive multiplication order: bit-exact.",
            abs_probability=0.0, abs_mean=0.0, abs_std=0.0),
        TolerancePolicy(
            pair="fast-vs-naive/mixture",
            description="Subset-lattice DP reproduces the naive "
                        "left-to-right MAX folds exactly: bit-exact.",
            abs_probability=0.0, abs_mean=0.0, abs_std=0.0),
        TolerancePolicy(
            pair="fast-vs-naive/grid",
            description="Batched SIMD division rounds a few ULPs "
                        "differently per batch shape; moments agree to "
                        "~1e-9 on a 2k grid.",
            abs_probability=1e-9, abs_mean=1e-6, abs_std=1e-6),
        TolerancePolicy(
            pair="wave-vs-stream/mc",
            description="Single-shard streaming replays the wave engine's "
                        "draws and folds them into accumulators: bit-exact "
                        "up to float summation order.",
            abs_probability=1e-12, abs_mean=1e-9, abs_std=1e-9),
        TolerancePolicy(
            pair="moment-vs-grid",
            description="Clark moment matching vs the numerically exact "
                        "discretized MAX: weights agree to rounding, "
                        "moments drift with depth (Fig. 4 skew).",
            abs_probability=1e-6, abs_mean=0.25, abs_std=0.3,
            endpoints_only=True),
        TolerancePolicy(
            pair="mixture-vs-grid",
            description="Capped Gaussian mixtures track the exact MAX "
                        "shape more closely than single Gaussians.",
            abs_probability=1e-6, abs_mean=0.2, abs_std=0.25,
            endpoints_only=True),
        TolerancePolicy(
            pair="moment-vs-mc",
            description="Abstraction error plus sampling noise plus the "
                        "independence approximation on reconvergent "
                        "fanout (paper Sec. 4).  The last term dominates: "
                        "it alone produces deltas up to ~0.13 / 0.45 on "
                        "the evaluation set, so these bounds are sized to "
                        "catch gross implementation divergence (a "
                        "mis-wired gate or lost delay shifts results by "
                        "O(1)) while passing correct code; tight "
                        "correctness checking is the replication and "
                        "abstraction pairs' job.",
            abs_probability=0.16, abs_mean=0.55, abs_std=0.55,
            min_occurrences=200, endpoints_only=True),
        TolerancePolicy(
            pair="mixture-vs-mc",
            description="As moment-vs-mc, with the richer mixture shape.",
            abs_probability=0.16, abs_mean=0.55, abs_std=0.55,
            min_occurrences=200, endpoints_only=True),
        TolerancePolicy(
            pair="grid-vs-mc",
            description="Numerically exact propagation vs the sampling "
                        "oracle: residual is sampling noise plus the "
                        "independence approximation.",
            abs_probability=0.16, abs_mean=0.55, abs_std=0.55,
            min_occurrences=200, endpoints_only=True),
        TolerancePolicy(
            pair="batched-vs-fast/moment",
            description="The scenario-batched backend replays the fast "
                        "engine's closed-form fold sequence over shared "
                        "group state: bit-exact.",
            abs_probability=0.0, abs_mean=0.0, abs_std=0.0),
        TolerancePolicy(
            pair="batched-vs-fast/mixture",
            description="As batched-vs-fast/moment — the generic walk is "
                        "shared, only setup is amortized: bit-exact.",
            abs_probability=0.0, abs_mean=0.0, abs_std=0.0),
        TolerancePolicy(
            pair="batched-vs-fast/grid",
            description="Cross-scenario stacking regroups the grid "
                        "engine's batched divisions and segment sums; "
                        "weights agree to 1e-12, moments to 1e-9 "
                        "(tests/test_scenario_batch.py pins the same "
                        "bounds).",
            abs_probability=1e-12, abs_mean=1e-9, abs_std=1e-9),
        TolerancePolicy(
            pair="batched-vs-mc",
            description="The batched grid backend against the sampling "
                        "oracle: same regime as grid-vs-mc (sampling "
                        "noise plus the independence approximation).",
            abs_probability=0.16, abs_mean=0.55, abs_std=0.55,
            min_occurrences=200, endpoints_only=True),
        TolerancePolicy(
            pair="hier-vs-flat/moment",
            description="Each region rerun is the unmodified fast engine "
                        "seeded with exact upstream boundary TOPs, and "
                        "DFF cuts add no cross-region timing terms: "
                        "bit-exact.",
            abs_probability=0.0, abs_mean=0.0, abs_std=0.0),
        TolerancePolicy(
            pair="hier-vs-flat/mixture",
            description="As hier-vs-flat/moment — region boundaries only "
                        "reorder the per-gate fold boundaries the fast "
                        "engine already uses: bit-exact.",
            abs_probability=0.0, abs_mean=0.0, abs_std=0.0),
        TolerancePolicy(
            pair="incremental-vs-full/moment",
            description="Worklist cone repair calls the naive engine's "
                        "per-gate kernel on identical inputs in "
                        "topological order, and exact-equality early "
                        "termination cannot hide a change: bit-exact "
                        "after every optimizer-style move.",
            abs_probability=0.0, abs_mean=0.0, abs_std=0.0),
        TolerancePolicy(
            pair="incremental-vs-full/mixture",
            description="As incremental-vs-full/moment — the mixture "
                        "component tuples compare exactly, so stopping "
                        "at an unchanged gate is provably safe: "
                        "bit-exact.",
            abs_probability=0.0, abs_mean=0.0, abs_std=0.0),
        TolerancePolicy(
            pair="incremental-vs-full/grid",
            description="Same per-gate kernel and evaluation order; the "
                        "kernel cache memoizes values, never changes "
                        "them, so the grid algebra repairs bit-exactly "
                        "too (measured deviation on the bundled "
                        "benches: 0.0).",
            abs_probability=0.0, abs_mean=0.0, abs_std=0.0),
        TolerancePolicy(
            pair="hier-vs-flat/grid",
            description="Region boundaries regroup the grid engine's "
                        "level batches exactly like the scenario-batched "
                        "stacking; same bounds as batched-vs-fast/grid "
                        "(measured deviation on the bundled benches: "
                        "0.0).",
            abs_probability=1e-12, abs_mean=1e-9, abs_std=1e-9),
    )
}


@dataclass(frozen=True)
class ContainmentPolicy:
    """One containment check: a certified interval must contain a
    reference value.

    ``slack`` widens the interval on both sides before the check; it is
    0 when the reference is exact and a Hoeffding half-width (computed
    from the trial budget at confidence ``1 - delta``) when the
    reference is sampled.  ``max_launch_points`` gates the exact-BDD
    reference to circuits whose global BDD is guaranteed tractable;
    wider circuits simply skip that policy (the sampled one still
    runs).
    """

    pair: str
    description: str
    slack: float = 0.0
    delta: Optional[float] = None
    max_launch_points: Optional[int] = None


#: Hoeffding failure probability per net for the sampled reference: at
#: 20k trials the half-width is ~0.0231, and a whole sweep's worth of
#: nets has under 1e-4 odds of a single spurious failure.
CONTAINMENT_DELTA = 1e-9

CONTAINMENT_POLICIES: Dict[str, ContainmentPolicy] = {
    policy.pair: policy for policy in (
        ContainmentPolicy(
            pair="bounds-vs-bdd/exact",
            description="The certified SP interval must contain the "
                        "exact signal probability from a global BDD "
                        "collapse.  Soundness admits no tolerance: "
                        "slack 0.  Gated to circuits whose launch "
                        "support keeps the global BDD tractable.",
            slack=0.0, max_launch_points=40),
        ContainmentPolicy(
            pair="bounds-vs-mc/hoeffding",
            description="The certified SP interval, widened by the "
                        "two-sided Hoeffding half-width of the trial "
                        "budget, must contain the sampled per-net "
                        "one-frequency.  Runs on every circuit "
                        "regardless of width.",
            delta=CONTAINMENT_DELTA),
    )
}
