"""Min/max-separated block-based SSTA — the paper's comparison baseline.

This is the SSTA variant the paper implements (Sec. 4): rising and falling
signal arrival times are tracked separately per net, always assumed to
occur, and combined per gate with either Clark's MIN or MAX depending on the
gate's logic and the transition direction:

- AND-core gates: output rise = MAX of input rises, output fall = MIN of
  input falls (a rising AND output waits for its last rising input; a
  falling one follows its first falling input);
- OR-core gates: the mirror image (rise = MIN, fall = MAX);
- inverting gates swap the output directions;
- parity (XOR) gates have no controlling value: any input transition can
  move the output either way, so both output directions take the MAX over
  all input arrivals of both directions (the worst-case reading of
  "based on the logic of the gate and the input signal transition
  directions"; STA tools make the same pessimistic choice).

Input statistics are deliberately ignored — that is the point the paper
criticizes, and the behaviour our experiments must reproduce (SSTA columns
of Table 2 are identical between configurations I and II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Union

from repro.core.delay import DelayModel, UnitDelay
from repro.logic.gates import GateType, gate_spec
from repro.netlist.core import Gate, Netlist
from repro.stats.clark import clark_max_many, clark_min_many
from repro.stats.normal import Normal


@dataclass(frozen=True)
class ArrivalPair:
    """Rising and falling arrival-time distributions of one net."""

    rise: Normal
    fall: Normal

    def swapped(self) -> "ArrivalPair":
        return ArrivalPair(self.fall, self.rise)


@dataclass(frozen=True)
class SstaResult:
    """Per-net rise/fall arrival distributions."""

    netlist_name: str
    arrivals: Mapping[str, ArrivalPair]

    def endpoint(self, net: str) -> ArrivalPair:
        return self.arrivals[net]


def _gate_output(gate: Gate, operands: Sequence[ArrivalPair],
                 delay: Normal) -> ArrivalPair:
    spec = gate_spec(gate.gate_type)
    if gate.gate_type is GateType.BUFF:
        core = operands[0]
    elif gate.gate_type is GateType.NOT:
        core = operands[0].swapped()
    elif spec.is_parity:
        worst = clark_max_many(
            [p.rise for p in operands] + [p.fall for p in operands])
        core = ArrivalPair(worst, worst)
    elif spec.controlling_value == 0:  # AND core
        core = ArrivalPair(clark_max_many(p.rise for p in operands),
                           clark_min_many(p.fall for p in operands))
        if spec.inverting:
            core = core.swapped()
    else:  # OR core
        core = ArrivalPair(clark_min_many(p.rise for p in operands),
                           clark_max_many(p.fall for p in operands))
        if spec.inverting:
            core = core.swapped()
    return ArrivalPair(core.rise + delay, core.fall + delay)


def run_ssta(netlist: Netlist, delay_model: DelayModel = UnitDelay(),
             launch: Union[ArrivalPair, Mapping[str, ArrivalPair], None] = None
             ) -> SstaResult:
    """Propagate rise/fall arrival distributions through the netlist.

    ``launch`` defaults to the paper's setup: N(0, 1) for both directions at
    every launch point.  Pass a single :class:`ArrivalPair` for all launch
    points or a per-net mapping.
    """
    if launch is None:
        launch = ArrivalPair(Normal(0.0, 1.0), Normal(0.0, 1.0))
    arrivals: Dict[str, ArrivalPair] = {}
    for net in netlist.launch_points:
        arrivals[net] = (launch if isinstance(launch, ArrivalPair)
                         else launch[net])
    for gate in netlist.combinational_gates:
        operands = [arrivals[src] for src in gate.inputs]
        delay = delay_model.delay(gate)
        arrivals[gate.name] = _gate_output(gate, operands, delay)
    return SstaResult(netlist.name, arrivals)
