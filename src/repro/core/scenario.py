"""Compiled scenario-batched SPSTA backend.

The fast engine (:mod:`repro.core.spsta_fast`) batches gates *within* one
analysis; every multi-corner flow in the repo — ``run_corners``, the
Table 3 config sweep, derate studies — still loops whole analyses, paying
the full per-scenario Python walk, weight-table build, launch, and
small-batch FFT dispatch N times.  This module compiles a netlist ONCE
into a flat tensor program and then executes N scenarios (PVT/derate
corners, input-statistics sweeps, delay-model perturbations) as one
vectorized pass over a stacked ``(scenario, net, bin)`` array.

Compile / execute model
-----------------------

:func:`compile_netlist` lowers the netlist to a :class:`CompiledNetlist`:
per-level gate records tagged with a kernel id (``KIND_COPY`` for
BUFF/NOT, ``KIND_PARITY`` for XOR/XNOR, ``KIND_SUBSET`` for AND/OR-core
gates), the per-level net gather order, and a last-use table for memory
trimming.  Parity fan-in is validated once at compile time.

:func:`run_scenario_batch` groups scenarios by input statistics — Eq. 11
subset weights, occurrence patterns and four-value probabilities depend
only on the statistics, never on delays — and executes each group over
the compiled program:

- **launch / probabilities once per group** — ``launch_tops`` and the
  four-value probability walk run once, not once per scenario;
- **stacked per-level prep** — every referenced conditional density of
  every scenario normalizes and integrates in one 2-D pass (the batched
  analogue of ``_prepare_nets``, with per-net ``(scenario, bin)``
  blocks);
- **cross-scenario subset DP** — AND/OR-core directions become
  ``_ControllingJob`` rows whose subset-lattice DP batches across gates
  AND scenarios in the existing 3-D kernels (packed subset-weight tables
  are built once per gate direction and shared by every scenario in the
  group via :class:`~repro.core.spsta_fast.WeightTableCache`);
- **batched convolve + mix** — all rows of a level, across all
  scenarios, go through one kernel-grouped FFT batch and one run-length
  segment mix (optionally jitted, see below).

Closed-form algebras (moments, mixtures) cannot reorder their scalar
folds without losing the repo's bit-exactness contract, so they run the
per-scenario generic walk with shared launch/probability/weight-table
state — identical results to looping ``run_spsta(engine="fast")``, minus
the redundant per-scenario setup.

Feature flag
------------

``jit="auto"|"on"|"off"`` (or the ``SPSTA_SCENARIO_JIT`` environment
variable) selects an optional numba-jitted segment-sum kernel for the
mix phase; when numba is absent the flag degrades cleanly to the NumPy
path (:mod:`repro.core.scenario_jit`).

Memory scaling
--------------

A grid sweep holds one ``(n_scenarios, bins)`` block per occurring net
direction: ``keep="all"`` retains every net (full differential
comparisons), ``keep="endpoints"`` frees interior blocks after their
last fan-out level so peak memory follows the live frontier instead of
the whole netlist.  ``repro.lint`` rule SP204 estimates the
``n_scenarios × bins × nets`` footprint up front.

Equivalence with the looped fast engine is pinned by
``tests/test_scenario_batch.py`` and the conformance harness
(``batched-vs-fast`` / ``batched-vs-mc`` policies): bit-exact for the
closed-form algebras, within 1e-12 weights / 1e-9 moments for grids.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.corners import STANDARD_CORNERS, Corner, ScaledDelay
from repro.core.delay import DelayModel, UnitDelay
from repro.core.inputs import CONFIG_I, InputStats, Prob4
from repro.core.probability import gate_prob4
from repro.core.profiling import SpstaProfile
from repro.core.scenario_jit import SegmentSum, resolve_segment_sum
from repro.core.spsta import (
    MAX_PARITY_FANIN,
    GridAlgebra,
    MomentAlgebra,
    NetTops,
    SpstaResult,
    TopAlgebra,
    _delay_for,
    _harvest_kernel_counters,
    check_parity_fanin,
    launch_tops,
    run_spsta,
    validate_parity_fanins,
)
from repro.core.spsta_fast import (
    MAX_DP_ROWS,
    WeightTableCache,
    _ControllingJob,
    _convolve_matrix,
    _gate_tops_generic,
    _GridContext,
    _mix_rows,
    _run_controlling_jobs,
    _subset_dp,
    _wrap_top,
    subset_lattice,
)
from repro.logic.gates import GateSpec, GateType, gate_spec
from repro.netlist.core import Gate, Netlist
from repro.stats.grid import cdf_rows, trapezoid_rows
from repro.stats.normal import Normal

__all__ = [
    "Scenario",
    "SweepResult",
    "CompiledNetlist",
    "compile_netlist",
    "derate_corners",
    "scenarios_from_corners",
    "scenarios_from_stats",
    "run_scenario_batch",
    "run_scenarios_looped",
]


# ---------------------------------------------------------------------------
# Scenario description and builders.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Scenario:
    """One operating point of a sweep: input statistics + delay model.

    Scenarios sharing equal ``stats`` batch into one stacked pass (their
    subset weights and occurrence patterns coincide); the delay model is
    free to vary per scenario — corner scaling, MIS models, per-gate
    perturbations.
    """

    name: str
    stats: Union[InputStats, Mapping[str, InputStats]]
    delay_model: DelayModel = UnitDelay()


def derate_corners(start: float = 0.8, stop: float = 1.25, count: int = 8,
                   sigma_scale: float = 1.0,
                   prefix: str = "derate") -> Tuple[Corner, ...]:
    """A linear grid of ``count`` delay-scale corners over [start, stop]."""
    if count < 1:
        raise ValueError("count must be >= 1")
    scales = np.linspace(start, stop, count)
    return tuple(Corner(f"{prefix}-{i:03d}", float(scale), sigma_scale)
                 for i, scale in enumerate(scales))


def scenarios_from_corners(
        corners: Sequence[Corner] = STANDARD_CORNERS,
        base_model: DelayModel = UnitDelay(),
        stats: Union[InputStats, Mapping[str, InputStats]] = CONFIG_I,
) -> Tuple[Scenario, ...]:
    """One scenario per corner, wrapping ``base_model`` in the corner's
    :class:`~repro.core.corners.ScaledDelay`."""
    return tuple(Scenario(c.name, stats, ScaledDelay(base_model, c))
                 for c in corners)


def scenarios_from_stats(
        stats_by_name: Mapping[str, Union[InputStats,
                                          Mapping[str, InputStats]]],
        delay_model: DelayModel = UnitDelay()) -> Tuple[Scenario, ...]:
    """One scenario per named input-statistics configuration (the
    Table 3 CONFIG I / CONFIG II style sweep)."""
    return tuple(Scenario(name, stats, delay_model)
                 for name, stats in stats_by_name.items())


# ---------------------------------------------------------------------------
# Netlist compilation: the scenario-independent tensor program.
# ---------------------------------------------------------------------------

#: Gate-kernel ids: single-input copy (BUFF/NOT), parity joint
#: enumeration (XOR/XNOR), Eq. 11 subset enumeration (AND/OR cores).
KIND_COPY = 0
KIND_PARITY = 1
KIND_SUBSET = 2


@dataclass(frozen=True)
class GateRecord:
    """One gate lowered to its execution kernel."""

    gate: Gate
    spec: GateSpec
    kind: int
    inverting: bool
    is_and_core: bool


@dataclass(frozen=True)
class CompiledNetlist:
    """Scenario-independent program for one netlist.

    ``levels`` holds the kernel-tagged gate records in topological level
    order; ``level_nets`` the nets each level reads, in first-reference
    order (the stacked-prep gather order); ``last_use`` maps each net to
    the last level index that reads it (``keep="endpoints"`` frees a
    net's scenario block right after that level).
    """

    netlist: Netlist
    parity_cap: int
    levels: Tuple[Tuple[GateRecord, ...], ...]
    level_nets: Tuple[Tuple[str, ...], ...]
    last_use: Mapping[str, int]

    @property
    def n_gates(self) -> int:
        return sum(len(level) for level in self.levels)


def compile_netlist(netlist: Netlist, *,
                    max_parity_fanin: Optional[int] = None
                    ) -> CompiledNetlist:
    """Lower a netlist to its :class:`CompiledNetlist` program.

    Pays levelization, kernel classification, and parity-fan-in
    validation once; every :func:`run_scenario_batch` call over any
    number of scenarios reuses the result.
    """
    parity_cap = (MAX_PARITY_FANIN if max_parity_fanin is None
                  else max_parity_fanin)
    validate_parity_fanins(netlist, parity_cap)
    levels: List[Tuple[GateRecord, ...]] = []
    level_nets: List[Tuple[str, ...]] = []
    last_use: Dict[str, int] = {}
    for li, level in enumerate(netlist.levels):
        records = []
        seen: List[str] = []
        seen_set = set()
        for gate in level:
            spec = gate_spec(gate.gate_type)
            if gate.gate_type in (GateType.BUFF, GateType.NOT):
                kind = KIND_COPY
            elif spec.is_parity:
                kind = KIND_PARITY
            else:
                kind = KIND_SUBSET
            records.append(GateRecord(gate, spec, kind, spec.inverting,
                                      spec.controlling_value == 0))
            for src in gate.inputs:
                last_use[src] = li
                if src not in seen_set:
                    seen_set.add(src)
                    seen.append(src)
        levels.append(tuple(records))
        level_nets.append(tuple(seen))
    return CompiledNetlist(netlist, parity_cap, tuple(levels),
                           tuple(level_nets), last_use)


# ---------------------------------------------------------------------------
# Sweep driver.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepResult:
    """All per-scenario results of one batched sweep.

    ``results[i]`` corresponds to ``scenarios[i]``; every result shares
    the sweep's algebra and :class:`~repro.core.profiling.SpstaProfile`.
    """

    netlist_name: str
    scenarios: Tuple[Scenario, ...]
    results: Tuple[SpstaResult, ...]
    profile: SpstaProfile
    compile_seconds: float
    execute_seconds: float

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> SpstaResult:
        return self.results[index]

    def result_for(self, name: str) -> SpstaResult:
        """The result of the scenario named ``name``."""
        for scenario, result in zip(self.scenarios, self.results):
            if scenario.name == name:
                return result
        raise KeyError(name)


def run_scenario_batch(netlist: Netlist,
                       scenarios: Sequence[Scenario],
                       algebra: Optional[TopAlgebra] = None,
                       *,
                       compiled: Optional[CompiledNetlist] = None,
                       profile: Optional[SpstaProfile] = None,
                       max_parity_fanin: Optional[int] = None,
                       keep: str = "all",
                       jit: Optional[str] = None) -> SweepResult:
    """Execute N scenarios over one netlist as a batched sweep.

    Results match looping ``run_spsta(..., engine="fast")`` per
    scenario: bit-exactly for the closed-form algebras, within grid
    rounding (1e-12 weights / 1e-9 moments) for :class:`GridAlgebra` —
    see ``tests/test_scenario_batch.py``.

    ``compiled`` reuses a :func:`compile_netlist` program across sweeps;
    ``keep`` is ``"all"`` (every net's TOPs in every result) or
    ``"endpoints"`` (grid algebra: interior blocks are freed after their
    last use, results retain launch points and endpoints only);
    ``jit`` is the numba feature flag (see module docstring).
    """
    scenarios = tuple(scenarios)
    if not scenarios:
        raise ValueError("run_scenario_batch needs at least one scenario")
    if keep not in ("all", "endpoints"):
        raise ValueError(f"keep must be 'all' or 'endpoints', got {keep!r}")
    if algebra is None:
        algebra = MomentAlgebra()
    if profile is None:
        profile = SpstaProfile()
    profile.engine = "scenario"
    profile.algebra = type(algebra).__name__
    profile.circuit = netlist.name
    profile.scenarios = len(scenarios)
    segment_sum = resolve_segment_sum(jit)

    t0 = time.perf_counter()
    if compiled is None:
        with profile.phase("compile"):
            compiled = compile_netlist(netlist,
                                       max_parity_fanin=max_parity_fanin)
    else:
        if compiled.netlist is not netlist:
            raise ValueError(
                "compiled program belongs to a different netlist")
        if (max_parity_fanin is not None
                and max_parity_fanin != compiled.parity_cap):
            raise ValueError(
                "max_parity_fanin disagrees with the compiled program")
    compile_seconds = time.perf_counter() - t0
    profile.levels = len(compiled.levels)

    # Scenarios sharing input statistics share weights, occurrence
    # patterns and probabilities; group them to amortize that state.
    groups: List[Tuple[object, List[int]]] = []
    for idx, scenario in enumerate(scenarios):
        for stats, idxs in groups:
            if stats == scenario.stats:
                idxs.append(idx)
                break
        else:
            groups.append((scenario.stats, [idx]))

    wcache = WeightTableCache()
    results: List[Optional[SpstaResult]] = [None] * len(scenarios)
    t1 = time.perf_counter()
    for stats, idxs in groups:
        models = [scenarios[i].delay_model for i in idxs]
        if isinstance(algebra, GridAlgebra):
            group_out = _run_grid_group(compiled, stats, models, algebra,
                                        wcache, profile, keep, segment_sum)
        else:
            group_out = _run_generic_group(compiled, stats, models, algebra,
                                           wcache, profile)
        for i, (prob4, tops) in zip(idxs, group_out):
            results[i] = SpstaResult(netlist.name, algebra, prob4, tops,
                                     profile)
    execute_seconds = time.perf_counter() - t1

    profile.weight_table_hits = wcache.hits
    profile.weight_table_misses = wcache.misses
    _harvest_kernel_counters(algebra, profile)
    return SweepResult(netlist.name, scenarios, tuple(results), profile,
                       compile_seconds, execute_seconds)


def run_scenarios_looped(netlist: Netlist,
                         scenarios: Sequence[Scenario],
                         algebra_factory: Optional[
                             Callable[[], TopAlgebra]] = None,
                         *,
                         max_parity_fanin: Optional[int] = None
                         ) -> List[SpstaResult]:
    """Reference loop: one full ``run_spsta(engine="fast")`` per scenario.

    The pre-batching behaviour every sweep caller had; kept as the
    differential-test oracle and the benchmark baseline
    (``BENCH_scenario_sweep.json``).
    """
    if algebra_factory is None:
        algebra_factory = MomentAlgebra
    return [run_spsta(netlist, scenario.stats, scenario.delay_model,
                      algebra_factory(), engine="fast",
                      max_parity_fanin=max_parity_fanin)
            for scenario in scenarios]


# ---------------------------------------------------------------------------
# Closed-form algebras: per-scenario walk over shared group state.
# ---------------------------------------------------------------------------

_GroupOut = List[Tuple[Dict[str, Prob4], Dict[str, NetTops]]]


def _run_generic_group(compiled: CompiledNetlist, stats, models, algebra,
                       wcache: WeightTableCache,
                       profile: SpstaProfile) -> _GroupOut:
    """Moment/mixture scenarios of one stats group.

    Launch TOPs, four-value probabilities, and Eq. 11 weight tables are
    computed once and shared; each scenario then replays the exact fold
    sequence of the looped fast engine, so results stay bit-identical to
    ``run_spsta(engine="fast")`` (cached weight tables serve exact-match
    buckets regardless of which scenario populated them).
    """
    netlist = compiled.netlist
    prob4: Dict[str, Prob4] = {}
    launch: Dict[str, NetTops] = {}
    with profile.phase("launch"):
        launch_tops(netlist, stats, algebra, prob4, launch)
    for level in compiled.levels:
        for record in level:
            gate = record.gate
            prob4[gate.name] = gate_prob4(
                gate.gate_type, [prob4[src] for src in gate.inputs])
    out: _GroupOut = []
    with profile.phase("propagate"):
        for model in models:
            tops: Dict[str, NetTops] = dict(launch)
            for level in compiled.levels:
                for record in level:
                    gate = record.gate
                    in_probs = [prob4[src] for src in gate.inputs]
                    in_tops = [tops[src] for src in gate.inputs]
                    tops[gate.name] = _gate_tops_generic(
                        gate, in_probs, in_tops, model, algebra, wcache,
                        compiled.parity_cap, profile)
                    profile.gates_processed += 1
            out.append((prob4, tops))
    return out


# ---------------------------------------------------------------------------
# Grid algebra: the stacked (scenario, net, bin) executor.
# ---------------------------------------------------------------------------

#: Per-(net, direction) state of a group: occurrence weight (scalar —
#: statistics-dependent only, shared by every scenario) and the
#: ``(n_scenarios, bins)`` block of conditional density rows (``None``
#: when the transition never occurs).
_Blocks = Dict[Tuple[str, int], Optional[np.ndarray]]

#: Phase A output for one occurring gate direction: per-scenario items,
#: each a deferred :class:`_ControllingJob` or a resolved
#: ``(total, expected, [(delay, row), ...])`` terms tuple.
_DirItems = Optional[List[object]]


def _run_grid_group(compiled: CompiledNetlist, stats, models,
                    algebra: GridAlgebra, wcache: WeightTableCache,
                    profile: SpstaProfile, keep: str,
                    segment_sum: Optional[SegmentSum]) -> _GroupOut:
    """Grid scenarios of one stats group as one stacked sweep."""
    netlist = compiled.netlist
    grid = algebra.grid
    n = grid.n
    dt = grid.dt
    b = len(models)
    ctx = _GridContext(grid=grid, delay_model=models[0],
                       kernel_cache=algebra.kernel_cache, wcache=wcache,
                       parity_cap=compiled.parity_cap, profile=profile)
    any_mis = any(hasattr(model, "delay_mis") for model in models)
    gate_delays = None if any_mis else _group_gate_delays(models)
    prob4: Dict[str, Prob4] = {}
    launch: Dict[str, NetTops] = {}
    with profile.phase("launch"):
        launch_tops(netlist, stats, algebra, prob4, launch)
    weights: Dict[Tuple[str, int], float] = {}
    blocks: _Blocks = {}
    for net, tops in launch.items():
        for d, top in ((0, tops.rise), (1, tops.fall)):
            weights[(net, d)] = top.weight
            blocks[(net, d)] = (
                np.broadcast_to(top.conditional.values, (b, n))
                if top.occurs else None)
    endpoints = frozenset(netlist.endpoints)

    for li, level in enumerate(compiled.levels):
        for record in level:
            gate = record.gate
            prob4[gate.name] = gate_prob4(
                gate.gate_type, [prob4[src] for src in gate.inputs])

        with profile.phase("subset-eval"):
            prep = _prepare_blocks(compiled.level_nets[li], blocks, b, dt)
            pending: List[_ControllingJob] = []
            templates: Optional[List[_SubsetTemplate]] = (
                None if any_mis else [])
            gate_dirs: List[Tuple[str, Tuple[object, object]]] = []
            for record in level:
                gate_dirs.append(
                    (record.gate.name,
                     _phase_a_gate(record, prob4, weights, prep, models,
                                   b, ctx, pending, templates,
                                   gate_delays)))
            if templates:
                _run_subset_templates(templates, b, ctx)
            _run_controlling_jobs(pending, ctx)

            # Phase B layout: (gate, direction)-major, scenario-minor —
            # each occurring direction owns B consecutive segments.
            rows: List[np.ndarray] = []
            delays: List[Normal] = []
            counts: List[int] = []
            expected: List[float] = []
            order: List[Tuple[str, int]] = []
            ones_b = [1] * b
            for name, dirs in gate_dirs:
                for direction, items in enumerate(dirs):
                    if items is None:
                        weights[(name, direction)] = 0.0
                        blocks[(name, direction)] = None
                        continue
                    if isinstance(items, _SubsetTemplate):
                        items = items.items
                    if isinstance(items, _DirBlock):
                        rows.append(items.block)
                        delays.extend(items.delays)
                        counts.extend(ones_b)
                        expected.extend([items.expected] * b)
                        weights[(name, direction)] = items.total
                        order.append((name, direction))
                        continue
                    total = None
                    for item in items:
                        if isinstance(item, _ControllingJob):
                            seg_total = item.total
                            seg_expected = item.total
                            dir_rows = list(item.acc.values())
                        else:
                            seg_total, seg_expected, dir_rows = item
                        counts.append(len(dir_rows))
                        expected.append(seg_expected)
                        for delay, row in dir_rows:
                            delays.append(delay)
                            rows.append(row)
                        if total is None:
                            total = seg_total
                    weights[(name, direction)] = total
                    order.append((name, direction))

        if rows:
            with profile.phase("convolve"):
                out = _convolve_matrix(np.vstack(rows), delays, ctx)
            with profile.phase("mix"):
                mixed = _mix_rows(out, counts, np.asarray(expected), ctx,
                                  segment_sum)
            seg = 0
            for name, direction in order:
                blocks[(name, direction)] = mixed[seg:seg + b].copy()
                seg += b
        profile.gates_processed += len(level) * b

        if keep == "endpoints":
            for net in compiled.level_nets[li]:
                if (compiled.last_use.get(net) == li
                        and net not in endpoints):
                    blocks.pop((net, 0), None)
                    blocks.pop((net, 1), None)

    names = list(launch)
    names.extend(record.gate.name for level in compiled.levels
                 for record in level)
    kept = [name for name in names if (name, 0) in blocks]
    out: _GroupOut = []
    for s in range(b):
        tops_s: Dict[str, NetTops] = {}
        for name in kept:
            rise_blk = blocks[(name, 0)]
            fall_blk = blocks[(name, 1)]
            tops_s[name] = NetTops(
                _wrap_top(grid, (weights[(name, 0)], rise_blk[s])
                          if rise_blk is not None else None),
                _wrap_top(grid, (weights[(name, 1)], fall_blk[s])
                          if fall_blk is not None else None))
        out.append((prob4, tops_s))
    return out


def _prepare_blocks(nets: Sequence[str], blocks: _Blocks, b: int,
                    dt: float) -> Dict[Tuple[str, int],
                                       Tuple[np.ndarray, np.ndarray]]:
    """Normalize every referenced block of a level in one stacked pass.

    The batched analogue of ``_prepare_nets``: all ``(scenario, bin)``
    rows of all referenced net directions vstack into one matrix for
    normalization and CDF accumulation — the per-row math is identical,
    each net direction just contributes B rows instead of one.
    """
    slots: List[Tuple[str, int]] = []
    stacks: List[np.ndarray] = []
    for net in nets:
        for d in (0, 1):
            block = blocks[(net, d)]
            if block is not None:
                slots.append((net, d))
                stacks.append(block)
    prep: Dict[Tuple[str, int], Tuple[np.ndarray, np.ndarray]] = {}
    if not stacks:
        return prep
    stack = np.vstack(stacks)
    ints = trapezoid_rows(stack, dt)
    if np.any(ints <= 0.0):
        raise ValueError("cannot normalize an empty density")
    stack /= ints[:, None]
    cdfs = cdf_rows(stack, dt)
    for i, slot in enumerate(slots):
        prep[slot] = (stack[i * b:(i + 1) * b], cdfs[i * b:(i + 1) * b])
    return prep


def _phase_a_gate(record: GateRecord, prob4: Mapping[str, Prob4],
                  weights: Mapping[Tuple[str, int], float], prep, models,
                  b: int, ctx: _GridContext,
                  pending: List[_ControllingJob],
                  templates: Optional[List["_SubsetTemplate"]] = None,
                  gate_delays=None) -> Tuple[_DirItems, _DirItems]:
    """Kernel dispatch for one gate across every scenario of the group.

    Occurrence (whether a direction has items) depends only on the
    group's statistics, so it is uniform across scenarios; the items
    themselves carry per-scenario rows and delays.
    """
    gate = record.gate
    if gate_delays is not None:
        delay_fors = gate_delays(gate)
    else:
        delay_fors = [_delay_for(model, gate) for model in models]
    if record.kind == KIND_COPY:
        dirs = _copy_items(gate, weights, prep, delay_fors, b)
        if record.inverting:
            dirs = (dirs[1], dirs[0])
        return dirs
    if record.kind == KIND_PARITY:
        # spec.inverting is applied inside the parity enumeration (as in
        # _grid_parity), so no swap here.
        in_probs = [prob4[src] for src in gate.inputs]
        entry_blocks = [_parity_entry(src, weights, prep)
                        for src in gate.inputs]
        return _batched_parity(record, in_probs, entry_blocks, delay_fors,
                               b, ctx, mis=templates is None)
    dirs = _subset_items(record, prob4, weights, prep, delay_fors, b, ctx,
                         pending, templates)
    if record.inverting:
        dirs = (dirs[1], dirs[0])
    return dirs


def _constant_delay(delay: Normal):
    """Popcount-independent kernel closure (constant-delay models)."""
    def delay_for(n_switching: int) -> Normal:
        return delay
    return delay_for


def _group_gate_delays(models):
    """Per-gate kernel closures for a constant-delay group, in one pass.

    A corner sweep wraps one shared base model in per-corner
    :class:`~repro.core.corners.ScaledDelay`\\ s; evaluating the base
    once per gate and applying each corner's scales replicates
    ``ScaledDelay.delay``'s arithmetic operation-for-operation, so the
    kernels stay bit-identical to per-scenario evaluation.  Gates
    sharing a base delay (every gate, for the homogeneous paper models)
    share one memoized closure list.
    """
    first = models[0]
    if (type(first) is ScaledDelay
            and all(type(m) is ScaledDelay and m.base is first.base
                    for m in models)):
        base = first.base
        corners = [m.corner for m in models]
        memo: Dict[Tuple[float, float], List] = {}

        def scaled(gate: Gate) -> List:
            d = base.delay(gate)
            key = (d.mu, d.sigma)
            hit = memo.get(key)
            if hit is None:
                hit = memo[key] = [
                    _constant_delay(Normal(d.mu * c.delay_scale,
                                           d.sigma * c.delay_scale
                                           * c.sigma_scale))
                    for c in corners]
            return hit

        return scaled

    memo_g: Dict[Tuple[Tuple[float, float], ...], List] = {}

    def generic(gate: Gate) -> List:
        delays = [model.delay(gate) for model in models]
        key = tuple((d.mu, d.sigma) for d in delays)
        hit = memo_g.get(key)
        if hit is None:
            hit = memo_g[key] = [_constant_delay(d) for d in delays]
        return hit

    return generic


class _DirBlock:
    """One gate direction whose scenarios each carry a single kernel row.

    The common case (constant-delay kernels): a whole ``(scenario, bin)``
    block plus one delay kernel per scenario, consumed by phase B as
    ``b`` consecutive single-row segments without per-scenario item
    tuples.  ``expected`` is the per-segment post-convolution mass.
    """

    __slots__ = ("total", "expected", "delays", "block")

    def __init__(self, total: float, expected: float,
                 delays: Sequence[Normal], block: np.ndarray) -> None:
        self.total = total
        self.expected = expected
        self.delays = delays
        self.block = block


def _copy_items(gate: Gate, weights, prep, delay_fors,
                b: int) -> Tuple[_DirItems, _DirItems]:
    """BUFF/NOT: one normalized row per scenario per occurring direction
    (expected post-convolution mass 1.0, as in ``_grid_gate_items``)."""
    src = gate.inputs[0]
    dirs: List[_DirItems] = []
    for d in (0, 1):
        weight = weights[(src, d)]
        entry = prep.get((src, d))
        if weight <= 0.0 or entry is None:
            dirs.append(None)
            continue
        dirs.append(_DirBlock(weight, 1.0,
                              [delay_fors[s](1) for s in range(b)],
                              entry[0]))
    return dirs[0], dirs[1]


def _batched_parity(record: GateRecord, in_probs: Sequence[Prob4],
                    entry_blocks: Sequence[tuple], delay_fors, b: int,
                    ctx: _GridContext, mis: bool = True
                    ) -> Tuple[_DirItems, _DirItems]:
    """Cross-scenario parity (XOR/XNOR) enumeration.

    The 3^k prefix recursion of ``_grid_parity`` with ``(scenario, bin)``
    blocks in place of single rows: the enumeration tree and its parity
    weights depend only on the group's statistics, so the recursion runs
    once per gate and every MAX fold processes all scenarios as one
    stacked row operation (identical per-row math).
    """
    spec = record.spec
    k = len(in_probs)
    check_parity_fanin(k, ctx.parity_cap)
    dt = ctx.grid.dt
    rise_terms: List[Tuple[float, int, np.ndarray]] = []
    fall_terms: List[Tuple[float, int, np.ndarray]] = []

    options = []
    for i, p in enumerate(in_probs):
        rw, rp, rc, fw, fp, fc = entry_blocks[i]
        options.append((
            p,
            (rp, rc) if (p.p_rise > 0.0 and rw > 0.0
                         and rp is not None) else None,
            (fp, fc) if (p.p_fall > 0.0 and fw > 0.0
                         and fp is not None) else None,
        ))

    def fold(state: Optional[Tuple[np.ndarray, np.ndarray]],
             cond: Tuple[np.ndarray, np.ndarray],
             ) -> Tuple[np.ndarray, np.ndarray]:
        # State: (normalized pdf, cdf) blocks of the shared fold prefix.
        if state is None:
            return cond
        pa, ca = state
        pb, cb = cond
        raw = pa * cb + pb * ca
        ints = trapezoid_rows(raw, dt)
        if np.any(ints <= 0.0):
            raise ValueError("cannot normalize an empty density")
        pdf = raw / ints[:, None]
        ctx.profile.max_folds += b
        return pdf, cdf_rows(pdf, dt)

    def recurse(i: int, even_w: float, odd_w: float,
                state: Optional[Tuple[np.ndarray, np.ndarray]],
                n_switch: int) -> None:
        if even_w <= 0.0 and odd_w <= 0.0:
            return
        if i == k:
            if n_switch == 0 or n_switch % 2 == 0:
                return
            block = state[0]
            rise_w, fall_w = ((even_w, odd_w) if not spec.inverting
                              else (odd_w, even_w))
            if rise_w > 0.0:
                rise_terms.append((rise_w, n_switch, block))
            if fall_w > 0.0:
                fall_terms.append((fall_w, n_switch, block))
            return
        p, rise_cond, fall_cond = options[i]
        # Static 0 keeps the parity, static 1 flips it.
        recurse(i + 1, even_w * p.p_zero + odd_w * p.p_one,
                even_w * p.p_one + odd_w * p.p_zero, state, n_switch)
        if rise_cond is not None:   # rise starts at 0: parity unchanged
            recurse(i + 1, even_w * p.p_rise, odd_w * p.p_rise,
                    fold(state, rise_cond), n_switch + 1)
        if fall_cond is not None:   # fall starts at 1: parity flips
            recurse(i + 1, odd_w * p.p_fall, even_w * p.p_fall,
                    fold(state, fall_cond), n_switch + 1)

    recurse(0, 1.0, 0.0, None, 0)
    ctx.profile.parity_terms += (len(rise_terms) + len(fall_terms)) * b

    kernel_memo: Dict[int, Tuple[List[Normal], np.ndarray]] = {}

    def kernels_for(pop: int) -> Tuple[List[Normal], np.ndarray]:
        # Constant-delay models ignore the popcount, so all terms of a
        # non-MIS group share one kernel stack per gate.
        key = pop if mis else 1
        hit = kernel_memo.get(key)
        if hit is None:
            delays = [delay_fors[s](pop) for s in range(b)]
            hit = (delays, np.stack([ctx.retention(d) for d in delays]))
            kernel_memo[key] = hit
        return hit

    def collapse(terms: List[Tuple[float, int, np.ndarray]]) -> _DirItems:
        if not terms:
            return None
        total = 0.0
        if not mis:
            # Single kernel per scenario: accumulate one premixed block.
            delays, rstack = kernels_for(1)
            acc_block: Optional[np.ndarray] = None
            for w, pop, block in terms:
                total += w
                retained = np.einsum("sn,sn->s", block, rstack)
                if np.any(retained <= 0.0):
                    raise ValueError("cannot normalize an empty density")
                ctx.record_mass(w * (1.0 - retained), np.full(b, w),
                                "parity convolution")
                contrib = (w / retained)[:, None] * block
                acc_block = (contrib if acc_block is None
                             else acc_block + contrib)
            return _DirBlock(total, total, delays, acc_block)
        accs: List[Dict[Tuple[float, float],
                        Tuple[Normal, np.ndarray]]] = [{} for _ in range(b)]
        for w, pop, block in terms:
            total += w
            delays, rstack = kernels_for(pop)
            retained = np.einsum("sn,sn->s", block, rstack)
            if np.any(retained <= 0.0):
                raise ValueError("cannot normalize an empty density")
            ctx.record_mass(w * (1.0 - retained), np.full(b, w),
                            "parity convolution")
            contrib = (w / retained)[:, None] * block
            for s in range(b):
                delay = delays[s]
                key = (delay.mu, delay.sigma)
                prev = accs[s].get(key)
                accs[s][key] = (delay, contrib[s] if prev is None
                                else prev[1] + contrib[s])
        return [(total, total, list(acc.values())) for acc in accs]

    return collapse(rise_terms), collapse(fall_terms)


def _parity_entry(src: str, weights, prep):
    """Per-direction (weight, pdf block, cdf block) of one parity input."""
    rise = prep.get((src, 0))
    fall = prep.get((src, 1))
    return (weights[(src, 0)],
            rise[0] if rise is not None else None,
            rise[1] if rise is not None else None,
            weights[(src, 1)],
            fall[0] if fall is not None else None,
            fall[1] if fall is not None else None)


class _SubsetTemplate:
    """One AND/OR-core gate direction shared by a whole scenario group.

    Candidate selection, the static factor and the packed Eq. 11 weight
    table depend only on the group's statistics; ``pdf_blocks`` /
    ``cdf_blocks`` carry every scenario's rows, ``delays`` the one delay
    kernel each scenario applies to every subset (constant-delay models
    only — MIS models take the per-scenario job path instead).
    ``items`` is filled by :func:`_run_subset_templates`.
    """

    __slots__ = ("k", "use_max", "weights", "pdf_blocks", "cdf_blocks",
                 "delays", "items")

    def __init__(self, k: int, use_max: bool, weights: np.ndarray,
                 pdf_blocks: List[np.ndarray], cdf_blocks: List[np.ndarray],
                 delays: List[Normal]) -> None:
        self.k = k
        self.use_max = use_max
        self.weights = weights
        self.pdf_blocks = pdf_blocks
        self.cdf_blocks = cdf_blocks
        self.delays = delays
        self.items: List[object] = []


def _subset_items(record: GateRecord, prob4, weights, prep, delay_fors,
                  b: int, ctx: _GridContext,
                  pending: List[_ControllingJob],
                  templates: Optional[List[_SubsetTemplate]]
                  ) -> Tuple[_DirItems, _DirItems]:
    """AND/OR cores: one deferred cross-scenario subset DP per direction.

    With constant-delay models (``templates`` is a list) each direction
    becomes one :class:`_SubsetTemplate` whose DP and retention premix
    run fully stacked across scenarios; with MIS-aware models each
    scenario gets its own :class:`_ControllingJob` (the subset delay
    varies per popcount) and ``_run_controlling_jobs`` still batches the
    jobs of all gates and scenarios of the level.
    """
    gate = record.gate
    in_probs = [prob4[src] for src in gate.inputs]
    is_and_core = record.is_and_core
    dirs: List[object] = []
    for which, use_max in ((0, is_and_core), (1, not is_and_core)):
        candidates: List[int] = []
        static_factor = 1.0
        for i, p in enumerate(in_probs):
            switch_p = p.p_rise if which == 0 else p.p_fall
            slot = (gate.inputs[i], which)
            if switch_p > 0.0 and weights[slot] > 0.0 and slot in prep:
                candidates.append(i)
            else:
                static_factor *= p.p_one if is_and_core else p.p_zero
        if static_factor <= 0.0 or not candidates:
            dirs.append(None)
            continue
        switch = tuple((in_probs[i].p_rise if which == 0
                        else in_probs[i].p_fall) for i in candidates)
        static = tuple((in_probs[i].p_one if is_and_core
                        else in_probs[i].p_zero) for i in candidates)
        weight_vec = static_factor * ctx.wcache.table(switch, static)
        if not (weight_vec > 0.0).any():
            dirs.append(None)
            continue
        k = len(candidates)
        pdf_blocks = [prep[(gate.inputs[i], which)][0] for i in candidates]
        cdf_blocks = [prep[(gate.inputs[i], which)][1] for i in candidates]
        if templates is not None:
            template = _SubsetTemplate(
                k, use_max, weight_vec, pdf_blocks, cdf_blocks,
                [delay_fors[s](1) for s in range(b)])
            templates.append(template)
            dirs.append(template)
            continue
        items: List[object] = []
        for s in range(b):
            job = _ControllingJob(k, use_max, weight_vec,
                                  [blk[s] for blk in pdf_blocks],
                                  [blk[s] for blk in cdf_blocks],
                                  delay_fors[s])
            pending.append(job)
            items.append(job)
        dirs.append(items)
    return dirs[0], dirs[1]


def _run_subset_templates(templates: Sequence[_SubsetTemplate], b: int,
                          ctx: _GridContext) -> None:
    """Stacked subset DP + retention premix for a level's templates.

    The cross-scenario analogue of ``_run_controlling_jobs``: templates
    sharing a lattice stack their scenarios' rows into one
    ``(template*scenario, fanin, bins)`` array, the DP runs in
    MAX_DP_ROWS-bounded chunks, and each row's single delay kernel turns
    the retention premix into two einsums.  Per-row math matches the
    job path exactly (``_subset_dp`` rows are independent); totals
    replicate ``_finish_jobs``' naive mask-order summation.
    """
    dt = ctx.grid.dt
    n = ctx.grid.n
    groups: Dict[Tuple[int, bool], List[_SubsetTemplate]] = {}
    for template in templates:
        groups.setdefault((template.k, template.use_max), []).append(template)
    for (k, use_max), group in groups.items():
        lat = subset_lattice(k)
        masks = (1 << k) - 1
        rows_total = len(group) * b
        pdfs = np.empty((rows_total, k, n))
        cdfs = np.empty((rows_total, k, n))
        weight_rows = np.empty((rows_total, masks))
        rstack = np.empty((rows_total, n))
        rstack_memo: Dict[int, np.ndarray] = {}
        for ti, t in enumerate(group):
            lo = ti * b
            hi = lo + b
            for i in range(k):
                pdfs[lo:hi, i] = t.pdf_blocks[i]
                cdfs[lo:hi, i] = t.cdf_blocks[i]
            weight_rows[lo:hi] = t.weights
            # Templates of one group usually share a memoized kernel
            # list (homogeneous base delays), so stack retentions once.
            hit = rstack_memo.get(id(t.delays))
            if hit is None:
                hit = np.stack([ctx.retention(d) for d in t.delays])
                rstack_memo[id(t.delays)] = hit
            rstack[lo:hi] = hit
        pre = np.empty((len(group) * b, n))
        # Chunk by element count, not row count: MAX_DP_ROWS bounds the
        # (rows, masks) node table for n=2048 grids, and coarser grids
        # afford proportionally more rows per DP call.
        chunk = max(1, (MAX_DP_ROWS * 2048) // (masks * n))
        for lo in range(0, pdfs.shape[0], chunk):
            hi = min(lo + chunk, pdfs.shape[0])
            node_pdf, _ = _subset_dp(pdfs[lo:hi], cdfs[lo:hi], lat,
                                     use_max, dt, ctx.profile)
            w = weight_rows[lo:hi]
            retained = np.einsum("rmn,rn->rm", node_pdf, rstack[lo:hi])
            positive = w > 0.0
            if np.any(positive & (retained <= 0.0)):
                raise ValueError("cannot normalize an empty density")
            ctx.record_mass((w * (1.0 - retained))[positive], w[positive],
                            "subset convolution")
            coef = np.where(positive, w
                            / np.where(retained > 0.0, retained, 1.0), 0.0)
            pre[lo:hi] = np.einsum("rm,rmn->rn", coef, node_pdf)
        for ti, template in enumerate(group):
            positive = np.nonzero(template.weights > 0.0)[0]
            total = 0.0
            for idx in positive:        # mask order, like _finish_jobs
                total += template.weights[idx]
            template.items = _DirBlock(total, total, template.delays,
                                       pre[ti * b:(ti + 1) * b])
            ctx.profile.subset_terms += positive.size * b
