"""Probabilistic waveform simulation (the paper's ref [15] family).

A *probability waveform* is P(net = 1 at time t), sampled on a shared time
grid.  Propagation applies each gate's Boolean function pointwise under
spatial independence and shifts by the gate delay:

    AND:  P_y(t) = P_a(t - d) * P_b(t - d)
    OR:   P_y(t) = 1 - prod_i (1 - P_i(t - d))
    XOR:  pointwise parity fold
    NOT:  1 - P(t - d)

This is the time-resolved generalization of signal probability (Def. 1):
at t -> -inf the waveform equals the initial-value probability, at
t -> +inf the settled probability, and the slope between captures when the
net's value is in flux.

Semantics note: the model evaluates gate functions on *instantaneous*
input values (zero inertial delay), so mid-cycle it sees the transient
combinations the four-value abstraction filters out as glitches — the
waveform at a gate output can bump where SPSTA/the four-value simulator
record no transition at all.  The cycle endpoints are glitch-free by
definition, so initial/settled values agree exactly with Prob4 propagation
(tested), and :meth:`ProbabilityWaveform.uncertainty` integrates the
mid-cycle exposure, glitches included.  Spatial independence per gate is
assumed, as in the rest of the probabilistic substrate.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Union

import numpy as np

from repro.compat import trapezoid
from repro.core.delay import DelayModel, UnitDelay
from repro.core.inputs import InputStats
from repro.logic.gates import GateType, gate_spec
from repro.netlist.core import Netlist
from repro.stats.grid import TimeGrid
from repro.stats.normal import Normal


class ProbabilityWaveform:
    """P(net = 1 at time t) sampled on a :class:`TimeGrid`."""

    __slots__ = ("grid", "values")

    def __init__(self, grid: TimeGrid, values: Sequence[float]) -> None:
        arr = np.asarray(values, dtype=float)
        if arr.shape != (grid.n,):
            raise ValueError(
                f"waveform shape {arr.shape} does not match grid {grid.n}")
        if np.any(arr < -1e-9) or np.any(arr > 1.0 + 1e-9):
            raise ValueError("waveform probabilities must lie in [0, 1]")
        self.grid = grid
        self.values = np.clip(arr, 0.0, 1.0)

    @classmethod
    def from_input_stats(cls, grid: TimeGrid,
                         stats: InputStats) -> "ProbabilityWaveform":
        """The launch-point waveform implied by a four-value vector.

        Starts at P(initial one), ends at P(final one); the rising portion
        ramps up with the rise-arrival cdf, the falling portion down with
        the fall-arrival cdf.
        """
        p = stats.prob4
        t = grid.points
        rise_cdf = _cdf(t, stats.rise_arrival)
        fall_cdf = _cdf(t, stats.fall_arrival)
        values = (p.p_one
                  + p.p_rise * rise_cdf
                  + p.p_fall * (1.0 - fall_cdf))
        return cls(grid, values)

    @property
    def initial_probability(self) -> float:
        return float(self.values[0])

    @property
    def settled_probability(self) -> float:
        return float(self.values[-1])

    def at(self, time: float) -> float:
        """Linear interpolation of P(1) at an arbitrary time."""
        return float(np.interp(time, self.grid.points, self.values))

    def shifted(self, delay: float) -> "ProbabilityWaveform":
        """Delay the waveform, holding the boundary values."""
        values = np.interp(self.grid.points - delay, self.grid.points,
                           self.values,
                           left=self.values[0], right=self.values[-1])
        return ProbabilityWaveform(self.grid, values)

    def inverted(self) -> "ProbabilityWaveform":
        return ProbabilityWaveform(self.grid, 1.0 - self.values)

    def uncertainty(self) -> float:
        """Integral of P(1)(1 - P(1)) dt: total 'in flux' exposure, a
        proxy for glitch/noise susceptibility of the net."""
        p = self.values
        return float(trapezoid(p * (1.0 - p), dx=self.grid.dt))


def _cdf(times: np.ndarray, normal: Normal) -> np.ndarray:
    if normal.sigma <= 0.0:
        return (times >= normal.mu).astype(float)
    from math import sqrt

    from scipy.special import erf
    z = (times - normal.mu) / (normal.sigma * sqrt(2.0))
    return 0.5 * (1.0 + erf(z))


def gate_waveform(gate_type: GateType,
                  inputs: Sequence[ProbabilityWaveform],
                  delay: float) -> ProbabilityWaveform:
    """Pointwise independent combination plus delay shift."""
    spec = gate_spec(gate_type)
    spec.validate_arity(len(inputs))
    grid = inputs[0].grid
    for w in inputs[1:]:
        if w.grid != grid:
            raise ValueError("waveforms live on different grids")
    if gate_type is GateType.BUFF:
        return inputs[0].shifted(delay)
    if gate_type is GateType.NOT:
        return inputs[0].inverted().shifted(delay)
    if gate_type in (GateType.AND, GateType.NAND):
        acc = np.ones(grid.n)
        for w in inputs:
            acc = acc * w.values
    elif gate_type in (GateType.OR, GateType.NOR):
        acc = np.ones(grid.n)
        for w in inputs:
            acc = acc * (1.0 - w.values)
        acc = 1.0 - acc
    else:  # parity
        acc = np.zeros(grid.n)
        for w in inputs:
            acc = acc * (1.0 - w.values) + (1.0 - acc) * w.values
    if spec.inverting:
        acc = 1.0 - acc
    return ProbabilityWaveform(grid, acc).shifted(delay)


def propagate_waveforms(
        netlist: Netlist,
        stats: Union[InputStats, Mapping[str, InputStats]],
        grid: TimeGrid,
        delay_model: DelayModel = UnitDelay()
        ) -> Dict[str, ProbabilityWaveform]:
    """Probability waveforms for every net in one netlist traversal."""
    waves: Dict[str, ProbabilityWaveform] = {}
    for net in netlist.launch_points:
        s = stats if isinstance(stats, InputStats) else stats[net]
        waves[net] = ProbabilityWaveform.from_input_stats(grid, s)
    for gate in netlist.combinational_gates:
        operands = [waves[src] for src in gate.inputs]
        delay = delay_model.delay(gate).mu
        waves[gate.name] = gate_waveform(gate.gate_type, operands, delay)
    return waves
