"""Cycle-level input statistics (what SSTA ignores and SPSTA propagates).

A :class:`Prob4` is the four-value probability vector (P0, P1, Pr, Pf) of a
net over one clock cycle (paper Sec. 3.3).  An :class:`InputStats` bundles
the Prob4 asserted at every launch point with the arrival-time distributions
of its rising and falling transitions.

The paper's two experimental configurations are provided as constants:

- ``CONFIG_I``  — equiprobable four values: signal probability 0.5, mean
  toggling rate 0.5, toggling-rate variance 0.25;
- ``CONFIG_II`` — 75% zero / 15% one / 2% rise / 8% fall: signal probability
  0.2, mean toggling rate 0.1, toggling-rate variance 0.09.

("Signal probability" here is the time-average probability of being at logic
one, i.e. P1 plus half of each transition value's dwell.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
import math

from repro.logic.fourvalue import Logic4
from repro.stats.normal import Normal


@dataclass(frozen=True)
class Prob4:
    """Four-value probability vector (P0, P1, Pr, Pf); sums to one."""

    p_zero: float
    p_one: float
    p_rise: float
    p_fall: float

    def __post_init__(self) -> None:
        values = (self.p_zero, self.p_one, self.p_rise, self.p_fall)
        for v in values:
            if v < -1e-9 or v > 1.0 + 1e-9:
                raise ValueError(f"probability {v} outside [0, 1]")
        total = sum(values)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"four-value probabilities sum to {total}, not 1")

    def __getitem__(self, value: Logic4) -> float:
        return {Logic4.ZERO: self.p_zero, Logic4.ONE: self.p_one,
                Logic4.RISE: self.p_rise, Logic4.FALL: self.p_fall}[value]

    @property
    def signal_probability(self) -> float:
        """Time-average probability of logic one (paper Def. 1): a
        transitioning net spends on average half the cycle at one."""
        return self.p_one + 0.5 * (self.p_rise + self.p_fall)

    @property
    def initial_one_probability(self) -> float:
        """P(value at cycle start is 1) = P1 + Pf."""
        return self.p_one + self.p_fall

    @property
    def final_one_probability(self) -> float:
        """P(value at cycle end is 1) = P1 + Pr."""
        return self.p_one + self.p_rise

    @property
    def toggling_rate(self) -> float:
        """Expected transitions per cycle (paper Def. 2) = Pr + Pf."""
        return self.p_rise + self.p_fall

    @property
    def toggling_variance(self) -> float:
        """Variance of the per-cycle toggle indicator (Bernoulli)."""
        rate = self.toggling_rate
        return rate * (1.0 - rate)

    def inverted(self) -> "Prob4":
        """The vector seen through an inverter: 0<->1, r<->f."""
        return Prob4(self.p_one, self.p_zero, self.p_fall, self.p_rise)

    @classmethod
    def uniform(cls) -> "Prob4":
        return cls(0.25, 0.25, 0.25, 0.25)

    @classmethod
    def static(cls, one_probability: float) -> "Prob4":
        """A never-toggling net that is 1 with the given probability."""
        return cls(1.0 - one_probability, one_probability, 0.0, 0.0)


@dataclass(frozen=True)
class InputStats:
    """Statistics asserted at every launch point (PI and DFF output)."""

    prob4: Prob4
    rise_arrival: Normal = field(default_factory=lambda: Normal(0.0, 1.0))
    fall_arrival: Normal = field(default_factory=lambda: Normal(0.0, 1.0))

    @property
    def signal_probability(self) -> float:
        return self.prob4.signal_probability

    @property
    def toggling_rate(self) -> float:
        return self.prob4.toggling_rate


#: Paper experiment part (I): equiprobable {0, 1, r, f}, arrivals N(0, 1).
CONFIG_I = InputStats(Prob4(0.25, 0.25, 0.25, 0.25))

#: Paper experiment part (II): 75% 0, 15% 1, 2% r, 8% f, arrivals N(0, 1).
CONFIG_II = InputStats(Prob4(0.75, 0.15, 0.02, 0.08))


def _self_check() -> None:
    """Assert the headline statistics the paper states for both configs."""
    assert math.isclose(CONFIG_I.signal_probability, 0.5)
    assert math.isclose(CONFIG_I.toggling_rate, 0.5)
    assert math.isclose(CONFIG_I.prob4.toggling_variance, 0.25)
    assert math.isclose(CONFIG_II.signal_probability, 0.2)
    assert math.isclose(CONFIG_II.toggling_rate, 0.1)
    assert math.isclose(CONFIG_II.prob4.toggling_variance, 0.09)


_self_check()
