"""Levelized fast-path SPSTA engine.

Same mathematics as :mod:`repro.core.spsta` (Eq. 11/12 subset enumeration
over an abstract TOP algebra), restructured for speed:

- **Subset-weight-table caching** — the per-mask probability products of
  Eq. 11 depend only on the candidates' (switch, static) probability
  vectors, which repeat across thousands of gates on an ISCAS netlist.
  :class:`WeightTableCache` memoizes the 2^k-entry tables keyed on
  ``(fanin, rounded probability vector)``; each bucket stores the *exact*
  vectors it has seen, so a rounded-key collision can never leak a
  neighbouring gate's table and the moment engine stays bit-identical to
  the naive sweep.

- **Subset-lattice MAX/MIN sharing** — the naive path folds Clark/grid
  MAX over each subset from scratch (k·2^(k-1) pairwise folds per gate
  direction).  Because every algebra folds its k-ary MAX left-to-right,
  the MAX over a subset equals ``max(MAX(subset minus top bit), top)``:
  dynamic programming over the precomputed subset lattice computes each
  mask in ONE pairwise fold (2^k - 1 - k total) with identical results.

- **Levelized batch propagation (grid algebra)** — gates are processed
  level by level; within a level all conditional densities are stacked
  into 2-D arrays so normalization, CDF accumulation, Eq. 3 MAX and the
  Eq. 8 weighted-sum mix run as stacked array operations, delay
  convolutions are grouped by kernel and dispatched as one batched FFT
  (cached taps and kernel spectra via
  :class:`~repro.stats.grid.KernelCache`), and an opt-in ``workers=``
  process pool splits a level across processes.

- **Parity prefix enumeration (grid algebra)** — XOR/XNOR joint
  enumeration collapses the 4^k four-value assignments to the 3^k
  (static / rise / fall) patterns, tracking the static-ones parity as an
  (even, odd) weight pair and sharing MAX-fold prefixes.

Differential equivalence with the naive engine is pinned by
``tests/test_spsta_fastpath.py``: bit-exact for :class:`MomentAlgebra`
(and the other closed-form algebras), ≤1e-9 relative moment error for
:class:`GridAlgebra`.  The grid fast path assumes the time grid covers the
support of every density (as any grid analysis must): it normalizes terms
before the delay convolution instead of after, which is only exact when
the convolution loses no probability mass off the grid ends.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import lru_cache
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.compat import trapezoid
from repro.core.delay import DelayModel
from repro.core.inputs import InputStats, Prob4
from repro.core.probability import gate_prob4
from repro.core.profiling import SpstaProfile
from repro.core.spsta import (
    MAX_PARITY_FANIN,
    GridAlgebra,
    NetTops,
    SpstaResult,
    TopAlgebra,
    TopFunction,
    _delay_for,
    _gate_tops,
    _harvest_kernel_counters,
    _mixed,
    check_parity_fanin,
    launch_tops,
    validate_parity_fanins,
)
from repro.logic.gates import GateSpec, GateType, gate_spec
from repro.netlist.core import Gate, Netlist
from repro.stats.grid import (
    MASS_WARN_FRACTION,
    GridDensity,
    KernelCache,
    TimeGrid,
    _warn_truncation,
    cdf_rows,
    convolve_rows,
    kernel_retention_vector,
    shift_retention_vector,
    shift_rows,
    trapezoid_rows,
)
from repro.stats.normal import Normal

#: Below this many gates in a level, a worker pool is pure overhead.
MIN_GATES_PER_WORKER = 4


# ---------------------------------------------------------------------------
# Subset lattice: precomputed per fanin, shared by every gate.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SubsetLattice:
    """Static structure of the non-empty subsets of ``k`` candidates.

    Arrays are indexed by ``mask - 1`` for masks ``1 .. 2^k - 1``.  ``top``
    is the highest set bit, ``prev`` the mask with that bit cleared (the
    DP predecessor), ``pop`` the popcount; ``by_pop[c]`` lists the 0-based
    indices of all masks with popcount ``c + 1`` (for batched grid DP).
    """

    k: int
    top: np.ndarray
    prev: np.ndarray
    pop: np.ndarray
    by_pop: Tuple[np.ndarray, ...]


@lru_cache(maxsize=None)
def subset_lattice(k: int) -> SubsetLattice:
    """The (memoized) subset lattice for fanin ``k``."""
    masks = np.arange(1, 1 << k)
    top = np.zeros(masks.shape[0], dtype=np.int64)
    pop = np.zeros(masks.shape[0], dtype=np.int64)
    for idx, mask in enumerate(masks):
        top[idx] = int(mask).bit_length() - 1
        pop[idx] = bin(int(mask)).count("1")
    prev = masks - (1 << top)
    by_pop = tuple(np.nonzero(pop == c)[0] for c in range(1, k + 1))
    return SubsetLattice(k, top, prev, pop, by_pop)


# ---------------------------------------------------------------------------
# Eq. 11 subset-weight tables, memoized across gates.
# ---------------------------------------------------------------------------

def build_weight_table(switch: Tuple[float, ...],
                       static: Tuple[float, ...]) -> np.ndarray:
    """Per-mask subset weights for one candidate probability vector.

    Folds the factors in candidate index order — the exact multiplication
    order of the naive ``_subset_terms`` loop, so cached tables keep the
    moment engine bit-identical to the reference path.
    """
    k = len(switch)
    table = np.empty((1 << k) - 1)
    for mask in range(1, 1 << k):
        w = 1.0
        for bit in range(k):
            w *= switch[bit] if (mask >> bit) & 1 else static[bit]
        table[mask - 1] = w
    return table


class WeightTableCache:
    """Memoized Eq. 11 subset-weight tables.

    Keys are ``(fanin, rounded switch/static probability vectors)``; each
    bucket stores the exact vectors alongside the table and only serves an
    exact match, so rounding governs hashing but never the numbers.
    """

    __slots__ = ("hits", "misses", "_buckets")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self._buckets: Dict[tuple, List[tuple]] = {}

    def table(self, switch: Tuple[float, ...],
              static: Tuple[float, ...]) -> np.ndarray:
        key = (len(switch),
               tuple(round(p, 12) for p in switch),
               tuple(round(p, 12) for p in static))
        bucket = self._buckets.setdefault(key, [])
        for exact_switch, exact_static, table in bucket:
            if exact_switch == switch and exact_static == static:
                self.hits += 1
                return table
        table = build_weight_table(switch, static)
        bucket.append((switch, static, table))
        self.misses += 1
        return table


# ---------------------------------------------------------------------------
# Generic fast path (any TOP algebra): lattice DP + cached weight tables.
# ---------------------------------------------------------------------------

def _fast_subset_terms(in_probs: Sequence[Prob4],
                       in_tops: Sequence[NetTops],
                       algebra: TopAlgebra,
                       delay_for: Callable[[int], Any],
                       switch_prob: Callable[[Prob4], float],
                       switch_top: Callable[[NetTops], TopFunction],
                       static_prob: Callable[[Prob4], float],
                       use_max: bool, wcache: WeightTableCache,
                       profile: SpstaProfile) -> List[Tuple[float, Any]]:
    """Eq. 11 terms via subset-lattice DP (one pairwise fold per mask)."""
    candidates: List[int] = []
    static_factor = 1.0
    for i, (p, t) in enumerate(zip(in_probs, in_tops)):
        if switch_prob(p) > 0.0 and switch_top(t).occurs:
            candidates.append(i)
        else:
            static_factor *= static_prob(p)
    if static_factor <= 0.0 or not candidates:
        return []
    k = len(candidates)
    switch = tuple(switch_prob(in_probs[i]) for i in candidates)
    static = tuple(static_prob(in_probs[i]) for i in candidates)
    table = wcache.table(switch, static)
    lat = subset_lattice(k)
    conds = [switch_top(in_tops[i]).conditional for i in candidates]
    combine = algebra.maximum if use_max else algebra.minimum
    sub: List = [None] * (1 << k)
    terms = []
    for mask in range(1, 1 << k):
        idx = mask - 1
        prev = int(lat.prev[idx])
        if prev == 0:
            node = conds[int(lat.top[idx])]
        else:
            node = combine([sub[prev], conds[int(lat.top[idx])]])
            profile.max_folds += 1
        sub[mask] = node
        weight = static_factor * table[idx]
        if weight <= 0.0:
            continue
        terms.append((weight,
                      algebra.add_delay(node, delay_for(int(lat.pop[idx])))))
    profile.subset_terms += len(terms)
    return terms


def _gate_tops_generic(gate: Gate, in_probs: Sequence[Prob4],
                       in_tops: Sequence[NetTops],
                       delay_model: DelayModel, algebra: TopAlgebra,
                       wcache: WeightTableCache, parity_cap: int,
                       profile: SpstaProfile) -> NetTops:
    """Fast per-gate TOPs for closed-form algebras (moments, mixtures,
    canonical forms); identical call sequence to the naive path except that
    subset maxima are shared through the lattice DP."""
    spec = gate_spec(gate.gate_type)
    if (gate.gate_type in (GateType.BUFF, GateType.NOT) or spec.is_parity):
        # Single-input and parity gates gain nothing from subset sharing;
        # reuse the reference implementation (keeps parity bit-exact).
        return _gate_tops(gate, in_probs, in_tops, delay_model, algebra,
                          parity_cap, profile)
    delay_for = _delay_for(delay_model, gate)
    is_and_core = spec.controlling_value == 0

    def static_prob(p: Prob4) -> float:
        return p.p_one if is_and_core else p.p_zero

    rise_terms = _fast_subset_terms(
        in_probs, in_tops, algebra, delay_for,
        switch_prob=lambda p: p.p_rise, switch_top=lambda t: t.rise,
        static_prob=static_prob, use_max=is_and_core,
        wcache=wcache, profile=profile)
    fall_terms = _fast_subset_terms(
        in_probs, in_tops, algebra, delay_for,
        switch_prob=lambda p: p.p_fall, switch_top=lambda t: t.fall,
        static_prob=static_prob, use_max=not is_and_core,
        wcache=wcache, profile=profile)
    core = NetTops(_mixed(rise_terms, algebra), _mixed(fall_terms, algebra))
    if spec.inverting:
        core = core.swapped()
    return core


# ---------------------------------------------------------------------------
# Grid fast path: batched array kernels over raw density rows.
# ---------------------------------------------------------------------------

@dataclass
class _GridContext:
    """Everything one process needs to evaluate grid gates."""

    grid: TimeGrid
    delay_model: DelayModel
    kernel_cache: KernelCache
    wcache: WeightTableCache
    parity_cap: int
    profile: SpstaProfile
    conv_method: str = "auto"

    def __post_init__(self) -> None:
        self._retentions: Dict[tuple, np.ndarray] = {}

    def retention(self, delay: Normal) -> np.ndarray:
        """Memoized retention vector for one delay (see
        :func:`~repro.stats.grid.kernel_retention_vector`)."""
        dt = self.grid.dt
        if delay.sigma <= 0.0:
            key = ("shift", int(round(delay.mu / dt)))
        else:
            key = (delay.mu, delay.sigma)
        vec = self._retentions.get(key)
        if vec is None:
            if delay.sigma <= 0.0:
                vec = shift_retention_vector(key[1], self.grid.n, dt)
            else:
                vec = kernel_retention_vector(self.kernel_cache.kernel(delay),
                                              self.grid.n, dt)
            self._retentions[key] = vec
        return vec

    def record_mass(self, clipped, reference, operation: str) -> None:
        """Mass-conservation audit of a batch of grid operations.

        ``clipped``/``reference`` are matching scalars or arrays of
        off-grid mass lost vs the mass each operation started with; the
        aggregates land in the run's :class:`SpstaProfile` (the fast
        engine's counterpart of :class:`~repro.stats.grid.MassLedger`).
        """
        clip = np.maximum(np.ravel(np.asarray(clipped, dtype=float)), 0.0)
        ref = np.ravel(np.asarray(reference, dtype=float))
        prof = self.profile
        prof.mass_checks += clip.size
        if clip.size == 0:
            return
        ok = ref > 0.0
        frac = np.where(ok, clip / np.where(ok, ref, 1.0), 0.0)
        prof.clipped_mass += float(np.where(ok, clip, 0.0).sum())
        worst = float(frac.max())
        events = int((frac > MASS_WARN_FRACTION).sum())
        if events:
            prof.clip_events += events
            _warn_truncation(operation, worst)
        if worst > prof.max_clip_fraction:
            prof.max_clip_fraction = worst


#: Per-net prepared arrays, per direction: (weight, normalized pdf, cdf);
#: pdf/cdf ``None`` when the transition never occurs.
_PrepEntry = Tuple[float, Optional[np.ndarray], Optional[np.ndarray],
                   float, Optional[np.ndarray], Optional[np.ndarray]]


def _prepare_nets(net_table: Mapping[str, tuple],
                  dt: float) -> Dict[str, _PrepEntry]:
    """Normalize every referenced density once and precompute its CDF.

    The naive path re-normalizes and re-integrates operands inside every
    pairwise MAX; here each net pays once per level regardless of fanout.
    Stacks all rows into one matrix so the normalization and cumulative
    integral run as 2-D array ops.
    """
    rows: List[np.ndarray] = []
    slots: List[Tuple[str, int]] = []
    for net, (rw, rvals, fw, fvals) in net_table.items():
        if rvals is not None:
            slots.append((net, 0))
            rows.append(rvals)
        if fvals is not None:
            slots.append((net, 1))
            rows.append(fvals)
    norm: Dict[Tuple[str, int], Tuple[np.ndarray, np.ndarray]] = {}
    if rows:
        stack = np.vstack(rows)
        ints = trapezoid_rows(stack, dt)
        if np.any(ints <= 0.0):
            raise ValueError("cannot normalize an empty density")
        stack = stack / ints[:, None]
        cdfs = cdf_rows(stack, dt)
        for i, slot in enumerate(slots):
            norm[slot] = (stack[i], cdfs[i])
    prep: Dict[str, _PrepEntry] = {}
    for net, (rw, rvals, fw, fvals) in net_table.items():
        rpdf, rcdf = norm.get((net, 0), (None, None))
        fpdf, fcdf = norm.get((net, 1), (None, None))
        prep[net] = (rw, rpdf, rcdf, fw, fpdf, fcdf)
    return prep


#: One output direction of one gate before convolution/mix: the total
#: occurrence weight, the integral the direction's convolved rows should
#: sum to (the mass-conservation audit reference: 1.0 for a BUFF/NOT's
#: single normalized row, the occurrence weight for retention-corrected
#: subset/parity rows), plus one pre-mixed row per distinct delay kernel.
#: The naive mix normalizes each *convolved* term, so each term's row is
#: scaled by ``weight / retention`` (exact per-term convolution mass, via
#: the retention vectors) before terms sharing a kernel are summed —
#: convolution is linear, so convolving the group once equals convolving
#: and normalizing every Eq. 11/12 term separately.
_DirTerms = Optional[Tuple[float, float, List[Tuple[Normal, np.ndarray]]]]


class _ControllingJob:
    """One AND/OR-core gate direction whose subset DP is deferred.

    Jobs from every gate of a level are grouped by ``(fanin, use_max)`` and
    evaluated together in :func:`_run_controlling_jobs` as 3-D stacked array
    ops — the per-gate Python/numpy dispatch overhead of running the subset
    lattice once per gate dominates the s9234 profile otherwise.  After the
    batched run, ``total`` holds the direction's occurrence weight and
    ``acc`` maps each distinct delay kernel to its pre-mixed row.
    """

    __slots__ = ("k", "use_max", "weights", "pdfs", "cdfs", "delay_for",
                 "total", "acc")

    def __init__(self, k: int, use_max: bool, weights: np.ndarray,
                 pdfs: List[np.ndarray], cdfs: List[np.ndarray],
                 delay_for) -> None:
        self.k = k
        self.use_max = use_max
        self.weights = weights
        self.pdfs = pdfs
        self.cdfs = cdfs
        self.delay_for = delay_for
        self.total = 0.0
        self.acc: Dict[Tuple[float, float],
                       Tuple[Normal, np.ndarray]] = {}


def _controlling_jobs(spec: GateSpec, in_probs: Sequence[Prob4],
                      prep_inputs: Sequence[tuple],
                      delay_for: Callable[[int], Any],
                      ctx: _GridContext,
                      ) -> Tuple[Optional[_ControllingJob],
                                 Optional[_ControllingJob]]:
    """Build the two core-direction jobs of an AND/OR-core gate (or
    ``None`` where the direction cannot occur)."""
    is_and_core = spec.controlling_value == 0
    jobs: List[Optional[_ControllingJob]] = []
    for which, use_max in ((0, is_and_core), (1, not is_and_core)):
        off = 0 if which == 0 else 3
        candidates: List[int] = []
        static_factor = 1.0
        for i, p in enumerate(in_probs):
            entry = prep_inputs[i]
            sp = p.p_rise if which == 0 else p.p_fall
            if sp > 0.0 and entry[off] > 0.0 and entry[off + 1] is not None:
                candidates.append(i)
            else:
                static_factor *= p.p_one if is_and_core else p.p_zero
        if static_factor <= 0.0 or not candidates:
            jobs.append(None)
            continue
        switch = tuple((in_probs[i].p_rise if which == 0
                        else in_probs[i].p_fall) for i in candidates)
        static = tuple((in_probs[i].p_one if is_and_core
                        else in_probs[i].p_zero) for i in candidates)
        weights = static_factor * ctx.wcache.table(switch, static)
        if not (weights > 0.0).any():
            jobs.append(None)
            continue
        jobs.append(_ControllingJob(
            len(candidates), use_max, weights,
            [prep_inputs[i][off + 1] for i in candidates],
            [prep_inputs[i][off + 2] for i in candidates], delay_for))
    return jobs[0], jobs[1]


#: Upper bound on batch-size × subset-count rows a chunked DP holds live;
#: at n = 2048 this keeps the three (B, M, n) work arrays near ~100 MB.
MAX_DP_ROWS = 2048


def _run_controlling_jobs(jobs: Sequence[_ControllingJob],
                          ctx: _GridContext) -> None:
    """Evaluate every deferred controlling-gate direction of a level.

    Jobs are grouped by ``(fanin, use_max)`` so one 3-D DP sweep serves all
    gates sharing a lattice, chunked to bound peak memory.  Each job's math
    involves only its own rows, so grouping cannot change which operations
    run on a job's data.  Results across different groupings agree to a few
    ULPs rather than bit-exactly: NumPy's SIMD elementwise division is not
    guaranteed correctly rounded on every platform (observed 0.5-ulp
    truncations from the AVX-512 kernel), so the normalization inside the
    DP may round differently between batch shapes.
    """
    groups: Dict[Tuple[int, bool], List[_ControllingJob]] = {}
    for job in jobs:
        groups.setdefault((job.k, job.use_max), []).append(job)
    for (k, use_max), group in groups.items():
        lat = subset_lattice(k)
        chunk = max(1, MAX_DP_ROWS // ((1 << k) - 1))
        for lo in range(0, len(group), chunk):
            _run_controlling_chunk(group[lo:lo + chunk], lat, use_max, ctx)


def _subset_dp(pdfs: np.ndarray, cdfs: np.ndarray, lat: SubsetLattice,
               use_max: bool, dt: float,
               profile: SpstaProfile) -> Tuple[np.ndarray, np.ndarray]:
    """Subset-lattice DP over a ``(rows, k, n)`` stack of operand rows.

    DP over the subset lattice, batched by popcount across the whole
    batch: all masks of one cardinality of all rows combine their
    predecessor with one extra input in a single stacked Eq. 3 pass.
    Mirrors the naive fold exactly: operands are normalized before each
    fold and the result's CDF is recomputed by trapezoid accumulation.
    Each row's math involves only its own operands, so callers may stack
    rows from any mix of gates (and, in the scenario backend, scenarios)
    without changing which operations touch a row.

    Returns ``(node_pdf, node_cdf)`` of shape ``(rows, 2^k - 1, n)``
    indexed by ``mask - 1``; node pdfs are the normalized fold results,
    node cdfs their trapezoid accumulations.  Cdfs of full-popcount
    masks are never consumed by a further fold and are left unset —
    callers use ``node_pdf`` only.

    Masks are evaluated one at a time against strided views of the node
    tables: the per-mask arrays are ``(rows, n)`` and rows-dominated
    batches avoid the fancy-index copies a per-popcount gather would
    make.
    """
    b, k, n = pdfs.shape
    node_pdf = np.empty((b, (1 << k) - 1, n))
    node_cdf = np.empty_like(node_pdf)
    singles = lat.by_pop[0]
    node_pdf[:, singles] = pdfs[:, lat.top[singles]]
    node_cdf[:, singles] = cdfs[:, lat.top[singles]]
    last = k - 1
    for c in range(1, k):
        idxs = lat.by_pop[c]
        if idxs.size == 0:
            continue
        for m in idxs:
            pa = node_pdf[:, lat.prev[m] - 1]
            ca = node_cdf[:, lat.prev[m] - 1]
            pb = pdfs[:, lat.top[m]]
            cb = cdfs[:, lat.top[m]]
            if use_max:
                raw = pa * cb                             # Eq. 3
                raw += pb * ca
            else:
                raw = pa * (1.0 - cb)                     # MIN analogue
                raw += pb * (1.0 - ca)
            ints = trapezoid_rows(raw, dt)
            if np.any(ints <= 0.0):
                raise ValueError("cannot normalize an empty density")
            raw /= ints[:, None]
            node_pdf[:, m] = raw
            if c != last:
                node_cdf[:, m] = cdf_rows(raw, dt)
        profile.max_folds += idxs.size * b
    return node_pdf, node_cdf


def _run_controlling_chunk(batch: Sequence[_ControllingJob],
                           lat: SubsetLattice, use_max: bool,
                           ctx: _GridContext) -> None:
    """Subset DP + retention-corrected row extraction for one job batch."""
    dt = ctx.grid.dt
    n = ctx.grid.n
    k = lat.k
    b = len(batch)
    pdfs = np.empty((b, k, n))
    cdfs = np.empty((b, k, n))
    for j, job in enumerate(batch):
        for i in range(k):
            pdfs[j, i] = job.pdfs[i]
            cdfs[j, i] = job.cdfs[i]
    node_pdf, _ = _subset_dp(pdfs, cdfs, lat, use_max, dt, ctx.profile)
    # Fold each positive mask's weight and exact convolution retention into
    # its node row, accumulating one pre-mixed row per distinct delay
    # kernel per job (convolution is linear, so one convolution of the
    # accumulated row equals convolving every Eq. 11 term separately).
    weight_mat = np.stack([job.weights for job in batch])
    job_delays = [[job.delay_for(c) for c in range(1, k + 1)]
                  for job in batch]
    distinct = {(d.mu, d.sigma) for ds in job_delays for d in ds}
    if len(distinct) == 1:
        # One kernel for every mask of every job (any constant-delay
        # model): fold weights and retentions over the whole lattice in a
        # single pass — no per-popcount gathers.
        delay = job_delays[0][0]
        retained = node_pdf @ ctx.retention(delay)        # (b, masks)
        positive = weight_mat > 0.0
        if np.any(positive & (retained <= 0.0)):
            raise ValueError("cannot normalize an empty density")
        # Each node row is normalized, so its post-convolution integral is
        # its retention; the off-grid loss of mask `m` is w_m * (1 - r_m).
        ctx.record_mass((weight_mat * (1.0 - retained))[positive],
                        weight_mat[positive], "subset convolution")
        coef = np.where(positive, weight_mat
                        / np.where(retained > 0.0, retained, 1.0), 0.0)
        rows_all = np.einsum("jm,jmn->jn", coef, node_pdf)
        key = (delay.mu, delay.sigma)
        for j, job in enumerate(batch):
            job.acc[key] = (delay, rows_all[j])
        _finish_jobs(batch, ctx)
        return
    uniform: List[Optional[Normal]] = []
    for ds in job_delays:
        first = ds[0]
        if all(d.mu == first.mu and d.sigma == first.sigma for d in ds):
            uniform.append(first)
        else:
            uniform.append(None)
            break
    if len(uniform) == b and all(d is not None for d in uniform):
        # Each job keeps one kernel across all its masks but kernels
        # differ between jobs (constant-delay models in a multi-scenario
        # batch): one per-job retention row replaces the per-popcount
        # per-kernel gathers below.
        rstack = np.stack([ctx.retention(d) for d in uniform])
        retained = np.einsum("jmn,jn->jm", node_pdf, rstack)
        positive = weight_mat > 0.0
        if np.any(positive & (retained <= 0.0)):
            raise ValueError("cannot normalize an empty density")
        ctx.record_mass((weight_mat * (1.0 - retained))[positive],
                        weight_mat[positive], "subset convolution")
        coef = np.where(positive, weight_mat
                        / np.where(retained > 0.0, retained, 1.0), 0.0)
        rows_all = np.einsum("jm,jmn->jn", coef, node_pdf)
        for j, job in enumerate(batch):
            delay = uniform[j]
            job.acc[(delay.mu, delay.sigma)] = (delay, rows_all[j])
        _finish_jobs(batch, ctx)
        return
    for c_idx in range(k):
        sel = lat.by_pop[c_idx]
        w = weight_mat[:, sel]
        active = np.nonzero((w > 0.0).any(axis=1))[0]
        if active.size == 0:
            continue
        by_delay: Dict[Tuple[float, float], Tuple[Normal, List[int]]] = {}
        for j in active:
            delay = job_delays[j][c_idx]
            by_delay.setdefault((delay.mu, delay.sigma), (delay, []))[1] \
                .append(int(j))
        sub = node_pdf[:, sel]
        for key, (delay, js) in by_delay.items():
            retention = ctx.retention(delay)
            jarr = np.asarray(js)
            subj = sub if jarr.size == b else sub[jarr]
            retained = subj @ retention
            wj = w[jarr]
            positive = wj > 0.0
            if np.any(positive & (retained <= 0.0)):
                raise ValueError("cannot normalize an empty density")
            ctx.record_mass((wj * (1.0 - retained))[positive],
                            wj[positive], "subset convolution")
            coef = np.where(positive,
                            wj / np.where(retained > 0.0, retained, 1.0), 0.0)
            rows_c = np.einsum("jl,jln->jn", coef, subj)
            for t, j in enumerate(js):
                acc = batch[j].acc.get(key)
                if acc is None:
                    batch[j].acc[key] = (delay, rows_c[t])
                else:
                    batch[j].acc[key] = (delay, acc[1] + rows_c[t])
    _finish_jobs(batch, ctx)


def _finish_jobs(batch: Sequence[_ControllingJob],
                 ctx: _GridContext) -> None:
    """Total occurrence weight (in naive mask order) and term counters."""
    for job in batch:
        positive = np.nonzero(job.weights > 0.0)[0]
        total = 0.0
        for idx in positive:            # mask order, like the naive mix
            total += job.weights[idx]
        job.total = total
        ctx.profile.subset_terms += positive.size


def _grid_parity(gate: Gate, spec: GateSpec, in_probs, prep_inputs,
                 delay_for, ctx: _GridContext
                 ) -> Tuple[_DirTerms, _DirTerms]:
    """Parity (XOR/XNOR) TOPs on raw rows via 3^k prefix enumeration.

    Equivalent to the naive 4^k four-value enumeration: non-switching
    inputs collapse into an (even, odd) static-ones parity weight pair,
    switching inputs extend a shared MAX-fold prefix.  The output direction
    follows the initial-value parity (falls start at 1), inverted for XNOR.
    """
    k = len(in_probs)
    check_parity_fanin(k, ctx.parity_cap)
    dt = ctx.grid.dt
    rise_terms: List[Tuple[float, int, np.ndarray]] = []
    fall_terms: List[Tuple[float, int, np.ndarray]] = []

    options = []
    for i, p in enumerate(in_probs):
        entry = prep_inputs[i]
        options.append((
            p,
            (entry[1], entry[2]) if (p.p_rise > 0.0 and entry[0] > 0.0
                                     and entry[1] is not None) else None,
            (entry[4], entry[5]) if (p.p_fall > 0.0 and entry[3] > 0.0
                                     and entry[4] is not None) else None,
        ))

    def fold(state: Optional[Tuple[np.ndarray, np.ndarray]],
             cond: Tuple[np.ndarray, np.ndarray],
             ) -> Tuple[np.ndarray, np.ndarray]:
        # State: (normalized pdf, cdf) of the shared MAX-fold prefix.
        if state is None:
            return cond
        pa, ca = state
        pb, cb = cond
        raw = pa * cb + pb * ca
        ints = float(trapezoid(raw, dx=dt))
        if ints <= 0.0:
            raise ValueError("cannot normalize an empty density")
        pdf = raw / ints
        ctx.profile.max_folds += 1
        return pdf, cdf_rows(pdf[np.newaxis, :], dt)[0]

    def recurse(i: int, even_w: float, odd_w: float,
                state: Optional[Tuple[np.ndarray, np.ndarray]],
                n_switch: int) -> None:
        if even_w <= 0.0 and odd_w <= 0.0:
            return
        if i == k:
            if n_switch == 0 or n_switch % 2 == 0:
                return
            row = state[0]
            rise_w, fall_w = ((even_w, odd_w) if not spec.inverting
                              else (odd_w, even_w))
            if rise_w > 0.0:
                rise_terms.append((rise_w, n_switch, row))
            if fall_w > 0.0:
                fall_terms.append((fall_w, n_switch, row))
            return
        p, rise_cond, fall_cond = options[i]
        # Static 0 keeps the parity, static 1 flips it.
        recurse(i + 1, even_w * p.p_zero + odd_w * p.p_one,
                even_w * p.p_one + odd_w * p.p_zero, state, n_switch)
        if rise_cond is not None:   # rise starts at 0: parity unchanged
            recurse(i + 1, even_w * p.p_rise, odd_w * p.p_rise,
                    fold(state, rise_cond), n_switch + 1)
        if fall_cond is not None:   # fall starts at 1: parity flips
            recurse(i + 1, odd_w * p.p_fall, even_w * p.p_fall,
                    fold(state, fall_cond), n_switch + 1)

    recurse(0, 1.0, 0.0, None, 0)
    ctx.profile.parity_terms += len(rise_terms) + len(fall_terms)

    def collapse(terms: List[Tuple[float, int, np.ndarray]]) -> _DirTerms:
        if not terms:
            return None
        total = 0.0
        acc: Dict[Tuple[float, float], Tuple[Normal, np.ndarray]] = {}
        for w, pop, row in terms:
            total += w
            delay = delay_for(pop)
            retained = float(row @ ctx.retention(delay))
            if retained <= 0.0:
                raise ValueError("cannot normalize an empty density")
            ctx.record_mass(w * (1.0 - retained), w, "parity convolution")
            contrib = (w / retained) * row
            key = (delay.mu, delay.sigma)
            prev = acc.get(key)
            acc[key] = (delay, contrib if prev is None
                        else prev[1] + contrib)
        return total, total, list(acc.values())

    return collapse(rise_terms), collapse(fall_terms)


def _grid_gate_items(gate: Gate, in_probs: Sequence[Prob4],
                     prep_inputs: Sequence[tuple],
                     ctx: _GridContext) -> Tuple[Any, Any]:
    """Phase A dispatch for one gate: per-direction rows, or deferred jobs.

    BUFF/NOT and parity gates resolve immediately to ``_DirTerms``;
    AND/OR-core gates return :class:`_ControllingJob` placeholders whose
    rows are filled by the cross-gate batched DP.
    """
    spec = gate_spec(gate.gate_type)
    delay_for = _delay_for(ctx.delay_model, gate)
    if gate.gate_type in (GateType.BUFF, GateType.NOT):
        # A single term per direction: the final per-segment normalization
        # is scale-invariant, so no retention correction is needed and the
        # row stays a normalized pdf (expected post-convolution mass 1.0).
        entry = prep_inputs[0]
        delay = delay_for(1)
        rise: _DirTerms = ((entry[0], 1.0, [(delay, entry[1])])
                           if entry[1] is not None and entry[0] > 0.0
                           else None)
        fall: _DirTerms = ((entry[3], 1.0, [(delay, entry[4])])
                           if entry[4] is not None and entry[3] > 0.0
                           else None)
        if gate.gate_type is GateType.NOT:
            rise, fall = fall, rise
        return rise, fall
    if spec.is_parity:
        return _grid_parity(gate, spec, in_probs, prep_inputs, delay_for, ctx)
    rise, fall = _controlling_jobs(spec, in_probs, prep_inputs, delay_for,
                                   ctx)
    if spec.inverting:
        rise, fall = fall, rise
    return rise, fall


def _convolve_matrix(matrix: np.ndarray, delays: Sequence[Normal],
                     ctx: _GridContext) -> np.ndarray:
    """Delay-convolve a stack of rows, grouped by kernel (phase B, part 1).

    ``delays[i]`` is the kernel of ``matrix[i]``.  Shared by the per-level
    sweep and the scenario-batched backend: each row is convolved
    independently, so callers may stack rows from any mix of gates,
    directions, and scenarios.
    """
    dt = ctx.grid.dt
    profile = ctx.profile
    groups: Dict[Tuple[float, float], List[int]] = {}
    for i, delay in enumerate(delays):
        if delay.sigma <= 0.0:
            # Deterministic kernels act through their integer bin shift
            # alone, so distinct means sharing a shift (e.g. nearby
            # derate corners) merge into one group.
            key = (float(int(round(delay.mu / dt))), -1.0)
        else:
            key = (delay.mu, delay.sigma)
        groups.setdefault(key, []).append(i)
    # With rows pre-merged per kernel in phase A, levels of a
    # homogeneous-delay design collapse to one group — no scatter copy.
    single = len(groups) == 1
    out = None if single else np.empty_like(matrix)
    for (mu, sigma), idxs in groups.items():
        sel = None if single else np.asarray(idxs)
        src = matrix if single else matrix[sel]
        if sigma < 0.0:
            res = shift_rows(src, int(mu))
            profile.shift_rows += src.shape[0]
        else:
            kernel = ctx.kernel_cache.kernel(Normal(mu, sigma))
            method = ctx.conv_method
            if method == "auto":
                # Always FFT: engine batches are nearly always past the
                # direct/FFT crossover, and a fixed choice keeps results
                # independent of how a level is chunked across workers
                # (FFT and direct differ by ~1e-16 per bin).
                method = "fft"
            res = convolve_rows(src, kernel, method)
            if method == "fft":
                profile.fft_convolutions += src.shape[0]
            else:
                profile.direct_convolutions += src.shape[0]
        if single:
            out = res
        else:
            out[sel] = res
    return out


#: Optional replacement for the run-length segment summation inside
#: :func:`_mix_rows` — ``(rows, counts) -> (len(counts), n)``.  The
#: scenario backend injects a numba-jitted kernel here when the feature
#: flag enables it (see :mod:`repro.core.scenario_jit`).
_SegmentSum = Callable[[np.ndarray, Sequence[int]], np.ndarray]


def _mix_rows(out: np.ndarray, counts: Sequence[int],
              expected: np.ndarray, ctx: _GridContext,
              segment_sum: Optional[_SegmentSum] = None) -> np.ndarray:
    """Eq. 8 mix of convolved rows into per-segment densities (phase B,
    part 2).

    Term weights and per-term convolution retentions were folded into
    the rows in phase A, so the mix is one contiguous segment sum
    followed by a batched normalization (plus clipping FFT noise).
    ``counts[i]`` rows belong to segment ``i`` and ``expected[i]`` is the
    integral its sum should reach (the mass-conservation reference).
    np.add.reduceat walks segments one ufunc reduction at a time;
    summing runs of equal-length segments through a reshape is much
    faster, and most segments are a single row (one delay kernel).
    """
    dt = ctx.grid.dt
    n = ctx.grid.n
    np.maximum(out, 0.0, out=out)
    n_seg = len(counts)
    if segment_sum is not None:
        mixed = segment_sum(out, counts)
    else:
        mixed = np.empty((n_seg, n))
        seg = pos = 0
        while seg < n_seg:
            count = counts[seg]
            run = seg + 1
            while run < n_seg and counts[run] == count:
                run += 1
            block = out[pos:pos + (run - seg) * count]
            if count == 1:
                mixed[seg:run] = block
            else:
                mixed[seg:run] = block.reshape(run - seg, count,
                                               n).sum(axis=1)
            pos += (run - seg) * count
            seg = run
    ints = trapezoid_rows(mixed, dt)
    if np.any(ints <= 0.0):
        raise ValueError("cannot normalize an empty density")
    # Mass audit: retention-corrected segments should integrate to
    # their occurrence weight, BUFF/NOT segments to 1.0; anything lost
    # beyond FFT noise is mass the grid shift/convolution clipped.
    ctx.record_mass(expected - ints, expected, "level mix")
    mixed /= ints[:, None]
    # NaN/Inf sentinel: downstream rows bypass GridDensity validation
    # (``from_trusted``), so this is the fast path's divergence check.
    ctx.profile.finite_checks += 1
    if not np.isfinite(mixed).all():
        raise ValueError(
            "non-finite density after level mix (NaN/Inf sentinel: a "
            "grid operation diverged)")
    return mixed


#: Worker/parent result for one gate: name plus per-direction
#: (weight, conditional values) with ``None`` for absent transitions.
_GateArrays = Tuple[str,
                    Optional[Tuple[float, np.ndarray]],
                    Optional[Tuple[float, np.ndarray]]]


def _grid_process_gates(net_table: Mapping[str, tuple],
                        gates: Sequence[Tuple[Gate, Tuple[Prob4, ...]]],
                        ctx: _GridContext) -> List[_GateArrays]:
    """Phases A+B for a set of independent (same-level) gates.

    Phase A walks the gates in Python but produces only raw weighted rows,
    deferring every AND/OR-core subset DP into jobs that run as cross-gate
    3-D batches; phase B stacks every row of the set into one 2-D matrix,
    convolves kernel groups in batched FFT calls, and mixes/normalizes all
    segments with run-length batched sums — the levelized stacked-array
    core of the engine.  Chunking a level across workers changes only how
    rows are grouped into matrices, never which operations touch a row, so
    worker counts leave results unchanged up to elementwise-division
    rounding (a few ULPs; see :func:`_run_controlling_jobs`).
    """
    grid = ctx.grid
    dt = grid.dt
    profile = ctx.profile
    with profile.phase("subset-eval"):
        prep = _prepare_nets(net_table, dt)
        entries: List[Tuple[int, int, object]] = []   # gate, dir, terms/job
        pending: List[_ControllingJob] = []
        for gate_idx, (gate, in_probs) in enumerate(gates):
            prep_inputs = [prep[src] for src in gate.inputs]
            for direction, item in enumerate(
                    _grid_gate_items(gate, in_probs, prep_inputs, ctx)):
                if item is None:
                    continue
                entries.append((gate_idx, direction, item))
                if isinstance(item, _ControllingJob):
                    pending.append(item)
        _run_controlling_jobs(pending, ctx)
        rows: List[np.ndarray] = []
        delays: List[Normal] = []
        # Per direction: gate, dir, start row, occurrence weight, and the
        # integral its convolved rows should sum to (mass audit reference).
        segments: List[Tuple[int, int, int, float, float]] = []
        for gate_idx, direction, item in entries:
            if isinstance(item, _ControllingJob):
                total = item.total
                expected = total
                dir_rows = list(item.acc.values())
            else:
                total, expected, dir_rows = item
            segments.append((gate_idx, direction, len(rows), total, expected))
            for delay, row in dir_rows:
                rows.append(row)
                delays.append(delay)
    if not rows:
        return [(gate.name, None, None) for gate, _ in gates]

    with profile.phase("convolve"):
        out = _convolve_matrix(np.vstack(rows), delays, ctx)

    with profile.phase("mix"):
        n_seg = len(segments)
        counts = [0] * n_seg
        for idx in range(n_seg - 1):
            counts[idx] = segments[idx + 1][2] - segments[idx][2]
        counts[-1] = out.shape[0] - segments[-1][2]
        expected = np.array([seg[4] for seg in segments])
        mixed = _mix_rows(out, counts, expected, ctx)

    results: List[List[Optional[Tuple[float, np.ndarray]]]] = [
        [None, None] for _ in gates]
    for seg_idx, (gate_idx, direction, _, total, _) in enumerate(segments):
        results[gate_idx][direction] = (total, mixed[seg_idx])
    return [(gates[i][0].name, results[i][0], results[i][1])
            for i in range(len(gates))]


# ---------------------------------------------------------------------------
# Worker pool plumbing (opt-in, grid algebra only).
# ---------------------------------------------------------------------------

_WORKER_CTX: Optional[_GridContext] = None


def _grid_worker_init(grid_params: Tuple[float, float, int],
                      delay_model: DelayModel, parity_cap: int,
                      conv_method: str) -> None:
    global _WORKER_CTX
    grid = TimeGrid(*grid_params)
    _WORKER_CTX = _GridContext(grid=grid, delay_model=delay_model,
                               kernel_cache=KernelCache(grid),
                               wcache=WeightTableCache(),
                               parity_cap=parity_cap,
                               profile=SpstaProfile(),
                               conv_method=conv_method)


_WORK_COUNTERS = ("subset_terms", "parity_terms", "max_folds",
                  "fft_convolutions", "direct_convolutions", "shift_rows",
                  "mass_checks", "clipped_mass", "clip_events",
                  "finite_checks")


def _grid_worker_chunk(
    payload: Tuple[Mapping[str, tuple],
                   Sequence[Tuple[Gate, Tuple[Prob4, ...]]]],
) -> Tuple[List[_GateArrays], Dict[str, int], float]:
    """Process one chunk of a level in a worker; returns results plus the
    work-counter deltas for the parent profile (cache hit/miss counters
    stay per-process).  ``max_clip_fraction`` rides along as a running
    maximum rather than a delta."""
    ctx = _WORKER_CTX
    net_table, gates = payload
    before = {name: getattr(ctx.profile, name) for name in _WORK_COUNTERS}
    results = _grid_process_gates(net_table, gates, ctx)
    deltas = {name: getattr(ctx.profile, name) - before[name]
              for name in _WORK_COUNTERS}
    return results, deltas, ctx.profile.max_clip_fraction


# ---------------------------------------------------------------------------
# Engine driver.
# ---------------------------------------------------------------------------

def run_spsta_fast(netlist: Netlist,
                   stats: Union[InputStats, Mapping[str, InputStats]],
                   delay_model: DelayModel,
                   algebra: TopAlgebra,
                   *,
                   workers: int = 1,
                   profile: Optional[SpstaProfile] = None,
                   max_parity_fanin: Optional[int] = None,
                   seed_tops: Optional[
                       Mapping[str, Tuple[Prob4, NetTops]]] = None,
                   ) -> SpstaResult:
    """Levelized fast SPSTA sweep (see module docstring).

    Called through ``run_spsta(..., engine="fast")``; not meant to be
    invoked directly.  ``seed_tops`` pre-seeds boundary launch points
    (see :func:`repro.core.spsta.run_spsta`).
    """
    if profile is None:
        profile = SpstaProfile()
    profile.engine = "fast"
    profile.algebra = type(algebra).__name__
    profile.circuit = netlist.name
    profile.workers = workers
    parity_cap = (MAX_PARITY_FANIN if max_parity_fanin is None
                  else max_parity_fanin)
    validate_parity_fanins(netlist, parity_cap)
    wcache = WeightTableCache()

    prob4: Dict[str, Prob4] = {}
    tops: Dict[str, NetTops] = {}
    with profile.phase("levelize"):
        levels = netlist.levels
    profile.levels = len(levels)
    with profile.phase("launch"):
        launch_tops(netlist, stats, algebra, prob4, tops, seeds=seed_tops)

    if isinstance(algebra, GridAlgebra):
        _propagate_grid(netlist, levels, prob4, tops, delay_model, algebra,
                        wcache, parity_cap, workers, profile)
    else:
        with profile.phase("propagate"):
            for level in levels:
                for gate in level:
                    in_probs = [prob4[src] for src in gate.inputs]
                    in_tops = [tops[src] for src in gate.inputs]
                    prob4[gate.name] = gate_prob4(gate.gate_type, in_probs)
                    tops[gate.name] = _gate_tops_generic(
                        gate, in_probs, in_tops, delay_model, algebra,
                        wcache, parity_cap, profile)
                    profile.gates_processed += 1

    profile.weight_table_hits = wcache.hits
    profile.weight_table_misses = wcache.misses
    _harvest_kernel_counters(algebra, profile)
    return SpstaResult(netlist.name, algebra, prob4, tops, profile)


def _propagate_grid(netlist: Netlist, levels, prob4, tops, delay_model,
                    algebra: GridAlgebra, wcache: WeightTableCache,
                    parity_cap: int, workers: int,
                    profile: SpstaProfile) -> None:
    """Level-by-level batched sweep for the grid algebra."""
    grid = algebra.grid
    ctx = _GridContext(grid=grid, delay_model=delay_model,
                       kernel_cache=algebra.kernel_cache, wcache=wcache,
                       parity_cap=parity_cap, profile=profile)
    pool: Optional[ProcessPoolExecutor] = None
    if workers > 1:
        pool = ProcessPoolExecutor(
            max_workers=workers, initializer=_grid_worker_init,
            initargs=((grid.start, grid.stop, grid.n), delay_model,
                      parity_cap, ctx.conv_method))
    try:
        for level in levels:
            gates: List[Tuple[Gate, Tuple[Prob4, ...]]] = []
            net_table: Dict[str, tuple] = {}
            for gate in level:
                in_probs = tuple(prob4[src] for src in gate.inputs)
                prob4[gate.name] = gate_prob4(gate.gate_type, in_probs)
                gates.append((gate, in_probs))
                for src in gate.inputs:
                    if src not in net_table:
                        t = tops[src]
                        net_table[src] = (
                            t.rise.weight,
                            t.rise.conditional.values if t.rise.occurs
                            else None,
                            t.fall.weight,
                            t.fall.conditional.values if t.fall.occurs
                            else None)
            if (pool is not None
                    and len(gates) >= workers * MIN_GATES_PER_WORKER):
                results = _run_level_in_pool(pool, net_table, gates, workers,
                                             profile)
            else:
                results = _grid_process_gates(net_table, gates, ctx)
            for name, rise_info, fall_info in results:
                tops[name] = NetTops(_wrap_top(grid, rise_info),
                                     _wrap_top(grid, fall_info))
                profile.gates_processed += 1
    finally:
        if pool is not None:
            pool.shutdown()


def _wrap_top(grid: TimeGrid,
              info: Optional[Tuple[float, np.ndarray]]) -> TopFunction:
    if info is None:
        return TopFunction.absent()
    weight, values = info
    return TopFunction(weight, GridDensity.from_trusted(grid, values))


def _run_level_in_pool(pool: ProcessPoolExecutor,
                       net_table: Mapping[str, tuple],
                       gates: Sequence[Tuple[Gate, Tuple[Prob4, ...]]],
                       workers: int,
                       profile: SpstaProfile) -> List[_GateArrays]:
    """Split one level across the pool; merge work counters back."""
    chunk_size = max(1, (len(gates) + workers - 1) // workers)
    futures = []
    for start in range(0, len(gates), chunk_size):
        chunk = gates[start:start + chunk_size]
        chunk_nets = {src: net_table[src]
                      for gate, _ in chunk for src in gate.inputs}
        futures.append(pool.submit(_grid_worker_chunk, (chunk_nets, chunk)))
    results = []
    for future in futures:
        chunk_results, deltas, worker_max_clip = future.result()
        results.extend(chunk_results)
        for name, delta in deltas.items():
            setattr(profile, name, getattr(profile, name) + delta)
        profile.max_clip_fraction = max(profile.max_clip_fraction,
                                        worker_max_clip)
    return results
