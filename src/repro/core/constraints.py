"""Timing constraints (an SDC subset) for the slack and report engines.

Supports the constraint set that changes setup/hold arithmetic:

- ``create_clock -period P [-name N]``
- ``set_input_delay D [-min] [-port p | all inputs]``
- ``set_output_delay D [-min] [-port p | all outputs]``
- ``set_false_path -to <endpoint>``
- ``set_clock_uncertainty U``

Both a programmatic builder API and a small text parser (one command per
line, ``#`` comments) are provided.  :func:`constrained_slacks` reruns the
forward/backward propagation with the constraint arithmetic:

    setup slack(endpoint) = P - uncertainty - output_delay - arrival_max
    hold  slack(endpoint) = arrival_min - output_delay_min - hold_margin

False-path endpoints are excluded from analysis entirely (the paper's
Fig. 1 caption: "STA and SSTA estimates are pessimistic if false paths are
not excluded").
"""

from __future__ import annotations

from dataclasses import dataclass, field
import shlex
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.delay import DelayModel, UnitDelay
from repro.core.sta import run_sta
from repro.netlist.core import Netlist


@dataclass
class TimingConstraints:
    """Mutable constraint set (the builder API)."""

    clock_period: Optional[float] = None
    clock_name: str = "clk"
    clock_uncertainty: float = 0.0
    hold_margin: float = 0.0
    input_delays: Dict[str, float] = field(default_factory=dict)
    input_delays_min: Dict[str, float] = field(default_factory=dict)
    output_delays: Dict[str, float] = field(default_factory=dict)
    output_delays_min: Dict[str, float] = field(default_factory=dict)
    false_path_endpoints: set = field(default_factory=set)

    # -- builder methods --------------------------------------------------

    def create_clock(self, period: float, name: str = "clk") -> None:
        if period <= 0.0:
            raise ValueError("clock period must be > 0")
        self.clock_period = period
        self.clock_name = name

    def set_input_delay(self, delay: float, port: Optional[str] = None,
                        minimum: bool = False) -> None:
        target = self.input_delays_min if minimum else self.input_delays
        target["*" if port is None else port] = delay

    def set_output_delay(self, delay: float, port: Optional[str] = None,
                         minimum: bool = False) -> None:
        target = self.output_delays_min if minimum else self.output_delays
        target["*" if port is None else port] = delay

    def set_false_path(self, endpoint: str) -> None:
        self.false_path_endpoints.add(endpoint)

    def set_clock_uncertainty(self, uncertainty: float) -> None:
        if uncertainty < 0.0:
            raise ValueError("uncertainty must be >= 0")
        self.clock_uncertainty = uncertainty

    # -- lookups ---------------------------------------------------------

    def input_delay(self, port: str, minimum: bool = False) -> float:
        table = self.input_delays_min if minimum else self.input_delays
        return table.get(port, table.get("*", 0.0))

    def output_delay(self, port: str, minimum: bool = False) -> float:
        table = self.output_delays_min if minimum else self.output_delays
        return table.get(port, table.get("*", 0.0))


class SdcParseError(ValueError):
    """Raised with line context on unsupported or malformed SDC."""


def parse_sdc(text: str) -> TimingConstraints:
    """Parse the supported SDC subset into a :class:`TimingConstraints`."""
    constraints = TimingConstraints()
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            tokens = shlex.split(line)
        except ValueError as exc:
            raise SdcParseError(f"line {line_no}: {exc}") from exc
        command, args = tokens[0], tokens[1:]
        try:
            _apply_command(constraints, command, args)
        except (ValueError, IndexError, KeyError) as exc:
            raise SdcParseError(f"line {line_no}: {exc}: {line!r}") from exc
    return constraints


def _apply_command(constraints: TimingConstraints, command: str,
                   args: List[str]) -> None:
    if command == "create_clock":
        period = float(_option(args, "-period"))
        name = _option(args, "-name", default="clk")
        constraints.create_clock(period, name)
    elif command in ("set_input_delay", "set_output_delay"):
        minimum = "-min" in args
        value, port = _delay_and_port(args)
        if command == "set_input_delay":
            constraints.set_input_delay(value, port, minimum)
        else:
            constraints.set_output_delay(value, port, minimum)
    elif command == "set_false_path":
        constraints.set_false_path(_option(args, "-to"))
    elif command == "set_clock_uncertainty":
        constraints.set_clock_uncertainty(float(args[0]))
    else:
        raise ValueError(f"unsupported SDC command {command!r}")


def _delay_and_port(args: List[str]) -> Tuple[float, Optional[str]]:
    value: Optional[float] = None
    port: Optional[str] = None
    skip = False
    for i, token in enumerate(args):
        if skip:
            skip = False
            continue
        if token == "-port":
            port = args[i + 1]
            skip = True
        elif token in ("-min", "-max"):
            continue
        elif token.startswith("-"):
            raise ValueError(f"unsupported option {token!r}")
        else:
            value = float(token)
    if value is None:
        raise ValueError("missing delay value")
    return value, port


def _option(args: List[str], name: str,
            default: Optional[str] = None) -> str:
    for i, token in enumerate(args):
        if token == name:
            return args[i + 1]
    if default is not None:
        return default
    raise ValueError(f"missing required option {name}")


@dataclass(frozen=True)
class ConstrainedSlack:
    """Per-endpoint setup and hold slack under a constraint set."""

    clock_period: float
    setup_slack: Mapping[str, float]
    hold_slack: Mapping[str, float]
    excluded: Tuple[str, ...]

    @property
    def worst_setup(self) -> float:
        return min(self.setup_slack.values())

    @property
    def worst_hold(self) -> float:
        return min(self.hold_slack.values())

    @property
    def met(self) -> bool:
        return self.worst_setup >= 0.0 and self.worst_hold >= 0.0


def constrained_slacks(netlist: Netlist,
                       constraints: TimingConstraints,
                       delay_model: DelayModel = UnitDelay()
                       ) -> ConstrainedSlack:
    """Setup/hold endpoint slacks under the constraint arithmetic."""
    if constraints.clock_period is None:
        raise ValueError("constraints must define a clock (create_clock)")
    period = constraints.clock_period

    # Primary-input external delays shift launch arrivals; run STA per
    # max/min with the corresponding offsets.
    def arrivals(minimum: bool) -> Mapping[str, float]:
        sta = run_sta(netlist, delay_model)
        base = sta.min_arrival if minimum else sta.max_arrival
        # Offsets propagate additively along paths; with per-input offsets
        # an exact treatment re-runs STA with shifted launches:
        offsets = {net: constraints.input_delay(net, minimum)
                   for net in netlist.inputs}
        if any(offsets.values()):
            shifted: Dict[str, float] = {}
            for net in netlist.launch_points:
                shifted[net] = offsets.get(net, 0.0)
            for gate in netlist.combinational_gates:
                d = delay_model.delay(gate).mu
                fold = min if minimum else max
                shifted[gate.name] = fold(
                    shifted[src] for src in gate.inputs) + d
            return shifted
        return base

    arr_max = arrivals(minimum=False)
    arr_min = arrivals(minimum=True)

    setup: Dict[str, float] = {}
    hold: Dict[str, float] = {}
    excluded: List[str] = []
    for net in netlist.endpoints:
        if net in constraints.false_path_endpoints:
            excluded.append(net)
            continue
        out_max = constraints.output_delay(net, minimum=False)
        out_min = constraints.output_delay(net, minimum=True)
        setup[net] = (period - constraints.clock_uncertainty - out_max
                      - arr_max[net])
        hold[net] = arr_min[net] - out_min - constraints.hold_margin
    if not setup:
        raise ValueError("every endpoint is a false path; nothing to time")
    return ConstrainedSlack(period, setup, hold, tuple(excluded))
