"""Multi-corner and OCV-derated timing — the Fig. 1 "corner" world.

The paper positions corner analysis as the pre-statistical state of the
art: "corner based timing analysis ... captures intra-die variations" by
evaluating at scaled operating points.  This module supplies that baseline
so it can be compared against the statistical engines:

- :class:`Corner` / :func:`run_corners` — evaluate STA and SSTA at scaled
  delay corners (fast / typical / slow by default);
- :func:`ocv_slacks` — on-chip-variation derating: late paths multiplied
  up, early paths multiplied down, the standard pessimistic bracketing;
- :func:`corner_vs_statistical` — the comparison the paper implies: the
  slow-corner arrival vs the statistical 3-sigma arrival at the critical
  endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.core.delay import DelayModel, UnitDelay
from repro.core.ssta import run_ssta
from repro.core.sta import run_sta
from repro.netlist.analysis import critical_endpoint
from repro.netlist.core import Gate, Netlist
from repro.stats.clark import clark_max
from repro.stats.normal import Normal


@dataclass(frozen=True)
class Corner:
    """A named operating point scaling the nominal delays."""

    name: str
    delay_scale: float
    sigma_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.delay_scale <= 0.0:
            raise ValueError("delay_scale must be > 0")
        if self.sigma_scale < 0.0:
            raise ValueError("sigma_scale must be >= 0")


#: The classic three-corner set.
STANDARD_CORNERS: Tuple[Corner, ...] = (
    Corner("fast", 0.8),
    Corner("typical", 1.0),
    Corner("slow", 1.25),
)


@dataclass(frozen=True)
class ScaledDelay:
    """DelayModel wrapper applying a corner's scales to a base model."""

    base: DelayModel
    corner: Corner

    def delay(self, gate: Gate) -> Normal:
        d = self.base.delay(gate)
        return Normal(d.mu * self.corner.delay_scale,
                      d.sigma * self.corner.delay_scale
                      * self.corner.sigma_scale)


@dataclass(frozen=True)
class CornerResult:
    """One corner's timing summary."""

    corner: Corner
    worst_arrival: float             # STA max over endpoints
    worst_endpoint: str
    ssta_worst: Normal               # Clark-combined rise/fall at that net
    spsta_worst: Optional[Normal] = None  # SPSTA conditional at that net


def run_corners(netlist: Netlist,
                corners: Sequence[Corner] = STANDARD_CORNERS,
                base_model: DelayModel = UnitDelay(),
                stats: Optional[object] = None
                ) -> Dict[str, CornerResult]:
    """STA + SSTA at every corner, keyed by corner name.

    With ``stats`` (an :class:`~repro.core.inputs.InputStats` or a
    per-input mapping), every corner additionally carries the SPSTA
    conditional arrival moments of the slower transition at its worst
    endpoint — computed by ONE scenario-batched sweep
    (:func:`repro.core.scenario.run_scenario_batch`) instead of a
    per-corner analysis loop.
    """
    spsta_by_corner: Dict[str, object] = {}
    if stats is not None:
        # Imported lazily: repro.core.scenario itself imports the Corner
        # and ScaledDelay types defined above.
        from repro.core.scenario import (
            run_scenario_batch,
            scenarios_from_corners,
        )
        sweep = run_scenario_batch(
            netlist,
            scenarios_from_corners(tuple(corners), base_model, stats),
            keep="endpoints")
        for scenario, result in zip(sweep.scenarios, sweep.results):
            spsta_by_corner[scenario.name] = result
    results: Dict[str, CornerResult] = {}
    for corner in corners:
        model = ScaledDelay(base_model, corner)
        sta = run_sta(netlist, model)
        worst_net = max(netlist.endpoints,
                        key=lambda n: (sta.max_arrival[n], n))
        ssta = run_ssta(netlist, model)
        pair = ssta.arrivals[worst_net]
        spsta_worst: Optional[Normal] = None
        spsta = spsta_by_corner.get(corner.name)
        if spsta is not None:
            reports = [spsta.report(worst_net, d) for d in ("rise", "fall")]
            occurring = [(mu, sigma) for p, mu, sigma in reports if p > 0.0]
            if occurring:
                mu, sigma = max(occurring)
                spsta_worst = Normal(float(mu), float(sigma))
        results[corner.name] = CornerResult(
            corner=corner,
            worst_arrival=sta.max_arrival[worst_net],
            worst_endpoint=worst_net,
            ssta_worst=clark_max(pair.rise, pair.fall),
            spsta_worst=spsta_worst)
    return results


@dataclass(frozen=True)
class OcvSlack:
    """Setup/hold slacks under on-chip-variation derates."""

    late_derate: float
    early_derate: float
    setup_slack: Mapping[str, float]
    hold_slack: Mapping[str, float]

    @property
    def worst_setup(self) -> float:
        return min(self.setup_slack.values())

    @property
    def worst_hold(self) -> float:
        return min(self.hold_slack.values())


def ocv_slacks(netlist: Netlist, clock_period: float,
               late_derate: float = 1.1, early_derate: float = 0.9,
               hold_margin: float = 0.0,
               base_model: DelayModel = UnitDelay()) -> OcvSlack:
    """Derated setup/hold slacks: the standard OCV bracketing.

    Setup uses data arrivals derated late; hold uses arrivals derated
    early.  Derates must bracket 1 (late >= 1 >= early > 0).
    """
    if clock_period <= 0.0:
        raise ValueError("clock_period must be > 0")
    if not (late_derate >= 1.0 >= early_derate > 0.0):
        raise ValueError("derates must satisfy late >= 1 >= early > 0")
    late = run_sta(netlist,
                   ScaledDelay(base_model, Corner("late", late_derate)))
    early = run_sta(netlist,
                    ScaledDelay(base_model, Corner("early", early_derate)))
    setup = {net: clock_period - late.max_arrival[net]
             for net in netlist.endpoints}
    hold = {net: early.min_arrival[net] - hold_margin
            for net in netlist.endpoints}
    return OcvSlack(late_derate, early_derate, setup, hold)


def corner_vs_statistical(netlist: Netlist,
                          corners: Sequence[Corner] = STANDARD_CORNERS,
                          base_model: DelayModel = UnitDelay()
                          ) -> Dict[str, float]:
    """The Fig. 1 comparison at the critical endpoint: the slow-corner
    deterministic arrival vs SSTA's typical-corner mean + 3 sigma.

    Returns {'slow_corner', 'typical_3sigma', 'pessimism'} where pessimism
    is slow_corner - typical_3sigma (positive when the corner is the more
    pessimistic bound, the usual complaint about corner signoff).
    """
    endpoint, _ = critical_endpoint(netlist)
    results = run_corners(netlist, corners, base_model)
    slow = max(results.values(), key=lambda r: r.worst_arrival)
    typical = results.get("typical")
    if typical is None:
        typical = min(results.values(),
                      key=lambda r: abs(r.corner.delay_scale - 1.0))
    stat3 = typical.ssta_worst.mu + 3.0 * typical.ssta_worst.sigma
    return {
        "slow_corner": slow.worst_arrival,
        "typical_3sigma": stat3,
        "pessimism": slow.worst_arrival - stat3,
        "endpoint": endpoint,
    }
