"""Fitting input statistics from activity traces.

The paper's configurations assert four-value probabilities by fiat; in
practice they come from measured or simulated activity.  Given a per-cycle
settled-value bit stream (from an RTL simulation trace, a logic analyzer
capture, or this library's own :func:`repro.core.sequential.
run_sequential_monte_carlo`), the four-value vector is just the frequency
of consecutive-value pairs:

    (0,0) -> P0,  (1,1) -> P1,  (0,1) -> Pr,  (1,0) -> Pf

plus optional Laplace smoothing so downstream engines never see hard zeros
from a short trace.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

import numpy as np

from repro.core.inputs import InputStats, Prob4
from repro.stats.normal import Normal


def prob4_from_trace(bits: Sequence[int],
                     smoothing: float = 0.0) -> Prob4:
    """Four-value vector from a settled-value bit stream.

    ``smoothing`` adds the given pseudo-count to each of the four cells
    (Laplace); 0 gives the raw maximum-likelihood estimate.
    """
    arr = np.asarray(bits)
    if arr.ndim != 1 or arr.size < 2:
        raise ValueError("trace must be a 1-D sequence of length >= 2")
    if not np.isin(arr, (0, 1)).all():
        raise ValueError("trace values must be 0/1")
    if smoothing < 0.0:
        raise ValueError("smoothing must be >= 0")
    prev = arr[:-1].astype(bool)
    curr = arr[1:].astype(bool)
    counts = np.array([
        float((~prev & ~curr).sum()),   # P0
        float((prev & curr).sum()),     # P1
        float((~prev & curr).sum()),    # Pr
        float((prev & ~curr).sum()),    # Pf
    ]) + smoothing
    total = counts.sum()
    p0, p1, pr, pf = (counts / total).tolist()
    return Prob4(p0, p1, pr, pf)


def input_stats_from_trace(bits: Sequence[int],
                           rise_arrival: Normal = Normal(0.0, 1.0),
                           fall_arrival: Normal = Normal(0.0, 1.0),
                           smoothing: float = 0.5) -> InputStats:
    """An :class:`InputStats` fitted from a trace (smoothed by default so
    rare transitions never collapse to exactly zero probability)."""
    return InputStats(prob4_from_trace(bits, smoothing=smoothing),
                      rise_arrival=rise_arrival,
                      fall_arrival=fall_arrival)


def stats_from_traces(traces: Mapping[str, Sequence[int]],
                      rise_arrival: Normal = Normal(0.0, 1.0),
                      fall_arrival: Normal = Normal(0.0, 1.0),
                      smoothing: float = 0.5) -> Dict[str, InputStats]:
    """Per-net fitted statistics, ready for ``run_spsta(netlist, stats)``."""
    return {net: input_stats_from_trace(bits, rise_arrival, fall_arrival,
                                        smoothing)
            for net, bits in traces.items()}
