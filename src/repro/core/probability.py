"""Four-value signal probability propagation (paper Eq. 9/10 and Eq. 5).

Under the independence assumption (every gate's inputs treated as
independent — the paper's SPSTA "without consideration of signal
correlations", Sec. 4 observation 5), the four-value probability vector of a
gate output follows from initial/final-bit factorization:

For an AND-core gate (non-controlling value 1):

    P1(y) = prod_i P1(x_i)
    Pr(y) = prod_i (P1 + Pr)(x_i) - P1(y)        # all finals one, not all ones
    Pf(y) = prod_i (P1 + Pf)(x_i) - P1(y)   # all initials one, not all ones
    P0(y) = 1 - P1 - Pr - Pf

which is exactly the paper's Eq. 10; the OR-core is the 0/1 mirror image.
Parity (XOR) gates have no controlling value and use exact O(4^k) joint
enumeration instead.  A generic enumeration path exists for every gate and
serves as the test oracle for the closed forms.

The classic two-value signal probability of power estimation (Eq. 5) is also
provided, for static (non-transitioning) input statistics.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Mapping, Sequence, Union

from repro.core.inputs import Prob4
from repro.logic.fourvalue import Logic4, gate_output_value
from repro.logic.gates import GateSpec, GateType, gate_spec
from repro.netlist.core import Netlist

#: Gate fan-in above which the exact 4^k enumeration is refused.
MAX_ENUMERATION_FANIN = 12


def gate_prob4(gate_type: GateType, inputs: Sequence[Prob4]) -> Prob4:
    """Output Prob4 of a combinational gate with independent inputs."""
    spec = gate_spec(gate_type)
    spec.validate_arity(len(inputs))
    if gate_type is GateType.BUFF:
        return inputs[0]
    if gate_type is GateType.NOT:
        return inputs[0].inverted()
    if spec.is_parity:
        return gate_prob4_enumerated(gate_type, inputs)
    result = (_and_core_prob4(inputs) if spec.controlling_value == 0
              else _or_core_prob4(inputs))
    return result.inverted() if spec.inverting else result


def _and_core_prob4(inputs: Sequence[Prob4]) -> Prob4:
    p_one = _prod(p.p_one for p in inputs)
    final_one = _prod(p.final_one_probability for p in inputs)
    init_one = _prod(p.initial_one_probability for p in inputs)
    p_rise = max(final_one - p_one, 0.0)
    p_fall = max(init_one - p_one, 0.0)
    p_zero = max(1.0 - p_one - p_rise - p_fall, 0.0)
    return Prob4(p_zero, p_one, p_rise, p_fall)


def _or_core_prob4(inputs: Sequence[Prob4]) -> Prob4:
    p_zero = _prod(p.p_zero for p in inputs)
    init_zero = _prod(1.0 - p.initial_one_probability for p in inputs)
    final_zero = _prod(1.0 - p.final_one_probability for p in inputs)
    p_rise = max(init_zero - p_zero, 0.0)
    p_fall = max(final_zero - p_zero, 0.0)
    p_one = max(1.0 - p_zero - p_rise - p_fall, 0.0)
    return Prob4(p_zero, p_one, p_rise, p_fall)


def gate_prob4_enumerated(gate_type: GateType,
                          inputs: Sequence[Prob4]) -> Prob4:
    """Exact (under independence) O(4^k) joint enumeration — the oracle for
    the closed forms and the production path for parity gates."""
    spec = gate_spec(gate_type)
    if len(inputs) > MAX_ENUMERATION_FANIN:
        raise ValueError(
            f"fan-in {len(inputs)} exceeds enumeration limit "
            f"{MAX_ENUMERATION_FANIN}")
    acc = {value: 0.0 for value in Logic4}
    for assignment in product(tuple(Logic4), repeat=len(inputs)):
        weight = _prod(p[v] for p, v in zip(inputs, assignment))
        if weight <= 0.0:
            continue
        acc[gate_output_value(spec, assignment)] += weight
    return Prob4(acc[Logic4.ZERO], acc[Logic4.ONE],
                 acc[Logic4.RISE], acc[Logic4.FALL])


def propagate_prob4(netlist: Netlist,
                    launch: Union[Prob4, Mapping[str, Prob4]],
                    ) -> Dict[str, Prob4]:
    """Propagate four-value probabilities from launch points to every net.

    ``launch`` is either a single Prob4 applied to every launch point (the
    paper's setup) or a per-net mapping.
    """
    values: Dict[str, Prob4] = {}
    for net in netlist.launch_points:
        values[net] = launch if isinstance(launch, Prob4) else launch[net]
    for gate in netlist.combinational_gates:
        operands = [values[src] for src in gate.inputs]
        values[gate.name] = gate_prob4(gate.gate_type, operands)
    return values


def signal_probabilities(netlist: Netlist,
                         launch: Union[float, Mapping[str, float]],
                         ) -> Dict[str, float]:
    """Two-value signal probability propagation (paper Eq. 5 per gate).

    ``launch`` gives P(x = 1) at each launch point (or one value for all).
    This is the power-estimation primitive of Sec. 2.2.1; its per-gate
    independent form ignores reconvergent-fanout correlation (use
    :mod:`repro.core.correlation` for the BDD-exact version).
    """
    probs: Dict[str, float] = {}
    for net in netlist.launch_points:
        p = launch if isinstance(launch, (int, float)) else launch[net]
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"P({net}) = {p} outside [0, 1]")
        probs[net] = float(p)
    for gate in netlist.combinational_gates:
        operands = [probs[src] for src in gate.inputs]
        probs[gate.name] = gate_signal_probability(gate.gate_type, operands)
    return probs


def gate_signal_probability(gate_type: GateType,
                            inputs: Sequence[float]) -> float:
    """P(y = 1) of one gate with independent inputs (two-value logic)."""
    spec: GateSpec = gate_spec(gate_type)
    spec.validate_arity(len(inputs))
    if gate_type is GateType.BUFF:
        return inputs[0]
    if gate_type is GateType.NOT:
        return 1.0 - inputs[0]
    if gate_type in (GateType.AND, GateType.NAND):
        p = _prod(inputs)
        return 1.0 - p if spec.inverting else p
    if gate_type in (GateType.OR, GateType.NOR):
        p_zero = _prod(1.0 - x for x in inputs)
        return p_zero if spec.inverting else 1.0 - p_zero
    # Parity: P(odd number of ones); fold the two-value XOR probability.
    p = 0.0
    for x in inputs:
        p = p * (1.0 - x) + (1.0 - p) * x
    return 1.0 - p if spec.inverting else p


def _prod(values) -> float:
    acc = 1.0
    for v in values:
        acc *= v
    return acc
