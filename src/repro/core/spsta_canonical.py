"""Covariance-tracking SPSTA (the paper's Sec. 3.4 moment *and correlation*
computation).

The plain :class:`~repro.core.spsta.MomentAlgebra` treats every gate's
inputs as independent — the configuration the paper evaluated ("we
implemented SPSTA without consideration of signal correlations", Sec. 4,
observation 5).  This module supplies the extension the paper describes but
does not evaluate: conditional arrival distributions carried as *canonical
first-order forms* over one axis per launch-point transition,

    t = a0 + sum_j a_j xi_j + b eta,    xi_j, eta ~ N(0, 1) independent

so path-sharing correlation survives propagation: two cone-sharing inputs
of a reconvergent gate have covariance sum_j a_j a'_j, and Clark's MAX uses
it (Eq. 4 *with* the covariance term).  The WEIGHTED SUM mixes canonical
forms by mixing their linear parts (exact for the conditional mean) and
soaking the across-component spread into the local term (moment-matched).

Cost: each conditional distribution is a dense vector over
2 x #launch-points axes — numpy-cheap for the benchmark sizes here.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.spsta import TopAlgebra
from repro.core.variational import CanonicalForm, ProcessSpace
from repro.netlist.core import Netlist
from repro.stats.normal import Normal


class CanonicalTopAlgebra(TopAlgebra[CanonicalForm]):
    """TOP algebra whose conditionals are canonical forms over the launch
    transitions of one netlist."""

    def __init__(self, netlist: Netlist) -> None:
        names = tuple(f"{net}:{direction}"
                      for net in netlist.launch_points
                      for direction in ("rise", "fall"))
        self.space = ProcessSpace(names)

    # -- construction ---------------------------------------------------

    def from_launch(self, net: str, direction: str,
                    normal: Normal) -> CanonicalForm:
        """A launch transition gets its own axis: fully self-correlated,
        independent of every other launch point."""
        coeffs = np.zeros(self.space.dim)
        coeffs[self.space.index(f"{net}:{direction}")] = normal.sigma
        return CanonicalForm(self.space, normal.mu, coeffs, 0.0)

    def from_normal(self, normal: Normal) -> CanonicalForm:
        """Anonymous Gaussians (e.g. random gate delays) are purely local."""
        return CanonicalForm(self.space, normal.mu, None, normal.var)

    # -- operations -------------------------------------------------------

    def add_delay(self, dist: CanonicalForm, delay: Normal) -> CanonicalForm:
        return dist + self.from_normal(delay)

    def maximum(self, dists: Sequence[CanonicalForm]) -> CanonicalForm:
        acc = dists[0]
        for d in dists[1:]:
            acc = acc.max_with(d)  # Clark with the shared-axis covariance
        return acc

    def minimum(self, dists: Sequence[CanonicalForm]) -> CanonicalForm:
        acc = dists[0]
        for d in dists[1:]:
            acc = acc.min_with(d)
        return acc

    def mix(self, terms: Sequence[Tuple[float, CanonicalForm]]
            ) -> Tuple[float, Optional[CanonicalForm]]:
        total = sum(w for w, _ in terms if w > 0.0)
        if total <= 0.0:
            return 0.0, None
        a0 = 0.0
        coeffs = np.zeros(self.space.dim)
        raw2 = 0.0
        for w, form in terms:
            if w <= 0.0:
                continue
            p = w / total
            a0 += p * form.a0
            coeffs += p * form.coeffs
            raw2 += p * (form.a0 * form.a0 + form.var)
        var_mix = max(raw2 - a0 * a0, 0.0)
        # The mixed linear part explains part of the variance; the rest —
        # within-component local noise plus across-component spread — is
        # moment-matched into the local term.
        local = max(var_mix - float(coeffs @ coeffs), 0.0)
        return total, CanonicalForm(self.space, a0, coeffs, local)

    def stats(self, dist: CanonicalForm) -> Tuple[float, float]:
        return dist.mean, dist.sigma


def endpoint_correlation(result, net_a: str, net_b: str,
                         direction: str = "rise") -> float:
    """Correlation of two nets' conditional arrival times under the
    canonical algebra (paper Eq. 13's corr output).

    ``result`` must come from ``run_spsta(..., algebra=CanonicalTopAlgebra)``.
    Returns 0 if either transition never occurs.
    """
    top_a = getattr(result.tops[net_a], direction)
    top_b = getattr(result.tops[net_b], direction)
    if not (top_a.occurs and top_b.occurs):
        return 0.0
    a, b = top_a.conditional, top_b.conditional
    if not isinstance(a, CanonicalForm):
        raise TypeError("endpoint_correlation needs CanonicalTopAlgebra "
                        "results")
    denom = a.sigma * b.sigma
    if denom <= 0.0:
        return 0.0
    return float(a.coeffs @ b.coeffs) / denom
