"""Liberty (.lib) subset parser feeding the NLDM substrate.

Reads the industry cell-library format's timing-relevant subset:

    library (demo) {
      cell (NAND2) {
        pin (A) { direction : input; capacitance : 1.1; }
        pin (Y) {
          direction : output;
          timing () {
            cell_rise (tbl) {
              index_1 ("0.1, 0.5, 1.0");      /* input slew  */
              index_2 ("0.5, 1.0, 2.0");      /* output load */
              values ("0.4, 0.6, 0.9", \\
                      "0.5, 0.7, 1.0", \\
                      "0.7, 0.9, 1.2");
            }
            rise_transition (tbl) { ... }
          }
        }
      }
    }

Cells are mapped onto gate types by name prefix (NAND2 -> NAND, INV/NOT ->
NOT, ...), and the result is an :class:`~repro.core.nldm.NldmLibrary` ready
for :func:`~repro.core.nldm.run_nldm_sta`.  Constructs outside the subset
(power tables, when-conditions, buses) are skipped, not errors: real .lib
files are full of them.
"""

from __future__ import annotations

from pathlib import Path
import re
from typing import Dict, List, Optional, Tuple, Union

from repro.core.nldm import LookupTable, NldmLibrary, TimingArc
from repro.logic.gates import GateType

_CELL_PREFIXES: Tuple[Tuple[str, GateType], ...] = (
    ("NAND", GateType.NAND),
    ("NOR", GateType.NOR),
    ("XNOR", GateType.XNOR),
    ("XOR", GateType.XOR),
    ("AND", GateType.AND),
    ("OR", GateType.OR),
    ("INV", GateType.NOT),
    ("NOT", GateType.NOT),
    ("BUF", GateType.BUFF),
)


class LibertyParseError(ValueError):
    """Raised on malformed .lib input within the supported subset."""


def gate_type_for_cell(cell_name: str) -> Optional[GateType]:
    """Map a cell name to a gate type by prefix (case-insensitive);
    None for unrecognized cells (they are skipped)."""
    upper = cell_name.upper()
    for prefix, gate_type in _CELL_PREFIXES:
        if upper.startswith(prefix):
            return gate_type
    return None


def _strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    text = re.sub(r"//[^\n]*", " ", text)
    return text.replace("\\\n", " ")


class _Group:
    """One liberty group: ``name (arg) { attributes...; subgroups... }``."""

    def __init__(self, kind: str, arg: str) -> None:
        self.kind = kind
        self.arg = arg
        self.attributes: Dict[str, str] = {}
        self.children: List["_Group"] = []

    def find_all(self, kind: str) -> List["_Group"]:
        return [c for c in self.children if c.kind == kind]


_TOKEN_RE = re.compile(
    r"""(?P<group>[A-Za-z_][\w]*)\s*\(\s*(?P<arg>[^();]*?)\s*\)\s*\{"""
    r"""|(?P<cattr>[A-Za-z_][\w]*)\s*\(\s*(?P<cvalue>[^;{}]*?)\s*\)\s*;"""
    r"""|(?P<close>\})"""
    r"""|(?P<attr>[A-Za-z_][\w]*)\s*:\s*(?P<value>[^;]*);""",
    re.DOTALL)


def _parse_groups(text: str) -> _Group:
    root = _Group("root", "")
    stack = [root]
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.search(text, pos)
        if match is None:
            break
        pos = match.end()
        if match.group("close"):
            if len(stack) == 1:
                raise LibertyParseError("unbalanced '}'")
            stack.pop()
        elif match.group("group"):
            group = _Group(match.group("group"), match.group("arg").strip())
            stack[-1].children.append(group)
            stack.append(group)
        elif match.group("cattr"):
            # Complex attribute: name ("...", "...");  (index_1, values, ...)
            stack[-1].attributes[match.group("cattr")] = \
                match.group("cvalue").strip()
        else:
            stack[-1].attributes[match.group("attr")] = \
                match.group("value").strip()
    if len(stack) != 1:
        raise LibertyParseError("unbalanced '{'")
    return root


def _parse_float_list(raw: str) -> Tuple[float, ...]:
    cleaned = raw.replace('"', " ").replace(",", " ")
    try:
        return tuple(float(tok) for tok in cleaned.split())
    except ValueError as exc:
        raise LibertyParseError(f"bad numeric list: {raw!r}") from exc


def _parse_table(group: _Group) -> LookupTable:
    try:
        slews = _parse_float_list(group.attributes["index_1"])
        loads = _parse_float_list(group.attributes["index_2"])
        flat = _parse_float_list(group.attributes["values"])
    except KeyError as exc:
        raise LibertyParseError(
            f"table missing {exc.args[0]}") from exc
    if len(flat) != len(slews) * len(loads):
        raise LibertyParseError(
            f"table has {len(flat)} values for {len(slews)}x{len(loads)} "
            f"axes")
    rows = tuple(tuple(flat[i * len(loads):(i + 1) * len(loads)])
                 for i in range(len(slews)))
    return LookupTable(slews, loads, rows)


def parse_liberty(text: str,
                  wire_capacitance: float = 0.5) -> NldmLibrary:
    """Parse .lib text into an :class:`NldmLibrary`.

    For each recognized cell the first output-pin ``timing()`` group with a
    ``cell_rise`` (or ``cell_fall``) table is used; rise and fall are
    averaged when both exist (this library models direction-independent
    delays).  Input capacitance is averaged over the cell's input pins.
    """
    root = _parse_groups(_strip_comments(text))
    libraries = root.find_all("library")
    if not libraries:
        raise LibertyParseError("no library group found")
    arcs: Dict[GateType, TimingArc] = {}
    for cell in libraries[0].find_all("cell"):
        gate_type = gate_type_for_cell(cell.arg)
        if gate_type is None or gate_type in arcs:
            continue
        arc = _cell_arc(cell)
        if arc is not None:
            arcs[gate_type] = arc
    if not arcs:
        raise LibertyParseError("no usable cells in library")
    return NldmLibrary(arcs=arcs, wire_capacitance=wire_capacitance)


def _cell_arc(cell: _Group) -> Optional[TimingArc]:
    input_caps: List[float] = []
    delay_tables: List[LookupTable] = []
    slew_tables: List[LookupTable] = []
    for pin in cell.find_all("pin"):
        direction = pin.attributes.get("direction", "").strip().lower()
        if direction == "input":
            cap = pin.attributes.get("capacitance")
            if cap is not None:
                input_caps.append(float(cap))
        elif direction == "output":
            for timing in pin.find_all("timing"):
                for kind in ("cell_rise", "cell_fall"):
                    for table in timing.find_all(kind):
                        delay_tables.append(_parse_table(table))
                for kind in ("rise_transition", "fall_transition"):
                    for table in timing.find_all(kind):
                        slew_tables.append(_parse_table(table))
    if not delay_tables or not slew_tables:
        return None
    return TimingArc(
        delay=_average_tables(delay_tables),
        output_slew=_average_tables(slew_tables),
        input_capacitance=(sum(input_caps) / len(input_caps)
                           if input_caps else 1.0))


def _average_tables(tables: List[LookupTable]) -> LookupTable:
    first = tables[0]
    for other in tables[1:]:
        if (other.slew_axis != first.slew_axis
                or other.load_axis != first.load_axis):
            raise LibertyParseError(
                "rise/fall tables with different axes are not supported")
    rows = tuple(
        tuple(sum(t.values[i][j] for t in tables) / len(tables)
              for j in range(len(first.load_axis)))
        for i in range(len(first.slew_axis)))
    return LookupTable(first.slew_axis, first.load_axis, rows)


def parse_liberty_file(path: Union[str, Path],
                       wire_capacitance: float = 0.5) -> NldmLibrary:
    return parse_liberty(Path(path).read_text(), wire_capacitance)


def demo_library(wire_capacitance: float = 0.5) -> NldmLibrary:
    """The bundled demo cell library (``src/repro/core/data/demo.lib``):
    every combinational gate type characterized with monotone tables."""
    return parse_liberty_file(Path(__file__).parent / "data" / "demo.lib",
                              wire_capacitance)
