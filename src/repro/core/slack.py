"""Required-time and slack propagation (the backward half of STA).

Forward propagation gives each net's latest arrival; backward propagation
gives the latest *required* time such that every endpoint still meets the
clock: a net's required time is the minimum over its fanout gates of
(gate's required time - gate delay).  Slack = required - arrival; nets with
slack <= 0 form the critical sub-network that optimization (e.g.
:mod:`repro.opt.sizing`) must attack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.core.delay import DelayModel, UnitDelay
from repro.core.sta import run_sta
from repro.netlist.core import Netlist


@dataclass(frozen=True)
class SlackResult:
    """Per-net arrival, required time, and slack for one clock period."""

    clock_period: float
    arrival: Mapping[str, float]
    required: Mapping[str, float]
    slack: Mapping[str, float]

    @property
    def worst_slack(self) -> float:
        return min(self.slack.values())

    def critical_nets(self, margin: float = 0.0) -> List[str]:
        """Nets whose slack is within ``margin`` of the worst slack."""
        threshold = self.worst_slack + margin
        return sorted(net for net, s in self.slack.items()
                      if s <= threshold + 1e-12)

    def is_critical(self, net: str, margin: float = 0.0) -> bool:
        return self.slack[net] <= self.worst_slack + margin + 1e-12


def compute_slacks(netlist: Netlist, clock_period: float,
                   delay_model: DelayModel = UnitDelay()) -> SlackResult:
    """Forward arrivals + backward required times over the whole netlist.

    Endpoints are required at the clock period; nets with no timed fanout
    and no endpoint role inherit an infinite requirement (they can never be
    critical).
    """
    if clock_period <= 0.0:
        raise ValueError("clock_period must be > 0")
    sta = run_sta(netlist, delay_model)
    arrival: Dict[str, float] = dict(sta.max_arrival)
    endpoints = set(netlist.endpoints)
    required: Dict[str, float] = {
        net: (clock_period if net in endpoints else float("inf"))
        for net in netlist.nets}
    for gate in reversed(netlist.combinational_gates):
        delay = delay_model.delay(gate).mu
        budget = required[gate.name] - delay
        for src in gate.inputs:
            if budget < required[src]:
                required[src] = budget
    slack = {net: required[net] - arrival[net] for net in netlist.nets}
    return SlackResult(clock_period, arrival, required, slack)


def slack_histogram(result: SlackResult,
                    bin_width: float = 1.0) -> List[Tuple[float, int]]:
    """(bin lower edge, count) pairs over finite slacks — the classic
    slack-distribution view of timing closure progress."""
    if bin_width <= 0.0:
        raise ValueError("bin_width must be > 0")
    finite = [s for s in result.slack.values() if s != float("inf")]
    if not finite:
        return []
    import math
    lo = math.floor(min(finite) / bin_width) * bin_width
    hi = max(finite)
    bins: Dict[float, int] = {}
    edge = lo
    while edge <= hi:
        bins[round(edge, 9)] = 0
        edge += bin_width
    for s in finite:
        edge = math.floor((s - lo) / bin_width) * bin_width + lo
        bins[round(edge, 9)] += 1
    return sorted(bins.items())
