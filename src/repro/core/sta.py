"""Deterministic static timing analysis — the Fig. 1 "two bounds".

Classic input-oblivious STA: every net is assumed to toggle; the latest
(earliest) arrival at a gate output is the max (min) over input arrivals
plus the gate delay.  With the paper's unit delay this reduces to structural
depth, and the min/max pair brackets every path delay in the circuit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.core.delay import DelayModel, UnitDelay
from repro.netlist.core import Netlist


@dataclass(frozen=True)
class StaResult:
    """Min/max deterministic arrival time per net, plus endpoint summary."""

    netlist_name: str
    min_arrival: Mapping[str, float]
    max_arrival: Mapping[str, float]

    def endpoint_window(self, net: str) -> Tuple[float, float]:
        """The (earliest, latest) arrival bound at a net."""
        return self.min_arrival[net], self.max_arrival[net]


def run_sta(netlist: Netlist, delay_model: DelayModel = UnitDelay(),
            launch_arrival: float = 0.0) -> StaResult:
    """Propagate deterministic min/max arrivals through the netlist.

    Random delay models contribute their mean (STA has no notion of
    variance; the statistical engines handle sigma).
    """
    min_arr: Dict[str, float] = {}
    max_arr: Dict[str, float] = {}
    for net in netlist.launch_points:
        min_arr[net] = launch_arrival
        max_arr[net] = launch_arrival
    for gate in netlist.combinational_gates:
        d = delay_model.delay(gate).mu
        min_arr[gate.name] = min(min_arr[src] for src in gate.inputs) + d
        max_arr[gate.name] = max(max_arr[src] for src in gate.inputs) + d
    return StaResult(netlist.name, min_arr, max_arr)
