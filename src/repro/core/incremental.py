"""Incremental SSTA — the "incremental, suitable for optimization" property.

The paper credits block-based engines with being "efficient, incremental,
and suitable for optimization" (Sec. 1).  This module delivers that
property for the SSTA baseline: after a local change (a gate's delay, e.g.
from sizing), only the affected fan-out cone is re-evaluated, and
propagation stops early at gates whose arrival distributions come out
unchanged (the change was masked by a dominant side input).

Usage::

    inc = IncrementalSsta(netlist, delay_model)
    inc.arrivals[net]                 # same results as run_ssta
    stats = inc.update_gate("G42")    # gate G42's delay changed
    stats.recomputed, stats.skipped   # work accounting
"""

from __future__ import annotations

from dataclasses import dataclass
import heapq
from typing import Dict, List, Mapping, Set, Tuple, Union

from repro.core.delay import DelayModel, UnitDelay
from repro.core.ssta import ArrivalPair, _gate_output, run_ssta
from repro.netlist.core import Netlist
from repro.stats.normal import Normal


@dataclass(frozen=True)
class UpdateStats:
    """Work accounting for one incremental update."""

    recomputed: int
    skipped: int
    cone_size: int


class IncrementalSsta:
    """SSTA with incremental re-analysis after local delay changes."""

    def __init__(self, netlist: Netlist,
                 delay_model: DelayModel = UnitDelay(),
                 launch: Union[ArrivalPair, Mapping[str, ArrivalPair],
                               None] = None,
                 tolerance: float = 1e-12) -> None:
        self.netlist = netlist
        self._launch = launch
        self._tolerance = tolerance
        self._delays: Dict[str, Normal] = {
            g.name: delay_model.delay(g)
            for g in netlist.combinational_gates}
        self._order = {g.name: i
                       for i, g in enumerate(netlist.combinational_gates)}
        self.arrivals: Dict[str, ArrivalPair] = dict(
            run_ssta(netlist, _FixedDelays(self._delays), launch).arrivals)

    def set_delay(self, gate_name: str, delay: Normal) -> UpdateStats:
        """Change one gate's delay and repair the affected cone."""
        if gate_name not in self._delays:
            raise KeyError(f"{gate_name} is not a combinational gate")
        self._delays[gate_name] = delay
        return self.update_gate(gate_name)

    def update_gate(self, gate_name: str) -> UpdateStats:
        """Re-evaluate ``gate_name`` and propagate only real changes.

        A worklist in topological order — a min-heap keyed by each gate's
        topological rank, so every pop is O(log cone) instead of the
        O(cone) scan a plain ``min`` over a set costs (quadratic over a
        deep cone).  A gate whose recomputed arrival pair matches the
        stored one (within tolerance) does not enqueue its fanouts — the
        early termination that makes incremental analysis cheap in
        practice.
        """
        if gate_name not in self._order:
            raise KeyError(f"{gate_name} is not a combinational gate")
        heap: List[Tuple[int, str]] = [(self._order[gate_name], gate_name)]
        queued: Set[str] = {gate_name}  # guards duplicate pushes
        cone: Set[str] = set()
        recomputed = 0
        skipped = 0
        model = _FixedDelays(self._delays)
        while heap:
            _, current = heapq.heappop(heap)
            queued.discard(current)
            cone.add(current)
            gate = self.netlist.gates[current]
            operands = [self.arrivals[src] for src in gate.inputs]
            new_pair = _gate_output(gate, operands, model.delay(gate))
            recomputed += 1
            if self._unchanged(self.arrivals[current], new_pair):
                skipped += 1
                continue
            self.arrivals[current] = new_pair
            for sink in self.netlist.fanouts(current):
                # skip DFFs (cycle boundary) and already-queued sinks
                if sink in self._order and sink not in queued:
                    queued.add(sink)
                    heapq.heappush(heap, (self._order[sink], sink))
        # cone counts every gate we *touched*; downstream gates never
        # reached (thanks to early termination) are the savings.
        return UpdateStats(recomputed=recomputed, skipped=skipped,
                           cone_size=len(cone))

    def _unchanged(self, old: ArrivalPair, new: ArrivalPair) -> bool:
        tol = self._tolerance
        return (abs(old.rise.mu - new.rise.mu) <= tol
                and abs(old.rise.sigma - new.rise.sigma) <= tol
                and abs(old.fall.mu - new.fall.mu) <= tol
                and abs(old.fall.sigma - new.fall.sigma) <= tol)

    def full_recompute(self) -> None:
        """Reference full pass (for testing and resync)."""
        self.arrivals = dict(
            run_ssta(self.netlist, _FixedDelays(self._delays),
                     self._launch).arrivals)


class _FixedDelays:
    """DelayModel over an explicit per-gate table."""

    def __init__(self, delays: Mapping[str, Normal]) -> None:
        self._delays = delays

    def delay(self, gate) -> Normal:
        return self._delays[gate.name]
