"""Incremental SPSTA — worklist re-timing for the TOP-function engines.

:class:`repro.core.incremental.IncrementalSsta` delivers the paper's
"incremental, suitable for optimization" property (Sec. 1) for the SSTA
baseline only.  This module generalizes the same heapq-worklist pattern to
the SPSTA engines: after a local delay change (a gate resize, a derate
perturbation), only the affected fan-out cone's TOP functions are
re-evaluated, and propagation stops early at gates whose recomputed TOPs
come out unchanged.

Two properties make the incremental result *provably identical* to a fresh
full pass (and the conformance harness checks it, see
``repro.verify.policies`` pairs ``incremental-vs-full/*``):

- a gate's four-value probabilities (:func:`~repro.core.probability.
  gate_prob4`) depend only on input probabilities, never on delays, so a
  delay-only change leaves every ``Prob4`` untouched and only TOP functions
  need repair;
- each repaired gate calls the *same* per-gate kernel the naive engine
  uses (:func:`repro.core.spsta._gate_tops`) on the same inputs, and the
  min-heap pops gates in topological rank order, so a gate is recomputed
  only after every changed input has been repaired.

With the default ``tolerance=0.0`` the early-termination test is exact
equality, so stopping cannot hide a real change: the repaired state is
bit-identical to a full pass for every algebra.  A positive tolerance
trades that guarantee for a cheaper cone (documented approximation).

Usage::

    inc = IncrementalSpsta(netlist, CONFIG_I, delay_model, MomentAlgebra())
    inc.tops[net]                       # same TOPs as run_spsta
    stats = inc.set_delay("G42", Normal(0.8, 0.04))
    stats.recomputed, stats.skipped     # work accounting
    inc.result().report(net, "rise")    # ordinary SpstaResult view
"""

from __future__ import annotations

import heapq
from typing import (
    Dict,
    Generic,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
    TypeVar,
    Union,
)

import numpy as np

from repro.core.delay import DelayModel, UnitDelay
from repro.core.incremental import UpdateStats
from repro.core.inputs import InputStats, Prob4
from repro.core.probability import gate_prob4
from repro.core.spsta import (
    MAX_PARITY_FANIN,
    MomentAlgebra,
    NetTops,
    SpstaResult,
    TopAlgebra,
    TopFunction,
    _gate_tops,
    launch_tops,
    validate_parity_fanins,
)
from repro.netlist.core import Netlist
from repro.stats.grid import GridDensity
from repro.stats.mixture import GaussianMixture
from repro.stats.normal import Normal

D = TypeVar("D")


class IncrementalSpsta(Generic[D]):
    """SPSTA with incremental cone re-timing after local delay changes.

    ``delay_model`` is the base model; :meth:`set_delay` lays per-gate
    :class:`Normal` overrides on top of it (the optimizer's moves), and
    :meth:`clear_delay` removes one.  The effective model is exposed via
    :meth:`effective_delay_model` so callers can run an ordinary
    ``run_spsta`` pass over the *same* delays — the conformance check.
    """

    def __init__(self, netlist: Netlist,
                 stats: Union[InputStats, Mapping[str, InputStats]],
                 delay_model: DelayModel = UnitDelay(),
                 algebra: Optional[TopAlgebra[D]] = None,
                 *,
                 tolerance: float = 0.0,
                 max_parity_fanin: Optional[int] = None) -> None:
        if tolerance < 0.0:
            raise ValueError("tolerance must be >= 0")
        self.netlist = netlist
        self.algebra: TopAlgebra[D] = (MomentAlgebra()  # type: ignore
                                       if algebra is None else algebra)
        self._stats = stats
        self._tolerance = tolerance
        self._parity_cap = (MAX_PARITY_FANIN if max_parity_fanin is None
                            else max_parity_fanin)
        validate_parity_fanins(netlist, self._parity_cap)
        self._overrides: Dict[str, Normal] = {}
        self._model = _OverrideDelays(delay_model, self._overrides)
        self._order = {g.name: i
                       for i, g in enumerate(netlist.combinational_gates)}
        self.prob4: Dict[str, Prob4] = {}
        self.tops: Dict[str, NetTops[D]] = {}
        self.full_recompute()

    # -- delay edits ------------------------------------------------------

    def set_delay(self, gate_name: str, delay: Normal,
                  *, full: bool = False) -> UpdateStats:
        """Override one gate's delay and repair the affected cone.

        ``full=True`` repairs with a whole-netlist recompute instead of
        the worklist — the full-analysis-per-move pattern the benchmark
        (``benchmarks/test_bench_opt.py``) measures the incremental path
        against.  Both repairs land in the identical state.
        """
        if gate_name not in self._order:
            raise KeyError(f"{gate_name} is not a combinational gate")
        self._overrides[gate_name] = delay
        if full:
            self.full_recompute()
            n = len(self._order)
            return UpdateStats(recomputed=n, skipped=0, cone_size=n)
        return self.update_gate(gate_name)

    def clear_delay(self, gate_name: str) -> UpdateStats:
        """Drop a gate's override (back to the base model) and repair."""
        if gate_name not in self._order:
            raise KeyError(f"{gate_name} is not a combinational gate")
        self._overrides.pop(gate_name, None)
        return self.update_gate(gate_name)

    def effective_delay_model(self) -> DelayModel:
        """A frozen snapshot of base model + current overrides.

        Feeding this to :func:`repro.core.spsta.run_spsta` reproduces the
        incremental state's delays exactly — the full-pass side of the
        ``incremental-vs-full`` conformance pairs.
        """
        return _OverrideDelays(self._model.base, dict(self._overrides))

    # -- worklist repair --------------------------------------------------

    def update_gate(self, gate_name: str) -> UpdateStats:
        """Re-evaluate ``gate_name`` and propagate only real changes.

        The worklist is a min-heap keyed by topological rank (the
        :class:`~repro.core.incremental.IncrementalSsta` pattern): every
        pop is O(log cone), and a gate is popped only after all of its
        already-queued fan-in repairs.  A gate whose recomputed TOPs match
        the stored ones (exactly, at the default tolerance 0) does not
        enqueue its fanouts.
        """
        if gate_name not in self._order:
            raise KeyError(f"{gate_name} is not a combinational gate")
        heap: List[Tuple[int, str]] = [(self._order[gate_name], gate_name)]
        queued: Set[str] = {gate_name}
        cone: Set[str] = set()
        recomputed = 0
        skipped = 0
        while heap:
            _, current = heapq.heappop(heap)
            queued.discard(current)
            cone.add(current)
            gate = self.netlist.gates[current]
            in_probs = [self.prob4[src] for src in gate.inputs]
            in_tops = [self.tops[src] for src in gate.inputs]
            new_tops = _gate_tops(gate, in_probs, in_tops, self._model,
                                  self.algebra, self._parity_cap)
            recomputed += 1
            if self._unchanged(self.tops[current], new_tops):
                skipped += 1
                continue
            self.tops[current] = new_tops
            for sink in self.netlist.fanouts(current):
                # skip DFFs (cycle boundary) and already-queued sinks
                if sink in self._order and sink not in queued:
                    queued.add(sink)
                    heapq.heappush(heap, (self._order[sink], sink))
        return UpdateStats(recomputed=recomputed, skipped=skipped,
                           cone_size=len(cone))

    def full_recompute(self) -> None:
        """Reference full pass (initialisation, testing, resync).

        Identical math to ``run_spsta(engine="naive")``: shared launch
        seeding plus the shared per-gate kernel in topological order.
        """
        prob4: Dict[str, Prob4] = {}
        tops: Dict[str, NetTops[D]] = {}
        launch_tops(self.netlist, self._stats, self.algebra, prob4, tops)
        for gate in self.netlist.combinational_gates:
            in_probs = [prob4[src] for src in gate.inputs]
            in_tops = [tops[src] for src in gate.inputs]
            prob4[gate.name] = gate_prob4(gate.gate_type, in_probs)
            tops[gate.name] = _gate_tops(gate, in_probs, in_tops,
                                         self._model, self.algebra,
                                         self._parity_cap)
        self.prob4 = prob4
        self.tops = tops

    def result(self) -> SpstaResult[D]:
        """The current state as an ordinary :class:`SpstaResult` view."""
        return SpstaResult(self.netlist.name, self.algebra, self.prob4,
                           self.tops)

    # -- change detection -------------------------------------------------

    def _unchanged(self, old: NetTops[D], new: NetTops[D]) -> bool:
        return (self._top_close(old.rise, new.rise)
                and self._top_close(old.fall, new.fall))

    def _top_close(self, a: TopFunction[D], b: TopFunction[D]) -> bool:
        if a.occurs != b.occurs:
            return False
        if not a.occurs:
            return True
        if abs(a.weight - b.weight) > self._tolerance:
            return False
        return conditionals_close(a.conditional, b.conditional,
                                  self._tolerance)


def conditionals_close(a: D, b: D, tolerance: float) -> bool:
    """Whether two conditional distributions agree within ``tolerance``.

    At tolerance 0 this is exact (bitwise) equality of the abstraction's
    parameters, which is what makes early termination safe: a gate whose
    recomputed TOPs compare equal feeds its fanouts the *same values* a
    full pass would, so not re-visiting them cannot change anything.
    """
    if isinstance(a, Normal) and isinstance(b, Normal):
        return (abs(a.mu - b.mu) <= tolerance
                and abs(a.sigma - b.sigma) <= tolerance)
    if isinstance(a, GaussianMixture) and isinstance(b, GaussianMixture):
        if len(a.components) != len(b.components):
            return False
        return all(abs(ca.weight - cb.weight) <= tolerance
                   and abs(ca.mu - cb.mu) <= tolerance
                   and abs(ca.sigma - cb.sigma) <= tolerance
                   for ca, cb in zip(a.components, b.components))
    if isinstance(a, GridDensity) and isinstance(b, GridDensity):
        if tolerance == 0.0:
            return bool(np.array_equal(a.values, b.values))
        return bool(np.max(np.abs(a.values - b.values)) <= tolerance)
    raise TypeError(
        f"no closeness rule for conditional type {type(a).__name__}")


class IncrementalDivergenceError(ValueError):
    """The incremental state diverged from a fresh full pass."""


def fresh_algebra_like(algebra: TopAlgebra[D]) -> TopAlgebra[D]:
    """A new algebra instance with the same configuration.

    Full-pass conformance reruns need a *fresh* algebra (its own caches
    and ledger) that is nevertheless configured identically, so both
    sides compute the same values.
    """
    from repro.core.spsta import GridAlgebra, MixtureAlgebra
    if isinstance(algebra, MixtureAlgebra):
        return MixtureAlgebra(algebra.max_components)  # type: ignore
    if isinstance(algebra, GridAlgebra):
        return GridAlgebra(algebra.grid,  # type: ignore
                           algebra.conv_method)
    return type(algebra)()


def assert_matches_full(inc: IncrementalSpsta[D],
                        tolerance: float = 0.0) -> int:
    """Check the incremental state against a fresh naive full pass.

    Runs ``run_spsta(engine="naive")`` over :meth:`IncrementalSpsta.
    effective_delay_model` with a fresh identically-configured algebra and
    compares every net's TOPs at ``tolerance`` (default: bit-exact).
    Returns the number of nets compared; raises
    :class:`IncrementalDivergenceError` listing every divergent net.
    This is the optimizer's per-move conformance hook
    (``optimize_spsta(verify_moves=True)``); the sweep-level counterpart
    lives in :mod:`repro.verify.harness`.
    """
    from repro.core.spsta import run_spsta
    full = run_spsta(inc.netlist, inc._stats,
                     inc.effective_delay_model(),
                     fresh_algebra_like(inc.algebra), engine="naive")
    divergent: List[str] = []
    for net, expected in full.tops.items():
        got = inc.tops.get(net)
        if got is None:
            divergent.append(f"{net}: missing from incremental state")
            continue
        for direction in ("rise", "fall"):
            a = getattr(got, direction)
            b = getattr(expected, direction)
            if a.occurs != b.occurs or (a.occurs and (
                    abs(a.weight - b.weight) > tolerance
                    or not conditionals_close(a.conditional, b.conditional,
                                              tolerance))):
                divergent.append(f"{net}/{direction}")
    if divergent:
        raise IncrementalDivergenceError(
            f"incremental state diverged from a full pass on "
            f"{len(divergent)} net/direction(s): "
            + ", ".join(divergent[:8])
            + (" ..." if len(divergent) > 8 else ""))
    return len(full.tops)


class _OverrideDelays:
    """Base :class:`DelayModel` with per-gate Normal overrides on top.

    Overridden gates return their override for *every* switching-input
    count (an explicit move pins the delay); other gates delegate to the
    base model, preserving its MIS behaviour if it has one.
    """

    def __init__(self, base: DelayModel,
                 overrides: Dict[str, Normal]) -> None:
        self.base = base
        self._overrides = overrides

    def fingerprint_payload(self) -> object:
        """Canonical identity for :func:`repro.sim.checkpoint.
        delay_fingerprint`: the base model plus the override mapping
        (hashed in sorted-key order), so two override stacks that apply
        the same delays fingerprint equally regardless of edit order."""
        return (self.base, dict(self._overrides))

    def delay(self, gate) -> Normal:
        override = self._overrides.get(gate.name)
        if override is not None:
            return override
        return self.base.delay(gate)

    def delay_mis(self, gate, n_switching: int) -> Normal:
        override = self._overrides.get(gate.name)
        if override is not None:
            return override
        if hasattr(self.base, "delay_mis"):
            return self.base.delay_mis(gate, n_switching)
        return self.base.delay(gate)
