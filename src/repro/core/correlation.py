"""Higher-order correlations and exact signal probability (paper Sec. 3.5).

Per-gate independent propagation (Eq. 5/10) is wrong in the presence of
reconvergent fanout: the inputs of the reconverging gate share support and
are correlated.  The paper sketches two remedies, both implemented here:

1. **Exact, via symbolic simulation**: build each net's BDD over the launch
   points and evaluate Eq. 5 on it (:func:`exact_signal_probabilities`);
   correlations of any order are implicitly exact.  Pairwise and
   higher-order covariances of nets (Eq. 14-16) are evaluated on the same
   BDDs (:func:`pairwise_covariance_bdd`, :func:`higher_order_covariance`).

2. **Truncated, via first-order covariance tracking**: propagate P plus a
   sparse matrix of pairwise covariances, applying

       P(x1 x2)    = P(x1) P(x2) + cov(x1, x2)                 (Eq. 15)
       P(x1 + x2)  = P(x1) + P(x2) - P(x1 x2)                  (Eq. 17)
       cov(x1 x2, k) ~ P(x1) cov(x2, k) + P(x2) cov(x1, k)     (truncation)

   dropping third- and higher-order covariances (the accuracy/efficiency
   trade-off the paper describes).  Covariances below ``threshold`` are
   pruned to keep the matrix sparse.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Mapping, Sequence, Tuple, Union

from repro.logic.bdd import TRUE, BDDManager
from repro.logic.gates import GateType, gate_spec
from repro.netlist.core import Netlist
from repro.power.density import build_net_bdds


def exact_signal_probabilities(netlist: Netlist,
                               launch_probs: Union[float, Mapping[str, float]]
                               ) -> Dict[str, float]:
    """BDD-exact P(net = 1) for independent launch points (Sec. 3.5)."""
    manager = BDDManager()
    funcs = build_net_bdds(netlist, manager)
    probs = _launch_probabilities(netlist, launch_probs)
    return {net: manager.signal_probability(f, probs)
            for net, f in funcs.items()}


def pairwise_covariance_bdd(manager: BDDManager, f: int, g: int,
                            probabilities: Mapping[str, float]) -> float:
    """cov(f, g) = P(f g) - P(f) P(g) on BDDs (Eq. 15/16)."""
    probs = dict(probabilities)
    p_fg = manager.signal_probability(manager.apply_and(f, g), probs)
    p_f = manager.signal_probability(f, probs)
    p_g = manager.signal_probability(g, probs)
    return p_fg - p_f * p_g


def higher_order_covariance(manager: BDDManager, funcs: Sequence[int],
                            probabilities: Mapping[str, float]) -> float:
    """n-th order covariance E[prod_i (x_i - E x_i)] of n+1 functions
    (Eq. 14), by inclusion-exclusion over subsets:

        E[prod (x_i - p_i)]
            = sum_{S} prod_{i not in S} (-p_i) * P(AND_{i in S} x_i)
    """
    probs = dict(probabilities)
    p = [manager.signal_probability(f, probs) for f in funcs]
    n = len(funcs)
    total = 0.0
    for r in range(n + 1):
        for subset in combinations(range(n), r):
            conj = TRUE
            for i in subset:
                conj = manager.apply_and(conj, funcs[i])
            weight = 1.0
            for i in range(n):
                if i not in subset:
                    weight *= -p[i]
            total += weight * manager.signal_probability(conj, probs)
    return total


# ---------------------------------------------------------------------------
# Truncated first-order covariance propagation.
# ---------------------------------------------------------------------------

#: A net's probability plus its sparse covariances with earlier nets.
_State = Tuple[float, Dict[str, float]]


def correlated_signal_probabilities(
        netlist: Netlist,
        launch_probs: Union[float, Mapping[str, float]],
        threshold: float = 1e-9) -> Dict[str, float]:
    """Signal probabilities with first-order covariance tracking.

    More accurate than :func:`repro.core.probability.signal_probabilities`
    on reconvergent circuits, far cheaper than full BDDs; the truncation
    error is third-order in the covariances.
    """
    probs = _launch_probabilities(netlist, launch_probs)
    states: Dict[str, _State] = {
        net: (probs[net], {}) for net in netlist.launch_points}

    for gate in netlist.combinational_gates:
        operands = [(src, states[src]) for src in gate.inputs]
        states[gate.name] = _gate_state(gate.gate_type, operands, states,
                                        threshold)
    return {net: state[0] for net, state in states.items()}


def _gate_state(gate_type: GateType,
                operands: Sequence[Tuple[str, _State]],
                states: Mapping[str, _State],
                threshold: float) -> _State:
    spec = gate_spec(gate_type)
    if gate_type in (GateType.BUFF, GateType.NOT):
        name, (p, cov) = operands[0]
        # The output is (anti-)identical to its operand, so its covariance
        # with the operand net itself is (minus) the operand variance —
        # the entry downstream reconvergent gates need.
        out_cov = dict(cov)
        out_cov[name] = p * (1.0 - p)
        if gate_type is GateType.NOT:
            return 1.0 - p, {k: -c for k, c in out_cov.items()}
        return p, out_cov
    # Fold the gate as a chain of two-input cores; the accumulator is a
    # virtual net whose covariances with *real* nets are tracked, which is
    # all the next fold step needs.
    name0, state0 = operands[0]
    acc = (state0[0], dict(state0[1]))
    acc_name = name0
    for name, state in operands[1:]:
        acc = _combine(gate_type, acc, acc_name, state, name, threshold)
        acc_name = ""  # virtual from now on
    if spec.inverting:
        p, cov = acc
        acc = 1.0 - p, {k: -c for k, c in cov.items()}
    return acc


def _combine(gate_type: GateType, a: _State, a_name: str,
             b: _State, b_name: str, threshold: float) -> _State:
    """One two-input fold step of AND/OR/XOR cores with Eq. 15/17.

    Self-covariances (an operand with itself) are resolved to Bernoulli
    variances p(1-p); cross terms with other tracked nets use the stored
    first-order covariances, truncating third and higher orders.
    """
    p_a, cov_a = a
    p_b, cov_b = b
    var_a = p_a * (1.0 - p_a)
    var_b = p_b * (1.0 - p_b)
    # cov(a, b): the accumulator's covariance with the incoming real net.
    if a_name and a_name == b_name:
        cov_ab = var_a
    else:
        cov_ab = cov_a.get(b_name, cov_b.get(a_name, 0.0))
    p_and = _clip(p_a * p_b + cov_ab)

    def cov_a_with(k: str) -> float:
        if a_name and k == a_name:
            return var_a
        if b_name and k == b_name:
            return cov_ab
        return cov_a.get(k, 0.0)

    def cov_b_with(k: str) -> float:
        if b_name and k == b_name:
            return var_b
        if a_name and k == a_name:
            return cov_ab
        return cov_b.get(k, 0.0)

    def cov_and_with(k: str) -> float:
        # Exact for the product's own operands: cov(ab, a) = P(ab)(1 - P(a)).
        if a_name and k == a_name:
            return p_and * (1.0 - p_a)
        if b_name and k == b_name:
            return p_and * (1.0 - p_b)
        return p_a * cov_b.get(k, 0.0) + p_b * cov_a.get(k, 0.0)

    tracked = set(cov_a) | set(cov_b)
    tracked.update(n for n in (a_name, b_name) if n)

    if gate_type in (GateType.AND, GateType.NAND):
        p_out = p_and
        cov_out = {k: cov_and_with(k) for k in tracked}
    elif gate_type in (GateType.OR, GateType.NOR):
        p_out = _clip(p_a + p_b - p_and)
        cov_out = {k: cov_a_with(k) + cov_b_with(k) - cov_and_with(k)
                   for k in tracked}
    elif gate_type in (GateType.XOR, GateType.XNOR):
        p_out = _clip(p_a + p_b - 2.0 * p_and)
        cov_out = {k: cov_a_with(k) + cov_b_with(k) - 2.0 * cov_and_with(k)
                   for k in tracked}
    else:
        raise ValueError(f"unsupported gate type {gate_type}")
    return p_out, _pruned(cov_out, threshold)


def _pruned(cov: Dict[str, float], threshold: float) -> Dict[str, float]:
    return {k: c for k, c in cov.items() if abs(c) >= threshold}


def _clip(p: float) -> float:
    return min(max(p, 0.0), 1.0)


def _launch_probabilities(netlist: Netlist,
                          launch_probs: Union[float, Mapping[str, float]]
                          ) -> Dict[str, float]:
    result: Dict[str, float] = {}
    for net in netlist.launch_points:
        p = (launch_probs if isinstance(launch_probs, (int, float))
             else launch_probs[net])
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"P({net}) = {p} outside [0, 1]")
        result[net] = float(p)
    return result
