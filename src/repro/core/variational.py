"""Symbolic / variational timing analysis (paper Sec. 3.6).

Arrival times are kept as first-order polynomials ("canonical forms") over a
set of global variational parameters p_j (process/environment variables,
standard normal) plus an independent local term:

    t = a0 + sum_j a_j p_j + b xi,   p_j, xi ~ N(0, 1) independent

SUM adds coefficient vectors; MAX uses Clark's formulas with the correlation
induced by the shared parameters and re-linearizes with the tightness
probability (the conditional-linear MAX of canonical SSTA).  The polynomial
closed form supports, without re-running the analysis:

- per-parameter delay sensitivities of any net,
- corner evaluation (set p_j to +-3),
- cheap sampling of the whole circuit's arrival vector with *shared*
  parameter draws, hence correlation-aware timing yield
  (:func:`timing_yield`).

Truncation to first order is the accuracy/efficiency trade-off the paper
notes for this method family.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import math
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.logic.gates import GateType, gate_spec
from repro.netlist.core import Gate, Netlist
from repro.stats.clark import clark_max_moments, clark_tightness


@dataclass(frozen=True)
class ProcessSpace:
    """The ordered set of global variational parameters."""

    names: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.names)) != len(self.names):
            raise ValueError("duplicate parameter names")

    @property
    def dim(self) -> int:
        return len(self.names)

    def index(self, name: str) -> int:
        return self.names.index(name)


class CanonicalForm:
    """First-order polynomial arrival time over a :class:`ProcessSpace`."""

    __slots__ = ("space", "a0", "coeffs", "local_var")

    def __init__(self, space: ProcessSpace, a0: float,
                 coeffs: Optional[np.ndarray] = None,
                 local_var: float = 0.0) -> None:
        self.space = space
        self.a0 = float(a0)
        self.coeffs = (np.zeros(space.dim) if coeffs is None
                       else np.asarray(coeffs, dtype=float).copy())
        if self.coeffs.shape != (space.dim,):
            raise ValueError(
                f"coefficient vector must have dim {space.dim}")
        if local_var < -1e-12:
            raise ValueError(f"local variance must be >= 0, got {local_var}")
        self.local_var = max(float(local_var), 0.0)

    # -- moments -----------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.a0

    @property
    def var(self) -> float:
        return float(self.coeffs @ self.coeffs) + self.local_var

    @property
    def sigma(self) -> float:
        return math.sqrt(self.var)

    def cov_with(self, other: "CanonicalForm") -> float:
        """Covariance through the shared global parameters only."""
        return float(self.coeffs @ other.coeffs)

    def corr_with(self, other: "CanonicalForm") -> float:
        denom = self.sigma * other.sigma
        return self.cov_with(other) / denom if denom > 0.0 else 0.0

    # -- operations ----------------------------------------------------------

    def __add__(self, other: "CanonicalForm") -> "CanonicalForm":
        self._check_space(other)
        return CanonicalForm(self.space, self.a0 + other.a0,
                             self.coeffs + other.coeffs,
                             self.local_var + other.local_var)

    def max_with(self, other: "CanonicalForm") -> "CanonicalForm":
        """Conditional-linear MAX: Clark moments + tightness mixing."""
        self._check_space(other)
        cov = self.cov_with(other)
        mean, var = clark_max_moments(self.a0, self.var, other.a0, other.var,
                                      cov)
        q = clark_tightness(self.a0, self.var, other.a0, other.var, cov)
        coeffs = q * self.coeffs + (1.0 - q) * other.coeffs
        local = max(var - float(coeffs @ coeffs), 0.0)
        return CanonicalForm(self.space, mean, coeffs, local)

    def min_with(self, other: "CanonicalForm") -> "CanonicalForm":
        neg = self.negated().max_with(other.negated())
        return neg.negated()

    def negated(self) -> "CanonicalForm":
        return CanonicalForm(self.space, -self.a0, -self.coeffs,
                             self.local_var)

    # -- evaluation -----------------------------------------------------------

    def at_corner(self, corner: Mapping[str, float]) -> float:
        """Evaluate the polynomial at fixed parameter values (local term at
        its mean) — e.g. a +-3 sigma process corner."""
        value = self.a0
        for name, x in corner.items():
            value += self.coeffs[self.space.index(name)] * x
        return value

    def sensitivity(self, name: str) -> float:
        """d(arrival)/d(parameter)."""
        return float(self.coeffs[self.space.index(name)])

    def sample(self, param_draws: np.ndarray,
               rng: np.random.Generator) -> np.ndarray:
        """Evaluate on shared parameter draws (n x dim) plus fresh local
        noise — the 'sampling analysis' of Sec. 3.6."""
        if param_draws.ndim != 2 or param_draws.shape[1] != self.space.dim:
            raise ValueError("param_draws must be (n, dim)")
        values = self.a0 + param_draws @ self.coeffs
        if self.local_var > 0.0:
            values = values + rng.normal(
                0.0, math.sqrt(self.local_var), size=param_draws.shape[0])
        return values

    def _check_space(self, other: "CanonicalForm") -> None:
        if self.space is not other.space and self.space != other.space:
            raise ValueError("canonical forms live in different spaces")

    def __repr__(self) -> str:
        terms = " ".join(
            f"{c:+.3g}*{n}" for n, c in zip(self.space.names, self.coeffs)
            if abs(c) > 1e-12)
        return (f"CanonicalForm({self.a0:.4g} {terms} "
                f"local_var={self.local_var:.4g})")


@dataclass(frozen=True)
class VariationalDelay:
    """Gate delay as a canonical form: nominal * (1 + sum_j s_j p_j) + local.

    ``sensitivities`` maps parameter name -> relative sensitivity; gate types
    may override the nominal via ``type_scale`` (e.g. slower XOR cells).
    """

    space: ProcessSpace
    nominal: float = 1.0
    sensitivities: Mapping[str, float] = field(default_factory=dict)
    local_sigma: float = 0.0
    type_scale: Mapping[GateType, float] = field(default_factory=dict)

    def delay_form(self, gate: Gate) -> CanonicalForm:
        scale = self.type_scale.get(gate.gate_type, 1.0)
        nominal = self.nominal * scale
        coeffs = np.zeros(self.space.dim)
        for name, s in self.sensitivities.items():
            coeffs[self.space.index(name)] = nominal * s
        return CanonicalForm(self.space, nominal, coeffs,
                             self.local_sigma ** 2)


@dataclass(frozen=True)
class VariationalResult:
    """Per-net rise/fall canonical arrival forms."""

    netlist_name: str
    space: ProcessSpace
    rise: Mapping[str, CanonicalForm]
    fall: Mapping[str, CanonicalForm]

    def worst(self, net: str) -> CanonicalForm:
        """The later of rise/fall at a net (canonical MAX)."""
        return self.rise[net].max_with(self.fall[net])


def run_variational(netlist: Netlist, delay: VariationalDelay,
                    launch_sigma: float = 1.0) -> VariationalResult:
    """Min/max-separated SSTA over canonical forms (Sec. 3.6 engine).

    Launch points get independent local variance ``launch_sigma ** 2`` (the
    paper's N(0, 1) inputs); direction mapping per gate matches
    :mod:`repro.core.ssta`.
    """
    space = delay.space
    rise: Dict[str, CanonicalForm] = {}
    fall: Dict[str, CanonicalForm] = {}
    for net in netlist.launch_points:
        rise[net] = CanonicalForm(space, 0.0, None, launch_sigma ** 2)
        fall[net] = CanonicalForm(space, 0.0, None, launch_sigma ** 2)
    for gate in netlist.combinational_gates:
        d = delay.delay_form(gate)
        spec = gate_spec(gate.gate_type)
        in_r = [rise[src] for src in gate.inputs]
        in_f = [fall[src] for src in gate.inputs]
        if gate.gate_type is GateType.BUFF:
            r, f = in_r[0], in_f[0]
        elif gate.gate_type is GateType.NOT:
            r, f = in_f[0], in_r[0]
        elif spec.is_parity:
            worst = _fold(in_r + in_f, "max")
            r = f = worst
        elif spec.controlling_value == 0:  # AND core
            r, f = _fold(in_r, "max"), _fold(in_f, "min")
            if spec.inverting:
                r, f = f, r
        else:  # OR core
            r, f = _fold(in_r, "min"), _fold(in_f, "max")
            if spec.inverting:
                r, f = f, r
        rise[gate.name] = r + d
        fall[gate.name] = f + d
    return VariationalResult(netlist.name, space, rise, fall)


def _fold(forms: Sequence[CanonicalForm], op: str) -> CanonicalForm:
    acc = forms[0]
    for form in forms[1:]:
        acc = acc.max_with(form) if op == "max" else acc.min_with(form)
    return acc


def timing_yield(result: VariationalResult, endpoints: Sequence[str],
                 deadline: float, n_samples: int = 20_000,
                 rng: Optional[np.random.Generator] = None) -> float:
    """P(every endpoint's worst arrival <= deadline), correlation-aware.

    All endpoints are sampled on SHARED parameter draws, so systematic
    variation correlates them — the effect plain per-endpoint normal
    quantiles would miss.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if not endpoints:
        raise ValueError("need at least one endpoint")
    draws = rng.standard_normal((n_samples, result.space.dim))
    ok = np.ones(n_samples, dtype=bool)
    for net in endpoints:
        values = result.worst(net).sample(draws, rng)
        ok &= values <= deadline
    return float(ok.mean())
