"""Correlation-aware SSTA (the canonical first-order baseline, ref [25]).

The plain min/max-separated SSTA (:mod:`repro.core.ssta`) treats every
gate's inputs as independent, so path-sharing correlation from reconvergent
fanout is lost and Clark's MAX over-spreads.  This variant carries each
arrival as a canonical form with one axis per launch-point transition —
exactly :class:`~repro.core.spsta_canonical.CanonicalTopAlgebra`'s trick
applied to the SSTA baseline — so MAX/MIN receive the true covariance.

Still input-statistics-oblivious (every net assumed to toggle every cycle):
this is SSTA made *correlation*-correct, not *input*-aware; the paper's
criticism of SSTA survives it untouched, which the comparison tests show.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

import numpy as np

from repro.core.delay import DelayModel, UnitDelay
from repro.core.variational import CanonicalForm, ProcessSpace
from repro.logic.gates import GateType, gate_spec
from repro.netlist.core import Netlist
from repro.stats.normal import Normal


@dataclass(frozen=True)
class CanonicalArrivalPair:
    """Rise/fall canonical arrival forms of one net."""

    rise: CanonicalForm
    fall: CanonicalForm

    def swapped(self) -> "CanonicalArrivalPair":
        return CanonicalArrivalPair(self.fall, self.rise)

    def as_normals(self) -> Dict[str, Normal]:
        return {"rise": Normal(self.rise.mean, self.rise.sigma),
                "fall": Normal(self.fall.mean, self.fall.sigma)}


@dataclass(frozen=True)
class CorrelatedSstaResult:
    """Per-net canonical arrival pairs."""

    netlist_name: str
    space: ProcessSpace
    arrivals: Mapping[str, CanonicalArrivalPair]

    def correlation(self, net_a: str, net_b: str,
                    direction: str = "rise") -> float:
        """Arrival-time correlation of two nets through shared launches."""
        a = getattr(self.arrivals[net_a], direction)
        b = getattr(self.arrivals[net_b], direction)
        return a.corr_with(b)


def run_ssta_correlated(netlist: Netlist,
                        delay_model: DelayModel = UnitDelay(),
                        launch_sigma: float = 1.0) -> CorrelatedSstaResult:
    """Min/max-separated SSTA with exact launch-sharing covariance.

    Launch points get unit-coefficient axes of their own (N(0,
    launch_sigma^2), fully self-correlated, mutually independent); gate
    delays with sigma contribute independent local variance.
    """
    space = ProcessSpace(tuple(
        f"{net}:{direction}" for net in netlist.launch_points
        for direction in ("rise", "fall")))

    def launch_form(net: str, direction: str) -> CanonicalForm:
        coeffs = np.zeros(space.dim)
        coeffs[space.index(f"{net}:{direction}")] = launch_sigma
        return CanonicalForm(space, 0.0, coeffs, 0.0)

    arrivals: Dict[str, CanonicalArrivalPair] = {}
    for net in netlist.launch_points:
        arrivals[net] = CanonicalArrivalPair(
            launch_form(net, "rise"), launch_form(net, "fall"))

    for gate in netlist.combinational_gates:
        spec = gate_spec(gate.gate_type)
        d = delay_model.delay(gate)
        delay_form = CanonicalForm(space, d.mu, None, d.var)
        in_r = [arrivals[src].rise for src in gate.inputs]
        in_f = [arrivals[src].fall for src in gate.inputs]
        if gate.gate_type is GateType.BUFF:
            pair = CanonicalArrivalPair(in_r[0], in_f[0])
        elif gate.gate_type is GateType.NOT:
            pair = CanonicalArrivalPair(in_f[0], in_r[0])
        elif spec.is_parity:
            worst = _fold(in_r + in_f, maximum=True)
            pair = CanonicalArrivalPair(worst, worst)
        elif spec.controlling_value == 0:  # AND core
            pair = CanonicalArrivalPair(_fold(in_r, True), _fold(in_f, False))
            if spec.inverting:
                pair = pair.swapped()
        else:  # OR core
            pair = CanonicalArrivalPair(_fold(in_r, False), _fold(in_f, True))
            if spec.inverting:
                pair = pair.swapped()
        arrivals[gate.name] = CanonicalArrivalPair(
            pair.rise + delay_form, pair.fall + delay_form)
    return CorrelatedSstaResult(netlist.name, space, arrivals)


def _fold(forms, maximum: bool) -> CanonicalForm:
    acc = forms[0]
    for form in forms[1:]:
        acc = acc.max_with(form) if maximum else acc.min_with(form)
    return acc
