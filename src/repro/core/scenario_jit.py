"""Optional numba acceleration for the scenario-batched backend.

The scenario executor's segment summation (Eq. 8 mix) is a tight loop
over contiguous row runs.  The pure-NumPy run-length implementation in
:func:`repro.core.spsta_fast._mix_rows` is already fast for the common
case (most segments hold one row); when `numba <https://numba.pydata.org>`_
is installed, an LLVM-jitted kernel removes the remaining Python loop
overhead for heterogeneous segment layouts.

numba is an *optional* accelerator, never a dependency: this module
imports it defensively and every caller goes through
:func:`resolve_segment_sum`, which returns ``None`` (meaning "use the
NumPy path") whenever numba is absent or the feature flag disables it.
The flag:

- ``jit="auto"`` (default) — use numba iff importable;
- ``jit="on"`` — request numba, warn and fall back cleanly if absent;
- ``jit="off"`` — never use numba;
- the ``SPSTA_SCENARIO_JIT`` environment variable (``auto``/``on``/
  ``off``) overrides the per-call default when the caller passes
  ``jit=None``.

Both paths compute the same sums over the same contiguous slices; they
may differ by float summation order only, which is inside the grid
algebra's established rounding tolerance (see docs/verification.md).
"""

from __future__ import annotations

import os
from typing import Callable, Optional, Sequence
import warnings

import numpy as np

try:                                        # pragma: no cover - optional
    import numba                            # type: ignore[import-not-found]
except ImportError:                         # pragma: no cover - default env
    numba = None

#: True when the optional numba accelerator is importable.
HAVE_NUMBA = numba is not None

#: Feature-flag environment variable consulted when ``jit=None``.
JIT_ENV_VAR = "SPSTA_SCENARIO_JIT"

_VALID_FLAGS = ("auto", "on", "off")

SegmentSum = Callable[[np.ndarray, Sequence[int]], np.ndarray]


def _segment_sum_python(rows: np.ndarray, starts: np.ndarray,
                        counts: np.ndarray,
                        out: np.ndarray) -> None:   # pragma: no cover
    """Per-segment contiguous row sums (jitted when numba is present)."""
    for seg in range(starts.shape[0]):
        start = starts[seg]
        count = counts[seg]
        for col in range(rows.shape[1]):
            acc = 0.0
            for row in range(start, start + count):
                acc += rows[row, col]
            out[seg, col] = acc


if HAVE_NUMBA:                              # pragma: no cover - optional
    _segment_sum_compiled = numba.njit(cache=False)(_segment_sum_python)
else:
    _segment_sum_compiled = None


def jit_segment_sum(rows: np.ndarray,
                    counts: Sequence[int]) -> np.ndarray:
    """numba-backed segment summation; only callable when numba exists."""
    if _segment_sum_compiled is None:       # pragma: no cover - guarded
        raise RuntimeError("numba is not available; use the NumPy path")
    counts_arr = np.asarray(counts, dtype=np.int64)
    starts = np.zeros_like(counts_arr)
    np.cumsum(counts_arr[:-1], out=starts[1:])
    out = np.empty((counts_arr.shape[0], rows.shape[1]))
    _segment_sum_compiled(rows, starts, counts_arr, out)
    return out


def resolve_jit_flag(jit: Optional[str]) -> str:
    """Normalize the feature flag, folding in ``SPSTA_SCENARIO_JIT``."""
    if jit is None:
        jit = os.environ.get(JIT_ENV_VAR, "auto")
    flag = jit.strip().lower()
    if flag not in _VALID_FLAGS:
        raise ValueError(
            f"jit flag must be one of {_VALID_FLAGS}, got {jit!r}")
    return flag


def resolve_segment_sum(jit: Optional[str]) -> Optional[SegmentSum]:
    """The segment-sum kernel the flag selects.

    Returns the jitted kernel when enabled and available, else ``None``
    (callers then use the NumPy run-length path).  An explicit
    ``jit="on"`` without numba degrades with a warning instead of
    failing — the fallback computes identical sums, only slower.
    """
    flag = resolve_jit_flag(jit)
    if flag == "off":
        return None
    if not HAVE_NUMBA:
        if flag == "on":
            warnings.warn(
                "SPSTA scenario jit requested but numba is not installed; "
                "falling back to the NumPy segment-sum path",
                RuntimeWarning, stacklevel=2)
        return None
    return jit_segment_sum                  # pragma: no cover - optional
