"""Timing analyzers: the paper's SPSTA contribution plus STA/SSTA baselines.

- :mod:`repro.core.inputs` — cycle-level input statistics (four-value
  probabilities + arrival distributions) asserted at launch points.
- :mod:`repro.core.probability` — four-value signal probability propagation
  (paper Eq. 9/10) and the power-estimation signal probability (Eq. 5).
- :mod:`repro.core.delay` — gate delay models (the paper uses unit delay).
- :mod:`repro.core.sta` — deterministic min/max static timing (Fig. 1 bounds).
- :mod:`repro.core.ssta` — the min/max-separated block-based SSTA baseline.
- :mod:`repro.core.spsta` — the SPSTA engine, parameterized over three TOP
  abstractions (moments / Gaussian mixture / numeric grid).
- :mod:`repro.core.variational` — polynomial-of-variational-variable arrival
  times (paper Sec. 3.6).
- :mod:`repro.core.correlation` — higher-order covariances and BDD-exact
  signal probabilities (paper Sec. 3.5).
"""

from repro.core.constraints import (
    TimingConstraints,
    constrained_slacks,
    parse_sdc,
)
from repro.core.corners import (
    STANDARD_CORNERS,
    Corner,
    corner_vs_statistical,
    ocv_slacks,
    run_corners,
)
from repro.core.correlation import (
    correlated_signal_probabilities,
    exact_signal_probabilities,
)
from repro.core.delay import (
    DelayModel,
    MisDelay,
    NormalDelay,
    PerGateDelay,
    UnitDelay,
)
from repro.core.incremental import IncrementalSsta, UpdateStats
from repro.core.inputs import CONFIG_I, CONFIG_II, InputStats, Prob4
from repro.core.liberty import parse_liberty, parse_liberty_file
from repro.core.nldm import (
    FrozenDelays,
    LookupTable,
    NldmLibrary,
    TimingArc,
    run_nldm_sta,
)
from repro.core.paths import (
    TimingPath,
    criticality_probabilities,
    k_longest_paths,
    path_delay,
)
from repro.core.probability import propagate_prob4, signal_probabilities
from repro.core.profiling import SpstaProfile
from repro.core.sequential import (
    run_sequential_monte_carlo,
    steady_state_launch_stats,
)
from repro.core.slack import compute_slacks, slack_histogram
from repro.core.spsta import (
    GridAlgebra,
    MixtureAlgebra,
    MomentAlgebra,
    SpstaResult,
    TopFunction,
    run_spsta,
)
from repro.core.spsta_canonical import (
    CanonicalTopAlgebra,
    endpoint_correlation,
)
from repro.core.spsta_fast import run_spsta_fast
from repro.core.ssta import ArrivalPair, SstaResult, run_ssta
from repro.core.ssta_canonical import CorrelatedSstaResult, run_ssta_correlated
from repro.core.sta import StaResult, run_sta
from repro.core.trace import (
    input_stats_from_trace,
    prob4_from_trace,
    stats_from_traces,
)
from repro.core.variational import (
    CanonicalForm,
    ProcessSpace,
    VariationalDelay,
    run_variational,
    timing_yield,
)
from repro.core.waveform import ProbabilityWaveform, propagate_waveforms

__all__ = [
    "InputStats",
    "Prob4",
    "CONFIG_I",
    "CONFIG_II",
    "propagate_prob4",
    "signal_probabilities",
    "exact_signal_probabilities",
    "correlated_signal_probabilities",
    "DelayModel",
    "UnitDelay",
    "NormalDelay",
    "PerGateDelay",
    "MisDelay",
    "LookupTable",
    "TimingArc",
    "NldmLibrary",
    "run_nldm_sta",
    "FrozenDelays",
    "parse_liberty",
    "parse_liberty_file",
    "IncrementalSsta",
    "UpdateStats",
    "steady_state_launch_stats",
    "run_sequential_monte_carlo",
    "ProbabilityWaveform",
    "propagate_waveforms",
    "TimingConstraints",
    "parse_sdc",
    "constrained_slacks",
    "Corner",
    "STANDARD_CORNERS",
    "run_corners",
    "ocv_slacks",
    "corner_vs_statistical",
    "compute_slacks",
    "slack_histogram",
    "prob4_from_trace",
    "input_stats_from_trace",
    "stats_from_traces",
    "run_sta",
    "StaResult",
    "run_ssta",
    "SstaResult",
    "run_ssta_correlated",
    "CorrelatedSstaResult",
    "ArrivalPair",
    "run_spsta",
    "run_spsta_fast",
    "SpstaProfile",
    "SpstaResult",
    "TopFunction",
    "MomentAlgebra",
    "MixtureAlgebra",
    "GridAlgebra",
    "CanonicalTopAlgebra",
    "endpoint_correlation",
    "TimingPath",
    "k_longest_paths",
    "path_delay",
    "criticality_probabilities",
    "ProcessSpace",
    "CanonicalForm",
    "VariationalDelay",
    "run_variational",
    "timing_yield",
]
