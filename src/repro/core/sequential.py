"""Sequential (multi-cycle) statistics — computing what the paper assumes.

The paper's experiments *assign* four-value statistics to flip-flop outputs
(Sec. 4: "we assign the four logic values ... to the primary inputs and the
flip-flop outputs").  In a real sequential circuit those statistics are
determined by the circuit itself: the value a DFF launches in cycle n+1 is
the value its data input settled to in cycle n.  This module closes that
loop two ways:

- :func:`steady_state_launch_stats` — fixpoint iteration.  Under the
  cycle-independence approximation (successive settled values of a D input
  treated as i.i.d. Bernoulli with its settled-one probability q), a DFF
  output's four-value vector is

      P1 = q^2,  P0 = (1-q)^2,  Pr = Pf = q (1-q)

  and q is updated from the propagated D-input statistics until the vector
  converges.  Spatial and temporal correlations are ignored — the same
  independence trade-off the combinational engines make.

- :func:`run_sequential_monte_carlo` — ground truth: one long cycle-accurate
  random simulation in which DFF state actually evolves (temporal
  correlation preserved exactly) and primary inputs follow the two-state
  Markov chain consistent with their four-value vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Union

import numpy as np

from repro.core.delay import DelayModel, UnitDelay
from repro.core.inputs import InputStats, Prob4
from repro.core.probability import propagate_prob4
from repro.netlist.core import Netlist
from repro.stats.normal import Normal


@dataclass(frozen=True)
class SteadyStateResult:
    """Fixpoint launch statistics plus convergence diagnostics."""

    launch_stats: Mapping[str, InputStats]
    iterations: int
    residual: float
    converged: bool


def prob4_from_settled_one(q: float) -> Prob4:
    """Four-value vector of a DFF output whose settled data input is one
    with probability ``q``, cycles independent."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    return Prob4((1.0 - q) ** 2, q * q, q * (1.0 - q), q * (1.0 - q))


def steady_state_launch_stats(
        netlist: Netlist,
        pi_stats: Union[InputStats, Mapping[str, InputStats]],
        ff_arrival: Optional[Normal] = None,
        max_iters: int = 200,
        tol: float = 1e-10) -> SteadyStateResult:
    """Iterate FF-output four-value statistics to a fixpoint.

    ``pi_stats`` applies to primary inputs (one value or per-PI mapping);
    ``ff_arrival`` is the clock-launch arrival distribution for FF outputs
    (default: the PI arrival of the first primary input's stats — the
    paper's setup treats both alike).
    """
    if max_iters < 1:
        raise ValueError("max_iters must be >= 1")

    def pi_stat(net: str) -> InputStats:
        return pi_stats if isinstance(pi_stats, InputStats) else pi_stats[net]

    if ff_arrival is None:
        first = (pi_stats if isinstance(pi_stats, InputStats)
                 else pi_stat(netlist.inputs[0]))
        ff_arrival = first.rise_arrival

    ff_outputs = [g.name for g in netlist.dffs]
    ff_data = {g.name: g.inputs[0] for g in netlist.dffs}
    # Start from the maximum-uncertainty point q = 0.5.
    q: Dict[str, float] = {name: 0.5 for name in ff_outputs}

    residual = 0.0
    iterations = 0
    for iterations in range(1, max_iters + 1):
        launch: Dict[str, Prob4] = {}
        for net in netlist.inputs:
            launch[net] = pi_stat(net).prob4
        for name in ff_outputs:
            launch[name] = prob4_from_settled_one(q[name])
        values = propagate_prob4(netlist, launch)
        residual = 0.0
        for name in ff_outputs:
            new_q = values[ff_data[name]].final_one_probability
            residual = max(residual, abs(new_q - q[name]))
            q[name] = new_q
        if residual <= tol:
            break

    stats: Dict[str, InputStats] = {}
    for net in netlist.inputs:
        stats[net] = pi_stat(net)
    for name in ff_outputs:
        stats[name] = InputStats(prob4_from_settled_one(q[name]),
                                 rise_arrival=ff_arrival,
                                 fall_arrival=ff_arrival)
    return SteadyStateResult(stats, iterations, residual,
                             residual <= tol)


@dataclass(frozen=True)
class SequentialMcResult:
    """Observed per-net four-value frequencies over a long cycle run."""

    n_cycles: int
    prob4: Mapping[str, Prob4]

    def settled_one_probability(self, net: str) -> float:
        return self.prob4[net].final_one_probability


def run_sequential_monte_carlo(
        netlist: Netlist,
        pi_stats: Union[InputStats, Mapping[str, InputStats]],
        n_cycles: int = 10_000,
        delay_model: DelayModel = UnitDelay(),
        rng: Optional[np.random.Generator] = None,
        warmup: int = 100) -> SequentialMcResult:
    """Cycle-accurate sequential simulation measuring four-value frequencies.

    Each cycle reuses the vectorized combinational simulator with a single
    trial per cycle?  No — all cycles are simulated as one batch with the
    *correct temporal chaining*: cycle t's DFF initial values are cycle
    t-1's settled data values, and each PI's settled bit follows the Markov
    chain implied by its four-value vector.  ``warmup`` initial cycles are
    discarded before measuring.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if n_cycles <= warmup:
        raise ValueError("n_cycles must exceed warmup")

    def pi_stat(net: str) -> InputStats:
        return pi_stats if isinstance(pi_stats, InputStats) else pi_stats[net]

    # 1. Primary-input bit streams: two-state Markov chains whose joint
    # (init, final) distribution matches the requested Prob4 conditionals.
    total = n_cycles + 1
    pi_final: Dict[str, np.ndarray] = {}
    for net in netlist.inputs:
        p = pi_stat(net).prob4
        p_stay_one = (p.p_one / (p.p_one + p.p_fall)
                      if p.p_one + p.p_fall > 0.0 else 0.0)
        p_go_one = (p.p_rise / (p.p_zero + p.p_rise)
                    if p.p_zero + p.p_rise > 0.0 else 0.0)
        bits = np.empty(total, dtype=bool)
        bits[0] = rng.random() < p.initial_one_probability
        uniforms = rng.random(total - 1)
        for t in range(1, total):
            prob = p_stay_one if bits[t - 1] else p_go_one
            bits[t] = uniforms[t - 1] < prob
        pi_final[net] = bits

    # 2. Chain the cycles: simulate all n_cycles as parallel "trials" whose
    # launch samples are built from the shifted bit streams, then iterate
    # because DFF inits depend on previous settled values.  One pass per
    # sequential depth is enough: we simply simulate cycle-by-cycle but
    # vectorize over nothing — circuits here are small, so a Python loop
    # over cycles with the scalar-free vector engine on batch=1 would be
    # slow; instead simulate in waves: since cycle t's DFF init needs cycle
    # t-1's settled D value, we run the combinational evaluation once per
    # cycle on numpy scalars (batch size 1 arrays).
    #
    # For speed we exploit that settled (final) values form a pure logic
    # recurrence: settled bits of all nets can be computed for all cycles
    # first (bit-parallel over cycles), and transition statistics follow
    # from consecutive settled values.
    settled: Dict[str, np.ndarray] = {}
    for net in netlist.inputs:
        settled[net] = pi_final[net]
    for g in netlist.dffs:
        settled[g.name] = np.empty(total, dtype=bool)
        settled[g.name][0] = rng.random() < 0.5

    # Settled value of cycle t: DFF outputs hold the data settled at t-1.
    # Compute launch-settled bits cycle by cycle, but evaluate the
    # combinational logic bit-parallel over all cycles when possible:
    # the recurrence couples cycles only through DFFs, so process in cycle
    # order, evaluating the combinational cone on scalar bits.
    from repro.logic.gates import gate_spec

    comb = netlist.combinational_gates
    ff_data = {g.name: g.inputs[0] for g in netlist.dffs}
    values: Dict[str, int] = {}
    net_settled: Dict[str, np.ndarray] = {
        net: np.empty(total, dtype=bool) for net in netlist.nets}
    for net in netlist.inputs:
        net_settled[net][:] = pi_final[net]
    ff_state = {name: bool(settled[name][0]) for name in ff_data}
    for t in range(total):
        for name, state in ff_state.items():
            values[name] = int(state)
            net_settled[name][t] = state
        for net in netlist.inputs:
            values[net] = int(pi_final[net][t])
        for gate in comb:
            spec = gate_spec(gate.gate_type)
            values[gate.name] = spec.eval_bits(
                [values[src] for src in gate.inputs])
            net_settled[gate.name][t] = bool(values[gate.name])
        for name, data_net in ff_data.items():
            ff_state[name] = bool(values[data_net])

    # 3. Four-value frequencies from consecutive settled values.
    freqs: Dict[str, Prob4] = {}
    lo, hi = warmup, total - 1
    for net in netlist.nets:
        prev = net_settled[net][lo:hi]
        curr = net_settled[net][lo + 1:hi + 1]
        n = prev.size
        p1 = float((prev & curr).sum()) / n
        p0 = float((~prev & ~curr).sum()) / n
        pr = float((~prev & curr).sum()) / n
        pf = float((prev & ~curr).sum()) / n
        freqs[net] = Prob4(p0, p1, pr, pf)
    return SequentialMcResult(hi - lo, freqs)
