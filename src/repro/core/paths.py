"""Path-based timing analysis (paper Sec. 1's second SSTA family).

Block-based engines summarize per net; path-based analysis (Orshansky et
al., the paper's refs [18, 19]) keeps the K most critical paths explicit so
that path-sharing correlation is exact:

- :func:`k_longest_paths` — branch-and-bound enumeration of the K longest
  launch-to-endpoint paths under a deterministic delay model;
- :func:`path_delay` — a path's arrival distribution (launch Gaussian plus
  the chain of gate delays: the SUM operation only, no MAX approximation);
- :func:`criticality_probabilities` — Monte Carlo estimate of the
  probability that each path is THE critical one, with launch arrivals and
  per-gate delays shared across paths (path-sharing correlation preserved
  by construction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.delay import DelayModel, UnitDelay
from repro.netlist.core import Netlist
from repro.stats.normal import Normal


@dataclass(frozen=True)
class TimingPath:
    """One launch-to-endpoint path: the ordered tuple of nets it traverses
    (launch point first) and its nominal (mean) delay."""

    nets: Tuple[str, ...]
    nominal_delay: float

    @property
    def launch(self) -> str:
        return self.nets[0]

    @property
    def endpoint(self) -> str:
        return self.nets[-1]

    @property
    def length(self) -> int:
        """Number of gates traversed."""
        return len(self.nets) - 1

    def __repr__(self) -> str:
        route = " -> ".join(self.nets)
        return f"TimingPath({route}, delay={self.nominal_delay:.3g})"


def k_longest_paths(netlist: Netlist, k: int = 10,
                    delay_model: DelayModel = UnitDelay(),
                    endpoint: Optional[str] = None) -> List[TimingPath]:
    """The K longest paths (by mean delay) ending at ``endpoint`` (default:
    any endpoint), longest first.

    Branch-and-bound walking backward from endpoints: a partial path is
    pruned when its delay-so-far plus an upper bound on the remaining cone
    depth cannot beat the current K-th best.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    endpoint_set = set(netlist.endpoints)
    endpoints = [endpoint] if endpoint is not None else list(netlist.endpoints)
    for net in endpoints:
        if net not in endpoint_set:
            raise ValueError(f"{net} is not an endpoint of {netlist.name}")

    # Upper bound on arrival at each net (mean delays), for pruning.
    bound: Dict[str, float] = {n: 0.0 for n in netlist.launch_points}
    gate_delay: Dict[str, float] = {}
    for gate in netlist.combinational_gates:
        gate_delay[gate.name] = delay_model.delay(gate).mu
        bound[gate.name] = gate_delay[gate.name] + max(
            bound[src] for src in gate.inputs)

    best: List[Tuple[float, Tuple[str, ...]]] = []

    def kth_best() -> float:
        return best[-1][0] if len(best) >= k else -np.inf

    def record(delay: float, nets: Tuple[str, ...]) -> None:
        best.append((delay, nets))
        best.sort(key=lambda item: (-item[0], item[1]))
        del best[k:]

    def walk(net: str, suffix: Tuple[str, ...], delay: float) -> None:
        if netlist.is_launch_point(net):
            record(delay, (net,) + suffix)
            return
        if delay + bound[net] < kth_best():
            return
        d = gate_delay[net]
        for src in netlist.driver(net).inputs:
            walk(src, (net,) + suffix, delay + d)

    for net in endpoints:
        walk(net, (), 0.0)
    return [TimingPath(nets, delay) for delay, nets in best]


def path_delay(path: TimingPath, netlist: Netlist,
               delay_model: DelayModel = UnitDelay(),
               launch_arrival: Normal = Normal(0.0, 1.0)) -> Normal:
    """The path's arrival distribution: launch arrival + chain of delays.

    Pure SUM — exact for a single path, no MAX approximation involved.
    """
    acc = launch_arrival
    for net in path.nets[1:]:
        acc = acc + delay_model.delay(netlist.driver(net))
    return acc


def criticality_probabilities(
        netlist: Netlist, paths: Sequence[TimingPath],
        delay_model: DelayModel = UnitDelay(),
        launch_arrival: Normal = Normal(0.0, 1.0),
        n_samples: int = 20_000,
        rng: Optional[np.random.Generator] = None) -> List[float]:
    """P(path i is the latest of ``paths``), sharing randomness correctly.

    Each launch point's arrival and each gate's delay is drawn ONCE per
    sample and reused by every path that traverses it, so paths sharing a
    prefix are correlated exactly — the effect block-based SSTA loses.
    """
    if not paths:
        raise ValueError("need at least one path")
    if rng is None:
        rng = np.random.default_rng(0)

    launch_draws: Dict[str, np.ndarray] = {}
    gate_draws: Dict[str, np.ndarray] = {}

    def launch_samples(net: str) -> np.ndarray:
        if net not in launch_draws:
            launch_draws[net] = rng.normal(
                launch_arrival.mu, launch_arrival.sigma, n_samples)
        return launch_draws[net]

    def gate_samples(net: str) -> np.ndarray:
        if net not in gate_draws:
            d = delay_model.delay(netlist.driver(net))
            if d.sigma > 0.0:
                gate_draws[net] = rng.normal(d.mu, d.sigma, n_samples)
            else:
                gate_draws[net] = np.full(n_samples, d.mu)
        return gate_draws[net]

    delays = np.empty((len(paths), n_samples))
    for i, path in enumerate(paths):
        acc = launch_samples(path.launch).copy()
        for net in path.nets[1:]:
            acc += gate_samples(net)
        delays[i] = acc
    winners = delays.argmax(axis=0)
    counts = np.bincount(winners, minlength=len(paths))
    return (counts / n_samples).tolist()
