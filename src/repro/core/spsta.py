"""Signal Probability based Statistical Timing Analysis (paper Sec. 3).

SPSTA propagates, per net and per transition direction, a *TOP function*
(transition temporal occurrence probability, Def. 3): a sub-probability
density whose integral is the transition occurrence probability and whose
shape is the conditional arrival-time distribution.  Gate outputs are
computed with the four-value WEIGHTED SUM + MAX combination of Eq. 11/12:

    phi_r(y) = sum over rising input subsets R:
                 prod_{i in R} Pr(x_i) * prod_{i not in R} Pnc(x_i)
                 * phi_r(MAX_{i in R}(x_i))

with MIN replacing MAX for transitions toward the controlled value and the
directions swapped through inverting gates.  Parity (XOR) gates, which have
no controlling value, use exact O(4^k) joint enumeration: the output toggles
iff an odd number of inputs switch, settling at the LAST switching input.

The engine is written once over an abstract *TOP algebra*; three concrete
algebras implement the paper's two abstraction methods plus a numeric
cross-check:

- :class:`MomentAlgebra` — conditional distributions as moment-matched
  Gaussians (the moment/correlation method of Sec. 3.4);
- :class:`MixtureAlgebra` — conditional distributions as Gaussian mixtures
  with a component cap (richer shape, still closed-form);
- :class:`GridAlgebra` — discretized densities (numerically exact WEIGHTED
  SUM and MAX; regenerates Figure 4).

Independence between gate inputs is assumed, as in the paper's experiments
(Sec. 4, observation 5); the covariance extension lives in
:mod:`repro.core.correlation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import (
    Dict,
    Generic,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from repro.compat import trapezoid
from repro.core.delay import DelayModel, UnitDelay
from repro.core.inputs import InputStats, Prob4
from repro.core.probability import gate_prob4
from repro.core.profiling import SpstaProfile
from repro.logic.fourvalue import Logic4, gate_output_value
from repro.logic.gates import GateSpec, GateType, gate_spec
from repro.netlist.core import Gate, Netlist
from repro.stats.clark import clark_max_many, clark_min_many
from repro.stats.grid import GridDensity, KernelCache, MassLedger, TimeGrid
from repro.stats.mixture import GaussianMixture
from repro.stats.moments import WeightedMoments, weighted_sum_moments
from repro.stats.normal import Normal

D = TypeVar("D")

#: Parity-gate fan-in limit for the exact 4^k joint enumeration.  Netlists
#: with wider XOR trees should be rewritten with
#: :func:`repro.netlist.transform.decompose_fanin` first (the documented
#: fallback), or pass an explicit ``max_parity_fanin`` to :func:`run_spsta`.
MAX_PARITY_FANIN = 10


class TopAlgebra(Generic[D]):
    """Operations on conditional (normalized) arrival-time distributions."""

    def from_normal(self, normal: Normal) -> D:
        raise NotImplementedError

    def from_launch(self, net: str, direction: str, normal: Normal) -> D:
        """Conditional distribution of a launch-point transition.

        Defaults to :meth:`from_normal`; correlation-tracking algebras
        override this to give each launch transition its own identity (see
        :class:`repro.core.spsta_canonical.CanonicalTopAlgebra`).
        """
        return self.from_normal(normal)

    def add_delay(self, dist: D, delay: Normal) -> D:
        raise NotImplementedError

    def maximum(self, dists: Sequence[D]) -> D:
        raise NotImplementedError

    def minimum(self, dists: Sequence[D]) -> D:
        raise NotImplementedError

    def mix(self, terms: Sequence[Tuple[float, D]],
            ) -> Tuple[float, Optional[D]]:
        """WEIGHTED SUM: combine (weight, conditional) terms into the total
        weight and the mixed conditional distribution (None if weight 0)."""
        raise NotImplementedError

    def stats(self, dist: D) -> Tuple[float, float]:
        """(mean, std) of a conditional distribution."""
        raise NotImplementedError

    def skewness(self, dist: D) -> float:
        """Standardized skewness of a conditional distribution.

        Sec. 3.4 lists skewness among the moments SPSTA can carry; the
        Gaussian abstractions report 0 by construction, while the mixture
        and grid abstractions expose the real asymmetry (e.g. Figure 4's
        skewed MAX results).
        """
        return 0.0


class MomentAlgebra(TopAlgebra[Normal]):
    """Sec. 3.4: conditionals abstracted to (mean, variance) Gaussians."""

    def from_normal(self, normal: Normal) -> Normal:
        return normal

    def add_delay(self, dist: Normal, delay: Normal) -> Normal:
        return dist + delay

    def maximum(self, dists: Sequence[Normal]) -> Normal:
        return clark_max_many(dists)

    def minimum(self, dists: Sequence[Normal]) -> Normal:
        return clark_min_many(dists)

    def mix(self, terms: Sequence[Tuple[float, Normal]]
            ) -> Tuple[float, Optional[Normal]]:
        moments = weighted_sum_moments(
            [(w, WeightedMoments(1.0, n.mu, n.var)) for w, n in terms])
        if not moments.occurs:
            return 0.0, None
        return moments.weight, Normal(moments.mean, moments.std)

    def stats(self, dist: Normal) -> Tuple[float, float]:
        return dist.mu, dist.sigma


class MixtureAlgebra(TopAlgebra[GaussianMixture]):
    """Conditionals as Gaussian mixtures, capped at ``max_components``."""

    def __init__(self, max_components: int = 8) -> None:
        if max_components < 1:
            raise ValueError("max_components must be >= 1")
        self.max_components = max_components

    def from_normal(self, normal: Normal) -> GaussianMixture:
        return GaussianMixture.from_normal(normal)

    def add_delay(self, dist: GaussianMixture,
                  delay: Normal) -> GaussianMixture:
        return dist.convolved(delay)

    def maximum(self, dists: Sequence[GaussianMixture]) -> GaussianMixture:
        acc = dists[0]
        for d in dists[1:]:
            acc = acc.max_with(d).reduced(self.max_components)
        return acc

    def minimum(self, dists: Sequence[GaussianMixture]) -> GaussianMixture:
        acc = dists[0]
        for d in dists[1:]:
            acc = acc.min_with(d).reduced(self.max_components)
        return acc

    def mix(self, terms: Sequence[Tuple[float, GaussianMixture]]
            ) -> Tuple[float, Optional[GaussianMixture]]:
        acc = GaussianMixture.empty()
        for weight, dist in terms:
            acc = acc + dist.normalized().scaled(weight)
        total = acc.total_weight
        if total <= 0.0:
            return 0.0, None
        return total, acc.normalized().reduced(self.max_components)

    def stats(self, dist: GaussianMixture) -> Tuple[float, float]:
        return dist.mean(), dist.std()

    def skewness(self, dist: GaussianMixture) -> float:
        from repro.stats.moments import skewness_from_moments
        return skewness_from_moments(dist.mean(), dist.var(),
                                     dist.third_central_moment())


class GridAlgebra(TopAlgebra[GridDensity]):
    """Conditionals as discretized densities on a shared time grid.

    ``conv_method`` selects the delay-convolution algorithm (``"direct"``,
    ``"fft"``, or ``"auto"``; see :meth:`GridDensity.convolved`).  The
    default ``"direct"`` preserves the historical numerics bit for bit; the
    fast engine supplies its own batched FFT path regardless.  A per-algebra
    :class:`~repro.stats.grid.KernelCache` builds each distinct delay kernel
    once per analysis.
    """

    def __init__(self, grid: TimeGrid, conv_method: str = "direct") -> None:
        if conv_method not in ("direct", "fft", "auto"):
            raise ValueError(f"unknown conv_method {conv_method!r}")
        self.grid = grid
        self.conv_method = conv_method
        self.kernel_cache = KernelCache(grid)
        self.mass_ledger = MassLedger()

    def from_normal(self, normal: Normal) -> GridDensity:
        return GridDensity.from_normal(self.grid, normal,
                                       ledger=self.mass_ledger)

    def add_delay(self, dist: GridDensity, delay: Normal) -> GridDensity:
        return dist.convolved(delay, method=self.conv_method,
                              cache=self.kernel_cache,
                              ledger=self.mass_ledger)

    def maximum(self, dists: Sequence[GridDensity]) -> GridDensity:
        acc = dists[0]
        for d in dists[1:]:
            acc = acc.max_with(d)
        return acc

    def minimum(self, dists: Sequence[GridDensity]) -> GridDensity:
        acc = dists[0]
        for d in dists[1:]:
            acc = acc.min_with(d)
        return acc

    def mix(self, terms: Sequence[Tuple[float, GridDensity]]
            ) -> Tuple[float, Optional[GridDensity]]:
        acc = GridDensity.zero(self.grid)
        total = 0.0
        for weight, dist in terms:
            total += weight
            acc = acc + dist.normalized().scaled(weight)
        if total <= 0.0:
            return 0.0, None
        return total, acc.normalized()

    def stats(self, dist: GridDensity) -> Tuple[float, float]:
        return dist.mean(), dist.std()

    def skewness(self, dist: GridDensity) -> float:
        mean, var = dist.mean(), dist.var()
        if var <= 0.0:
            return 0.0
        t = dist.grid.points
        third = float(trapezoid((t - mean) ** 3 * dist.values,
                                dx=dist.grid.dt)) / dist.total_weight
        return third / var ** 1.5


@dataclass(frozen=True)
class TopFunction(Generic[D]):
    """One direction's TOP abstraction at a net: occurrence weight plus the
    conditional arrival distribution (None when the transition never
    occurs)."""

    weight: float
    conditional: Optional[D]

    @property
    def occurs(self) -> bool:
        return self.weight > 0.0 and self.conditional is not None

    @classmethod
    def absent(cls) -> "TopFunction[D]":
        return cls(0.0, None)


@dataclass(frozen=True)
class NetTops(Generic[D]):
    """Rise and fall TOP functions of one net."""

    rise: TopFunction[D]
    fall: TopFunction[D]

    def swapped(self) -> "NetTops[D]":
        return NetTops(self.fall, self.rise)


@dataclass
class SpstaResult(Generic[D]):
    """SPSTA output: per-net four-value probabilities and TOP functions."""

    netlist_name: str
    algebra: TopAlgebra[D]
    prob4: Mapping[str, Prob4]
    tops: Mapping[str, NetTops[D]]
    profile: Optional[SpstaProfile] = None

    def report(self, net: str, direction: str) -> Tuple[float, float, float]:
        """(P, mean, std) of one direction at one net — a Table 2 cell.

        A never-occurring transition reports (0, nan, nan).
        """
        top = getattr(self.tops[net], direction)
        if not top.occurs:
            return 0.0, float("nan"), float("nan")
        mean, std = self.algebra.stats(top.conditional)
        return top.weight, mean, std

    def toggling_rate(self, net: str) -> float:
        """Expected transitions per cycle at a net (Sec. 3.1: the integral
        of the TOP functions) — the power-estimation by-product."""
        tops = self.tops[net]
        return tops.rise.weight + tops.fall.weight

    def skewness(self, net: str, direction: str) -> float:
        """Standardized skewness of the conditional arrival distribution
        (0 under Gaussian abstractions, real asymmetry under mixture/grid).
        Returns 0 for never-occurring transitions."""
        top = getattr(self.tops[net], direction)
        if not top.occurs:
            return 0.0
        return self.algebra.skewness(top.conditional)


def run_spsta(netlist: Netlist,
              stats: Union[InputStats, Mapping[str, InputStats]],
              delay_model: DelayModel = UnitDelay(),
              algebra: Optional[TopAlgebra[D]] = None,
              *,
              engine: str = "fast",
              workers: int = 1,
              profile: Optional[SpstaProfile] = None,
              max_parity_fanin: Optional[int] = None,
              seed_tops: Optional[
                  Mapping[str, Tuple[Prob4, NetTops[D]]]] = None,
              ) -> SpstaResult[D]:
    """Run SPSTA over a netlist.

    ``stats`` is a single :class:`InputStats` asserted at every launch point
    (the paper's setup) or a per-launch-point mapping.  ``algebra`` selects
    the TOP abstraction (default: :class:`MomentAlgebra`).

    ``engine`` selects the propagation engine: ``"fast"`` (default) is the
    levelized engine of :mod:`repro.core.spsta_fast` — subset-weight-table
    caching, subset-lattice MAX/MIN sharing, and (for :class:`GridAlgebra`)
    batched array kernels with cached FFT delay convolution; ``"naive"`` is
    the original per-gate reference sweep.  Both produce the same results
    (bit-exact for :class:`MomentAlgebra`; within discretization rounding
    for :class:`GridAlgebra` — see ``tests/test_spsta_fastpath.py``).

    ``workers`` (fast grid engine only) opts into a process pool that
    splits each level across worker processes.  ``profile`` is an optional
    :class:`~repro.core.profiling.SpstaProfile` populated during the run
    (one is always attached to the result).  ``max_parity_fanin`` overrides
    :data:`MAX_PARITY_FANIN`, the guard against the 4^k parity blowup.

    ``seed_tops`` pre-seeds selected launch points with externally
    computed ``(Prob4, NetTops)`` pairs instead of deriving them from
    ``stats`` — the hook the hierarchical analyzer (:mod:`repro.hier`)
    uses to assert upstream boundary TOPs at a region's cut pins.  Launch
    points absent from the mapping fall back to ``stats`` unchanged, so a
    flat run (``seed_tops=None``) is bit-identical to the historical
    behaviour.
    """
    if algebra is None:
        algebra = MomentAlgebra()
    if engine == "fast":
        from repro.core.spsta_fast import run_spsta_fast
        return run_spsta_fast(netlist, stats, delay_model, algebra,
                              workers=workers, profile=profile,
                              max_parity_fanin=max_parity_fanin,
                              seed_tops=seed_tops)
    if engine != "naive":
        raise ValueError(f"unknown engine {engine!r} (use 'fast' or 'naive')")

    if profile is None:
        profile = SpstaProfile()
    profile.engine = "naive"
    profile.algebra = type(algebra).__name__
    profile.circuit = netlist.name
    parity_cap = (MAX_PARITY_FANIN if max_parity_fanin is None
                  else max_parity_fanin)
    validate_parity_fanins(netlist, parity_cap)

    prob4: Dict[str, Prob4] = {}
    tops: Dict[str, NetTops[D]] = {}
    with profile.phase("launch"):
        launch_tops(netlist, stats, algebra, prob4, tops,
                    seeds=seed_tops)

    with profile.phase("propagate"):
        for gate in netlist.combinational_gates:
            in_probs = [prob4[src] for src in gate.inputs]
            in_tops = [tops[src] for src in gate.inputs]
            prob4[gate.name] = gate_prob4(gate.gate_type, in_probs)
            tops[gate.name] = _gate_tops(gate, in_probs, in_tops, delay_model,
                                         algebra, parity_cap, profile)
            profile.gates_processed += 1

    _harvest_kernel_counters(algebra, profile)
    return SpstaResult(netlist.name, algebra, prob4, tops, profile)


def launch_tops(netlist: Netlist,
                stats: Union[InputStats, Mapping[str, InputStats]],
                algebra: TopAlgebra[D],
                prob4: Dict[str, Prob4],
                tops: Dict[str, NetTops[D]],
                seeds: Optional[
                    Mapping[str, Tuple[Prob4, NetTops[D]]]] = None) -> None:
    """Assert launch-point statistics into ``prob4``/``tops`` (shared by the
    naive and fast engines so both start from identical TOPs).

    ``seeds`` overrides individual launch points with pre-computed
    ``(Prob4, NetTops)`` pairs — the boundary pins of a hierarchical
    region carry their upstream TOPs verbatim instead of fresh launch
    statistics."""
    for net in netlist.launch_points:
        if seeds is not None and net in seeds:
            seed_prob4, seed_nettops = seeds[net]
            prob4[net] = seed_prob4
            tops[net] = seed_nettops
            continue
        s = stats if isinstance(stats, InputStats) else stats[net]
        prob4[net] = s.prob4
        rise = (TopFunction(s.prob4.p_rise,
                            algebra.from_launch(net, "rise", s.rise_arrival))
                if s.prob4.p_rise > 0.0 else TopFunction.absent())
        fall = (TopFunction(s.prob4.p_fall,
                            algebra.from_launch(net, "fall", s.fall_arrival))
                if s.prob4.p_fall > 0.0 else TopFunction.absent())
        tops[net] = NetTops(rise, fall)


def _harvest_kernel_counters(algebra: TopAlgebra,
                             profile: SpstaProfile) -> None:
    """Copy kernel-cache and mass-ledger counters off a grid algebra."""
    cache = getattr(algebra, "kernel_cache", None)
    if cache is not None:
        profile.kernel_cache_hits = cache.hits
        profile.kernel_cache_misses = cache.misses
    ledger = getattr(algebra, "mass_ledger", None)
    if ledger is not None:
        profile.mass_checks += ledger.checks
        profile.clipped_mass += ledger.clipped_mass
        profile.clip_events += ledger.clip_events
        profile.max_clip_fraction = max(profile.max_clip_fraction,
                                        ledger.max_clip_fraction)


def _delay_for(delay_model: DelayModel, gate: Gate):
    """Per-subset delay lookup: MIS-aware models (those exposing
    ``delay_mis``) get the number of simultaneously switching inputs — the
    quantity SPSTA's subset enumeration knows exactly and SSTA cannot."""
    if hasattr(delay_model, "delay_mis"):
        return lambda k: delay_model.delay_mis(gate, k)
    nominal = delay_model.delay(gate)
    return lambda k: nominal


def _gate_tops(gate: Gate, in_probs: Sequence[Prob4],
               in_tops: Sequence[NetTops[D]], delay_model: DelayModel,
               algebra: TopAlgebra[D],
               max_parity_fanin: int = MAX_PARITY_FANIN,
               profile: Optional[SpstaProfile] = None) -> NetTops[D]:
    spec = gate_spec(gate.gate_type)
    delay_for = _delay_for(delay_model, gate)
    if gate.gate_type in (GateType.BUFF, GateType.NOT):
        core = (in_tops[0] if gate.gate_type is GateType.BUFF
                else in_tops[0].swapped())
        delay = delay_for(1)
        return NetTops(_delayed(core.rise, delay, algebra),
                       _delayed(core.fall, delay, algebra))
    if spec.is_parity:
        return _parity_tops(spec, in_probs, in_tops, delay_for, algebra,
                            max_parity_fanin, profile)
    core = _controlling_tops(spec, in_probs, in_tops, delay_for, algebra,
                             profile)
    if spec.inverting:
        core = core.swapped()
    return core


def _delayed(top: TopFunction[D], delay: Normal,
             algebra: TopAlgebra[D]) -> TopFunction[D]:
    if not top.occurs:
        return TopFunction.absent()
    return TopFunction(top.weight, algebra.add_delay(top.conditional, delay))


def _controlling_tops(spec: GateSpec, in_probs: Sequence[Prob4],
                      in_tops: Sequence[NetTops[D]], delay_for,
                      algebra: TopAlgebra[D],
                      profile: Optional[SpstaProfile] = None) -> NetTops[D]:
    """Eq. 11 subset enumeration for AND/OR-core gates (pre-inversion).

    For the AND core (non-controlling value 1): the output rises iff every
    input ends at 1 and at least one input rose — switching inputs all rise,
    the others sit at static 1 — and settles at the LAST rising input (MAX).
    The output falls at the FIRST falling input (MIN) while the others sit
    at 1.  The OR core mirrors this with static 0 and MIN/MAX exchanged.
    Each subset term carries the delay for its own switching-input count.
    """
    is_and_core = spec.controlling_value == 0

    def static_prob(p: Prob4) -> float:
        return p.p_one if is_and_core else p.p_zero

    rise_terms = _subset_terms(
        in_probs, in_tops, algebra, delay_for,
        switch_prob=lambda p: p.p_rise,
        switch_top=lambda t: t.rise,
        static_prob=static_prob,
        use_max=is_and_core)
    fall_terms = _subset_terms(
        in_probs, in_tops, algebra, delay_for,
        switch_prob=lambda p: p.p_fall,
        switch_top=lambda t: t.fall,
        static_prob=static_prob,
        use_max=not is_and_core)
    if profile is not None:
        profile.subset_terms += len(rise_terms) + len(fall_terms)
    return NetTops(_mixed(rise_terms, algebra), _mixed(fall_terms, algebra))


def _subset_terms(in_probs: Sequence[Prob4], in_tops: Sequence[NetTops[D]],
                  algebra: TopAlgebra[D], delay_for, switch_prob, switch_top,
                  static_prob, use_max: bool) -> List[Tuple[float, D]]:
    """All (weight, conditional) terms of one output direction (Eq. 11).

    The per-mask weight is computed as ``static_factor * w`` with ``w``
    folded over the candidates in index order — the exact multiplication
    order the fast engine's cached weight tables use, so the two paths stay
    bit-identical.
    """
    candidates: List[int] = []
    static_factor = 1.0
    for i, (p, t) in enumerate(zip(in_probs, in_tops)):
        if switch_prob(p) > 0.0 and switch_top(t).occurs:
            candidates.append(i)
        else:
            static_factor *= static_prob(p)
    if static_factor <= 0.0 or not candidates:
        return []
    terms: List[Tuple[float, D]] = []
    for mask in range(1, 1 << len(candidates)):
        w = 1.0
        dists: List[D] = []
        for bit, i in enumerate(candidates):
            if mask & (1 << bit):
                w *= switch_prob(in_probs[i])
                dists.append(switch_top(in_tops[i]).conditional)
            else:
                w *= static_prob(in_probs[i])
        weight = static_factor * w
        if weight <= 0.0:
            continue
        combined = (algebra.maximum(dists) if use_max
                    else algebra.minimum(dists))
        combined = algebra.add_delay(combined, delay_for(len(dists)))
        terms.append((weight, combined))
    return terms


def _parity_tops(spec: GateSpec, in_probs: Sequence[Prob4],
                 in_tops: Sequence[NetTops[D]], delay_for,
                 algebra: TopAlgebra[D],
                 max_fanin: int = MAX_PARITY_FANIN,
                 profile: Optional[SpstaProfile] = None) -> NetTops[D]:
    """Exact joint enumeration for XOR/XNOR (no controlling value).

    The output toggles at every switching input, so it transitions iff an
    odd number of inputs switch, in the direction given by initial/final
    parity, settling at the LAST switching input (MAX) — mixing rising and
    falling input distributions inside one MAX is correct here.
    """
    k = len(in_probs)
    check_parity_fanin(k, max_fanin)
    rise_terms: List[Tuple[float, D]] = []
    fall_terms: List[Tuple[float, D]] = []
    for assignment in product(tuple(Logic4), repeat=k):
        weight = 1.0
        dists: List[D] = []
        for p, t, v in zip(in_probs, in_tops, assignment):
            weight *= p[v]
            if weight <= 0.0:
                break
            if v is Logic4.RISE:
                if not t.rise.occurs:
                    weight = 0.0
                    break
                dists.append(t.rise.conditional)
            elif v is Logic4.FALL:
                if not t.fall.occurs:
                    weight = 0.0
                    break
                dists.append(t.fall.conditional)
        if weight <= 0.0:
            continue
        out = gate_output_value(spec, assignment)
        if out not in (Logic4.RISE, Logic4.FALL):
            continue
        combined = algebra.add_delay(algebra.maximum(dists),
                                     delay_for(len(dists)))
        if out is Logic4.RISE:
            rise_terms.append((weight, combined))
        else:
            fall_terms.append((weight, combined))
    if profile is not None:
        profile.parity_terms += len(rise_terms) + len(fall_terms)
    return NetTops(_mixed(rise_terms, algebra), _mixed(fall_terms, algebra))


def validate_parity_fanins(netlist: Netlist,
                           max_fanin: int = MAX_PARITY_FANIN) -> None:
    """Reject over-wide parity gates before any propagation starts.

    The four-value probability sweep that precedes the TOP computation is
    itself a 4^k joint enumeration for parity gates, so checking only
    inside :func:`_parity_tops` would let a wide XOR burn minutes in
    ``gate_prob4`` before the guard ever fires.
    """
    for gate in netlist.combinational_gates:
        if gate_spec(gate.gate_type).is_parity:
            check_parity_fanin(len(gate.inputs), max_fanin)


def check_parity_fanin(fanin: int, max_fanin: int = MAX_PARITY_FANIN) -> None:
    """Guard against the parity 4^k joint-enumeration blowup.

    A 16-input XOR would silently enumerate 4^16 ≈ 4.3e9 assignments;
    refuse anything beyond ``max_fanin`` with a pointer at the documented
    fallback (rewriting wide gates as bounded-fan-in trees).
    """
    if fanin > max_fanin:
        raise ValueError(
            f"parity gate fan-in {fanin} exceeds the 4^k joint-enumeration "
            f"limit {max_fanin} ({4 ** fanin:,} assignments); decompose "
            f"wide XOR/XNOR gates first with "
            f"repro.netlist.transform.decompose_fanin(netlist, max_fanin=2) "
            f"or raise run_spsta(..., max_parity_fanin=...) explicitly")


def _mixed(terms: Sequence[Tuple[float, D]],
           algebra: TopAlgebra[D]) -> TopFunction[D]:
    weight, conditional = algebra.mix(terms)
    if conditional is None:
        return TopFunction.absent()
    return TopFunction(weight, conditional)
