"""Signal Probability based Statistical Timing Analysis (paper Sec. 3).

SPSTA propagates, per net and per transition direction, a *TOP function*
(transition temporal occurrence probability, Def. 3): a sub-probability
density whose integral is the transition occurrence probability and whose
shape is the conditional arrival-time distribution.  Gate outputs are
computed with the four-value WEIGHTED SUM + MAX combination of Eq. 11/12:

    phi_r(y) = sum over rising input subsets R:
                 prod_{i in R} Pr(x_i) * prod_{i not in R} Pnc(x_i)
                 * phi_r(MAX_{i in R}(x_i))

with MIN replacing MAX for transitions toward the controlled value and the
directions swapped through inverting gates.  Parity (XOR) gates, which have
no controlling value, use exact O(4^k) joint enumeration: the output toggles
iff an odd number of inputs switch, settling at the LAST switching input.

The engine is written once over an abstract *TOP algebra*; three concrete
algebras implement the paper's two abstraction methods plus a numeric
cross-check:

- :class:`MomentAlgebra` — conditional distributions as moment-matched
  Gaussians (the moment/correlation method of Sec. 3.4);
- :class:`MixtureAlgebra` — conditional distributions as Gaussian mixtures
  with a component cap (richer shape, still closed-form);
- :class:`GridAlgebra` — discretized densities (numerically exact WEIGHTED
  SUM and MAX; regenerates Figure 4).

Independence between gate inputs is assumed, as in the paper's experiments
(Sec. 4, observation 5); the covariance extension lives in
:mod:`repro.core.correlation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import (Dict, Generic, List, Mapping, Optional, Sequence, Tuple,
                    TypeVar, Union)

from repro.core.delay import DelayModel, UnitDelay
from repro.core.inputs import InputStats, Prob4
from repro.core.probability import gate_prob4
from repro.logic.fourvalue import Logic4, gate_output_value
from repro.logic.gates import GateSpec, GateType, gate_spec
from repro.netlist.core import Gate, Netlist
from repro.stats.clark import clark_max_many, clark_min_many
from repro.stats.grid import GridDensity, TimeGrid
from repro.stats.mixture import GaussianMixture
from repro.stats.moments import WeightedMoments, weighted_sum_moments
from repro.stats.normal import Normal

D = TypeVar("D")

#: Parity-gate fan-in limit for the exact 4^k joint enumeration.
MAX_PARITY_FANIN = 10


class TopAlgebra(Generic[D]):
    """Operations on conditional (normalized) arrival-time distributions."""

    def from_normal(self, normal: Normal) -> D:
        raise NotImplementedError

    def from_launch(self, net: str, direction: str, normal: Normal) -> D:
        """Conditional distribution of a launch-point transition.

        Defaults to :meth:`from_normal`; correlation-tracking algebras
        override this to give each launch transition its own identity (see
        :class:`repro.core.spsta_canonical.CanonicalTopAlgebra`).
        """
        return self.from_normal(normal)

    def add_delay(self, dist: D, delay: Normal) -> D:
        raise NotImplementedError

    def maximum(self, dists: Sequence[D]) -> D:
        raise NotImplementedError

    def minimum(self, dists: Sequence[D]) -> D:
        raise NotImplementedError

    def mix(self, terms: Sequence[Tuple[float, D]]) -> Tuple[float, Optional[D]]:
        """WEIGHTED SUM: combine (weight, conditional) terms into the total
        weight and the mixed conditional distribution (None if weight 0)."""
        raise NotImplementedError

    def stats(self, dist: D) -> Tuple[float, float]:
        """(mean, std) of a conditional distribution."""
        raise NotImplementedError

    def skewness(self, dist: D) -> float:
        """Standardized skewness of a conditional distribution.

        Sec. 3.4 lists skewness among the moments SPSTA can carry; the
        Gaussian abstractions report 0 by construction, while the mixture
        and grid abstractions expose the real asymmetry (e.g. Figure 4's
        skewed MAX results).
        """
        return 0.0


class MomentAlgebra(TopAlgebra[Normal]):
    """Sec. 3.4: conditionals abstracted to (mean, variance) Gaussians."""

    def from_normal(self, normal: Normal) -> Normal:
        return normal

    def add_delay(self, dist: Normal, delay: Normal) -> Normal:
        return dist + delay

    def maximum(self, dists: Sequence[Normal]) -> Normal:
        return clark_max_many(dists)

    def minimum(self, dists: Sequence[Normal]) -> Normal:
        return clark_min_many(dists)

    def mix(self, terms: Sequence[Tuple[float, Normal]]
            ) -> Tuple[float, Optional[Normal]]:
        moments = weighted_sum_moments(
            [(w, WeightedMoments(1.0, n.mu, n.var)) for w, n in terms])
        if not moments.occurs:
            return 0.0, None
        return moments.weight, Normal(moments.mean, moments.std)

    def stats(self, dist: Normal) -> Tuple[float, float]:
        return dist.mu, dist.sigma


class MixtureAlgebra(TopAlgebra[GaussianMixture]):
    """Conditionals as Gaussian mixtures, capped at ``max_components``."""

    def __init__(self, max_components: int = 8) -> None:
        if max_components < 1:
            raise ValueError("max_components must be >= 1")
        self.max_components = max_components

    def from_normal(self, normal: Normal) -> GaussianMixture:
        return GaussianMixture.from_normal(normal)

    def add_delay(self, dist: GaussianMixture,
                  delay: Normal) -> GaussianMixture:
        return dist.convolved(delay)

    def maximum(self, dists: Sequence[GaussianMixture]) -> GaussianMixture:
        acc = dists[0]
        for d in dists[1:]:
            acc = acc.max_with(d).reduced(self.max_components)
        return acc

    def minimum(self, dists: Sequence[GaussianMixture]) -> GaussianMixture:
        acc = dists[0]
        for d in dists[1:]:
            acc = acc.min_with(d).reduced(self.max_components)
        return acc

    def mix(self, terms: Sequence[Tuple[float, GaussianMixture]]
            ) -> Tuple[float, Optional[GaussianMixture]]:
        acc = GaussianMixture.empty()
        for weight, dist in terms:
            acc = acc + dist.normalized().scaled(weight)
        total = acc.total_weight
        if total <= 0.0:
            return 0.0, None
        return total, acc.normalized().reduced(self.max_components)

    def stats(self, dist: GaussianMixture) -> Tuple[float, float]:
        return dist.mean(), dist.std()

    def skewness(self, dist: GaussianMixture) -> float:
        from repro.stats.moments import skewness_from_moments
        return skewness_from_moments(dist.mean(), dist.var(),
                                     dist.third_central_moment())


class GridAlgebra(TopAlgebra[GridDensity]):
    """Conditionals as discretized densities on a shared time grid."""

    def __init__(self, grid: TimeGrid) -> None:
        self.grid = grid

    def from_normal(self, normal: Normal) -> GridDensity:
        return GridDensity.from_normal(self.grid, normal)

    def add_delay(self, dist: GridDensity, delay: Normal) -> GridDensity:
        return dist.convolved(delay)

    def maximum(self, dists: Sequence[GridDensity]) -> GridDensity:
        acc = dists[0]
        for d in dists[1:]:
            acc = acc.max_with(d)
        return acc

    def minimum(self, dists: Sequence[GridDensity]) -> GridDensity:
        acc = dists[0]
        for d in dists[1:]:
            acc = acc.min_with(d)
        return acc

    def mix(self, terms: Sequence[Tuple[float, GridDensity]]
            ) -> Tuple[float, Optional[GridDensity]]:
        acc = GridDensity.zero(self.grid)
        total = 0.0
        for weight, dist in terms:
            total += weight
            acc = acc + dist.normalized().scaled(weight)
        if total <= 0.0:
            return 0.0, None
        return total, acc.normalized()

    def stats(self, dist: GridDensity) -> Tuple[float, float]:
        return dist.mean(), dist.std()

    def skewness(self, dist: GridDensity) -> float:
        import numpy as np
        mean, var = dist.mean(), dist.var()
        if var <= 0.0:
            return 0.0
        t = dist.grid.points
        third = float(np.trapezoid((t - mean) ** 3 * dist.values,
                                   dx=dist.grid.dt)) / dist.total_weight
        return third / var ** 1.5


@dataclass(frozen=True)
class TopFunction(Generic[D]):
    """One direction's TOP abstraction at a net: occurrence weight plus the
    conditional arrival distribution (None when the transition never
    occurs)."""

    weight: float
    conditional: Optional[D]

    @property
    def occurs(self) -> bool:
        return self.weight > 0.0 and self.conditional is not None

    @classmethod
    def absent(cls) -> "TopFunction[D]":
        return cls(0.0, None)


@dataclass(frozen=True)
class NetTops(Generic[D]):
    """Rise and fall TOP functions of one net."""

    rise: TopFunction[D]
    fall: TopFunction[D]

    def swapped(self) -> "NetTops[D]":
        return NetTops(self.fall, self.rise)


@dataclass
class SpstaResult(Generic[D]):
    """SPSTA output: per-net four-value probabilities and TOP functions."""

    netlist_name: str
    algebra: TopAlgebra[D]
    prob4: Mapping[str, Prob4]
    tops: Mapping[str, NetTops[D]]

    def report(self, net: str, direction: str) -> Tuple[float, float, float]:
        """(P, mean, std) of one direction at one net — a Table 2 cell.

        A never-occurring transition reports (0, nan, nan).
        """
        top = getattr(self.tops[net], direction)
        if not top.occurs:
            return 0.0, float("nan"), float("nan")
        mean, std = self.algebra.stats(top.conditional)
        return top.weight, mean, std

    def toggling_rate(self, net: str) -> float:
        """Expected transitions per cycle at a net (Sec. 3.1: the integral
        of the TOP functions) — the power-estimation by-product."""
        tops = self.tops[net]
        return tops.rise.weight + tops.fall.weight

    def skewness(self, net: str, direction: str) -> float:
        """Standardized skewness of the conditional arrival distribution
        (0 under Gaussian abstractions, real asymmetry under mixture/grid).
        Returns 0 for never-occurring transitions."""
        top = getattr(self.tops[net], direction)
        if not top.occurs:
            return 0.0
        return self.algebra.skewness(top.conditional)


def run_spsta(netlist: Netlist,
              stats: Union[InputStats, Mapping[str, InputStats]],
              delay_model: DelayModel = UnitDelay(),
              algebra: Optional[TopAlgebra[D]] = None) -> SpstaResult[D]:
    """Run SPSTA over a netlist.

    ``stats`` is a single :class:`InputStats` asserted at every launch point
    (the paper's setup) or a per-launch-point mapping.  ``algebra`` selects
    the TOP abstraction (default: :class:`MomentAlgebra`).
    """
    if algebra is None:
        algebra = MomentAlgebra()
    prob4: Dict[str, Prob4] = {}
    tops: Dict[str, NetTops[D]] = {}

    for net in netlist.launch_points:
        s = stats if isinstance(stats, InputStats) else stats[net]
        prob4[net] = s.prob4
        rise = (TopFunction(s.prob4.p_rise,
                            algebra.from_launch(net, "rise", s.rise_arrival))
                if s.prob4.p_rise > 0.0 else TopFunction.absent())
        fall = (TopFunction(s.prob4.p_fall,
                            algebra.from_launch(net, "fall", s.fall_arrival))
                if s.prob4.p_fall > 0.0 else TopFunction.absent())
        tops[net] = NetTops(rise, fall)

    for gate in netlist.combinational_gates:
        in_probs = [prob4[src] for src in gate.inputs]
        in_tops = [tops[src] for src in gate.inputs]
        prob4[gate.name] = gate_prob4(gate.gate_type, in_probs)
        tops[gate.name] = _gate_tops(gate, in_probs, in_tops, delay_model,
                                     algebra)

    return SpstaResult(netlist.name, algebra, prob4, tops)


def _delay_for(delay_model: DelayModel, gate: Gate):
    """Per-subset delay lookup: MIS-aware models (those exposing
    ``delay_mis``) get the number of simultaneously switching inputs — the
    quantity SPSTA's subset enumeration knows exactly and SSTA cannot."""
    if hasattr(delay_model, "delay_mis"):
        return lambda k: delay_model.delay_mis(gate, k)
    nominal = delay_model.delay(gate)
    return lambda k: nominal


def _gate_tops(gate: Gate, in_probs: Sequence[Prob4],
               in_tops: Sequence[NetTops[D]], delay_model: DelayModel,
               algebra: TopAlgebra[D]) -> NetTops[D]:
    spec = gate_spec(gate.gate_type)
    delay_for = _delay_for(delay_model, gate)
    if gate.gate_type in (GateType.BUFF, GateType.NOT):
        core = (in_tops[0] if gate.gate_type is GateType.BUFF
                else in_tops[0].swapped())
        delay = delay_for(1)
        return NetTops(_delayed(core.rise, delay, algebra),
                       _delayed(core.fall, delay, algebra))
    if spec.is_parity:
        return _parity_tops(spec, in_probs, in_tops, delay_for, algebra)
    core = _controlling_tops(spec, in_probs, in_tops, delay_for, algebra)
    if spec.inverting:
        core = core.swapped()
    return core


def _delayed(top: TopFunction[D], delay: Normal,
             algebra: TopAlgebra[D]) -> TopFunction[D]:
    if not top.occurs:
        return TopFunction.absent()
    return TopFunction(top.weight, algebra.add_delay(top.conditional, delay))


def _controlling_tops(spec: GateSpec, in_probs: Sequence[Prob4],
                      in_tops: Sequence[NetTops[D]], delay_for,
                      algebra: TopAlgebra[D]) -> NetTops[D]:
    """Eq. 11 subset enumeration for AND/OR-core gates (pre-inversion).

    For the AND core (non-controlling value 1): the output rises iff every
    input ends at 1 and at least one input rose — switching inputs all rise,
    the others sit at static 1 — and settles at the LAST rising input (MAX).
    The output falls at the FIRST falling input (MIN) while the others sit
    at 1.  The OR core mirrors this with static 0 and MIN/MAX exchanged.
    Each subset term carries the delay for its own switching-input count.
    """
    is_and_core = spec.controlling_value == 0

    def static_prob(p: Prob4) -> float:
        return p.p_one if is_and_core else p.p_zero

    rise_terms = _subset_terms(
        in_probs, in_tops, algebra, delay_for,
        switch_prob=lambda p: p.p_rise,
        switch_top=lambda t: t.rise,
        static_prob=static_prob,
        use_max=is_and_core)
    fall_terms = _subset_terms(
        in_probs, in_tops, algebra, delay_for,
        switch_prob=lambda p: p.p_fall,
        switch_top=lambda t: t.fall,
        static_prob=static_prob,
        use_max=not is_and_core)
    return NetTops(_mixed(rise_terms, algebra), _mixed(fall_terms, algebra))


def _subset_terms(in_probs: Sequence[Prob4], in_tops: Sequence[NetTops[D]],
                  algebra: TopAlgebra[D], delay_for, switch_prob, switch_top,
                  static_prob, use_max: bool) -> List[Tuple[float, D]]:
    """All (weight, conditional) terms of one output direction (Eq. 11)."""
    candidates: List[int] = []
    static_factor = 1.0
    for i, (p, t) in enumerate(zip(in_probs, in_tops)):
        if switch_prob(p) > 0.0 and switch_top(t).occurs:
            candidates.append(i)
        else:
            static_factor *= static_prob(p)
    if static_factor <= 0.0 or not candidates:
        return []
    terms: List[Tuple[float, D]] = []
    for mask in range(1, 1 << len(candidates)):
        weight = static_factor
        dists: List[D] = []
        for bit, i in enumerate(candidates):
            if mask & (1 << bit):
                weight *= switch_prob(in_probs[i])
                dists.append(switch_top(in_tops[i]).conditional)
            else:
                weight *= static_prob(in_probs[i])
        if weight <= 0.0:
            continue
        combined = (algebra.maximum(dists) if use_max
                    else algebra.minimum(dists))
        combined = algebra.add_delay(combined, delay_for(len(dists)))
        terms.append((weight, combined))
    return terms


def _parity_tops(spec: GateSpec, in_probs: Sequence[Prob4],
                 in_tops: Sequence[NetTops[D]], delay_for,
                 algebra: TopAlgebra[D]) -> NetTops[D]:
    """Exact joint enumeration for XOR/XNOR (no controlling value).

    The output toggles at every switching input, so it transitions iff an
    odd number of inputs switch, in the direction given by initial/final
    parity, settling at the LAST switching input (MAX) — mixing rising and
    falling input distributions inside one MAX is correct here.
    """
    k = len(in_probs)
    if k > MAX_PARITY_FANIN:
        raise ValueError(
            f"parity gate fan-in {k} exceeds enumeration limit "
            f"{MAX_PARITY_FANIN}")
    rise_terms: List[Tuple[float, D]] = []
    fall_terms: List[Tuple[float, D]] = []
    for assignment in product(tuple(Logic4), repeat=k):
        weight = 1.0
        dists: List[D] = []
        for p, t, v in zip(in_probs, in_tops, assignment):
            weight *= p[v]
            if weight <= 0.0:
                break
            if v is Logic4.RISE:
                if not t.rise.occurs:
                    weight = 0.0
                    break
                dists.append(t.rise.conditional)
            elif v is Logic4.FALL:
                if not t.fall.occurs:
                    weight = 0.0
                    break
                dists.append(t.fall.conditional)
        if weight <= 0.0:
            continue
        out = gate_output_value(spec, assignment)
        if out not in (Logic4.RISE, Logic4.FALL):
            continue
        combined = algebra.add_delay(algebra.maximum(dists),
                                     delay_for(len(dists)))
        if out is Logic4.RISE:
            rise_terms.append((weight, combined))
        else:
            fall_terms.append((weight, combined))
    return NetTops(_mixed(rise_terms, algebra), _mixed(fall_terms, algebra))


def _mixed(terms: Sequence[Tuple[float, D]],
           algebra: TopAlgebra[D]) -> TopFunction[D]:
    weight, conditional = algebra.mix(terms)
    if conditional is None:
        return TopFunction.absent()
    return TopFunction(weight, conditional)
