"""Gate delay models.

The paper's evaluation uses unit gate delay and zero net delay; the model
interface also admits per-gate Gaussian delays so the same engines support
process-variation studies (the paper's Fig. 1 framing) without change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol
import zlib

from repro.netlist.core import Gate
from repro.stats.normal import Normal


class DelayModel(Protocol):
    """Maps a gate instance to its (possibly random) delay distribution."""

    def delay(self, gate: Gate) -> Normal:
        """Delay of ``gate`` as a Normal (sigma == 0 for deterministic)."""
        ...


@dataclass(frozen=True)
class UnitDelay:
    """Deterministic identical delay for every gate (paper default: 1.0)."""

    value: float = 1.0

    def delay(self, gate: Gate) -> Normal:
        return Normal(self.value, 0.0)


@dataclass(frozen=True)
class NormalDelay:
    """Identically distributed Gaussian gate delay N(mu, sigma^2).

    Every gate gets the same distribution; draws are independent across
    gates in the Monte Carlo engine.
    """

    mu: float = 1.0
    sigma: float = 0.1

    def __post_init__(self) -> None:
        if self.sigma < 0.0:
            raise ValueError(f"sigma must be >= 0, got {self.sigma}")

    def delay(self, gate: Gate) -> Normal:
        return Normal(self.mu, self.sigma)


@dataclass(frozen=True)
class MisDelay:
    """Multiple-input-switching (MIS) aware gate delay.

    The paper's Sec. 1 motivation (its ref [2]): a gate's delay changes
    significantly when several inputs switch simultaneously — e.g. parallel
    pull-down transistors switching together speed the output edge.
    Neglecting it "could underestimate the mean delay of a gate by up to
    20% and overestimate the standard deviation ... by up to 26%".

    Model: with k inputs switching together the delay scales by
    max(1 - speedup * (k - 1), floor).  Engines that know k (SPSTA's subset
    enumeration, the Monte Carlo simulators) call :meth:`delay_mis`;
    input-oblivious engines (SSTA) only ever see the k = 1 nominal via
    :meth:`delay` — which is exactly the blind spot the paper describes.
    """

    base: float = 1.0
    speedup: float = 0.15
    floor: float = 0.3
    sigma: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.speedup < 1.0:
            raise ValueError(f"speedup must be in [0, 1), got {self.speedup}")
        if not 0.0 < self.floor <= 1.0:
            raise ValueError(f"floor must be in (0, 1], got {self.floor}")
        if self.sigma < 0.0:
            raise ValueError(f"sigma must be >= 0, got {self.sigma}")

    def delay(self, gate: Gate) -> Normal:
        """Nominal single-input-switching delay."""
        return Normal(self.base, self.sigma)

    def delay_mis(self, gate: Gate, n_switching: int) -> Normal:
        """Delay when ``n_switching`` inputs switch simultaneously."""
        if n_switching < 1:
            raise ValueError("n_switching must be >= 1")
        factor = max(1.0 - self.speedup * (n_switching - 1), self.floor)
        return Normal(self.base * factor, self.sigma * factor)


@dataclass(frozen=True)
class PerGateDelay:
    """Deterministic per-gate delay scaled by a stable hash of the gate name.

    Models systematic cell-to-cell delay spread (e.g. drive-strength
    binning): delay = base * (1 + spread * u) with u in [-1, 1] derived from
    crc32(name) — reproducible across runs and processes.
    """

    base: float = 1.0
    spread: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.spread < 1.0:
            raise ValueError(f"spread must be in [0, 1), got {self.spread}")

    def delay(self, gate: Gate) -> Normal:
        u = (zlib.crc32(gate.name.encode()) % 20001) / 10000.0 - 1.0
        return Normal(self.base * (1.0 + self.spread * u), 0.0)
