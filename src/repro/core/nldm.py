"""NLDM-style lookup-table delay with slew propagation.

Production timing flows characterize each cell with non-linear delay model
(NLDM) tables: delay and output slew as functions of (input slew, output
load).  This module supplies that substrate so the statistical engines can
run on realistic, topology-dependent delays instead of unit delays:

- :class:`LookupTable` — bilinear interpolation with clamped extrapolation;
- :class:`NldmLibrary` — per-gate-type timing arcs, plus a synthesized
  ``generic()`` library with plausible monotone characteristics;
- :func:`run_nldm_sta` — arrival + slew propagation (the classic STA inner
  loop: load from fanout pin caps + wire cap, worst-arrival slew merging);
- :class:`FrozenDelays` — freezes the per-gate delays found by the NLDM
  pass into a :class:`~repro.core.delay.DelayModel`, so SPSTA / SSTA / the
  Monte Carlo engines consume topology-aware delays unchanged.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.logic.gates import GateType
from repro.netlist.core import Gate, Netlist
from repro.stats.normal import Normal


@dataclass(frozen=True)
class LookupTable:
    """A 2-D characterization table over (input slew, output load)."""

    slew_axis: Tuple[float, ...]
    load_axis: Tuple[float, ...]
    values: Tuple[Tuple[float, ...], ...]  # values[i][j]: slew i, load j

    def __post_init__(self) -> None:
        if len(self.slew_axis) < 2 or len(self.load_axis) < 2:
            raise ValueError("axes need at least two breakpoints")
        if list(self.slew_axis) != sorted(self.slew_axis) or \
                list(self.load_axis) != sorted(self.load_axis):
            raise ValueError("axes must be ascending")
        if len(self.values) != len(self.slew_axis) or any(
                len(row) != len(self.load_axis) for row in self.values):
            raise ValueError("table shape must match the axes")

    def interpolate(self, slew: float, load: float) -> float:
        """Bilinear interpolation; queries outside the axes clamp to the
        boundary (the standard liberty-tool behaviour)."""
        si, sf = _bracket(self.slew_axis, slew)
        li, lf = _bracket(self.load_axis, load)
        v00 = self.values[si][li]
        v01 = self.values[si][li + 1]
        v10 = self.values[si + 1][li]
        v11 = self.values[si + 1][li + 1]
        top = v00 * (1 - lf) + v01 * lf
        bottom = v10 * (1 - lf) + v11 * lf
        return top * (1 - sf) + bottom * sf


def _bracket(axis: Tuple[float, ...], x: float) -> Tuple[int, float]:
    """(lower index, fraction) with clamping at both ends."""
    if x <= axis[0]:
        return 0, 0.0
    if x >= axis[-1]:
        return len(axis) - 2, 1.0
    hi = bisect.bisect_right(axis, x)
    lo = hi - 1
    span = axis[hi] - axis[lo]
    return lo, (x - axis[lo]) / span if span > 0 else 0.0


@dataclass(frozen=True)
class TimingArc:
    """One cell's input-to-output characterization."""

    delay: LookupTable
    output_slew: LookupTable
    input_capacitance: float = 1.0

    def __post_init__(self) -> None:
        if self.input_capacitance <= 0.0:
            raise ValueError("input_capacitance must be > 0")


@dataclass(frozen=True)
class NldmLibrary:
    """Per-gate-type timing arcs plus the wire-load convention."""

    arcs: Mapping[GateType, TimingArc]
    wire_capacitance: float = 0.5
    default_output_load: float = 1.0   # load seen by unconnected outputs

    def arc(self, gate_type: GateType) -> TimingArc:
        try:
            return self.arcs[gate_type]
        except KeyError:
            raise KeyError(
                f"library has no arc for {gate_type.value}") from None

    @classmethod
    def generic(cls, base_delay: float = 1.0) -> "NldmLibrary":
        """A synthesized library with plausible monotone characteristics:
        delay and output slew grow with input slew and load; inverting
        gates are slightly faster, parity gates slower."""
        slews = (0.1, 0.5, 1.0, 2.0)
        loads = (0.5, 1.0, 2.0, 4.0)
        speed = {
            GateType.NOT: 0.6, GateType.BUFF: 0.7,
            GateType.NAND: 0.9, GateType.NOR: 1.0,
            GateType.AND: 1.1, GateType.OR: 1.2,
            GateType.XOR: 1.5, GateType.XNOR: 1.5,
        }
        arcs = {}
        for gate_type, k in speed.items():
            delay_rows = tuple(
                tuple(base_delay * k * (0.6 + 0.25 * s + 0.35 * ld)
                      for ld in loads)
                for s in slews)
            slew_rows = tuple(
                tuple(0.3 * k + 0.35 * s + 0.3 * ld for ld in loads)
                for s in slews)
            arcs[gate_type] = TimingArc(
                delay=LookupTable(slews, loads, delay_rows),
                output_slew=LookupTable(slews, loads, slew_rows),
                input_capacitance=1.0 + 0.2 * (k - 1.0))
        return cls(arcs=arcs)


@dataclass(frozen=True)
class NldmResult:
    """NLDM STA output: per-net worst arrival, slew, and per-gate delay."""

    arrival: Mapping[str, float]
    slew: Mapping[str, float]
    gate_delay: Mapping[str, float]
    load: Mapping[str, float]


def run_nldm_sta(netlist: Netlist, library: NldmLibrary,
                 input_slew: float = 0.5,
                 launch_arrival: float = 0.0) -> NldmResult:
    """Worst-arrival STA with slew propagation under NLDM tables.

    Net load = wire capacitance + the input capacitance of every fanout
    pin; the slew forwarded from a gate is the output slew computed at the
    input pin that set the worst arrival (the standard merging rule).
    """
    if input_slew <= 0.0:
        raise ValueError("input_slew must be > 0")
    loads: Dict[str, float] = {}
    for net in netlist.nets:
        total = library.wire_capacitance
        sinks = netlist.fanouts(net)
        for sink in sinks:
            gate = netlist.gates[sink]
            if gate.gate_type is GateType.DFF:
                total += 1.0  # a flop data pin
            else:
                total += library.arc(gate.gate_type).input_capacitance
        if not sinks:
            total += library.default_output_load
        loads[net] = total

    arrival: Dict[str, float] = {}
    slew: Dict[str, float] = {}
    gate_delay: Dict[str, float] = {}
    for net in netlist.launch_points:
        arrival[net] = launch_arrival
        slew[net] = input_slew
    for gate in netlist.combinational_gates:
        arc = library.arc(gate.gate_type)
        load = loads[gate.name]
        best_arrival = -float("inf")
        best_slew = input_slew
        worst_delay = 0.0
        for src in gate.inputs:
            d = arc.delay.interpolate(slew[src], load)
            worst_delay = max(worst_delay, d)
            if arrival[src] + d > best_arrival:
                best_arrival = arrival[src] + d
                best_slew = arc.output_slew.interpolate(slew[src], load)
        arrival[gate.name] = best_arrival
        slew[gate.name] = best_slew
        gate_delay[gate.name] = worst_delay
    return NldmResult(arrival, slew, gate_delay, loads)


@dataclass(frozen=True)
class FrozenDelays:
    """Adapter: per-gate delays fixed by an NLDM pass, optionally with a
    relative Gaussian spread, usable by every statistical engine."""

    delays: Mapping[str, float]
    relative_sigma: float = 0.0

    def __post_init__(self) -> None:
        if self.relative_sigma < 0.0:
            raise ValueError("relative_sigma must be >= 0")

    @classmethod
    def from_nldm(cls, result: NldmResult,
                  relative_sigma: float = 0.0) -> "FrozenDelays":
        return cls(dict(result.gate_delay), relative_sigma)

    def delay(self, gate: Gate) -> Normal:
        try:
            d = self.delays[gate.name]
        except KeyError:
            raise KeyError(f"no frozen delay for gate {gate.name}") from None
        return Normal(d, d * self.relative_sigma)
