"""Lightweight profiling/observability for the analytical engines.

A :class:`SpstaProfile` rides along one ``run_spsta`` call and collects the
quantities that explain where an analytical sweep spends its time:

- coarse per-phase wall times (levelize / launch / propagate, and the
  grid engine's subset-eval / convolve / mix sub-phases);
- work counters — gates processed, Eq. 11 subset terms evaluated, parity
  joint-enumeration terms, pairwise MAX/MIN folds;
- cache effectiveness — hits and misses of the subset-weight-table cache
  and of the Gaussian delay-kernel cache, plus FFT vs direct convolution
  batch counts.

Counters are plain integer increments (negligible overhead); phase timers
are a handful of ``perf_counter`` pairs per run.  The profile is attached to
the :class:`~repro.core.spsta.SpstaResult`, printed by the CLI ``--profile``
flag, and recorded into the Table 3 experiment output.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
import time
from typing import Dict, Iterator


@dataclass
class SpstaProfile:
    """Counters and phase timings of one SPSTA run."""

    engine: str = ""
    algebra: str = ""
    circuit: str = ""
    workers: int = 1
    scenarios: int = 1           # >1 for the scenario-batched backend

    gates_processed: int = 0
    levels: int = 0
    subset_terms: int = 0        # Eq. 11 (weight, conditional) terms kept
    parity_terms: int = 0        # parity joint-enumeration terms kept
    max_folds: int = 0           # pairwise MAX/MIN combinations performed

    weight_table_hits: int = 0
    weight_table_misses: int = 0
    kernel_cache_hits: int = 0
    kernel_cache_misses: int = 0
    fft_convolutions: int = 0    # rows convolved through the FFT path
    direct_convolutions: int = 0  # rows convolved with np.convolve
    shift_rows: int = 0          # rows shifted (deterministic delays)

    # numerical guardrails (grid engines): probability mass clipped off the
    # grid edge by shift/convolution/sampling, and NaN/Inf sentinel sweeps
    mass_checks: int = 0         # grid operations audited for clipped mass
    clipped_mass: float = 0.0    # total probability mass lost off-grid
    clip_events: int = 0         # operations past the warn threshold
    max_clip_fraction: float = 0.0  # worst single-operation clip fraction
    finite_checks: int = 0       # NaN/Inf sentinel sweeps performed

    phase_seconds: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Accumulate wall time of a named phase (re-entrant per name)."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - t0
            self.phase_seconds[name] = (
                self.phase_seconds.get(name, 0.0) + elapsed)

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    @property
    def weight_table_hit_rate(self) -> float:
        total = self.weight_table_hits + self.weight_table_misses
        return self.weight_table_hits / total if total else 0.0

    @property
    def kernel_cache_hit_rate(self) -> float:
        total = self.kernel_cache_hits + self.kernel_cache_misses
        return self.kernel_cache_hits / total if total else 0.0

    def render(self, indent: str = "") -> str:
        """Human-readable profile block (CLI ``--profile``, Table 3)."""
        lines = [
            f"{indent}SPSTA profile [{self.engine}] "
            f"{self.circuit or '?'} / {self.algebra or '?'}"
            + (f" / workers={self.workers}" if self.workers > 1 else "")
            + (f" / scenarios={self.scenarios}"
               if self.scenarios > 1 else ""),
            f"{indent}  gates: {self.gates_processed}  "
            f"levels: {self.levels}  subset terms: {self.subset_terms}  "
            f"parity terms: {self.parity_terms}  "
            f"max/min folds: {self.max_folds}",
            f"{indent}  weight-table cache: {self.weight_table_hits} hits / "
            f"{self.weight_table_misses} misses "
            f"({100.0 * self.weight_table_hit_rate:.1f}% hit rate)",
            f"{indent}  kernel cache: {self.kernel_cache_hits} hits / "
            f"{self.kernel_cache_misses} misses "
            f"({100.0 * self.kernel_cache_hit_rate:.1f}% hit rate)",
            f"{indent}  convolutions: {self.fft_convolutions} fft rows, "
            f"{self.direct_convolutions} direct rows, "
            f"{self.shift_rows} shifted rows",
            f"{indent}  mass guardrail: {self.mass_checks} checks, "
            f"{self.clipped_mass:.3g} clipped "
            f"({self.clip_events} past warn threshold, "
            f"worst fraction {self.max_clip_fraction:.3g}); "
            f"finite sweeps: {self.finite_checks}",
        ]
        if self.phase_seconds:
            phases = "  ".join(f"{name}={seconds * 1e3:.1f}ms"
                               for name, seconds in self.phase_seconds.items())
            lines.append(f"{indent}  phases: {phases} "
                         f"(total {self.total_seconds * 1e3:.1f}ms)")
        return "\n".join(lines)
