"""The ``spsta serve`` long-lived incremental analysis daemon.

The production-traffic story (ROADMAP): a process that loads netlists
once, keeps per-circuit warm state — the parsed netlist, its
topological levelization, and a :class:`~repro.core.incremental_spsta.
IncrementalSpsta` instance holding every net's four-value probabilities
and TOP functions — and answers repeated timing queries without
re-paying full-analysis cost:

- a repeated ``analyze``/``query`` is answered from a result cache
  keyed by the **canonical fingerprints** of
  :mod:`repro.sim.checkpoint` (circuit structure, input statistics,
  effective delay model, algebra, request shape), so identical queries
  return bit-identical payloads without touching the engines;
- a delay ``edit`` re-times only the dirty fan-out cone via the
  worklist engine (the PR 8 :class:`IncrementalSpsta` — provably
  bit-exact against a fresh full pass), after which new queries compute
  against the edited state and *old* cached results remain valid under
  their own delay fingerprint;
- a structural ``edit`` (new ``.bench`` source) falls back to a full
  rebuild of that circuit's state — structure changes invalidate
  everything the fingerprints say they invalidate, and nothing more.

Request validation is the existing ``spsta lint`` preflight: a circuit
whose lint findings reach the daemon's ``--fail-on`` severity is
refused with the structured report (code ``lint-rejected``).  Startup
can run the PR 3 conformance harness as a deploy-time canary
(``--canary``): the daemon refuses to serve if any engine pair
diverges on the canary circuit.

The daemon is transport-agnostic: :meth:`Server.handle` maps one
request object to one response object; stdio (JSON Lines) and HTTP
(``http.server``) loops wrap it.  See :mod:`repro.serve.protocol` for
the envelope schema and docs/serving.md for the operations guide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
import json
from pathlib import Path
import sys
import threading
import time
from typing import IO, Any, Dict, List, Mapping, Optional, Tuple

from repro.core.incremental_spsta import IncrementalSpsta
from repro.core.inputs import InputStats
from repro.hier.model import AlgebraSpec
from repro.lint import LintConfig, NetlistError, Severity, run_lint
from repro.netlist.bench import (
    BenchParseError,
    parse_bench,
    parse_bench_file,
)
from repro.netlist.core import Netlist
from repro.serve.cache import ResultCache
from repro.serve.protocol import (
    DEFAULT_MAX_REQUEST_BYTES,
    PROTOCOL_VERSION,
    RequestError,
    config_stats,
    error_response,
    ok_response,
    parse_algebra,
    parse_delay_model,
    validate_request,
)
from repro.sim.checkpoint import (
    circuit_fingerprint,
    delay_fingerprint,
    stats_fingerprint,
    value_fingerprint,
)
from repro.stats.normal import Normal

#: Result-payload schema version (inside the ``result`` object).
RESULT_VERSION = 1


@dataclass
class ServeOptions:
    """Daemon configuration (the ``spsta serve`` flags)."""

    fail_on: str = "error"          # lint preflight severity, or "never"
    cache_entries: int = 256        # in-memory LRU cap
    cache_dir: Optional[str] = None  # on-disk result cache (shared)
    max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES
    default_config: str = "I"
    default_algebra: str = "moments"
    default_grid: str = "-8:60:2048"


@dataclass
class CircuitSession:
    """One circuit's warm state under a fixed (config, algebra, base
    delay) — the unit the daemon keeps resident between requests."""

    circuit: str
    netlist: Netlist
    config_label: str
    algebra_spec: AlgebraSpec
    inc: IncrementalSpsta
    circuit_hash: str
    stats_hash: str
    base_delay_hash: str
    edits: int = 0
    rebuilds: int = 0
    build_seconds: float = 0.0
    recomputed_gates: int = 0

    def delay_hash(self) -> str:
        """Fingerprint of the *effective* delay state (base + edits)."""
        return delay_fingerprint(self.inc.effective_delay_model())


@dataclass
class _SessionLog:
    """Optional JSON-Lines transcript of every request/response pair."""

    path: Path
    _handle: Optional[IO[str]] = field(default=None, repr=False)

    def record(self, request: object, response: Mapping[str, Any]) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a")
        self._handle.write(json.dumps({"request": request,
                                       "response": response}) + "\n")
        self._handle.flush()


class Server:
    """The daemon core: one request object in, one response object out.

    Thread-safe via a single big lock (the engines share mutable warm
    state; requests serialize).  Transports call :meth:`handle_text`
    (framing + size cap) or :meth:`handle` (parsed objects).
    """

    def __init__(self, options: Optional[ServeOptions] = None) -> None:
        self.options = options or ServeOptions()
        if self.options.fail_on not in ("error", "warning", "never"):
            raise ValueError(
                f"fail_on must be error|warning|never, "
                f"got {self.options.fail_on!r}")
        self.cache = ResultCache(self.options.cache_entries,
                                 self.options.cache_dir)
        self._sessions: Dict[Tuple[str, str, str, str], CircuitSession] = {}
        self._netlists: Dict[str, Netlist] = {}
        self._lint_passed: Dict[Tuple[str, str], bool] = {}
        self.requests_served = 0
        self.shutdown_requested = False
        self.session_log: Optional[_SessionLog] = None
        self._lock = threading.Lock()
        self._started = time.monotonic()

    # -- transport entry points ---------------------------------------------

    def handle_text(self, line: str) -> Dict[str, Any]:
        """One serialized request -> one response object (framing layer)."""
        if len(line.encode("utf-8", errors="replace")) \
                > self.options.max_request_bytes:
            return self._log(None, error_response(
                None, "oversized-request",
                f"request exceeds --max-request-bytes "
                f"({self.options.max_request_bytes})"))
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            return self._log(line[:256], error_response(
                None, "bad-request", f"request is not JSON: {exc}"))
        return self.handle(payload)

    def handle(self, payload: object) -> Dict[str, Any]:
        """One request object -> one response object."""
        with self._lock:
            self.requests_served += 1
            request_id = (payload.get("id")
                          if isinstance(payload, dict) else None)
            try:
                request = validate_request(payload)
            except RequestError as exc:
                return self._log(payload, error_response(
                    request_id, exc.code, str(exc)))
            try:
                response = self._dispatch(request)
            except RequestError as exc:
                detail = getattr(exc, "detail", None)
                response = error_response(request_id, exc.code, str(exc),
                                          detail)
            except Exception as exc:  # noqa: BLE001 - daemon must survive
                response = error_response(
                    request_id, "internal",
                    f"{type(exc).__name__}: {exc}")
            return self._log(payload, response)

    def _log(self, request: object,
             response: Dict[str, Any]) -> Dict[str, Any]:
        if self.session_log is not None:
            self.session_log.record(request, response)
        return response

    # -- dispatch ------------------------------------------------------------

    def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request["op"]
        request_id = request.get("id")
        t0 = time.perf_counter()
        if op == "status":
            return ok_response(request_id, self._op_status(),
                               cached=False,
                               seconds=time.perf_counter() - t0)
        if op == "shutdown":
            self.shutdown_requested = True
            return ok_response(request_id, {"shutting_down": True},
                               cached=False,
                               seconds=time.perf_counter() - t0)
        if op == "invalidate":
            return ok_response(request_id, self._op_invalidate(request),
                               cached=False,
                               seconds=time.perf_counter() - t0)
        if op == "edit":
            return ok_response(request_id, self._op_edit(request),
                               cached=False,
                               seconds=time.perf_counter() - t0)
        # analyze / query: cacheable reads
        session = self._session_for(request)
        extra: Tuple[Any, ...]
        if op == "query":
            net = request.get("net")
            if not net:
                raise RequestError("query needs a 'net'")
            directions = ((request["direction"],)
                          if request.get("direction") else ("rise", "fall"))
            extra = ("query", net, directions)
        else:
            extra = ("analyze",)
        key = self._cache_key(session, extra)
        cached = self.cache.get(key)
        if cached is not None:
            return ok_response(request_id, cached, cached=True,
                               seconds=time.perf_counter() - t0)
        if op == "query":
            result = self._op_query(session, net, directions)
        else:
            result = self._op_analyze(session)
        self.cache.put(key, result, circuit=session.circuit)
        return ok_response(request_id, result, cached=False,
                           seconds=time.perf_counter() - t0)

    # -- operations ----------------------------------------------------------

    def _op_analyze(self, session: CircuitSession) -> Dict[str, Any]:
        result = session.inc.result()
        endpoints: List[Dict[str, Any]] = []
        for net in session.netlist.endpoints:
            for direction in ("rise", "fall"):
                p, mean, std = result.report(net, direction)
                endpoints.append({
                    "net": net, "direction": direction,
                    "probability": _finite(p),
                    "mean": _finite(mean), "std": _finite(std)})
        return {
            "report": "spsta-serve-analyze",
            "version": RESULT_VERSION,
            "circuit": session.circuit,
            "config": session.config_label,
            "algebra": session.algebra_spec.token(),
            "fingerprints": self._fingerprints(session),
            "n_gates": len(session.netlist.gates),
            "endpoints": endpoints,
        }

    def _op_query(self, session: CircuitSession, net: str,
                  directions: Tuple[str, ...]) -> Dict[str, Any]:
        if net not in session.inc.tops:
            raise RequestError(f"no net {net!r} in {session.circuit}",
                               "unknown-gate")
        result = session.inc.result()
        reports = []
        for direction in directions:
            p, mean, std = result.report(net, direction)
            reports.append({"net": net, "direction": direction,
                            "probability": _finite(p),
                            "mean": _finite(mean), "std": _finite(std)})
        return {
            "report": "spsta-serve-query",
            "version": RESULT_VERSION,
            "circuit": session.circuit,
            "config": session.config_label,
            "algebra": session.algebra_spec.token(),
            "fingerprints": self._fingerprints(session),
            "reports": reports,
        }

    def _op_edit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        bench = request.get("bench")
        if bench is not None:
            return self._structural_edit(request, bench)
        session = self._session_for(request)
        gate = request.get("gate")
        if not gate:
            raise RequestError(
                "edit needs a 'gate' (delay edit) or 'bench' "
                "(structural edit)")
        if gate not in session.netlist.gates \
                or gate not in {g.name for g
                                in session.netlist.combinational_gates}:
            raise RequestError(
                f"no combinational gate {gate!r} in {session.circuit}",
                "unknown-gate")
        t0 = time.perf_counter()
        if request.get("clear"):
            stats = session.inc.clear_delay(gate)
            applied: Dict[str, Any] = {"gate": gate, "cleared": True}
        else:
            mu = request.get("mu")
            if mu is None:
                raise RequestError("edit needs 'mu' (or 'clear': true)")
            sigma = float(request.get("sigma", 0.0))
            stats = session.inc.set_delay(gate, Normal(float(mu), sigma))
            applied = {"gate": gate, "mu": float(mu), "sigma": sigma}
        seconds = time.perf_counter() - t0
        session.edits += 1
        session.recomputed_gates += stats.recomputed
        return {
            "report": "spsta-serve-edit",
            "version": RESULT_VERSION,
            "circuit": session.circuit,
            "applied": applied,
            "retime": {"mode": "incremental",
                       "recomputed": stats.recomputed,
                       "skipped": stats.skipped,
                       "cone_size": stats.cone_size,
                       "total_gates":
                           len(session.netlist.combinational_gates),
                       "seconds": seconds},
            "fingerprints": self._fingerprints(session),
        }

    def _structural_edit(self, request: Dict[str, Any],
                         bench: str) -> Dict[str, Any]:
        circuit = request.get("circuit")
        if not circuit:
            raise RequestError("structural edit needs a 'circuit' name")
        try:
            netlist = parse_bench(bench, name=circuit)
        except (BenchParseError, NetlistError) as exc:
            raise RequestError(
                f"bench source does not parse: {exc}") from exc
        # Full rebuild: drop every warm session of this circuit, then
        # register the new structure and rebuild the requesting view.
        dropped = self._drop_sessions(circuit)
        self._netlists[circuit] = netlist
        self._lint_passed = {k: v for k, v in self._lint_passed.items()
                             if k[0] != circuit}
        t0 = time.perf_counter()
        session = self._session_for(request)
        seconds = time.perf_counter() - t0
        session.rebuilds += 1
        return {
            "report": "spsta-serve-edit",
            "version": RESULT_VERSION,
            "circuit": circuit,
            "applied": {"structural": True,
                        "gates": len(netlist.gates),
                        "sessions_dropped": dropped},
            "retime": {"mode": "full-rebuild",
                       "recomputed":
                           len(netlist.combinational_gates),
                       "seconds": seconds},
            "fingerprints": self._fingerprints(session),
        }

    def _op_invalidate(self, request: Dict[str, Any]) -> Dict[str, Any]:
        circuit = request.get("circuit")
        if not circuit:
            raise RequestError("invalidate needs a 'circuit' name")
        dropped = self._drop_sessions(circuit)
        purged = self.cache.invalidate_circuit(circuit)
        self._netlists.pop(circuit, None)
        self._lint_passed = {k: v for k, v in self._lint_passed.items()
                             if k[0] != circuit}
        return {
            "report": "spsta-serve-invalidate",
            "version": RESULT_VERSION,
            "circuit": circuit,
            "sessions_dropped": dropped,
            "cache_entries_purged": purged,
        }

    def _op_status(self) -> Dict[str, Any]:
        return {
            "report": "spsta-serve-status",
            "version": RESULT_VERSION,
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": time.monotonic() - self._started,
            "requests_served": self.requests_served,
            "sessions": [
                {"circuit": s.circuit, "config": s.config_label,
                 "algebra": s.algebra_spec.token(),
                 "gates": len(s.netlist.gates),
                 "edits": s.edits, "rebuilds": s.rebuilds,
                 "recomputed_gates": s.recomputed_gates,
                 "build_seconds": s.build_seconds,
                 "delay_fingerprint": s.delay_hash()}
                for s in self._sessions.values()],
            "cache": {"entries": len(self.cache),
                      "max_entries": self.cache.max_entries,
                      "hits": self.cache.hits,
                      "misses": self.cache.misses,
                      "evictions": self.cache.evictions,
                      "disk_entries": self.cache.disk_entries,
                      "disk_hits": self.cache.disk_hits,
                      "disk": self.options.cache_dir},
            "lint_fail_on": self.options.fail_on,
        }

    # -- session management --------------------------------------------------

    def _session_for(self, request: Dict[str, Any]) -> CircuitSession:
        """The warm session a request addresses, building it on miss."""
        circuit = request.get("circuit")
        if not circuit:
            raise RequestError(f"{request['op']} needs a 'circuit'")
        config_label = request.get("config", self.options.default_config)
        algebra_spec = parse_algebra(
            request.get("algebra", self.options.default_algebra),
            request.get("grid", self.options.default_grid))
        base_delay = parse_delay_model(request.get("delay"))
        base_delay_hash = delay_fingerprint(base_delay)
        key = (circuit, config_label, algebra_spec.token(),
               base_delay_hash)
        session = self._sessions.get(key)
        if session is not None:
            return session
        netlist = self._load_netlist(circuit)
        stats = config_stats(config_label)
        self._lint_preflight(circuit, netlist, config_label, stats)
        t0 = time.perf_counter()
        inc = IncrementalSpsta(netlist, stats, base_delay,
                               algebra_spec.build())
        session = CircuitSession(
            circuit=circuit, netlist=netlist, config_label=config_label,
            algebra_spec=algebra_spec, inc=inc,
            circuit_hash=circuit_fingerprint(netlist),
            stats_hash=stats_fingerprint(stats),
            base_delay_hash=base_delay_hash,
            build_seconds=time.perf_counter() - t0)
        self._sessions[key] = session
        return session

    def _load_netlist(self, circuit: str) -> Netlist:
        cached = self._netlists.get(circuit)
        if cached is not None:
            return cached
        from repro.netlist.benchmarks import (
            benchmark_circuit,
            benchmark_names,
        )
        if circuit in benchmark_names():
            netlist = benchmark_circuit(circuit)
        else:
            path = Path(circuit)
            if not path.exists():
                raise RequestError(
                    f"unknown circuit {circuit!r}: not a benchmark and "
                    f"not a file", "unknown-circuit")
            try:
                netlist = parse_bench_file(path)
            except (BenchParseError, NetlistError) as exc:
                raise RequestError(
                    f"circuit {circuit!r} does not parse: {exc}",
                    "unknown-circuit") from exc
        self._netlists[circuit] = netlist
        return netlist

    def _lint_preflight(self, circuit: str, netlist: Netlist,
                        config_label: str, stats: InputStats) -> None:
        """``spsta lint`` as request validation (the PR 4 preflight)."""
        if self.options.fail_on == "never":
            return
        lint_key = (circuit, config_label)
        if self._lint_passed.get(lint_key):
            return
        report = run_lint(netlist, LintConfig(input_stats=stats))
        threshold = Severity.parse(self.options.fail_on)
        if not report.passed(threshold):
            error = RequestError(
                f"circuit {circuit!r} rejected by lint preflight at "
                f"--fail-on {self.options.fail_on} "
                f"({report.counts['error']} errors, "
                f"{report.counts['warning']} warnings)",
                "lint-rejected")
            error.detail = dict(report.to_dict())  # type: ignore[attr-defined]
            raise error
        self._lint_passed[lint_key] = True

    def _drop_sessions(self, circuit: str) -> int:
        victims = [key for key in self._sessions if key[0] == circuit]
        for key in victims:
            del self._sessions[key]
        return len(victims)

    # -- cache keys ----------------------------------------------------------

    def _cache_key(self, session: CircuitSession,
                   extra: Tuple[Any, ...]) -> str:
        """The fingerprint key identical queries collide on.

        Components are exactly the checkpoint-manifest fingerprints
        (circuit structure, stats, *effective* delay, algebra) plus the
        request shape — so a key hit is a semantic hit and an edited
        session keys differently until the edit is reverted.
        """
        return value_fingerprint((
            ("protocol", PROTOCOL_VERSION),
            ("circuit", session.circuit_hash),
            ("stats", session.stats_hash),
            ("delay", session.delay_hash()),
            ("algebra", session.algebra_spec.token()),
            ("config", session.config_label),
            ("request", extra),
        ))

    def _fingerprints(self, session: CircuitSession) -> Dict[str, str]:
        return {"circuit": session.circuit_hash,
                "stats": session.stats_hash,
                "delay": session.delay_hash(),
                "algebra": session.algebra_spec.token()}


def _finite(value: float) -> Optional[float]:
    """JSON-safe float: non-finite (never-occurring transition moments)
    map to null so strict parsers round-trip the payload."""
    return float(value) if value == value and abs(value) != float("inf") \
        else None


# -- canary -------------------------------------------------------------------


def run_canary(benches: Tuple[str, ...] = ("s27",),
               trials: int = 4000, seed: int = 0) -> Tuple[bool, str]:
    """The PR 3 conformance harness as a deploy-time self-check.

    Runs the full engine-pair sweep on small canary circuits; a daemon
    started with ``--canary`` refuses to serve if any pair diverges.
    Returns (passed, rendered report).
    """
    from repro.verify import run_conformance

    report = run_conformance(seed=seed, n_random=0, benches=benches,
                             trials=trials)
    return report.passed, report.render()


# -- transports ---------------------------------------------------------------


def serve_stdio(server: Server,
                stdin: Optional[IO[str]] = None,
                stdout: Optional[IO[str]] = None) -> int:
    """JSON-Lines loop: one request per line, one response per line.

    Blank lines are ignored; EOF or a ``shutdown`` request ends the
    loop.  Responses are single-line JSON, flushed per request so a
    pipe-driving client can interleave.
    """
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        response = server.handle_text(line)
        stdout.write(json.dumps(response) + "\n")
        stdout.flush()
        if server.shutdown_requested:
            break
    return 0


class _HttpHandler(BaseHTTPRequestHandler):
    """``POST /`` with a request-envelope body -> response envelope."""

    server_version = "spsta-serve/" + str(PROTOCOL_VERSION)
    daemon: Server  # injected by serve_http

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        length = int(self.headers.get("Content-Length", 0))
        if length > self.daemon.options.max_request_bytes:
            body = json.dumps(error_response(
                None, "oversized-request",
                f"request exceeds --max-request-bytes "
                f"({self.daemon.options.max_request_bytes})")).encode()
            self._reply(413, body)
            return
        raw = self.rfile.read(length).decode("utf-8", errors="replace")
        response = self.daemon.handle_text(raw)
        self._reply(200 if response.get("ok") else 400,
                    json.dumps(response).encode())
        if self.daemon.shutdown_requested:
            threading.Thread(target=self.server.shutdown,
                             daemon=True).start()

    def _reply(self, status: int, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        pass  # request logging goes through the session log, not stderr


def serve_http(server: Server, host: str, port: int) -> int:
    """Blocking HTTP loop (``http.server``; one Server, many requests).

    Handler threads serialize on the Server's internal lock, so the
    warm state stays consistent under concurrent clients.
    """
    handler = type("BoundHandler", (_HttpHandler,), {"daemon": server})
    httpd = ThreadingHTTPServer((host, port), handler)
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        httpd.server_close()
    return 0
