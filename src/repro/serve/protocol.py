"""Request/response protocol of the ``spsta serve`` daemon (schema v1).

One request and one response are each a single JSON object.  Over stdio
the framing is JSON Lines (one object per line); over HTTP the request
is a ``POST /`` body and the response the reply body — the *payloads*
are identical, so a session transcript replays against either transport.

Request envelope::

    {"v": 1, "id": <any JSON scalar, echoed back>, "op": <operation>,
     ...operation fields...}

Operations (see docs/serving.md for the full field tables):

- ``analyze``  — full endpoint report of a circuit under (config,
  algebra, delay model).  Cached by fingerprint key.
- ``query``    — one net/direction report from the same warm state.
- ``edit``     — a delay edit (incremental cone re-timing) or a
  structural edit (``bench`` source: full state rebuild).
- ``invalidate`` — drop a circuit's warm state and cached results.
- ``status``   — daemon counters: sessions, cache, uptime queries.
- ``shutdown`` — stop the serving loop after responding.

Response envelope::

    {"v": 1, "id": ..., "ok": true,  "cached": bool, "seconds": float,
     "result": {...}}
    {"v": 1, "id": ..., "ok": false, "error": {"code": ..., "message":
     ..., ...}}

Error codes: ``bad-request`` (malformed or schema-invalid),
``oversized-request``, ``lint-rejected`` (the ``spsta lint`` preflight
found diagnostics at or above the daemon's ``--fail-on`` severity; the
error carries the structured report), ``unknown-circuit``,
``unknown-gate``, ``internal``.

Validation mirrors :mod:`repro.experiments.bench_schema`: a JSON-Schema
document (:data:`REQUEST_SCHEMA`) is the normative format, `jsonschema`
is used when importable, and an equivalent structural check is the
fallback — the daemon must not depend on optional packages.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple

from repro.core.delay import (
    DelayModel,
    MisDelay,
    NormalDelay,
    PerGateDelay,
    UnitDelay,
)
from repro.core.inputs import CONFIG_I, CONFIG_II, InputStats
from repro.core.nldm import FrozenDelays
from repro.hier.model import AlgebraSpec
from repro.stats.grid import TimeGrid

try:                                        # pragma: no cover - optional
    import jsonschema                       # type: ignore[import-untyped]
except ImportError:                         # pragma: no cover
    jsonschema = None

#: Bump on breaking protocol changes (mirrors the lint-report convention).
PROTOCOL_VERSION = 1

#: Hard per-request size cap (bytes of the serialized request); requests
#: past the daemon's limit are refused with ``oversized-request``.
DEFAULT_MAX_REQUEST_BYTES = 1 << 20

OPERATIONS = ("analyze", "query", "edit", "invalidate", "status",
              "shutdown")

ALGEBRAS = ("moments", "mixture", "grid")

DELAY_KINDS = ("unit", "normal", "mis", "pergate", "frozen")

#: JSON-Schema (draft 7 subset) of one request envelope.
REQUEST_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["v", "op"],
    "properties": {
        "v": {"const": PROTOCOL_VERSION},
        "id": {"type": ["string", "number", "null"]},
        "op": {"enum": list(OPERATIONS)},
        "circuit": {"type": "string", "minLength": 1},
        "config": {"enum": ["I", "II"]},
        "algebra": {"enum": list(ALGEBRAS)},
        "grid": {"type": "string", "pattern": r"^[^:]+:[^:]+:\d+$"},
        "delay": {
            "type": "object",
            "required": ["kind"],
            "properties": {
                "kind": {"enum": list(DELAY_KINDS)},
                "value": {"type": "number"},
                "mu": {"type": "number"},
                "sigma": {"type": "number", "minimum": 0},
                "base": {"type": "number"},
                "speedup": {"type": "number"},
                "floor": {"type": "number"},
                "spread": {"type": "number"},
                "relative_sigma": {"type": "number", "minimum": 0},
                "delays": {"type": "object",
                           "additionalProperties": {"type": "number"}},
            },
        },
        # edit fields
        "gate": {"type": "string", "minLength": 1},
        "mu": {"type": "number"},
        "sigma": {"type": "number", "minimum": 0},
        "clear": {"type": "boolean"},
        "bench": {"type": "string", "minLength": 1},
        # query fields
        "net": {"type": "string", "minLength": 1},
        "direction": {"enum": ["rise", "fall"]},
    },
}


class RequestError(ValueError):
    """A request that must be refused, carrying its protocol error code."""

    def __init__(self, message: str, code: str = "bad-request") -> None:
        super().__init__(message)
        self.code = code


def _fail(message: str) -> None:
    raise RequestError(message)


def _validate_fallback(payload: Dict[str, Any]) -> None:
    if payload.get("v") != PROTOCOL_VERSION:
        _fail(f"v must be {PROTOCOL_VERSION}, got {payload.get('v')!r}")
    op = payload.get("op")
    if op not in OPERATIONS:
        _fail(f"op must be one of {OPERATIONS}, got {op!r}")
    request_id = payload.get("id")
    if request_id is not None and not isinstance(request_id, (str, int,
                                                              float)):
        _fail(f"id must be a JSON scalar, got {type(request_id).__name__}")
    circuit = payload.get("circuit")
    if circuit is not None and (not isinstance(circuit, str)
                                or not circuit):
        _fail(f"circuit must be a non-empty string, got {circuit!r}")
    algebra = payload.get("algebra")
    if algebra is not None and algebra not in ALGEBRAS:
        _fail(f"algebra must be one of {ALGEBRAS}, got {algebra!r}")
    config = payload.get("config")
    if config is not None and config not in ("I", "II"):
        _fail(f"config must be 'I' or 'II', got {config!r}")
    delay = payload.get("delay")
    if delay is not None:
        if not isinstance(delay, dict):
            _fail(f"delay must be an object, got {type(delay).__name__}")
        if delay.get("kind") not in DELAY_KINDS:
            _fail(f"delay.kind must be one of {DELAY_KINDS}, "
                  f"got {delay.get('kind')!r}")
    direction = payload.get("direction")
    if direction is not None and direction not in ("rise", "fall"):
        _fail(f"direction must be 'rise' or 'fall', got {direction!r}")
    for key in ("mu", "sigma"):
        value = payload.get(key)
        if value is not None and (not isinstance(value, (int, float))
                                  or isinstance(value, bool)):
            _fail(f"{key} must be a number, got {value!r}")
    if payload.get("sigma") is not None and payload["sigma"] < 0:
        _fail(f"sigma must be >= 0, got {payload['sigma']!r}")


def validate_request(payload: object) -> Dict[str, Any]:
    """Check one request envelope against :data:`REQUEST_SCHEMA`.

    Returns the payload (typed) on success; raises :class:`RequestError`
    with code ``bad-request`` otherwise.  Operation-specific *semantic*
    requirements (an ``analyze`` without ``circuit``, an ``edit``
    without a target) are enforced by the daemon, which knows its
    defaults.
    """
    if not isinstance(payload, dict):
        raise RequestError(
            f"request must be a JSON object, got "
            f"{type(payload).__name__}")
    if jsonschema is not None:              # pragma: no cover - optional
        try:
            jsonschema.validate(payload, REQUEST_SCHEMA)
        except jsonschema.ValidationError as exc:
            raise RequestError(f"schema violation: {exc.message}") from exc
        return payload
    _validate_fallback(payload)
    return payload


# -- request-field decoding --------------------------------------------------


def config_stats(label: str) -> InputStats:
    """The named input-statistics configuration (paper part I or II)."""
    if label == "I":
        return CONFIG_I
    if label == "II":
        return CONFIG_II
    raise RequestError(f"config must be 'I' or 'II', got {label!r}")


def parse_grid(spec: str) -> TimeGrid:
    """``START:STOP:N`` -> :class:`TimeGrid` (the CLI's --grid syntax)."""
    parts = spec.split(":")
    if len(parts) != 3:
        raise RequestError(
            f"grid must be START:STOP:N (e.g. -8:60:2048), got {spec!r}")
    try:
        return TimeGrid(float(parts[0]), float(parts[1]), int(parts[2]))
    except ValueError as exc:
        raise RequestError(f"bad grid {spec!r}: {exc}") from exc


def parse_algebra(name: str, grid: Optional[str]) -> AlgebraSpec:
    """(algebra name, optional grid spec) -> picklable AlgebraSpec."""
    if name == "moments":
        return AlgebraSpec.moment()
    if name == "mixture":
        return AlgebraSpec.mixture()
    if name == "grid":
        return AlgebraSpec.grid(parse_grid(grid if grid is not None
                                           else "-8:60:2048"))
    raise RequestError(f"algebra must be one of {ALGEBRAS}, got {name!r}")


def parse_delay_model(spec: Optional[Mapping[str, Any]]) -> DelayModel:
    """A delay-model spec object -> the bundled model it names.

    ``None`` means the paper default :class:`UnitDelay`.  Mapping-bearing
    models (``frozen``) are safe cache citizens: the fingerprint layer
    hashes their mappings in sorted-key order
    (:func:`repro.sim.checkpoint.delay_fingerprint`).
    """
    if spec is None:
        return UnitDelay()
    kind = spec.get("kind")
    try:
        if kind == "unit":
            return UnitDelay(float(spec.get("value", 1.0)))
        if kind == "normal":
            return NormalDelay(float(spec.get("mu", 1.0)),
                               float(spec.get("sigma", 0.1)))
        if kind == "mis":
            return MisDelay(float(spec.get("base", 1.0)),
                            float(spec.get("speedup", 0.15)),
                            float(spec.get("floor", 0.3)),
                            float(spec.get("sigma", 0.0)))
        if kind == "pergate":
            return PerGateDelay(float(spec.get("base", 1.0)),
                                float(spec.get("spread", 0.2)))
        if kind == "frozen":
            delays = spec.get("delays")
            if not isinstance(delays, Mapping) or not delays:
                raise RequestError(
                    "delay.kind 'frozen' needs a non-empty "
                    "'delays' mapping of gate -> delay")
            return FrozenDelays(
                {str(gate): float(value)
                 for gate, value in delays.items()},
                float(spec.get("relative_sigma", 0.0)))
    except RequestError:
        raise
    except (TypeError, ValueError) as exc:
        raise RequestError(f"bad delay spec {dict(spec)!r}: {exc}") from exc
    raise RequestError(
        f"delay.kind must be one of {DELAY_KINDS}, got {kind!r}")


# -- response envelopes ------------------------------------------------------


def ok_response(request_id: object, result: Mapping[str, Any], *,
                cached: bool, seconds: float) -> Dict[str, Any]:
    """A success envelope; ``result`` is the cache-stable payload."""
    return {"v": PROTOCOL_VERSION, "id": request_id, "ok": True,
            "cached": cached, "seconds": seconds, "result": dict(result)}


def error_response(request_id: object, code: str, message: str,
                   detail: Optional[Mapping[str, Any]] = None
                   ) -> Dict[str, Any]:
    """An error envelope with a machine-readable code."""
    error: Dict[str, Any] = {"code": code, "message": message}
    if detail is not None:
        error["detail"] = dict(detail)
    return {"v": PROTOCOL_VERSION, "id": request_id, "ok": False,
            "error": error}


def response_summary(response: Mapping[str, Any]) -> Tuple[bool, str]:
    """(ok, one-line summary) of a response — session-log convenience."""
    if response.get("ok"):
        cached = "hit" if response.get("cached") else "miss"
        return True, f"ok ({cached}, {response.get('seconds', 0):.4f}s)"
    error = response.get("error", {})
    return False, f"{error.get('code')}: {error.get('message')}"
