"""Long-lived incremental SPSTA analysis daemon (``spsta serve``).

Layers:

- :mod:`repro.serve.protocol` — versioned request/response JSON schema,
  validation (jsonschema-optional), delay/algebra decoding, envelopes;
- :mod:`repro.serve.cache` — LRU result cache with an optional shared
  on-disk tier, keyed by canonical fingerprints;
- :mod:`repro.serve.daemon` — the :class:`Server` core (sessions, lint
  preflight, incremental edits, canary) and the stdio/HTTP transports.

See docs/serving.md for the protocol guide.
"""

from repro.serve.cache import ResultCache, ServeCacheError
from repro.serve.daemon import (
    CircuitSession,
    RESULT_VERSION,
    Server,
    ServeOptions,
    run_canary,
    serve_http,
    serve_stdio,
)
from repro.serve.protocol import (
    DEFAULT_MAX_REQUEST_BYTES,
    PROTOCOL_VERSION,
    REQUEST_SCHEMA,
    RequestError,
    error_response,
    ok_response,
    response_summary,
    validate_request,
)

__all__ = [
    "CircuitSession",
    "DEFAULT_MAX_REQUEST_BYTES",
    "PROTOCOL_VERSION",
    "REQUEST_SCHEMA",
    "RESULT_VERSION",
    "RequestError",
    "ResultCache",
    "Server",
    "ServeCacheError",
    "ServeOptions",
    "error_response",
    "ok_response",
    "response_summary",
    "run_canary",
    "serve_http",
    "serve_stdio",
    "validate_request",
]
