"""Result cache of the ``spsta serve`` daemon.

Two tiers with one key space (the fingerprint keys of
:mod:`repro.serve.daemon`):

- an in-memory LRU bounded by ``max_entries`` — the warm-query fast
  path, evicting least-recently-used entries past the cap;
- an optional on-disk tier (``--cache DIR``) so a *restarted* daemon —
  or a concurrent worker sharing the directory — starts warm.  Writes
  are atomic and the manifest update runs under the same advisory-lock
  merge-on-write discipline as :class:`repro.hier.store.
  InterfaceModelStore`, so concurrent workers cannot drop each other's
  entries.

Entries are stored as the *serialized* result payload and deserialized
on hit, so a hit returns exactly what ``json`` round-trips — the
bit-identical-payload guarantee the serve tests pin.  Keys are
content-addressed (they pin circuit structure, stats, delay, algebra,
and request shape), so a key hit is always a semantic hit and stale
entries cannot exist; corruption is survivable (a bad disk entry is
dropped and reported as a miss).
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
import hashlib
import json
import logging
import os
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

try:  # advisory manifest locking (POSIX; no-op where unavailable)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

logger = logging.getLogger(__name__)

MANIFEST_NAME = "manifest.json"
LOCK_NAME = "manifest.lock"
MANIFEST_FORMAT = "spsta-serve-cache"
MANIFEST_VERSION = 1


class ServeCacheError(RuntimeError):
    """The directory is not a usable serve result cache (a manifest of a
    different format — refuse to clobber foreign data)."""


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write-temp-then-rename so readers never observe a partial file."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class ResultCache:
    """LRU result cache with an optional shared on-disk tier."""

    def __init__(self, max_entries: int = 256,
                 directory: Optional[Union[str, Path]] = None) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.directory = Path(directory) if directory is not None else None
        #: key -> (serialized result text, circuit tag)
        self._memory: "OrderedDict[str, tuple[str, str]]" = OrderedDict()
        self._disk: Dict[str, Dict[str, str]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_hits = 0
        if self.directory is not None:
            self._open_disk()

    def __len__(self) -> int:
        return len(self._memory)

    @property
    def disk_entries(self) -> int:
        return len(self._disk)

    # -- cache protocol -----------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached result payload for ``key``, or None (miss).

        A memory hit refreshes LRU recency; a disk hit is promoted into
        memory.  Either way the caller receives ``json.loads`` of the
        stored text — byte-identical serialization on every hit.
        """
        entry = self._memory.get(key)
        if entry is not None:
            self._memory.move_to_end(key)
            self.hits += 1
            return json.loads(entry[0])
        text = self._disk_read(key)
        if text is not None:
            self.hits += 1
            self.disk_hits += 1
            tag = self._disk[key].get("circuit", "")
            self._remember(key, text, tag)
            return json.loads(text)
        self.misses += 1
        return None

    def put(self, key: str, result: Dict[str, Any],
            circuit: str = "") -> None:
        """Cache one result payload under ``key``.

        ``circuit`` tags the entry for :meth:`invalidate_circuit`.  The
        payload is serialized once here; hits replay that serialization.
        """
        text = json.dumps(result, sort_keys=True)
        self._remember(key, text, circuit)
        if self.directory is not None:
            self._disk_write(key, text, circuit)

    def invalidate_circuit(self, circuit: str) -> int:
        """Drop every entry tagged with ``circuit``; returns the count."""
        victims = [key for key, (_, tag) in self._memory.items()
                   if tag == circuit]
        for key in victims:
            del self._memory[key]
        if self.directory is not None:
            disk_victims = [key for key, entry in self._disk.items()
                            if entry.get("circuit") == circuit]
            for key in disk_victims:
                path = self.directory / self._disk[key]["file"]
                try:
                    path.unlink()
                except OSError:
                    pass
            if disk_victims:
                with self._manifest_lock():
                    self._merge_disk_manifest(drop=frozenset(disk_victims))
                    for key in disk_victims:
                        self._disk.pop(key, None)
                    self._write_manifest()
            victims.extend(k for k in disk_victims if k not in victims)
        return len(victims)

    # -- memory tier --------------------------------------------------------

    def _remember(self, key: str, text: str, tag: str) -> None:
        self._memory[key] = (text, tag)
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)
            self.evictions += 1

    # -- disk tier ----------------------------------------------------------

    def entry_path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"rs_{key[:32]}.json"

    @property
    def manifest_path(self) -> Path:
        assert self.directory is not None
        return self.directory / MANIFEST_NAME

    def _open_disk(self) -> None:
        assert self.directory is not None
        self.directory.mkdir(parents=True, exist_ok=True)
        if not self.manifest_path.exists():
            with self._manifest_lock():
                self._merge_disk_manifest()
                self._write_manifest()
            return
        manifest = self._read_manifest()
        if manifest is None:
            raise ServeCacheError(
                f"{self.manifest_path} is not a {MANIFEST_FORMAT} "
                f"manifest — refusing to use the directory as a cache")
        self._disk = {str(key): dict(entry)
                      for key, entry in manifest["entries"].items()}

    def _read_manifest(self) -> Optional[Dict[str, Any]]:
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except (json.JSONDecodeError, OSError):
            return None
        if (not isinstance(manifest, dict)
                or manifest.get("format") != MANIFEST_FORMAT
                or not isinstance(manifest.get("entries"), dict)):
            return None
        return manifest

    def _disk_read(self, key: str) -> Optional[str]:
        if self.directory is None:
            return None
        entry = self._disk.get(key)
        if entry is None:
            return None
        path = self.directory / entry["file"]
        try:
            payload = path.read_bytes()
        except OSError:
            logger.warning("serve-cache payload %s missing; dropping",
                           path)
            self._disk_drop(key)
            return None
        if hashlib.sha256(payload).hexdigest() != entry["sha256"]:
            logger.warning("serve-cache payload %s fails its checksum; "
                           "dropping corrupt entry", path)
            self._disk_drop(key)
            return None
        try:
            text = payload.decode()
            json.loads(text)
        except (UnicodeDecodeError, json.JSONDecodeError):
            logger.warning("serve-cache payload %s is not JSON; dropping",
                           path)
            self._disk_drop(key)
            return None
        return text

    def _disk_write(self, key: str, text: str, circuit: str) -> None:
        path = self.entry_path(key)
        payload = text.encode()
        _atomic_write_bytes(path, payload)
        with self._manifest_lock():
            self._merge_disk_manifest()
            self._disk[key] = {
                "file": path.name,
                "sha256": hashlib.sha256(payload).hexdigest(),
                "circuit": circuit,
            }
            self._write_manifest()

    def _disk_drop(self, key: str) -> None:
        with self._manifest_lock():
            self._merge_disk_manifest(drop=frozenset((key,)))
            self._disk.pop(key, None)
            self._write_manifest()

    @contextmanager
    def _manifest_lock(self) -> Iterator[None]:
        """Exclusive advisory lock over manifest read-modify-write."""
        assert self.directory is not None
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        with open(self.directory / LOCK_NAME, "w") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    def _merge_disk_manifest(
            self, drop: frozenset = frozenset()) -> None:
        """Fold entries another worker persisted into ours (under lock)."""
        manifest = self._read_manifest()
        if manifest is None:
            return
        for key, entry in manifest["entries"].items():
            if key not in drop and key not in self._disk:
                self._disk[str(key)] = dict(entry)

    def _write_manifest(self) -> None:
        manifest = {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "entries": {key: self._disk[key]
                        for key in sorted(self._disk)},
        }
        _atomic_write_bytes(self.manifest_path,
                            (json.dumps(manifest, indent=2) + "\n").encode())
