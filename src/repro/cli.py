"""Command-line interface: ``spsta`` (or ``python -m repro``).

Subcommands:

- ``analyze`` — run SPSTA / SSTA / STA / Monte Carlo on a circuit and print
  the critical-endpoint report.
- ``table2`` / ``table3`` — regenerate the paper's tables.
- ``errors`` — print the abstract's error summary.
- ``report`` — per-endpoint slack / miss-probability signoff view.
- ``slack`` — per-net slack and slack histogram.
- ``testability`` — COP measures and optional BDD-miter ATPG.
- ``sweep`` — scenario-batched multi-corner sweep (docs/performance.md).
- ``hier`` — hierarchical partition-parallel analysis with interface-model
  caching (docs/performance.md, "Hierarchical analysis").
- ``verify`` — cross-engine differential conformance sweep (JSON report).
- ``lint`` — static circuit & configuration analysis (docs/linting.md).
- ``bounds`` — certified signal-probability intervals and arrival-time
  bound boxes from one static pass (docs/theory.md, "Interval bounds").
- ``stats`` — structural statistics of a circuit.
- ``generate`` / ``convert`` — synthesize circuits; .bench <-> Verilog.

Circuits are named benchmarks (``s27``, ``s208``, ... — see
``repro.netlist.benchmarks``) or paths to ``.bench`` files.
"""

from __future__ import annotations

import argparse
from pathlib import Path
import sys
from typing import NamedTuple, Optional, Sequence

import numpy as np

from repro.core.inputs import CONFIG_I, CONFIG_II, InputStats
from repro.core.profiling import SpstaProfile
from repro.core.spsta import run_spsta
from repro.core.ssta import run_ssta
from repro.core.sta import run_sta
from repro.experiments.errors import error_summary, format_error_summary
from repro.experiments.table2 import format_table2, run_table2
from repro.experiments.table3 import format_table3, run_table3
from repro.netlist.analysis import circuit_stats, critical_endpoint
from repro.netlist.bench import parse_bench_file
from repro.netlist.benchmarks import benchmark_circuit, benchmark_names
from repro.netlist.core import Netlist
from repro.sim.montecarlo import run_monte_carlo
from repro.sim.parallel import RetryPolicy


def _load_circuit(name: str) -> Netlist:
    if name in benchmark_names():
        return benchmark_circuit(name)
    path = Path(name)
    if path.exists():
        return parse_bench_file(path)
    raise SystemExit(
        f"unknown circuit {name!r}: not a benchmark "
        f"({', '.join(benchmark_names())}) and not a file")


def _config(label: str) -> InputStats:
    if label.upper() == "I":
        return CONFIG_I
    if label.upper() == "II":
        return CONFIG_II
    raise SystemExit(f"config must be I or II, got {label!r}")


class _McFault(NamedTuple):
    """Fault-tolerance settings decoded from the shared MC CLI flags."""

    retry: Optional[RetryPolicy]
    deadline: Optional[float]
    checkpoint: Optional[str]
    resume: bool


def _mc_fault_args(args: argparse.Namespace) -> _McFault:
    """Fault-tolerance settings for ``run_monte_carlo`` from CLI flags.

    The retry/checkpoint/deadline features are stream-engine-only (the
    wave engine has no shards to retry), so using them with the default
    ``--mc-mode waves`` is a usage error, not a silent no-op.
    """
    wanted = {
        "--mc-retries": bool(args.mc_retries),
        "--mc-checkpoint": args.mc_checkpoint is not None,
        "--resume": args.resume,
        "--deadline": args.deadline is not None,
    }
    active = [flag for flag, given in wanted.items() if given]
    if active and args.mc_mode != "stream":
        raise SystemExit(
            f"{', '.join(active)} require(s) --mc-mode stream")
    if args.resume and not args.mc_checkpoint:
        raise SystemExit("--resume requires --mc-checkpoint DIR")
    retry = (RetryPolicy(max_attempts=args.mc_retries + 1)
             if args.mc_retries else None)
    return _McFault(retry=retry, deadline=args.deadline,
                    checkpoint=args.mc_checkpoint, resume=args.resume)


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.lint import NetlistError, report_from_error

    try:
        netlist = _load_circuit(args.circuit)
    except NetlistError as error:
        print(report_from_error(args.circuit, error).render())
        return 1
    config = _config(args.config)
    if not args.no_lint:
        from repro.lint import LintConfig, LintFailure, preflight
        try:
            preflight(netlist, LintConfig(
                input_stats=config, trials=args.trials))
        except LintFailure as failure:
            print(failure.report.render(verbose=False))
            print("preflight lint failed; fix the errors above or rerun "
                  "with --no-lint")
            return 1
        from repro.bounds import compute_bounds
        certified = compute_bounds(netlist, stats=config)
        constants = sum(1 for iv in certified.sp.values()
                        if iv.is_point and iv.lo in (0.0, 1.0))
        regimes = certified.regime_counts
        print(f"{netlist.name}: certified bounds — "
              f"{constants} constant nets, regimes "
              f"{regimes['independent']} independent / {regimes['bdd']} "
              f"bdd / {regimes['frechet']} frechet, worst-endpoint "
              f"criticality >= {certified.critical_lower:.2f} "
              f"(k={certified.k_sigma:g})")
    endpoint, depth = critical_endpoint(netlist)
    print(f"{netlist.name}: critical endpoint {endpoint} (depth {depth})")
    sta = run_sta(netlist)
    lo, hi = sta.endpoint_window(endpoint)
    print(f"  STA bounds: [{lo:.2f}, {hi:.2f}]")
    ssta = run_ssta(netlist)
    spsta_profile = SpstaProfile() if args.profile else None
    partitions = args.partition if args.partition else (
        4 if args.hier else 0)
    if partitions:
        if args.engine != "fast":
            raise SystemExit(
                "--partition/--hier run the fast engine per region; "
                "drop --engine naive")
        from repro.hier import run_hier
        hier_run = run_hier(netlist, config, n_regions=partitions,
                            workers=args.spsta_workers,
                            profile=spsta_profile)
        part = hier_run.partition
        print(f"  hierarchical: {part.n_regions} regions in "
              f"{len(part.waves)} waves "
              f"({hier_run.dedup_hits} dedup hits)")
        spsta = hier_run.result
    else:
        spsta = run_spsta(netlist, config, engine=args.engine,
                          workers=args.spsta_workers,
                          profile=spsta_profile)
    mc = None
    if args.trials > 0:
        fault = _mc_fault_args(args)
        mc = run_monte_carlo(netlist, config, args.trials,
                             rng=np.random.default_rng(args.seed),
                             mode=args.mc_mode, shards=args.shards,
                             workers=args.workers, retry=fault.retry,
                             deadline=fault.deadline,
                             checkpoint=fault.checkpoint,
                             resume=fault.resume)
    for direction in ("rise", "fall"):
        p, mu, sigma = spsta.report(endpoint, direction)
        pair = getattr(ssta.arrivals[endpoint], direction)
        line = (f"  {direction:>4}: SPSTA P={p:.3f} mu={mu:.2f} "
                f"sd={sigma:.2f} | SSTA mu={pair.mu:.2f} sd={pair.sigma:.2f}")
        if mc is not None:
            m = mc.direction_stats(endpoint, direction)
            line += (f" | MC({args.trials}) P={m.probability:.3f} "
                     f"mu={m.mean:.2f} sd={m.std:.2f}")
        print(line)
    print(f"  SPSTA signal probability at endpoint: "
          f"{spsta.prob4[endpoint].signal_probability:.3f}")
    if mc is not None and hasattr(mc, "summary"):
        print(mc.summary())
    if spsta_profile is not None:
        print(spsta_profile.render(indent="  "))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    config = _config(args.config)
    fault = _mc_fault_args(args)
    rows = run_table2(config, n_trials=args.trials, seed=args.seed,
                      mc_mode=args.mc_mode, shards=args.shards,
                      workers=args.workers, retry=fault.retry,
                      deadline=fault.deadline,
                      checkpoint_dir=fault.checkpoint, resume=fault.resume)
    print(format_table2(rows, title=f"Table 2, configuration ({args.config})"))
    print()
    print(format_error_summary(error_summary(rows)))
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    if args.config_sweep:
        from repro.experiments.table3 import (
            format_config_sweep,
            run_config_sweep,
        )
        rows = run_config_sweep({"I": CONFIG_I, "II": CONFIG_II})
        print(format_config_sweep(rows))
        return 0
    config = _config(args.config)
    fault = _mc_fault_args(args)
    rows = run_table3(config, n_trials=args.trials, seed=args.seed,
                      mc_mode=args.mc_mode, shards=args.shards,
                      workers=args.workers, engine=args.engine,
                      spsta_workers=args.spsta_workers,
                      profile=args.profile, retry=fault.retry,
                      deadline=fault.deadline,
                      checkpoint_dir=fault.checkpoint, resume=fault.resume)
    print(format_table3(rows))
    return 0


def _cmd_errors(args: argparse.Namespace) -> int:
    for label in ("I", "II"):
        rows = run_table2(_config(label), n_trials=args.trials,
                          seed=args.seed)
        print(format_error_summary(
            error_summary(rows),
            title=f"Configuration ({label}) — error vs Monte Carlo (%)"))
        print()
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    from repro.netlist.bench import write_bench
    from repro.netlist.verilog import parse_verilog_file, write_verilog

    source = Path(args.source)
    if not source.exists():
        raise SystemExit(f"no such file: {source}")
    if source.suffix == ".bench":
        netlist = parse_bench_file(source)
    elif source.suffix in (".v", ".verilog"):
        netlist = parse_verilog_file(source)
    else:
        raise SystemExit(f"unknown input format: {source.suffix!r} "
                         f"(expected .bench or .v)")
    target = Path(args.target)
    if target.suffix == ".bench":
        target.write_text(write_bench(netlist))
    elif target.suffix in (".v", ".verilog"):
        target.write_text(write_verilog(netlist))
    else:
        raise SystemExit(f"unknown output format: {target.suffix!r}")
    print(f"wrote {target} ({len(netlist.gates)} gates)")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.netlist.bench import write_bench
    from repro.netlist.generator import GeneratorProfile, generate_circuit

    profile = GeneratorProfile(
        name=args.name, n_inputs=args.inputs, n_outputs=args.outputs,
        n_dffs=args.dffs, n_gates=args.gates, depth=args.depth,
        seed=args.seed, xor_fraction=args.xor_fraction)
    netlist = generate_circuit(profile)
    text = write_bench(netlist)
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    return 0


def _cmd_slack(args: argparse.Namespace) -> int:
    from repro.core.slack import compute_slacks, slack_histogram

    netlist = _load_circuit(args.circuit)
    result = compute_slacks(netlist, clock_period=args.clock)
    print(f"{netlist.name}: worst slack {result.worst_slack:+.3f} "
          f"at clock {args.clock:g}")
    critical = result.critical_nets()
    print(f"critical nets ({len(critical)}): "
          f"{', '.join(critical[:12])}"
          f"{' ...' if len(critical) > 12 else ''}")
    print("slack histogram:")
    for edge, count in slack_histogram(result):
        bar = "#" * min(count, 60)
        print(f"  {edge:>7.1f} | {count:>4} {bar}")
    return 0


def _cmd_testability(args: argparse.Namespace) -> int:
    from repro.testability import (
        compute_cop,
        patterns_for_confidence,
        random_pattern_coverage,
    )

    netlist = _load_circuit(args.circuit)
    cop = compute_cop(netlist, args.probability)
    print(f"{netlist.name}: COP testability at launch P(1) = "
          f"{args.probability:g}")
    print(f"hardest faults:")
    for fault, d in cop.hardest_faults(args.top):
        needed = patterns_for_confidence(d, 0.95)
        needed_text = ("inf" if needed == float("inf")
                       else f"{needed:.0f}")
        print(f"  {str(fault):>10}: D={d:.4f}  "
              f"(~{needed_text} patterns for 95%)")
    for n in (16, 64, 256, 1024):
        print(f"expected coverage after {n:>4} random patterns: "
              f"{100 * random_pattern_coverage(cop, n):.1f}%")
    if args.atpg:
        from repro.testability.atpg import generate_test_set
        result = generate_test_set(netlist)
        print(f"deterministic test set: {len(result.vectors)} vectors, "
              f"{len(result.untestable)} untestable faults, "
              f"coverage {100 * result.coverage:.1f}%")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify import run_conformance

    report = run_conformance(seed=args.seed, n_random=args.random,
                             benches=tuple(args.benches.split(",")),
                             trials=args.trials, config=_config(args.config))
    if args.json:
        Path(args.json).write_text(report.to_json())
    print(report.render())
    if args.json:
        print(f"wrote {args.json}")
    return 0 if report.passed else 1


def _cmd_optimize(args: argparse.Namespace) -> int:
    import json

    from repro.core.spsta import MixtureAlgebra, MomentAlgebra
    from repro.opt import optimize_spsta

    netlist = _load_circuit(args.circuit)
    algebra = (MixtureAlgebra() if args.algebra == "mixture"
               else MomentAlgebra())
    result = optimize_spsta(
        netlist, args.clock_period, metric=args.metric,
        k_sigma=args.k_sigma, target_yield=args.target_yield,
        max_area=args.max_area, size_step=args.size_step,
        max_size=args.max_size, base_delay=args.base_delay,
        delay_sigma=args.delay_sigma, stats=_config(args.config),
        algebra=algebra, max_iterations=args.max_iterations,
        anneal=args.anneal, anneal_moves=args.anneal_moves,
        rng=np.random.default_rng(args.seed),
        mc_validate=args.mc_validate, verify_moves=args.verify_moves,
        bounds_pruning=not args.no_bounds_pruning)

    n_gates = len(netlist.combinational_gates)
    applied = sum(2 - m.accepted for m in result.moves)
    target = (f"target {args.target_yield:g}" if result.metric == "yield"
              else f"clock {args.clock_period:g}")
    print(f"{netlist.name}: {result.metric} "
          f"{result.metric_before:.6g} -> {result.metric_after:.6g} "
          f"({'met' if result.met_target else 'missed'} {target})")
    print(f"  area cost {result.area_cost:g} / {args.max_area:g}, "
          f"{len(result.sizes)} gates resized, "
          f"{result.accepted_moves} accepted moves "
          f"({result.iterations} greedy, {result.anneal_moves_run} anneal)")
    print(f"  incremental re-timing: {result.recomputed_gates} gate "
          f"evaluations for {applied} delay edits "
          f"(full-pass-per-move: {applied * n_gates})")
    if result.bounds_pruning:
        print(f"  bounds pruning: {result.pruned_candidates} gates and "
              f"{result.pruned_endpoints} endpoints certified "
              f"non-critical over the whole sizing box (result "
              f"bit-identical by construction)")
    if result.verified_moves:
        print(f"  conformance: {result.verified_moves} moves verified "
              f"bit-exact against a full pass")
    if result.mc_validation is not None:
        mc = result.mc_validation
        print(f"  MC oracle: joint yield {mc.joint_yield:.4f} "
              f"over {mc.trials} shared trials")

    if args.json:
        payload = {
            "report": "spsta-optimize",
            "circuit": netlist.name,
            "metric": result.metric,
            "clock_period": args.clock_period,
            "metric_before": result.metric_before,
            "metric_after": result.metric_after,
            "met_target": result.met_target,
            "area_cost": result.area_cost,
            "max_area": args.max_area,
            "sizes": dict(result.sizes),
            "iterations": result.iterations,
            "anneal_moves_run": result.anneal_moves_run,
            "accepted_moves": result.accepted_moves,
            "recomputed_gates": result.recomputed_gates,
            "full_pass_equivalent_gates": applied * n_gates,
            "bounds_pruning": result.bounds_pruning,
            "pruned_candidates": result.pruned_candidates,
            "pruned_endpoints": result.pruned_endpoints,
            "verified_moves": result.verified_moves,
            "mc_validation": (
                None if result.mc_validation is None else
                {"trials": result.mc_validation.trials,
                 "joint_yield": result.mc_validation.joint_yield}),
            "moves": [{"phase": m.phase, "gate": m.gate, "size": m.size,
                       "accepted": m.accepted,
                       "metric_after": m.metric_after,
                       "recomputed": m.recomputed}
                      for m in result.moves],
        }
        text = json.dumps(payload, indent=2)
        if args.json == "-":
            print(text)
        else:
            Path(args.json).write_text(text)
            print(f"wrote {args.json}")
    return 0


def _parse_grid_spec(spec: str):
    from repro.stats.grid import TimeGrid

    parts = spec.split(":")
    if len(parts) != 3:
        raise SystemExit(
            f"--grid expects START:STOP:N (e.g. -8:60:2048), got {spec!r}")
    try:
        return TimeGrid(float(parts[0]), float(parts[1]), int(parts[2]))
    except ValueError as exc:
        raise SystemExit(f"bad --grid {spec!r}: {exc}")


def _parse_corner_list(spec: str):
    """``name:scale[:sigma_scale],...`` -> tuple of Corners."""
    from repro.core.corners import Corner

    corners = []
    for item in spec.split(","):
        parts = item.split(":")
        if len(parts) not in (2, 3):
            raise SystemExit(
                f"--corners expects NAME:SCALE[:SIGMA_SCALE] items, "
                f"got {item!r}")
        try:
            corners.append(Corner(parts[0], float(parts[1]),
                                  float(parts[2]) if len(parts) == 3
                                  else 1.0))
        except ValueError as exc:
            raise SystemExit(f"bad corner {item!r}: {exc}")
    return tuple(corners)


def _parse_derate_spec(spec: str):
    """``START:STOP:COUNT[:SIGMA_SCALE]`` -> tuple of derate Corners."""
    from repro.core.scenario import derate_corners

    parts = spec.split(":")
    if len(parts) not in (3, 4):
        raise SystemExit(
            f"--derate-grid expects START:STOP:COUNT[:SIGMA_SCALE], "
            f"got {spec!r}")
    try:
        return derate_corners(float(parts[0]), float(parts[1]),
                              int(parts[2]),
                              float(parts[3]) if len(parts) == 4 else 1.0)
    except ValueError as exc:
        raise SystemExit(f"bad --derate-grid {spec!r}: {exc}")


def _sweep_scenarios(args: argparse.Namespace):
    """Scenario list from ``--scenarios FILE`` or the corner flags."""
    import json

    from repro.core.corners import Corner
    from repro.core.scenario import (
        derate_corners,
        scenarios_from_corners,
    )

    if args.scenarios:
        path = Path(args.scenarios)
        if not path.exists():
            raise SystemExit(f"no such scenario spec: {path}")
        try:
            spec = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise SystemExit(f"bad scenario spec {path}: {exc}")
        config = _config(spec.get("config", args.config))
        corners = []
        for entry in spec.get("corners", ()):
            try:
                corners.append(Corner(entry["name"],
                                      float(entry["delay_scale"]),
                                      float(entry.get("sigma_scale", 1.0))))
            except (KeyError, TypeError, ValueError) as exc:
                raise SystemExit(
                    f"bad corner entry {entry!r} in {path}: {exc}")
        derate = spec.get("derate")
        if derate:
            try:
                corners.extend(derate_corners(
                    float(derate.get("start", 0.8)),
                    float(derate.get("stop", 1.25)),
                    int(derate.get("count", 8)),
                    float(derate.get("sigma_scale", 1.0))))
            except (TypeError, ValueError) as exc:
                raise SystemExit(f"bad derate entry in {path}: {exc}")
        if not corners:
            raise SystemExit(
                f"scenario spec {path} defines no corners "
                f"(need 'corners' and/or 'derate')")
        return scenarios_from_corners(tuple(corners), stats=config), config
    config = _config(args.config)
    corners = ()
    if args.corners:
        corners += _parse_corner_list(args.corners)
    if args.derate_grid:
        corners += _parse_derate_spec(args.derate_grid)
    if not corners:
        from repro.core.corners import STANDARD_CORNERS
        corners = STANDARD_CORNERS
    return scenarios_from_corners(corners, stats=config), config


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.core.scenario import run_scenario_batch, run_scenarios_looped
    from repro.core.scenario_jit import resolve_jit_flag
    from repro.core.spsta import GridAlgebra, MixtureAlgebra, MomentAlgebra

    netlist = _load_circuit(args.circuit)
    scenarios, config = _sweep_scenarios(args)
    grid = None
    if args.algebra == "grid":
        grid = _parse_grid_spec(args.grid)
        algebra = GridAlgebra(grid)
    elif args.algebra == "mixture":
        algebra = MixtureAlgebra()
    else:
        algebra = MomentAlgebra()
    sweep = run_scenario_batch(netlist, scenarios, algebra,
                               keep=args.keep, jit=args.jit)

    report = {
        "circuit": netlist.name,
        "algebra": args.algebra,
        "n_scenarios": len(scenarios),
        "keep": args.keep,
        "jit": resolve_jit_flag(args.jit),
        "compile_seconds": sweep.compile_seconds,
        "execute_seconds": sweep.execute_seconds,
        "scenarios": [],
    }
    if grid is not None:
        report["grid"] = {"start": grid.start, "stop": grid.stop,
                          "n": grid.n}
    for scenario, result in zip(sweep.scenarios, sweep.results):
        worst = None
        for net in netlist.endpoints:
            for direction in ("rise", "fall"):
                p, mu, sigma = result.report(net, direction)
                if p <= 0.0:
                    continue
                if worst is None or mu > worst["mean"]:
                    worst = {"endpoint": net, "direction": direction,
                             "probability": p, "mean": mu, "std": sigma}
        report["scenarios"].append({"name": scenario.name, "worst": worst})
    if args.compare_looped:
        t0 = time.perf_counter()
        run_scenarios_looped(netlist, scenarios,
                             (lambda: GridAlgebra(grid)) if grid is not None
                             else type(algebra))
        looped = time.perf_counter() - t0
        batched = sweep.compile_seconds + sweep.execute_seconds
        report["looped_seconds"] = looped
        report["speedup"] = looped / batched if batched > 0 else float("inf")

    if args.json:
        text = json.dumps(report, indent=2)
        if args.json == "-":
            print(text)
        else:
            Path(args.json).write_text(text + "\n")
            print(f"wrote {args.json}")
    if args.json != "-":
        print(f"{netlist.name}: {len(scenarios)} scenarios "
              f"({args.algebra} algebra) compiled in "
              f"{sweep.compile_seconds * 1e3:.1f}ms, executed in "
              f"{sweep.execute_seconds * 1e3:.1f}ms")
        for entry in report["scenarios"]:
            worst = entry["worst"]
            if worst is None:
                print(f"  {entry['name']:>16}: no occurring endpoint "
                      f"transition")
                continue
            print(f"  {entry['name']:>16}: worst {worst['endpoint']} "
                  f"{worst['direction']} P={worst['probability']:.3f} "
                  f"mu={worst['mean']:.3f} sd={worst['std']:.3f}")
        if "speedup" in report:
            print(f"  looped fast engine: {report['looped_seconds']:.2f}s, "
                  f"batched speedup {report['speedup']:.1f}x")
    if args.profile:
        print(sweep.profile.render())
    return 0


def _cmd_hier(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.core.spsta import run_spsta
    from repro.hier import AlgebraSpec, InterfaceModelStore, run_hier

    netlist = _load_circuit(args.circuit)
    config = _config(args.config)
    grid = None
    if args.algebra == "grid":
        grid = _parse_grid_spec(args.grid)
        spec = AlgebraSpec.grid(grid)
    elif args.algebra == "mixture":
        spec = AlgebraSpec.mixture()
    else:
        spec = AlgebraSpec.moment()
    store = InterfaceModelStore(args.cache) if args.cache else None
    retry = (RetryPolicy(max_attempts=args.retries + 1)
             if args.retries else None)
    profile = SpstaProfile() if args.profile else None

    t0 = time.perf_counter()
    run = run_hier(netlist, config, algebra_spec=spec,
                   n_regions=args.partitions, workers=args.workers,
                   keep=args.keep, store=store, retry=retry,
                   deadline=args.deadline, profile=profile)
    hier_seconds = time.perf_counter() - t0
    partition = run.partition

    report = {
        "circuit": netlist.name,
        "algebra": args.algebra,
        "partitions": args.partitions,
        "workers": args.workers,
        "keep": args.keep,
        "seconds": hier_seconds,
        "complete": run.complete,
        "deadline_expired": run.deadline_expired,
        "pending_regions": list(run.pending_regions),
        "cache": {"hits": run.cache_hits, "misses": run.cache_misses,
                  "dedup_hits": run.dedup_hits},
        "partition": {
            "n_regions": partition.n_regions,
            "n_edges": len(partition.edges),
            "waves": [list(wave) for wave in partition.waves],
            "max_boundary_width": partition.max_boundary_width,
            "regions": [{"index": r.index, "gates": r.n_gates,
                         "inputs": len(r.inputs),
                         "cut_inputs": len(r.cut_inputs),
                         "outputs": len(r.outputs)}
                        for r in partition.regions]},
        "regions": [{"index": r.index, "gates": r.n_gates,
                     "source": r.source,
                     "seconds": round(r.seconds, 6),
                     "attempts": r.attempts}
                    for r in run.reports],
        "endpoints": [
            {"net": net, "direction": direction,
             "probability": p, "mean": mean, "std": std}
            for net, direction, p, mean, std
            in run.endpoint_rows(netlist)],
    }
    if grid is not None:
        report["grid"] = {"start": grid.start, "stop": grid.stop,
                          "n": grid.n}
    if args.compare_flat:
        t0 = time.perf_counter()
        flat = run_spsta(netlist, config, algebra=spec.build())
        flat_seconds = time.perf_counter() - t0
        worst = {"probability": 0.0, "mean": 0.0, "std": 0.0}
        for net, direction, p, mean, std in run.endpoint_rows(netlist):
            fp, fmean, fstd = flat.report(net, direction)
            worst["probability"] = max(worst["probability"], abs(p - fp))
            if all(map(np.isfinite, (mean, fmean))):
                worst["mean"] = max(worst["mean"], abs(mean - fmean))
                worst["std"] = max(worst["std"], abs(std - fstd))
        report["compare_flat"] = {
            "flat_seconds": flat_seconds,
            "speedup": (flat_seconds / hier_seconds
                        if hier_seconds > 0 else float("inf")),
            "max_endpoint_delta": worst}

    if args.json:
        text = json.dumps(report, indent=2)
        if args.json == "-":
            print(text)
        else:
            Path(args.json).write_text(text + "\n")
            print(f"wrote {args.json}")
    if args.json != "-":
        print(partition.summary())
        for region_report in run.reports:
            print("  " + region_report.format())
        cache_text = (f", cache {run.cache_hits} hits / "
                      f"{run.cache_misses} misses" if store else "")
        print(f"{netlist.name}: {args.partitions} partitions on "
              f"{args.workers} workers ({args.algebra}) in "
              f"{hier_seconds:.2f}s; {run.dedup_hits} dedup "
              f"hits{cache_text}")
        if not run.complete:
            print(f"  deadline expired: regions "
                  f"{', '.join(map(str, run.pending_regions))} pending "
                  f"(rerun with --cache to resume)")
        for entry in report["endpoints"][:8]:
            print(f"  {entry['net']:>12} {entry['direction']:>4}: "
                  f"P={entry['probability']:.3f} "
                  f"mu={entry['mean']:.3f} sd={entry['std']:.3f}")
        if args.compare_flat:
            cmp = report["compare_flat"]
            deltas = cmp["max_endpoint_delta"]
            print(f"  flat fast engine: {cmp['flat_seconds']:.2f}s "
                  f"(speedup {cmp['speedup']:.2f}x), worst endpoint "
                  f"deltas P={deltas['probability']:.3g} "
                  f"mu={deltas['mean']:.3g} sd={deltas['std']:.3g}")
    if profile is not None:
        print(profile.render())
    return 0 if run.complete else 3


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import (
        LintConfig,
        NetlistError,
        Severity,
        load_baseline,
        report_from_error,
        run_lint,
        write_baseline,
    )

    baseline = (load_baseline(args.baseline) if args.baseline
                else frozenset())
    try:
        netlist = _load_circuit(args.circuit)
    except NetlistError as error:
        report = report_from_error(args.circuit, error, baseline)
    else:
        config = LintConfig(
            input_stats=_config(args.config),
            trials=args.trials,
            max_parity_fanin=args.max_parity_fanin,
            n_scenarios=args.scenarios,
            grid=_parse_grid_spec(args.grid) if args.grid else None,
            n_partitions=args.partitions,
            n_workers=args.lint_workers,
            clock_period=args.clock_period,
            disabled=frozenset(args.disable.split(","))
            if args.disable else frozenset())
        report = run_lint(netlist, config, baseline)
    if args.write_baseline:
        write_baseline(report, args.write_baseline)
        print(f"wrote baseline {args.write_baseline}")
    if args.json:
        if args.json == "-":
            print(report.to_json())
        else:
            Path(args.json).write_text(report.to_json() + "\n")
            print(f"wrote {args.json}")
    if args.json != "-":
        print(report.render())
    if args.fail_on == "never":
        return 0
    return 0 if report.passed(Severity.parse(args.fail_on)) else 1


def _cmd_bounds(args: argparse.Namespace) -> int:
    import json

    from repro.bounds import compute_bounds

    netlist = _load_circuit(args.circuit)
    result = compute_bounds(
        netlist, stats=_config(args.config), k_sigma=args.k_sigma,
        clock_period=args.clock_period,
        max_cone_inputs=args.max_cone_inputs,
        max_bdd_nodes=args.max_bdd_nodes)

    regimes = result.regime_counts
    widths = [iv.width for iv in result.sp.values()]
    constants = sum(1 for iv in result.sp.values()
                    if iv.is_point and iv.lo in (0.0, 1.0))
    print(f"{netlist.name}: certified bounds over {len(result.sp)} nets "
          f"(k={args.k_sigma:g})")
    print(f"  SP regimes: {regimes['independent']} independent, "
          f"{regimes['bdd']} bdd-exact, {regimes['frechet']} frechet"
          f"{' (node cap hit)' if result.bdd_exhausted else ''}")
    print(f"  SP widths: max {max(widths):.4f}, "
          f"mean {sum(widths) / len(widths):.4f}; "
          f"{constants} certified-constant nets")
    print(f"  worst-endpoint criticality >= {result.critical_lower:.3f}")
    ranked = sorted(result.endpoint_criticality.items(),
                    key=lambda item: -item[1][1])
    for net, (lo, hi) in ranked[:args.endpoints]:
        print(f"  {net:>12}: criticality in [{lo:.3f}, {hi:.3f}]")
    if args.clock_period is not None:
        lo, hi = result.yield_bounds(args.clock_period)
        never = result.never_critical_endpoints(args.clock_period)
        pruned = result.non_critical_gates(args.clock_period)
        print(f"  at clock {args.clock_period:g}: timing yield in "
              f"[{lo:.4f}, {hi:.4f}], {len(never)} endpoints and "
              f"{len(pruned)} gates certified non-critical")
    if args.json:
        text = json.dumps(result.to_dict(), indent=2)
        if args.json == "-":
            print(text)
        else:
            Path(args.json).write_text(text + "\n")
            print(f"wrote {args.json}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.report import generate_report

    netlist = _load_circuit(args.circuit)
    report = generate_report(netlist, clock_period=args.clock,
                             stats=_config(args.config),
                             n_paths=args.paths)
    print(report.render(max_endpoints=args.endpoints))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import (
        Server,
        ServeOptions,
        run_canary,
        serve_http,
        serve_stdio,
    )
    from repro.serve.daemon import _SessionLog

    if args.canary:
        passed, rendered = run_canary(trials=args.canary_trials)
        print(rendered, file=sys.stderr)
        if not passed:
            print("canary conformance check FAILED; refusing to serve",
                  file=sys.stderr)
            return 1
        print("canary conformance check passed", file=sys.stderr)
    server = Server(ServeOptions(
        fail_on=args.fail_on,
        cache_entries=args.cache_entries,
        cache_dir=args.cache,
        max_request_bytes=args.max_request_bytes,
        default_config=args.config,
        default_algebra=args.algebra,
        default_grid=args.grid))
    if args.session_log:
        server.session_log = _SessionLog(Path(args.session_log))
    if args.http is not None:
        print(f"spsta serve: HTTP on {args.host}:{args.http}",
              file=sys.stderr)
        return serve_http(server, args.host, args.http)
    return serve_stdio(server)


def _cmd_stats(args: argparse.Namespace) -> int:
    stats = circuit_stats(_load_circuit(args.circuit))
    print(f"{stats.name}: {stats.n_inputs} PI, {stats.n_outputs} PO, "
          f"{stats.n_dffs} DFF, {stats.n_gates} gates, "
          f"depth {stats.depth}, max fan-in {stats.max_fanin}")
    for gate_type, count in sorted(stats.gate_histogram.items()):
        print(f"  {gate_type:>5}: {count}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="spsta",
        description="Signal Probability Based Statistical Timing Analysis")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_mc_engine_args(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--mc-mode", choices=("waves", "stream"),
                         default="waves",
                         help="Monte Carlo engine: retain waves, or stream "
                              "per-net statistics (memory-bounded)")
        cmd.add_argument("--shards", type=int, default=1,
                         help="trial shards for --mc-mode stream")
        cmd.add_argument("--workers", type=int, default=1,
                         help="processes for --mc-mode stream")
        cmd.add_argument("--mc-retries", type=int, default=0,
                         help="per-shard retry attempts after the first "
                              "try, with exponential backoff (stream mode; "
                              "see docs/robustness.md)")
        cmd.add_argument("--mc-checkpoint", metavar="DIR",
                         help="persist each completed shard to DIR "
                              "(atomic, manifest-keyed; stream mode)")
        cmd.add_argument("--resume", action="store_true",
                         help="with --mc-checkpoint: skip shards already "
                              "on disk; the merged result is bit-identical "
                              "to an uninterrupted run")
        cmd.add_argument("--deadline", type=float, metavar="SECONDS",
                         help="stop dispatching new shards after this "
                              "budget and merge what completed (stream "
                              "mode; partial runs report widened errors)")

    def add_spsta_engine_args(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--engine", choices=("fast", "naive"),
                         default="fast",
                         help="SPSTA propagation engine (fast: levelized "
                              "batched kernels; naive: per-gate reference)")
        cmd.add_argument("--spsta-workers", type=int, default=1,
                         help="process pool size for the fast grid engine")
        cmd.add_argument("--profile", action="store_true",
                         help="print SPSTA phase timings and work counters")

    analyze = sub.add_parser("analyze", help="run all analyzers on a circuit")
    analyze.add_argument("circuit", help="benchmark name or .bench path")
    analyze.add_argument("--config", default="I", help="input stats: I or II")
    analyze.add_argument("--trials", type=int, default=10_000,
                         help="Monte Carlo trials (0 disables MC)")
    analyze.add_argument("--seed", type=int, default=0)
    analyze.add_argument("--no-lint", action="store_true",
                         help="skip the preflight lint (error-level "
                              "diagnostics abort the run)")
    analyze.add_argument("--partition", type=int, default=0, metavar="N",
                         help="run SPSTA hierarchically over N regions "
                              "(repro.hier; see 'spsta hier' for the "
                              "full control surface)")
    analyze.add_argument("--hier", action="store_true",
                         help="shorthand for --partition 4")
    add_mc_engine_args(analyze)
    add_spsta_engine_args(analyze)
    analyze.set_defaults(func=_cmd_analyze)

    lint = sub.add_parser(
        "lint",
        help="static circuit & configuration analysis (docs/linting.md)")
    lint.add_argument("circuit", help="benchmark name or .bench path")
    lint.add_argument("--config", default="I", help="input stats: I or II")
    lint.add_argument("--trials", type=int, default=10_000,
                      help="Monte Carlo trial count the SP203 cost "
                           "estimate prices")
    lint.add_argument("--max-parity-fanin", type=int, default=10,
                      help="parity 4^k enumeration cap for SP201")
    lint.add_argument("--partitions", type=int, default=1,
                      help="price a hierarchical run with this many "
                           "regions (SP110 boundary width, SP205 "
                           "per-region memory / schedule bound)")
    lint.add_argument("--lint-workers", type=int, default=1,
                      help="worker count the SP205 schedule prediction "
                           "assumes")
    lint.add_argument("--scenarios", type=int, default=1,
                      help="scenario count a batched sweep would run; "
                           "scales the SP203 cost estimate and the SP204 "
                           "memory prediction")
    lint.add_argument("--grid",
                      help="TimeGrid as START:STOP:N (e.g. -8:60:2048); "
                           "enables the SP303 grid-coverage prediction")
    lint.add_argument("--clock-period", type=float, default=None,
                      help="clock period for the SP404/SP405 bounds "
                           "rules (static yield bounds and the "
                           "non-critical-cone threshold)")
    lint.add_argument("--json",
                      help="write the JSON report to this path ('-' for "
                           "stdout)")
    lint.add_argument("--fail-on", choices=("error", "warning", "never"),
                      default="error",
                      help="exit nonzero at this severity or worse "
                           "(default: error)")
    lint.add_argument("--baseline",
                      help="baseline file of suppressed rule:location "
                           "keys")
    lint.add_argument("--write-baseline",
                      help="write the current findings as a new baseline "
                           "file")
    lint.add_argument("--disable",
                      help="comma-separated rule IDs to disable "
                           "(e.g. SP301,SP109)")
    lint.set_defaults(func=_cmd_lint)

    table2 = sub.add_parser("table2", help="regenerate paper Table 2")
    table2.add_argument("--config", default="I")
    table2.add_argument("--trials", type=int, default=10_000)
    table2.add_argument("--seed", type=int, default=0)
    add_mc_engine_args(table2)
    table2.set_defaults(func=_cmd_table2)

    table3 = sub.add_parser("table3", help="regenerate paper Table 3")
    table3.add_argument("--config", default="I")
    table3.add_argument("--trials", type=int, default=10_000)
    table3.add_argument("--seed", type=int, default=0)
    table3.add_argument("--config-sweep", action="store_true",
                        help="run the CONFIG I/II sweep through the "
                             "scenario-batched backend (one compile per "
                             "circuit) instead of the per-config tables")
    add_mc_engine_args(table3)
    add_spsta_engine_args(table3)
    table3.set_defaults(func=_cmd_table3)

    errors = sub.add_parser(
        "errors", help="abstract error summary, both configs")
    errors.add_argument("--trials", type=int, default=10_000)
    errors.add_argument("--seed", type=int, default=0)
    errors.set_defaults(func=_cmd_errors)

    sweep = sub.add_parser(
        "sweep",
        help="scenario-batched multi-corner sweep (compiled backend)")
    sweep.add_argument("circuit", help="benchmark name or .bench path")
    sweep.add_argument("--config", default="I", help="input stats: I or II")
    sweep.add_argument("--corners",
                       help="comma-separated NAME:SCALE[:SIGMA_SCALE] "
                            "corner list (default: standard corners)")
    sweep.add_argument("--derate-grid", metavar="START:STOP:COUNT[:SIGMA]",
                       help="append a linear derate-corner grid")
    sweep.add_argument("--scenarios", metavar="FILE",
                       help="JSON scenario spec file (keys: config, "
                            "corners, derate); overrides the corner flags")
    sweep.add_argument("--algebra",
                       choices=("moments", "mixture", "grid"),
                       default="moments",
                       help="arrival-time algebra (grid enables the "
                            "vectorized stacked executor)")
    sweep.add_argument("--grid", default="-8:60:2048",
                       help="TimeGrid as START:STOP:N for --algebra grid")
    sweep.add_argument("--keep", choices=("all", "endpoints"),
                       default="endpoints",
                       help="grid algebra: retain all nets or trim "
                            "interior blocks after last use")
    sweep.add_argument("--jit", choices=("auto", "on", "off"),
                       default=None,
                       help="numba segment-sum feature flag (default: "
                            "SPSTA_SCENARIO_JIT env var, else auto)")
    sweep.add_argument("--compare-looped", action="store_true",
                       help="also time the per-scenario looped fast "
                            "engine and report the speedup")
    sweep.add_argument("--json",
                       help="write the JSON report to this path ('-' for "
                            "stdout)")
    sweep.add_argument("--profile", action="store_true",
                       help="print sweep phase timings and work counters")
    sweep.set_defaults(func=_cmd_sweep)

    hier = sub.add_parser(
        "hier",
        help="hierarchical partition-parallel analysis with "
             "interface-model caching")
    hier.add_argument("circuit", help="benchmark name or .bench path")
    hier.add_argument("--config", default="I", help="input stats: I or II")
    hier.add_argument("--partitions", type=int, default=4,
                      help="target region count (DFF-boundary cut, "
                           "level-band fallback)")
    hier.add_argument("--workers", type=int, default=1,
                      help="process pool size for independent regions "
                           "of one wave")
    hier.add_argument("--algebra", choices=("moments", "mixture", "grid"),
                      default="moments",
                      help="arrival-time algebra per region")
    hier.add_argument("--grid", default="-8:60:2048",
                      help="TimeGrid as START:STOP:N for --algebra grid")
    hier.add_argument("--keep", choices=("interface", "all"),
                      default="interface",
                      help="merged nets: boundary/endpoint pins only "
                           "(memory-bounded) or every region net")
    hier.add_argument("--cache", metavar="DIR",
                      help="content-addressed interface-model store; "
                           "reruns and isomorphic regions hit the cache")
    hier.add_argument("--retries", type=int, default=0,
                      help="per-region retry attempts after the first "
                           "try (docs/robustness.md)")
    hier.add_argument("--deadline", type=float, metavar="SECONDS",
                      help="stop dispatching regions after this budget; "
                           "completed regions merge, the rest report "
                           "pending (exit 3)")
    hier.add_argument("--compare-flat", action="store_true",
                      help="also run the flat fast engine and report "
                           "speedup and worst endpoint deltas")
    hier.add_argument("--json",
                      help="write the JSON report to this path ('-' for "
                           "stdout)")
    hier.add_argument("--profile", action="store_true",
                      help="print merged phase timings and work counters")
    hier.set_defaults(func=_cmd_hier)

    verify = sub.add_parser(
        "verify",
        help="cross-engine conformance sweep (exit 1 on divergence)")
    verify.add_argument("--seed", type=int, default=0,
                        help="root seed for fuzzed circuits and MC draws")
    verify.add_argument("--random", type=int, default=3,
                        help="number of fuzzed random circuits")
    verify.add_argument("--benches", default="s27,s208",
                        help="comma-separated benchmark names")
    verify.add_argument("--trials", type=int, default=20_000,
                        help="Monte Carlo oracle trials per circuit")
    verify.add_argument("--config", default="I", help="input stats: I or II")
    verify.add_argument("--json", help="write the JSON report to this path")
    verify.set_defaults(func=_cmd_verify)

    optimize = sub.add_parser(
        "optimize",
        help="SPSTA-in-the-loop gate sizing with incremental re-timing "
             "(docs/optimization.md)")
    optimize.add_argument("circuit")
    optimize.add_argument("--clock-period", type=float, required=True,
                          help="clock period the metric is evaluated at")
    optimize.add_argument("--metric", choices=("yield", "mean-ksigma"),
                          default="yield",
                          help="cost: per-endpoint on-time yield product, "
                               "or worst endpoint mean + k*sigma")
    optimize.add_argument("--k-sigma", type=float, default=3.0,
                          help="k for the mean-ksigma metric and the "
                               "critical-path back-trace")
    optimize.add_argument("--target-yield", type=float, default=0.95,
                          help="stop once the yield metric reaches this")
    optimize.add_argument("--max-area", type=float, default=20.0,
                          help="upsizing budget: sum of (size - 1)")
    optimize.add_argument("--size-step", type=float, default=0.5)
    optimize.add_argument("--max-size", type=float, default=4.0)
    optimize.add_argument("--base-delay", type=float, default=1.0,
                          help="nominal unsized gate delay")
    optimize.add_argument("--delay-sigma", type=float, default=0.1,
                          help="unsized gate delay sigma (scales 1/size)")
    optimize.add_argument("--config", default="I", help="input stats: I/II")
    optimize.add_argument("--algebra", choices=("moments", "mixture"),
                          default="moments",
                          help="SPSTA algebra the cost is computed under")
    optimize.add_argument("--max-iterations", type=int, default=60,
                          help="greedy move budget")
    optimize.add_argument("--anneal", action="store_true",
                          help="refine with a simulated-annealing schedule")
    optimize.add_argument("--anneal-moves", type=int, default=120,
                          help="annealing proposal budget")
    optimize.add_argument("--seed", type=int, default=0,
                          help="seed for annealing and MC validation")
    optimize.add_argument("--mc-validate", type=int, default=0,
                          metavar="TRIALS",
                          help="validate the final point with a "
                               "shared-trial Monte Carlo joint yield")
    optimize.add_argument("--no-bounds-pruning", action="store_true",
                          help="disable the certified bounds pruning "
                               "preflight (mean-ksigma metric; the "
                               "result is bit-identical either way)")
    optimize.add_argument("--verify-moves", action="store_true",
                          help="assert every move's incremental state "
                               "bit-exact against a full pass (slow)")
    optimize.add_argument("--json",
                          help="write a JSON report to this path "
                               "('-' for stdout)")
    optimize.set_defaults(func=_cmd_optimize)

    bounds = sub.add_parser(
        "bounds",
        help="certified SP intervals and arrival bound boxes "
             "(one static pass, no simulation)")
    bounds.add_argument("circuit", help="benchmark name or .bench path")
    bounds.add_argument("--config", default="I", help="input stats: I or II")
    bounds.add_argument("--k-sigma", type=float, default=3.0,
                        help="k for the criticality bounds mu + k*sigma")
    bounds.add_argument("--clock-period", type=float, default=None,
                        help="also report static yield bounds and the "
                             "certified non-critical set at this clock")
    bounds.add_argument("--max-cone-inputs", type=int, default=10,
                        help="launch-support cap for BDD-exact collapse "
                             "of reconvergent cones")
    bounds.add_argument("--max-bdd-nodes", type=int, default=100_000,
                        help="shared node budget for all cone collapses")
    bounds.add_argument("--endpoints", type=int, default=5,
                        help="endpoints to list (widest bound first)")
    bounds.add_argument("--json",
                        help="write the JSON report to this path "
                             "('-' for stdout)")
    bounds.set_defaults(func=_cmd_bounds)

    report = sub.add_parser("report",
                            help="per-endpoint slack/miss-probability report")
    report.add_argument("circuit")
    report.add_argument("--clock", type=float, required=True,
                        help="clock period")
    report.add_argument("--config", default="I")
    report.add_argument("--paths", type=int, default=3,
                        help="number of critical paths to print")
    report.add_argument("--endpoints", type=int, default=10,
                        help="endpoints to list (worst first)")
    report.set_defaults(func=_cmd_report)

    stats = sub.add_parser("stats", help="structural circuit statistics")
    stats.add_argument("circuit")
    stats.set_defaults(func=_cmd_stats)

    convert = sub.add_parser("convert",
                             help="convert between .bench and .v formats")
    convert.add_argument("source")
    convert.add_argument("target")
    convert.set_defaults(func=_cmd_convert)

    generate = sub.add_parser("generate",
                              help="generate a synthetic benchmark circuit")
    generate.add_argument("--name", default="synthetic")
    generate.add_argument("--inputs", type=int, default=8)
    generate.add_argument("--outputs", type=int, default=8)
    generate.add_argument("--dffs", type=int, default=8)
    generate.add_argument("--gates", type=int, default=100)
    generate.add_argument("--depth", type=int, default=8)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--xor-fraction", type=float, default=0.0)
    generate.add_argument("--output", help=".bench path (default: stdout)")
    generate.set_defaults(func=_cmd_generate)

    testability = sub.add_parser(
        "testability", help="COP testability and optional BDD ATPG")
    testability.add_argument("circuit")
    testability.add_argument("--probability", type=float, default=0.5,
                             help="launch-point P(1)")
    testability.add_argument("--top", type=int, default=8,
                             help="hardest faults to list")
    testability.add_argument("--atpg", action="store_true",
                             help="also build a deterministic test set")
    testability.set_defaults(func=_cmd_testability)

    slack = sub.add_parser("slack",
                           help="per-net slack and slack histogram")
    slack.add_argument("circuit")
    slack.add_argument("--clock", type=float, required=True)
    slack.set_defaults(func=_cmd_slack)

    serve = sub.add_parser(
        "serve",
        help="long-lived incremental analysis daemon (JSON over "
             "stdio, or HTTP with --http)")
    serve.add_argument("--config", choices=("I", "II"), default="I",
                       help="default input statistics configuration")
    serve.add_argument("--algebra",
                       choices=("moments", "mixture", "grid"),
                       default="moments",
                       help="default arrival-time algebra")
    serve.add_argument("--grid", default="-8:60:2048",
                       help="default grid spec START:STOP:N for "
                            "--algebra grid")
    serve.add_argument("--fail-on", choices=("error", "warning", "never"),
                       default="error",
                       help="lint-preflight severity that rejects a "
                            "circuit (never disables the preflight)")
    serve.add_argument("--cache-entries", type=int, default=256,
                       help="in-memory result-cache LRU capacity")
    serve.add_argument("--cache", default=None, metavar="DIR",
                       help="on-disk result cache shared across "
                            "restarts and workers")
    serve.add_argument("--max-request-bytes", type=int,
                       default=1 << 20,
                       help="refuse requests larger than this")
    serve.add_argument("--session-log", default=None, metavar="FILE",
                       help="append every request/response pair as "
                            "JSON Lines")
    serve.add_argument("--canary", action="store_true",
                       help="run the conformance harness on s27 before "
                            "serving; refuse to start on divergence")
    serve.add_argument("--canary-trials", type=int, default=4000,
                       help="Monte Carlo trials for the --canary check")
    serve.add_argument("--http", type=int, default=None, metavar="PORT",
                       help="serve HTTP on PORT instead of stdio")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address for --http")
    serve.set_defaults(func=_cmd_serve)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
