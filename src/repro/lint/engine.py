"""The lint rule engine: configuration, execution, and reporting.

:func:`run_lint` sweeps a validated netlist through every registered rule
family and folds the findings into a :class:`LintReport` with a stable
JSON serialization (schema documented in ``docs/linting.md``) and a
baseline-suppression mechanism: known findings, keyed by
``rule:location``, can be recorded in a baseline file and silenced so a
legacy circuit only fails CI on *new* findings.

Circuits too malformed to construct never reach :func:`run_lint` —
``Netlist.__init__`` raises :class:`~repro.lint.diagnostics.NetlistError`
carrying the same structural diagnostics, and
:func:`report_from_error` folds that into a report so the CLI presents
one format either way.
"""

from __future__ import annotations

from dataclasses import dataclass
import json
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.delay import DelayModel, UnitDelay
from repro.core.inputs import CONFIG_I, InputStats
from repro.lint.accuracy import accuracy_diagnostics
from repro.lint.bounds_rules import bounds_diagnostics
from repro.lint.cost import cost_diagnostics
from repro.lint.diagnostics import (
    Diagnostic,
    NetlistError,
    Severity,
    max_severity,
)
from repro.lint.hier import hier_diagnostics
from repro.lint.structural import structural_warnings

if TYPE_CHECKING:
    from repro.netlist.core import Netlist

#: JSON schema version of the lint report (bump on breaking changes).
#: v2: the SP4xx bounds family joined the report.
SCHEMA_VERSION = 2


@dataclass(frozen=True)
class LintConfig:
    """Analysis configuration the engine-cost and accuracy rules price.

    Mirrors the knobs of an actual run: the parity enumeration cap and
    Monte Carlo trial count (SP2xx), and the input statistics, delay
    model, and time grid (SP303's support bounds).  ``grid=None`` skips
    the grid-coverage prediction.  ``n_scenarios`` is the scenario count
    of a batched sweep (``repro.core.scenario``): the SP203 analytic
    cost scales roughly linearly with it, and SP204 prices the sweep's
    ``n_scenarios × bins × nets`` grid-block footprint against
    ``scenario_memory_budget`` bytes.  ``n_partitions``/``n_workers``
    describe a hierarchical run: when ``n_partitions > 1`` the SP110 /
    SP205 rules partition the netlist exactly as ``repro.hier`` would
    and price boundary width, per-region peak memory (against
    ``hier_memory_budget``), and the wave-schedule speedup bound.
    ``disabled`` switches whole rules off; ``k_sigma`` is the
    support-bound width and matches the Gaussian kernel window of the
    grid engines.

    The SP4xx bounds rules add: ``clock_period`` (enables the SP405
    static yield bounds and anchors the SP404 non-critical threshold),
    ``near_constant_eps`` (SP401's rail distance), and the interval
    engine's cone-collapse budget ``max_cone_inputs`` /
    ``max_bdd_nodes``.
    """

    max_parity_fanin: int = 10
    subset_warn_fanin: int = 12
    subset_term_budget: int = 5_000_000
    trials: int = 10_000
    mc_cost_budget: int = 1_000_000_000
    n_scenarios: int = 1
    scenario_memory_budget: int = 2 * 1024 ** 3
    input_stats: InputStats = CONFIG_I
    delay_model: DelayModel = UnitDelay()
    grid: Optional[object] = None     # repro.stats.grid.TimeGrid
    k_sigma: float = 6.0
    max_reports: int = 20
    n_partitions: int = 1
    n_workers: int = 1
    hier_memory_budget: int = 2 * 1024 ** 3
    boundary_width_ratio: float = 0.5
    clock_period: Optional[float] = None
    near_constant_eps: float = 1e-6
    max_cone_inputs: int = 10
    max_bdd_nodes: int = 100_000
    disabled: FrozenSet[str] = frozenset()


#: Registered rule families, in reporting order.  Extending the linter is
#: adding a callable here (see docs/linting.md, "Adding a rule").
RuleCheck = Callable[["Netlist", LintConfig], Sequence[Diagnostic]]

RULE_FAMILIES: Tuple[Tuple[str, RuleCheck], ...] = (
    ("structural", lambda netlist, config: structural_warnings(netlist)),
    ("cost", cost_diagnostics),
    ("accuracy", accuracy_diagnostics),
    ("hier", hier_diagnostics),
    ("bounds", bounds_diagnostics),
)


@dataclass
class LintReport:
    """All findings of one lint run, ordered most severe first."""

    circuit: str
    diagnostics: Tuple[Diagnostic, ...]
    suppressed: Tuple[Diagnostic, ...] = ()
    constructible: bool = True

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity is severity)

    @property
    def counts(self) -> Dict[str, int]:
        return {severity.value: self.count(severity)
                for severity in (Severity.ERROR, Severity.WARNING,
                                 Severity.INFO)}

    def passed(self, fail_on: Severity = Severity.ERROR) -> bool:
        worst = max_severity(self.diagnostics)
        return worst is None or worst < fail_on

    def select(self, rule_prefix: str) -> List[Diagnostic]:
        """Findings whose rule ID starts with ``rule_prefix``."""
        return [d for d in self.diagnostics
                if d.rule.startswith(rule_prefix)]

    def render(self, verbose: bool = True) -> str:
        counts = self.counts
        lines = [f"lint {self.circuit}: {counts['error']} errors, "
                 f"{counts['warning']} warnings, {counts['info']} notes"
                 + (f" ({len(self.suppressed)} baseline-suppressed)"
                    if self.suppressed else "")
                 + ("" if self.constructible
                    else " — netlist failed construction")]
        shown = (self.diagnostics if verbose else
                 [d for d in self.diagnostics
                  if d.severity is not Severity.INFO])
        lines.extend("  " + d.render().replace("\n", "\n  ")
                     for d in shown)
        return "\n".join(lines)

    def to_dict(self) -> Mapping[str, object]:
        return {
            "report": "spsta-lint",
            "version": SCHEMA_VERSION,
            "circuit": self.circuit,
            "constructible": self.constructible,
            "counts": self.counts,
            "suppressed": len(self.suppressed),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)


def _sorted(diagnostics: Sequence[Diagnostic]) -> Tuple[Diagnostic, ...]:
    return tuple(sorted(
        diagnostics,
        key=lambda d: (-d.severity.rank, d.rule, d.location)))


def run_lint(netlist: "Netlist",
             config: Optional[LintConfig] = None,
             baseline: FrozenSet[str] = frozenset()) -> LintReport:
    """Run every registered rule family over a validated netlist."""
    if config is None:
        config = LintConfig()
    findings: List[Diagnostic] = []
    for _family, check in RULE_FAMILIES:
        findings.extend(d for d in check(netlist, config)
                        if d.rule not in config.disabled)
    kept = [d for d in findings if d.key not in baseline]
    dropped = [d for d in findings if d.key in baseline]
    return LintReport(circuit=netlist.name,
                      diagnostics=_sorted(kept),
                      suppressed=_sorted(dropped))


def report_from_error(circuit: str, error: NetlistError,
                      baseline: FrozenSet[str] = frozenset()) -> LintReport:
    """A report for a netlist that failed construction: the validator's
    structural diagnostics become the findings (same rules, same keys)."""
    kept = [d for d in error.diagnostics if d.key not in baseline]
    dropped = [d for d in error.diagnostics if d.key in baseline]
    return LintReport(circuit=circuit, diagnostics=_sorted(kept),
                      suppressed=_sorted(dropped), constructible=False)


# -- baseline suppression -------------------------------------------------


def load_baseline(path: Union[str, Path]) -> FrozenSet[str]:
    """Read a baseline file: ``{"version": 1, "suppress": ["RULE:loc"]}``."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or "suppress" not in payload:
        raise ValueError(
            f"{path}: not a lint baseline (expected a JSON object with a "
            f"'suppress' list)")
    keys = payload["suppress"]
    if (not isinstance(keys, list)
            or not all(isinstance(k, str) for k in keys)):
        raise ValueError(f"{path}: 'suppress' must be a list of strings")
    return frozenset(keys)


def write_baseline(report: LintReport, path: Union[str, Path]) -> None:
    """Write every current finding's key as the new baseline."""
    keys = sorted({d.key for d in report.diagnostics}
                  | {d.key for d in report.suppressed})
    Path(path).write_text(json.dumps(
        {"version": SCHEMA_VERSION, "circuit": report.circuit,
         "suppress": keys}, indent=2) + "\n")


class LintFailure(RuntimeError):
    """A preflight lint found error-level diagnostics.

    Raised by the opt-out preflight in ``analyze``/``repro.verify`` so a
    pathological circuit fails fast with structured diagnostics instead
    of a mid-propagation traceback.
    """

    def __init__(self, report: LintReport,
                 fail_on: Severity = Severity.ERROR) -> None:
        self.report = report
        self.fail_on = fail_on
        super().__init__(
            f"lint found {report.count(Severity.ERROR)} errors / "
            f"{report.count(Severity.WARNING)} warnings in "
            f"{report.circuit} (failing at {fail_on.value} or worse)")


def preflight(netlist: "Netlist",
              config: Optional[LintConfig] = None,
              fail_on: Severity = Severity.ERROR) -> LintReport:
    """Lint and raise :class:`LintFailure` at ``fail_on`` or worse."""
    report = run_lint(netlist, config)
    if not report.passed(fail_on):
        raise LintFailure(report, fail_on)
    return report
