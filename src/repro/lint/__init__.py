"""``repro.lint`` — static circuit & analysis-configuration linter.

A rule engine over netlists and analysis configurations emitting
structured :class:`~repro.lint.diagnostics.Diagnostic` records in three
families (see ``docs/linting.md`` for the catalog):

- **SP1xx structural** — cycles as explicit paths, undriven/multi-driven
  nets, dead logic, dangling nets, duplicate names;
- **SP2xx engine cost** — the parity ``4^k`` blowup, Eq. 11 subset-table
  widths, Monte Carlo trial-cost estimates;
- **SP3xx accuracy** — reconvergent-fanout correlation metrics and static
  grid-coverage (MassLedger clipping) prediction.

Exposed on the CLI as ``spsta lint``; wired as an opt-out preflight into
``spsta analyze`` and the ``repro.verify`` conformance harness.

The diagnostics submodule is imported eagerly (``repro.netlist.core``
depends on it); the engine — which itself depends on the netlist package
— loads lazily through ``__getattr__`` to keep the import graph acyclic.
"""

from __future__ import annotations

from typing import List

from repro.lint.diagnostics import (
    Diagnostic,
    NetlistError,
    Severity,
    max_severity,
)

_ENGINE_EXPORTS = (
    "LintConfig", "LintFailure", "LintReport", "RULE_FAMILIES",
    "SCHEMA_VERSION", "load_baseline", "preflight", "report_from_error",
    "run_lint", "write_baseline",
)

__all__ = [
    "Diagnostic", "NetlistError", "Severity", "max_severity",
    *_ENGINE_EXPORTS,
]


def __getattr__(name: str) -> object:
    if name in _ENGINE_EXPORTS:
        from repro.lint import engine
        return getattr(engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> List[str]:
    return sorted(__all__)
