"""SP3xx accuracy rules: where SPSTA's modelling assumptions will bite.

Two static predictors:

- **Reconvergent fanout (SP301/SP302).**  Eq. 11's weighted sum assumes
  gate inputs are statistically independent; a net that fans out and
  reconverges violates that exactly at the reconvergence gate.  The check
  propagates, in one topological sweep, a bitset of "stem" nets (fan-out
  >= 2) through every cone; a stem present on two or more inputs of the
  same gate reconverges there.  The correlation depth — levels between the
  stem and its reconvergence point — measures how much shared history the
  independence approximation discards.

- **Grid coverage (SP303).**  The grid algebra silently loses probability
  mass past the ``TimeGrid`` edge (accounted at runtime by the
  :class:`~repro.stats.grid.MassLedger`).  A longest-path DP over the
  delay model's per-gate (mu, sigma) bounds each endpoint's arrival
  support as ``mu + k·sigma``; a bound past the grid extent predicts the
  ledger's clipping before any density is propagated.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.bounds.stems import StemRecord, find_reconvergence
from repro.lint.diagnostics import Diagnostic, Severity
from repro.stats.normal import norm_cdf

if TYPE_CHECKING:
    from repro.lint.engine import LintConfig
    from repro.netlist.core import Netlist

__all__ = [
    "StemRecord", "find_reconvergence", "accuracy_diagnostics",
    "reconvergence_diagnostics", "endpoint_support_bounds",
    "grid_coverage_diagnostics",
]


def accuracy_diagnostics(netlist: "Netlist",
                         config: "LintConfig") -> List[Diagnostic]:
    diagnostics = reconvergence_diagnostics(netlist, config)
    if config.grid is not None:
        diagnostics.extend(grid_coverage_diagnostics(netlist, config))
    return diagnostics


# -- SP301/SP302: reconvergent fanout ------------------------------------
#
# The packed-uint64 stem sweep itself lives in ``repro.bounds.stems``
# (shared with the bounds engine's regime classifier); ``StemRecord`` and
# ``find_reconvergence`` are re-exported above for compatibility.


def reconvergence_diagnostics(netlist: "Netlist",
                              config: "LintConfig") -> List[Diagnostic]:
    records, endpoint_metrics = find_reconvergence(netlist)
    diagnostics: List[Diagnostic] = []
    ranked = sorted(records.values(),
                    key=lambda r: (-r.max_depth, r.stem))
    for record in ranked[:config.max_reports]:
        diagnostics.append(Diagnostic(
            rule="SP301", severity=Severity.WARNING, net=record.stem,
            gate=record.first_gate,
            message=f"reconvergent fanout: net {record.stem} reconverges "
                    f"at gate {record.first_gate} "
                    f"({record.n_gates} reconvergence point"
                    f"{'s' if record.n_gates != 1 else ''}, correlation "
                    f"depth {record.max_depth}); Eq. 11 treats the "
                    f"reconverging cones as independent",
            data={"stem": record.stem,
                  "first_reconvergence_gate": record.first_gate,
                  "reconvergence_gates": record.n_gates,
                  "max_correlation_depth": record.max_depth},
            suggestion="cross-check affected endpoints against Monte "
                       "Carlo (spsta verify) or the correlation-aware "
                       "algebra (repro.core.spsta_canonical)"))
    if len(ranked) > config.max_reports:
        rest = len(ranked) - config.max_reports
        diagnostics.append(Diagnostic(
            rule="SP301", severity=Severity.INFO,
            message=f"{rest} further reconvergent stem"
                    f"{'s' if rest != 1 else ''} suppressed "
                    f"(reporting cap {config.max_reports}; full count in "
                    f"SP302 data)",
            data={"suppressed_stems": rest,
                  "total_stems": len(ranked)}))
    if endpoint_metrics:
        def _rank(e: str) -> Tuple[int, int]:
            m = endpoint_metrics[e]
            return (m["max_correlation_depth"], m["reconvergent_stems"])

        worst = max(endpoint_metrics, key=_rank)
        w = endpoint_metrics[worst]
        diagnostics.append(Diagnostic(
            rule="SP302", severity=Severity.INFO, net=worst,
            message=f"{len(endpoint_metrics)} of {len(netlist.endpoints)} "
                    f"endpoints observe reconverged cones; worst is "
                    f"{worst} ({w['reconvergent_stems']} stems, "
                    f"correlation depth {w['max_correlation_depth']})",
            data={"endpoints": endpoint_metrics,
                  "total_stems": len(records)}))
    return diagnostics


# -- SP303: static grid-coverage prediction ------------------------------


def endpoint_support_bounds(netlist: "Netlist", config: "LintConfig",
                            ) -> Dict[str, Tuple[float, float]]:
    """Per-endpoint (mu_bound, sigma_bound) of the arrival support.

    Longest-path DP: along every path the means add and (independent gate
    delays) the variances add; taking the max of each separately bounds
    any single path's ``mu + k·sigma`` from above.
    """
    stats = config.input_stats
    launch_mu = max(stats.rise_arrival.mu, stats.fall_arrival.mu)
    launch_var = max(stats.rise_arrival.sigma,
                     stats.fall_arrival.sigma) ** 2
    hi_mu: Dict[str, float] = {}
    hi_var: Dict[str, float] = {}
    for net in netlist.launch_points:
        hi_mu[net] = launch_mu
        hi_var[net] = launch_var
    for gate in netlist.combinational_gates:
        delay = config.delay_model.delay(gate)
        hi_mu[gate.name] = max(hi_mu[src] for src in gate.inputs) + delay.mu
        hi_var[gate.name] = (max(hi_var[src] for src in gate.inputs)
                             + delay.sigma ** 2)
    return {net: (hi_mu[net], math.sqrt(hi_var[net]))
            for net in netlist.endpoints}


def grid_coverage_diagnostics(netlist: "Netlist",
                              config: "LintConfig") -> List[Diagnostic]:
    grid = config.grid
    assert grid is not None
    k = config.k_sigma
    diagnostics: List[Diagnostic] = []

    stats = config.input_stats
    launch_lo = min(
        stats.rise_arrival.mu - k * stats.rise_arrival.sigma,
        stats.fall_arrival.mu - k * stats.fall_arrival.sigma)
    if launch_lo < grid.start:
        diagnostics.append(Diagnostic(
            rule="SP303", severity=Severity.WARNING,
            message=f"launch arrival support extends to "
                    f"{launch_lo:.2f} ({k:g} sigma), below the grid "
                    f"start {grid.start:g}; launch densities will clip "
                    f"at the low edge",
            data={"edge": "low", "support_bound": launch_lo,
                  "grid_start": grid.start, "k_sigma": k},
            suggestion=f"extend the TimeGrid start to "
                       f"{math.floor(launch_lo)} or below"))

    overruns: List[Tuple[float, str, float, float]] = []
    for endpoint, (mu, sigma) in \
            endpoint_support_bounds(netlist, config).items():
        bound = mu + k * sigma
        if bound > grid.stop:
            overruns.append((bound - grid.stop, endpoint, mu, sigma))
    overruns.sort(key=lambda item: (-item[0], item[1]))
    for overrun, endpoint, mu, sigma in overruns[:config.max_reports]:
        margin = (grid.stop - mu) / sigma if sigma > 0.0 else math.inf
        tail = float(norm_cdf(-margin)) if margin != math.inf else 0.0
        diagnostics.append(Diagnostic(
            rule="SP303", severity=Severity.WARNING, net=endpoint,
            message=f"predicted grid clipping at endpoint {endpoint}: "
                    f"arrival support reaches {mu + k * sigma:.2f} "
                    f"(mu {mu:.2f} + {k:g} sigma), "
                    f"{overrun:.2f} past the grid stop {grid.stop:g} "
                    f"(per-path tail mass ~{tail:.2e}); the runtime "
                    f"MassLedger will clip this off the grid edge",
            data={"edge": "high", "endpoint": endpoint,
                  "support_bound": mu + k * sigma, "mu_bound": mu,
                  "sigma_bound": sigma, "grid_stop": grid.stop,
                  "overrun": overrun, "k_sigma": k,
                  "predicted_tail_mass": tail},
            suggestion=f"extend the TimeGrid stop to "
                       f"{math.ceil(mu + k * sigma)} or above"))
    if len(overruns) > config.max_reports:
        rest = len(overruns) - config.max_reports
        diagnostics.append(Diagnostic(
            rule="SP303", severity=Severity.INFO,
            message=f"{rest} further endpoint grid-coverage overrun"
                    f"{'s' if rest != 1 else ''} suppressed "
                    f"(reporting cap {config.max_reports})",
            data={"suppressed_endpoints": rest,
                  "total_overruns": len(overruns)}))
    return diagnostics
