"""Hierarchical-analysis rules: partition shape and scheduling cost.

Active only when the configuration asks for a partitioned run
(``n_partitions > 1``): the rules partition the netlist exactly as
``repro.hier.run_hier`` would and price the result before any region is
dispatched.

``SP110`` flags pathological boundary width — a region whose cut
surface rivals its gate count exports an interface model as expensive
as recomputing the region, so the partition count should drop (or the
cut move to a register boundary).  ``SP205`` predicts the per-region
peak memory of the worker pool and the wave-schedule speedup bound for
the requested worker count, warning when the configured memory budget
cannot hold the concurrent region footprints.
"""

from __future__ import annotations

from math import ceil
from typing import TYPE_CHECKING, List

from repro.lint.diagnostics import Diagnostic, Severity

if TYPE_CHECKING:
    from repro.lint.engine import LintConfig
    from repro.netlist.core import Netlist

#: At most this many SP110 region reports per run (worst first).
_MAX_BOUNDARY_REPORTS = 5

#: Closed-form algebras carry a few floats per TOP; grid rows carry
#: ``bins`` float64s per direction.  Used when no grid is configured.
_CLOSED_FORM_TOP_BYTES = 64


def hier_diagnostics(netlist: "Netlist",
                     config: "LintConfig") -> List[Diagnostic]:
    """SP110 boundary width, SP205 region memory / worker cost."""
    if config.n_partitions <= 1:
        return []
    from repro.netlist.partition import partition_netlist

    partition = partition_netlist(netlist, config.n_partitions)
    diagnostics = _boundary_width(partition, config)
    diagnostics.extend(_schedule_cost(netlist, partition, config))
    return diagnostics


def _boundary_width(partition: object,
                    config: "LintConfig") -> List[Diagnostic]:
    """SP110: regions whose cut surface rivals their gate count."""
    from repro.netlist.partition import Partition

    assert isinstance(partition, Partition)
    offenders = []
    for region in partition.regions:
        width = region.boundary_width
        limit = max(1.0, config.boundary_width_ratio * region.n_gates)
        if width > limit:
            offenders.append((width / max(region.n_gates, 1), region))
    offenders.sort(key=lambda pair: -pair[0])
    diagnostics: List[Diagnostic] = []
    for ratio, region in offenders[:_MAX_BOUNDARY_REPORTS]:
        diagnostics.append(Diagnostic(
            rule="SP110", severity=Severity.WARNING,
            net=f"region{region.index}",
            message=f"pathological boundary: region {region.index} has "
                    f"{region.boundary_width} boundary pins for "
                    f"{region.n_gates} gates (ratio {ratio:.2f} > "
                    f"{config.boundary_width_ratio:.2f}); its interface "
                    f"model costs as much as recomputing the region",
            data={"region": region.index,
                  "boundary_pins": region.boundary_width,
                  "gates": region.n_gates,
                  "ratio": round(ratio, 4),
                  "threshold": config.boundary_width_ratio},
            suggestion="lower --partitions so cuts stay on register "
                       "boundaries, or restructure the blob the level-"
                       "band fallback had to slice"))
    return diagnostics


def _schedule_cost(netlist: "Netlist", partition: object,
                   config: "LintConfig") -> List[Diagnostic]:
    """SP205: per-region peak memory and the wave-parallel speedup bound.

    A region worker holds every region net's TOP rows live (the fast
    engine keeps all nets of its sub-netlist), so the pool's peak is
    ``workers × max-region footprint``.  The wave schedule's runtime
    bound is ``sum over waves of ceil(regions/workers) × max region
    gates`` — the speedup prediction the benchmark should reproduce.
    """
    from repro.netlist.partition import Partition

    assert isinstance(partition, Partition)
    workers = max(1, config.n_workers)
    grid = config.grid
    bins = int(getattr(grid, "n")) if grid is not None else 0
    per_top = bins * 8 if grid is not None else _CLOSED_FORM_TOP_BYTES

    footprints = [
        (region.n_gates + len(region.inputs)) * 2 * per_top
        for region in partition.regions]
    max_footprint = max(footprints)
    concurrent = min(workers, max(len(wave)
                                  for wave in partition.waves))
    peak = concurrent * max_footprint

    total_gates = sum(region.n_gates for region in partition.regions)
    bound_gates = 0
    for wave in partition.waves:
        wave_max = max(partition.regions[index].n_gates
                       for index in wave)
        bound_gates += ceil(len(wave) / workers) * wave_max
    speedup_bound = total_gates / max(bound_gates, 1)

    over = peak > config.hier_memory_budget
    severity = Severity.WARNING if over else Severity.INFO
    return [Diagnostic(
        rule="SP205", severity=severity,
        message=f"hier schedule: {partition.n_regions} regions in "
                f"{len(partition.waves)} waves on {workers} workers; "
                f"peak ~{peak / 1024 ** 2:,.0f} MiB "
                f"({concurrent} concurrent x "
                f"{max_footprint / 1024 ** 2:,.0f} MiB max region), "
                f"speedup bound {speedup_bound:.1f}x"
                + (f" — exceeds the "
                   f"{config.hier_memory_budget / 1024 ** 2:,.0f} MiB "
                   f"budget" if over else ""),
        data={"n_regions": partition.n_regions,
              "n_waves": len(partition.waves),
              "workers": workers,
              "max_region_footprint_bytes": max_footprint,
              "peak_bytes": peak,
              "budget_bytes": config.hier_memory_budget,
              "speedup_bound": round(speedup_bound, 3),
              "grid_bins": bins},
        suggestion=("reduce --workers, raise --partitions so regions "
                    "shrink, or run keep='interface' to bound exports "
                    "to boundary pins" if over else None))]
