"""SP4xx bounds rules: certified facts from the interval engine.

Every SP4xx finding is backed by a *sound* interval from
:func:`repro.bounds.compute_bounds` — unlike the SP3xx predictions
these are certificates, not heuristics:

- **SP401** (warning) — near-constant net: the certified interval sits
  within ``near_constant_eps`` of a rail without being exactly on it.
  The net carries almost no information and its transitions contribute
  almost nothing to timing or power.
- **SP402** (info) — statically untestable stuck-at fault: a net
  certified exactly constant under launch probabilities strictly inside
  (0, 1) is constant for *every* input vector, so the matching stuck-at
  fault can never be detected.
- **SP403** (warning) — dead logic: a gate output whose interval has
  width zero at 0 or 1; the gate and its exclusive fan-in cone compute
  a constant.
- **SP404** (info) — certified non-critical cones: gates provably
  absent from every critical path at the analysis threshold (the clock
  period when configured, else the certified lower bound on the worst
  endpoint criticality).
- **SP405** (info) — static timing-yield bounds at the configured clock
  period (Cantelli + union bound; see docs/theory.md).

The rules run only when the family is registered (``bounds`` in
:data:`repro.lint.engine.RULE_FAMILIES`) and honor ``disabled`` like
every other rule.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from repro.bounds.engine import BoundsResult, compute_bounds
from repro.lint.diagnostics import Diagnostic, Severity

if TYPE_CHECKING:
    from repro.lint.engine import LintConfig
    from repro.netlist.core import Netlist


def bounds_diagnostics(netlist: "Netlist",
                       config: "LintConfig") -> List[Diagnostic]:
    result = compute_bounds(
        netlist,
        stats=config.input_stats,
        delay_model=config.delay_model,
        k_sigma=config.k_sigma,
        clock_period=config.clock_period,
        max_cone_inputs=config.max_cone_inputs,
        max_bdd_nodes=config.max_bdd_nodes)
    diagnostics = _sp_diagnostics(netlist, config, result)
    diagnostics.extend(_criticality_diagnostics(netlist, config, result))
    return diagnostics


def _sp_diagnostics(netlist: "Netlist", config: "LintConfig",
                    result: BoundsResult) -> List[Diagnostic]:
    eps = config.near_constant_eps
    launch_interior = all(
        0.0 < result.sp[net].lo and result.sp[net].hi < 1.0
        for net in netlist.launch_points)
    near: List[Tuple[str, float, float]] = []
    diagnostics: List[Diagnostic] = []
    for gate in netlist.combinational_gates:
        net = gate.name
        interval = result.sp[net]
        constant_zero = interval.hi == 0.0
        constant_one = interval.lo == 1.0
        if constant_zero or constant_one:
            value = 1 if constant_one else 0
            regime = result.regimes[net]
            diagnostics.append(Diagnostic(
                rule="SP403", severity=Severity.WARNING, net=net,
                gate=net,
                message=f"dead logic: gate {net} output is certified "
                        f"constant {value} (zero-width interval, "
                        f"{regime} regime); the gate and its exclusive "
                        f"fan-in cone compute a constant",
                data={"value": value, "regime": regime},
                suggestion="fold the constant and remove the cone, or "
                           "check for a miswired input"))
            if launch_interior:
                diagnostics.append(Diagnostic(
                    rule="SP402", severity=Severity.INFO, net=net,
                    message=f"statically untestable fault: {net} "
                            f"stuck-at-{value} is undetectable — the "
                            f"net is {value} for every input vector",
                    data={"stuck_at": value, "regime": regime},
                    suggestion="exclude the fault from ATPG targets "
                               "and coverage denominators"))
            continue
        if interval.hi <= eps or interval.lo >= 1.0 - eps:
            near.append((net, interval.lo, interval.hi))
    near.sort(key=lambda item: (min(item[2], 1.0 - item[1]), item[0]))
    for net, lo, hi in near[:config.max_reports]:
        rail = 1 if lo >= 1.0 - eps else 0
        diagnostics.append(Diagnostic(
            rule="SP401", severity=Severity.WARNING, net=net,
            message=f"near-constant net: certified signal probability "
                    f"in [{lo:.3e}, {hi:.3e}], within "
                    f"{eps:g} of constant {rail}",
            data={"lo": lo, "hi": hi, "rail": rail,
                  "epsilon": eps},
            suggestion="transitions here are vanishingly rare; consider "
                       "constant-folding or re-encoding the cone"))
    if len(near) > config.max_reports:
        rest = len(near) - config.max_reports
        diagnostics.append(Diagnostic(
            rule="SP401", severity=Severity.INFO,
            message=f"{rest} further near-constant net"
                    f"{'s' if rest != 1 else ''} suppressed "
                    f"(reporting cap {config.max_reports})",
            data={"suppressed_nets": rest, "total": len(near)}))
    return diagnostics


def _criticality_diagnostics(netlist: "Netlist", config: "LintConfig",
                             result: BoundsResult) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    threshold = (config.clock_period if config.clock_period is not None
                 else result.critical_lower)
    non_critical = result.non_critical_gates(threshold)
    if non_critical:
        never = result.never_critical_endpoints(threshold)
        n_gates = sum(1 for _ in netlist.combinational_gates)
        diagnostics.append(Diagnostic(
            rule="SP404", severity=Severity.INFO,
            message=f"certified non-critical cones: {len(non_critical)} "
                    f"of {n_gates} gates provably never sit on a "
                    f"critical path at threshold {threshold:.3f} "
                    f"({len(never)} endpoints certified never-worst)",
            data={"threshold": threshold,
                  "non_critical_gates": len(non_critical),
                  "never_critical_endpoints": len(never),
                  "total_gates": n_gates,
                  "critical_lower": result.critical_lower,
                  "k_sigma": config.k_sigma},
            suggestion="the optimizer skips these automatically; "
                       "incremental re-analysis can too"))
    if config.clock_period is not None:
        lo, hi = result.yield_bounds(config.clock_period)
        diagnostics.append(Diagnostic(
            rule="SP405", severity=Severity.INFO,
            message=f"static yield bounds at clock "
                    f"{config.clock_period:g}: timing yield in "
                    f"[{lo:.4f}, {hi:.4f}] before any engine run "
                    f"(Cantelli tails + union bound; upper bound "
                    f"assumes worst-case activity)",
            data={"clock_period": config.clock_period,
                  "yield_lo": lo, "yield_hi": hi},
            suggestion="a zero lower bound is uninformative, not "
                       "failing: run spsta analyze for the real yield"))
    return diagnostics
