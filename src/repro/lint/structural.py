"""SP1xx structural rules: netlist well-formedness and liveness.

The error-level checks (``SP101``–``SP106``) are the single source of truth
for netlist validity: ``Netlist.__init__`` runs
:func:`construction_diagnostics` and raises
:class:`~repro.lint.diagnostics.NetlistError` on any error, and the linter
reports the same records for circuits that cannot even be constructed.
Because they must run *before* a valid topological order exists, they
operate on the raw ``(inputs, outputs, gates)`` triple, and cycles are
reported as explicit gate paths instead of the old topo-sort
``ValueError`` with a truncated "unresolved gates" list.

The warning-level liveness checks (``SP108``/``SP109``) need the validated
graph views and live in :func:`liveness_diagnostics`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Sequence, Set, Tuple

from repro.lint.diagnostics import Diagnostic, Severity
from repro.logic.gates import GateType

if TYPE_CHECKING:
    from repro.netlist.core import Gate, Netlist


def construction_diagnostics(name: str,
                             inputs: Sequence[str],
                             outputs: Sequence[str],
                             gates: Sequence["Gate"],
                             ) -> List[Diagnostic]:
    """All error-level structural findings of a raw netlist description.

    An empty result means the netlist is constructible: unique primary
    inputs, single drivers, no undriven references, and an acyclic
    combinational graph.
    """
    diagnostics: List[Diagnostic] = []
    diagnostics.extend(_check_primary_inputs(name, inputs, gates))
    diagnostics.extend(_check_drivers(gates))
    diagnostics.extend(_check_undriven(inputs, outputs, gates))
    diagnostics.extend(_check_cycles(inputs, gates))
    return diagnostics


def structural_warnings(netlist: "Netlist") -> List[Diagnostic]:
    """Warning-level structural findings of a *valid* netlist."""
    diagnostics = _check_duplicate_outputs(netlist)
    diagnostics.extend(liveness_diagnostics(netlist))
    return diagnostics


def _check_primary_inputs(name: str, inputs: Sequence[str],
                          gates: Sequence["Gate"]) -> Iterator[Diagnostic]:
    seen: Set[str] = set()
    for pi in inputs:
        if pi in seen:
            yield Diagnostic(
                rule="SP101", severity=Severity.ERROR, net=pi,
                message=f"duplicate primary input {pi} in {name}",
                suggestion="declare each INPUT() once")
        seen.add(pi)
    gate_names = {g.name for g in gates}
    for pi in dict.fromkeys(inputs):
        if pi in gate_names:
            yield Diagnostic(
                rule="SP102", severity=Severity.ERROR, net=pi,
                message=f"primary input {pi} is also gate-driven",
                suggestion="rename the gate output or drop the INPUT() "
                           "declaration")


def _check_drivers(gates: Sequence["Gate"]) -> Iterator[Diagnostic]:
    drivers: Dict[str, int] = {}
    for gate in gates:
        drivers[gate.name] = drivers.get(gate.name, 0) + 1
    for net, count in drivers.items():
        if count > 1:
            yield Diagnostic(
                rule="SP103", severity=Severity.ERROR, net=net,
                message=f"net {net} driven twice ({count} drivers)",
                data={"drivers": count},
                suggestion="give each driving gate a unique output net")


def _check_undriven(inputs: Sequence[str], outputs: Sequence[str],
                    gates: Sequence["Gate"]) -> Iterator[Diagnostic]:
    known = set(inputs) | {g.name for g in gates}
    reported: Set[Tuple[str, str]] = set()
    for gate in gates:
        for src in gate.inputs:
            if src not in known and (gate.name, src) not in reported:
                reported.add((gate.name, src))
                yield Diagnostic(
                    rule="SP104", severity=Severity.ERROR,
                    net=src, gate=gate.name,
                    message=f"gate {gate.name} references undriven net {src}",
                    suggestion=f"drive {src} from a gate or declare it "
                               f"INPUT({src})")
    for po in dict.fromkeys(outputs):
        if po not in known:
            yield Diagnostic(
                rule="SP105", severity=Severity.ERROR, net=po,
                message=f"primary output {po} is undriven",
                suggestion=f"drive {po} from a gate or drop the "
                           f"OUTPUT({po}) declaration")


def _check_cycles(inputs: Sequence[str],
                  gates: Sequence["Gate"]) -> Iterator[Diagnostic]:
    """Combinational cycles as explicit gate paths.

    Kahn's algorithm finds the stuck set; a successor walk restricted to
    that set extracts one concrete cycle per strongly connected region.
    Unknown (undriven) nets count as sources so an SP104 error elsewhere
    does not masquerade as a cycle.
    """
    comb = [g for g in gates if g.gate_type is not GateType.DFF]
    by_name = {g.name: g for g in comb}
    pending: Dict[str, int] = {}
    dependents: Dict[str, List[str]] = {}
    ready: List[str] = []
    for gate in comb:
        waits = sum(1 for src in gate.inputs if src in by_name)
        for src in gate.inputs:
            if src in by_name:
                dependents.setdefault(src, []).append(gate.name)
        if waits == 0:
            ready.append(gate.name)
        else:
            pending[gate.name] = waits
    cursor = 0
    resolved: Set[str] = set()
    while cursor < len(ready):
        current = ready[cursor]
        cursor += 1
        resolved.add(current)
        for dep in dependents.get(current, ()):
            pending[dep] -= 1
            if pending[dep] == 0:
                ready.append(dep)
    stuck = {name for name, n in pending.items() if n > 0}
    visited: Set[str] = set()
    for start in sorted(stuck):
        if start in visited:
            continue
        cycle = _extract_cycle(start, by_name, stuck)
        visited.update(cycle)
        # The walk follows predecessors; reverse so arrows read as
        # signal flow (each gate drives the next).
        cycle = list(reversed(cycle))
        path = " -> ".join(cycle + [cycle[0]])
        yield Diagnostic(
            rule="SP106", severity=Severity.ERROR, gate=cycle[0],
            message=f"combinational cycle: {path}",
            data={"cycle": list(cycle)},
            suggestion="break the loop with a DFF or remove the feedback "
                       "arc")


def _extract_cycle(start: str, by_name: Dict[str, "Gate"],
                   stuck: Set[str]) -> List[str]:
    """Walk stuck-gate predecessors from ``start`` until a repeat, then
    return the repeated segment (a concrete combinational cycle)."""
    path: List[str] = []
    index: Dict[str, int] = {}
    current = start
    while current not in index:
        index[current] = len(path)
        path.append(current)
        current = next(src for src in by_name[current].inputs
                       if src in stuck)
    return path[index[current]:]


def _check_duplicate_outputs(netlist: "Netlist") -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    seen: Set[str] = set()
    for po in netlist.outputs:
        if po in seen:
            diagnostics.append(Diagnostic(
                rule="SP107", severity=Severity.WARNING, net=po,
                message=f"primary output {po} declared more than once",
                suggestion="declare each OUTPUT() once"))
        seen.add(po)
    return diagnostics


def liveness_diagnostics(netlist: "Netlist") -> List[Diagnostic]:
    """SP108 dead logic and SP109 dangling nets.

    Liveness is a fixpoint over backward reachability from the primary
    outputs: a DFF keeps its data cone alive only if the DFF itself is
    read somewhere live, so an entire dead sequential island is reported,
    not just its combinational fringe.
    """
    live: Set[str] = set()
    stack = [po for po in dict.fromkeys(netlist.outputs)]
    while stack:
        net = stack.pop()
        if net in live:
            continue
        live.add(net)
        gate = netlist.gates.get(net)
        if gate is not None:
            stack.extend(gate.inputs)
    diagnostics: List[Diagnostic] = []
    endpoints = set(netlist.endpoints)
    for gate in netlist.gates.values():
        if gate.name in live:
            continue
        kind = ("DFF" if gate.gate_type is GateType.DFF
                else gate.gate_type.value + " gate")
        diagnostics.append(Diagnostic(
            rule="SP108", severity=Severity.WARNING, gate=gate.name,
            message=f"dead logic: {kind} {gate.name} is unreachable from "
                    f"any primary output",
            suggestion="remove the gate or connect its cone to an output"))
    for net in netlist.nets:
        if netlist.fanouts(net) or net in endpoints:
            continue
        if net in netlist.gates and netlist.gates[net].gate_type \
                is GateType.DFF:
            what = f"DFF output {net}"
        elif net in netlist.gates:
            what = f"gate output {net}"
        else:
            what = f"primary input {net}"
        diagnostics.append(Diagnostic(
            rule="SP109", severity=Severity.WARNING, net=net,
            message=f"dangling net: {what} drives nothing and is not an "
                    f"endpoint",
            suggestion="remove the driver or route the net to a sink"))
    return diagnostics
