"""SP2xx engine-cost rules: predict runtime blowups before propagation.

SPSTA's per-gate cost is structural: a controlling-value gate with fan-in
``k`` contributes up to ``2^k`` Eq. 11 subset terms per transition
direction, and a parity gate enumerates ``4^k`` joint four-value
assignments.  Both are knowable from the netlist alone, so the linter
prices a run statically — today the only guard is
:func:`repro.core.spsta.validate_parity_fanins`, which fires inside
``run_spsta`` after the caller has already committed to the run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.lint.diagnostics import Diagnostic, Severity
from repro.logic.gates import gate_spec

if TYPE_CHECKING:
    from repro.lint.engine import LintConfig
    from repro.netlist.core import Netlist

#: Caps the reported per-gate term counts so the JSON stays finite even
#: for absurd fan-ins (4^1000 is a number, not a diagnostic).
_COUNT_CAP = 10 ** 15


def _capped_power(base: int, exponent: int) -> int:
    if exponent * base.bit_length() > 60:
        return _COUNT_CAP
    return min(base ** exponent, _COUNT_CAP)


def cost_diagnostics(netlist: "Netlist",
                     config: "LintConfig") -> List[Diagnostic]:
    """SP201 parity blowups, SP202 subset-table widths, SP203 estimates."""
    diagnostics: List[Diagnostic] = []
    subset_terms = 0
    parity_assignments = 0
    for gate in netlist.combinational_gates:
        spec = gate_spec(gate.gate_type)
        k = len(gate.inputs)
        if spec.is_parity:
            assignments = _capped_power(4, k)
            parity_assignments = min(parity_assignments + assignments,
                                     _COUNT_CAP)
            if k > config.max_parity_fanin:
                diagnostics.append(Diagnostic(
                    rule="SP201", severity=Severity.ERROR, gate=gate.name,
                    message=f"parity gate {gate.name} fan-in {k} exceeds "
                            f"the 4^k joint-enumeration limit "
                            f"{config.max_parity_fanin} "
                            f"({assignments:,} assignments); run_spsta "
                            f"will refuse it",
                    data={"fanin": k, "assignments": assignments,
                          "limit": config.max_parity_fanin},
                    suggestion="rewrite wide XOR/XNOR gates with "
                               "repro.netlist.transform.decompose_fanin("
                               "netlist, max_fanin=2) or raise "
                               "run_spsta(..., max_parity_fanin=...)"))
        else:
            terms = _capped_power(2, k)
            subset_terms = min(subset_terms + 2 * terms, _COUNT_CAP)
            if k > config.subset_warn_fanin:
                diagnostics.append(Diagnostic(
                    rule="SP202", severity=Severity.WARNING, gate=gate.name,
                    message=f"gate {gate.name} fan-in {k} yields up to "
                            f"{terms:,} Eq. 11 subset terms per direction "
                            f"(warn threshold: fan-in "
                            f"{config.subset_warn_fanin})",
                    data={"fanin": k, "subset_terms": terms,
                          "threshold": config.subset_warn_fanin},
                    suggestion="decompose wide gates with "
                               "repro.netlist.transform.decompose_fanin "
                               "to trade modelling granularity for "
                               "exponential runtime"))
    mc_cost = config.trials * len(netlist.combinational_gates)
    over_budget = (subset_terms > config.subset_term_budget
                   or mc_cost > config.mc_cost_budget)
    severity = Severity.WARNING if over_budget else Severity.INFO
    diagnostics.append(Diagnostic(
        rule="SP203", severity=severity,
        message=f"estimated engine cost: {subset_terms:,} Eq. 11 subset "
                f"terms, {parity_assignments:,} parity assignments, "
                f"{mc_cost:,} Monte Carlo gate evaluations at "
                f"{config.trials:,} trials"
                + (" — over budget" if over_budget else ""),
        data={"eq11_subset_terms": subset_terms,
              "parity_assignments": parity_assignments,
              "mc_trials": config.trials,
              "mc_gate_evaluations": mc_cost,
              "subset_term_budget": config.subset_term_budget,
              "mc_cost_budget": config.mc_cost_budget},
        suggestion=("lower --trials, shard the Monte Carlo run, or "
                    "decompose wide gates" if over_budget else None)))
    return diagnostics
