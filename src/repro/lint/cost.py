"""SP2xx engine-cost rules: predict runtime blowups before propagation.

SPSTA's per-gate cost is structural: a controlling-value gate with fan-in
``k`` contributes up to ``2^k`` Eq. 11 subset terms per transition
direction, and a parity gate enumerates ``4^k`` joint four-value
assignments.  Both are knowable from the netlist alone, so the linter
prices a run statically — today the only guard is
:func:`repro.core.spsta.validate_parity_fanins`, which fires inside
``run_spsta`` after the caller has already committed to the run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.lint.diagnostics import Diagnostic, Severity
from repro.logic.gates import gate_spec

if TYPE_CHECKING:
    from repro.lint.engine import LintConfig
    from repro.netlist.core import Netlist

#: Caps the reported per-gate term counts so the JSON stays finite even
#: for absurd fan-ins (4^1000 is a number, not a diagnostic).
_COUNT_CAP = 10 ** 15


def _capped_power(base: int, exponent: int) -> int:
    if exponent * base.bit_length() > 60:
        return _COUNT_CAP
    return min(base ** exponent, _COUNT_CAP)


def cost_diagnostics(netlist: "Netlist",
                     config: "LintConfig") -> List[Diagnostic]:
    """SP201 parity blowups, SP202 subset-table widths, SP203 estimates,
    SP204 scenario-sweep memory footprint."""
    diagnostics: List[Diagnostic] = []
    subset_terms = 0
    parity_assignments = 0
    for gate in netlist.combinational_gates:
        spec = gate_spec(gate.gate_type)
        k = len(gate.inputs)
        if spec.is_parity:
            assignments = _capped_power(4, k)
            parity_assignments = min(parity_assignments + assignments,
                                     _COUNT_CAP)
            if k > config.max_parity_fanin:
                diagnostics.append(Diagnostic(
                    rule="SP201", severity=Severity.ERROR, gate=gate.name,
                    message=f"parity gate {gate.name} fan-in {k} exceeds "
                            f"the 4^k joint-enumeration limit "
                            f"{config.max_parity_fanin} "
                            f"({assignments:,} assignments); run_spsta "
                            f"will refuse it",
                    data={"fanin": k, "assignments": assignments,
                          "limit": config.max_parity_fanin},
                    suggestion="rewrite wide XOR/XNOR gates with "
                               "repro.netlist.transform.decompose_fanin("
                               "netlist, max_fanin=2) or raise "
                               "run_spsta(..., max_parity_fanin=...)"))
        else:
            terms = _capped_power(2, k)
            subset_terms = min(subset_terms + 2 * terms, _COUNT_CAP)
            if k > config.subset_warn_fanin:
                diagnostics.append(Diagnostic(
                    rule="SP202", severity=Severity.WARNING, gate=gate.name,
                    message=f"gate {gate.name} fan-in {k} yields up to "
                            f"{terms:,} Eq. 11 subset terms per direction "
                            f"(warn threshold: fan-in "
                            f"{config.subset_warn_fanin})",
                    data={"fanin": k, "subset_terms": terms,
                          "threshold": config.subset_warn_fanin},
                    suggestion="decompose wide gates with "
                               "repro.netlist.transform.decompose_fanin "
                               "to trade modelling granularity for "
                               "exponential runtime"))
    # The analytic (SPSTA) cost repeats per scenario of a batched sweep:
    # subset DP, parity enumeration, convolve and mix all scale ~linearly
    # with N even though compile/launch/weight tables are shared.
    n_scenarios = max(1, config.n_scenarios)
    swept_subset_terms = min(subset_terms * n_scenarios, _COUNT_CAP)
    swept_parity = min(parity_assignments * n_scenarios, _COUNT_CAP)
    mc_cost = config.trials * len(netlist.combinational_gates)
    over_budget = (swept_subset_terms > config.subset_term_budget
                   or mc_cost > config.mc_cost_budget)
    severity = Severity.WARNING if over_budget else Severity.INFO
    scenario_note = (f" across {n_scenarios} scenarios"
                     if n_scenarios > 1 else "")
    diagnostics.append(Diagnostic(
        rule="SP203", severity=severity,
        message=f"estimated engine cost: {swept_subset_terms:,} Eq. 11 "
                f"subset terms, {swept_parity:,} parity "
                f"assignments{scenario_note}, {mc_cost:,} Monte Carlo "
                f"gate evaluations at {config.trials:,} trials"
                + (" — over budget" if over_budget else ""),
        data={"eq11_subset_terms": swept_subset_terms,
              "parity_assignments": swept_parity,
              "n_scenarios": n_scenarios,
              "subset_terms_per_scenario": subset_terms,
              "mc_trials": config.trials,
              "mc_gate_evaluations": mc_cost,
              "subset_term_budget": config.subset_term_budget,
              "mc_cost_budget": config.mc_cost_budget},
        suggestion=("lower --trials, shard the Monte Carlo run, reduce "
                    "the scenario count, or decompose wide gates"
                    if over_budget else None)))
    diagnostics.extend(_scenario_memory(netlist, config, n_scenarios))
    return diagnostics


def _scenario_memory(netlist: "Netlist", config: "LintConfig",
                     n_scenarios: int) -> List[Diagnostic]:
    """SP204: a grid sweep's stacked-block footprint, priced up front.

    ``run_scenario_batch`` holds one ``(n_scenarios, bins)`` float64
    block per occurring net direction; with ``keep="all"`` every net
    stays live, so the peak is ~``n_scenarios × bins × 2·nets × 8``
    bytes.  Needs a grid to know ``bins``; silent otherwise, and for a
    single scenario under budget (plain runs never hit this).
    """
    grid = config.grid
    if grid is None:
        return []
    bins = int(getattr(grid, "n"))
    n_nets = len(netlist.nets)
    footprint = n_scenarios * bins * 2 * n_nets * 8
    over = footprint > config.scenario_memory_budget
    if not over and n_scenarios <= 1:
        return []
    return [Diagnostic(
        rule="SP204",
        severity=Severity.WARNING if over else Severity.INFO,
        message=f"scenario sweep holds ~{footprint / 1024 ** 2:,.0f} MiB "
                f"of grid blocks ({n_scenarios} scenarios x {bins} bins "
                f"x {n_nets} nets x 2 directions)"
                + (f" — exceeds the "
                   f"{config.scenario_memory_budget / 1024 ** 2:,.0f} MiB "
                   f"budget" if over else ""),
        data={"n_scenarios": n_scenarios, "bins": bins, "nets": n_nets,
              "footprint_bytes": footprint,
              "budget_bytes": config.scenario_memory_budget},
        suggestion=("run_scenario_batch(..., keep='endpoints') frees "
                    "interior blocks after their last fan-out level; "
                    "otherwise coarsen the grid or split the scenario "
                    "set" if over else None))]
