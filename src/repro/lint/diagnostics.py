"""Structured diagnostics shared by the linter and the netlist validator.

A :class:`Diagnostic` is one finding of the static analyzer: a stable rule
identifier (``SP1xx`` structural, ``SP2xx`` engine cost, ``SP3xx`` accuracy
— see ``docs/linting.md`` for the catalog), a severity, the net or gate it
anchors to, a human-readable message, an optional suggested fix, and a
``data`` mapping of machine-readable details for the JSON report.

:class:`NetlistError` is the construction-time face of the same records:
``Netlist.__init__`` validates through the linter's structural rules and
raises it carrying the error diagnostics, so a malformed netlist produces
the same rule IDs and locations whether it is rejected by the parser or
reported by ``spsta lint``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import enum
from typing import Any, Mapping, Optional, Sequence, Tuple


class Severity(enum.Enum):
    """Diagnostic severity, ordered ``INFO < WARNING < ERROR``."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]

    def __lt__(self, other: "Severity") -> bool:
        return self.rank < other.rank

    def __le__(self, other: "Severity") -> bool:
        return self.rank <= other.rank

    @classmethod
    def parse(cls, label: str) -> "Severity":
        try:
            return cls(label.lower())
        except ValueError:
            raise ValueError(
                f"unknown severity {label!r} "
                f"(use error, warning, or info)") from None


_SEVERITY_RANK = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    ``net`` and ``gate`` locate the finding in the circuit (either, both,
    or neither — a circuit-wide finding such as an engine-cost estimate has
    no location).  ``data`` holds machine-readable details (cycle paths,
    cost estimates, correlation depths) that the JSON report preserves.
    """

    rule: str
    severity: Severity
    message: str
    net: Optional[str] = None
    gate: Optional[str] = None
    suggestion: Optional[str] = None
    data: Mapping[str, Any] = field(default_factory=dict)

    @property
    def location(self) -> str:
        """Location string: ``net:<n>``, ``gate:<g>``, or ``circuit``."""
        if self.gate is not None:
            return f"gate:{self.gate}"
        if self.net is not None:
            return f"net:{self.net}"
        return "circuit"

    @property
    def key(self) -> str:
        """Baseline-suppression key: rule plus location."""
        return f"{self.rule}:{self.location}"

    def render(self) -> str:
        text = (f"{self.rule} {self.severity.value} [{self.location}] "
                f"{self.message}")
        if self.suggestion:
            text += f"\n    fix: {self.suggestion}"
        return text

    def to_dict(self) -> Mapping[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "net": self.net,
            "gate": self.gate,
            "location": self.location,
            "message": self.message,
            "suggestion": self.suggestion,
            "data": dict(self.data),
        }


def max_severity(diagnostics: Sequence[Diagnostic]) -> Optional[Severity]:
    """Highest severity present, or None for an empty sequence."""
    if not diagnostics:
        return None
    return max((d.severity for d in diagnostics), key=lambda s: s.rank)


class NetlistError(ValueError):
    """A netlist failed structural validation.

    Subclasses :class:`ValueError` so long-standing ``except ValueError``
    call sites keep working; carries the structured :class:`Diagnostic`
    records so newer callers (the linter, the CLI) can report rule IDs and
    locations instead of a bare message.
    """

    def __init__(self, circuit: str,
                 diagnostics: Sequence[Diagnostic]) -> None:
        self.circuit = circuit
        self.diagnostics: Tuple[Diagnostic, ...] = tuple(diagnostics)
        summary = "; ".join(d.message for d in self.diagnostics[:4])
        if len(self.diagnostics) > 4:
            summary += f"; ... ({len(self.diagnostics)} findings)"
        super().__init__(f"invalid netlist {circuit!r}: {summary}")
