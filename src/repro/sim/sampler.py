"""Launch-point sampling for the Monte Carlo engines.

Each launch point (primary input or DFF output) independently draws a
four-value symbol from its :class:`~repro.core.inputs.Prob4` and, when the
symbol is a transition, an arrival time from the corresponding Gaussian —
exactly the paper's experimental setup ("we assign the four logic values and
signal arrival times ... to the primary inputs and the flip-flop outputs",
Sec. 4).  Both the vectorized and the scalar simulators consume the same
samples, which is what makes their trial-for-trial equivalence testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Union

import numpy as np

from repro.core.inputs import InputStats
from repro.netlist.core import Netlist


@dataclass
class LaunchSample:
    """Per-trial waveforms of one launch point.

    ``init``/``final`` are boolean arrays over trials; ``time`` holds the
    transition arrival time where ``init != final`` and NaN elsewhere.
    """

    init: np.ndarray
    final: np.ndarray
    time: np.ndarray

    @property
    def n_trials(self) -> int:
        return self.init.shape[0]


def sample_launch_points(
        netlist: Netlist,
        stats: Union[InputStats, Mapping[str, InputStats]],
        n_trials: int,
        rng: np.random.Generator) -> Dict[str, LaunchSample]:
    """Draw independent four-value samples for every launch point."""
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    samples: Dict[str, LaunchSample] = {}
    for net in netlist.launch_points:
        s = stats if isinstance(stats, InputStats) else stats[net]
        p = s.prob4
        # Categories: 0 -> ZERO, 1 -> ONE, 2 -> RISE, 3 -> FALL.
        cats = rng.choice(
            4, size=n_trials,
            p=[p.p_zero, p.p_one, p.p_rise, p.p_fall])
        init = (cats == 1) | (cats == 3)
        final = (cats == 1) | (cats == 2)
        time = np.full(n_trials, np.nan)
        rise_mask = cats == 2
        fall_mask = cats == 3
        n_rise = int(rise_mask.sum())
        n_fall = int(fall_mask.sum())
        if n_rise:
            time[rise_mask] = rng.normal(
                s.rise_arrival.mu, s.rise_arrival.sigma, size=n_rise)
        if n_fall:
            time[fall_mask] = rng.normal(
                s.fall_arrival.mu, s.fall_arrival.sigma, size=n_fall)
        samples[net] = LaunchSample(init=init, final=final, time=time)
    return samples
