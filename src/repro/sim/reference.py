"""Scalar event-stepping simulator — the semantic ground truth.

For one trial, a gate's inputs are four-value symbols with transition times.
The output symbol follows from initial/final evaluation (glitch-filtered,
paper Table 1), and the output arrival time is found by *replaying* the
input transitions in time order and recording the last instant the gate
function's value changes.  This definition is exact for every gate type —
monotone (AND/OR cores, where it reduces to MIN/MAX) and parity alike — and
is the oracle the vectorized rules in :mod:`repro.sim.montecarlo` are tested
against.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.delay import DelayModel, UnitDelay
from repro.logic.fourvalue import Logic4, final_bit, from_bits, init_bit
from repro.logic.gates import GateType, gate_spec
from repro.netlist.core import Netlist

#: One net's state in a trial: (symbol, arrival time or None).
NetState = Tuple[Logic4, Optional[float]]


def event_gate_output(gate_type: GateType,
                      inputs: Sequence[NetState],
                      delay: float) -> NetState:
    """Replay input transitions in time order; return the output state.

    The output arrival is the time of the *last* change of the gate
    function's value, plus the gate delay.  If initial and final output
    values coincide, any activity is a filtered glitch and the output
    carries no transition.
    """
    spec = gate_spec(gate_type)
    values = [v for v, _ in inputs]
    spec.validate_arity(len(values))
    bits: List[int] = [init_bit(v) for v in values]
    out_init = spec.eval_bits(bits)
    out_final = spec.eval_bits([final_bit(v) for v in values])
    symbol = from_bits(out_init, out_final)
    if out_init == out_final:
        return symbol, None
    events = sorted(
        (t, i) for i, (v, t) in enumerate(inputs)
        if init_bit(v) != final_bit(v))
    if not events:
        raise ValueError("output transitions but no input does")
    current = out_init
    last_change = events[0][0]
    for t, i in events:
        bits[i] = 1 - bits[i]
        new = spec.eval_bits(bits)
        if new != current:
            last_change = t
            current = new
    assert current == out_final
    return symbol, last_change + delay


def simulate_trial(netlist: Netlist,
                   launch_states: Mapping[str, NetState],
                   delay_model: DelayModel = UnitDelay()
                   ) -> Dict[str, NetState]:
    """Propagate one trial's launch states through the whole netlist."""
    states: Dict[str, NetState] = dict(launch_states)
    for net in netlist.launch_points:
        if net not in states:
            raise ValueError(f"launch point {net} missing from trial states")
    mis_aware = hasattr(delay_model, "delay_mis")
    for gate in netlist.combinational_gates:
        operands = [states[src] for src in gate.inputs]
        if mis_aware:
            n_switching = sum(
                1 for v, _ in operands if init_bit(v) != final_bit(v))
            delay = delay_model.delay_mis(gate, max(n_switching, 1)).mu
        else:
            delay = delay_model.delay(gate).mu
        states[gate.name] = event_gate_output(gate.gate_type, operands, delay)
    return states
