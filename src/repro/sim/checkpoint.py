"""Crash-safe checkpointing for the sharded Monte Carlo engines.

A checkpoint directory holds one pickle per completed shard (the shard's
per-net :class:`~repro.sim.accumulator.NetAccumulator` dict plus its
:class:`~repro.sim.parallel.ShardReport`) and a ``manifest.json`` that
names the run they belong to.  Every write is atomic (write to a
temporary file in the same directory, flush, ``os.replace``), so a run
killed mid-write can never leave a half-written shard behind the
manifest's back.

The manifest key pins everything the merged statistics depend on — root
seed, circuit structure, input statistics, delay model, trial budget, and
shard plan — so a resume against the wrong run is *rejected*
(:class:`CheckpointMismatchError`), never silently merged.  Shard
payloads are checksummed (SHA-256, recorded in the manifest); externally
corrupted data raises :class:`CheckpointCorruptError`.

Because each shard's trial stream depends only on (root seed, shard
index) and the merge is a fixed-order left fold, a run resumed from any
subset of checkpointed shards is bit-identical to an uninterrupted run —
the differential guarantee ``tests/test_faults.py`` enforces.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, is_dataclass
import hashlib
import json
import os
from pathlib import Path
import pickle
from typing import Dict, Mapping, Optional, Tuple, Union

import numpy as np

from repro.core.delay import DelayModel
from repro.core.inputs import InputStats
from repro.netlist.core import Netlist
from repro.sim.accumulator import NetAccumulator
from repro.sim.faults import maybe_exit_after_persist
from repro.sim.parallel import ShardReport

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = "spsta-mc-checkpoint"
MANIFEST_VERSION = 1

#: One loaded shard: its accumulator dict and its execution report.
ShardCheckpoint = Tuple[Dict[str, NetAccumulator], ShardReport]


class CheckpointError(RuntimeError):
    """Base class for checkpoint-store failures."""


class CheckpointMismatchError(CheckpointError):
    """The directory holds checkpoints of a *different* run (seed,
    circuit, configuration, or shard plan differ)."""


class CheckpointCorruptError(CheckpointError):
    """A manifest or shard payload failed validation (bad JSON, checksum
    mismatch, unpicklable payload)."""


def circuit_fingerprint(netlist: Netlist) -> str:
    """SHA-256 over the netlist's canonical structure.

    Covers name, port lists, and every gate's (name, type, inputs) in
    sorted order — any structural edit changes the fingerprint, while
    re-parsing the same circuit reproduces it.
    """
    h = hashlib.sha256()
    h.update(repr((netlist.name, netlist.inputs, netlist.outputs)).encode())
    for name in sorted(netlist.gates):
        gate = netlist.gates[name]
        h.update(repr((gate.name, gate.gate_type.name,
                       gate.inputs)).encode())
    return h.hexdigest()


def canonical_form(value: object) -> object:
    """A nested, order-independent structure whose repr is canonical.

    ``repr(model)`` is *not* a safe fingerprint basis: a mapping-bearing
    model (``FrozenDelays``, ``SizedNormalDelay``, per-launch-point stats
    dicts) reprs its mapping in **insertion order**, so two equal models
    built from differently-ordered dicts repr — and therefore hash —
    differently.  This function recurses instead:

    - objects exposing ``fingerprint_payload()`` contribute their class
      name plus the canonical form of that payload (the hook for
      non-dataclass models such as delay-override wrappers);
    - dataclass instances contribute their class name plus every field
      (by :func:`dataclasses.fields` order) canonicalized recursively;
    - ``Mapping`` values contribute their items in **sorted-key order**;
    - sequences recurse elementwise; sets are sorted;
    - numpy scalars collapse to their Python values, numpy arrays to
      (shape, dtype, content digest);
    - scalars pass through, anything else falls back to ``repr``.

    Equal values therefore canonicalize equally no matter how their
    mappings were built, and the form is stable across processes (no
    ids, no hash randomization — string keys sort lexically).
    """
    payload_fn = getattr(value, "fingerprint_payload", None)
    if callable(payload_fn):
        return (type(value).__qualname__, canonical_form(payload_fn()))
    if is_dataclass(value) and not isinstance(value, type):
        return (type(value).__qualname__,
                tuple((f.name, canonical_form(getattr(value, f.name)))
                      for f in fields(value)))
    if isinstance(value, Mapping):
        return ("mapping",
                tuple(sorted((repr(key), canonical_form(item))
                             for key, item in value.items())))
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted(repr(canonical_form(item))
                                    for item in value)))
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(canonical_form(item) for item in value))
    if isinstance(value, np.ndarray):
        data = np.ascontiguousarray(value)
        return ("ndarray", value.shape, data.dtype.str,
                hashlib.sha256(data.tobytes()).hexdigest())
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, (str, bytes, int, float, bool, type(None))):
        return value
    return repr(value)


def value_fingerprint(value: object) -> str:
    """SHA-256 over :func:`canonical_form` — the generic fingerprint."""
    return hashlib.sha256(repr(canonical_form(value)).encode()).hexdigest()


def stats_fingerprint(
        stats: Union[InputStats, Mapping[str, InputStats]]) -> str:
    """SHA-256 over the launch-point statistics.

    Canonical under mapping-key reordering: a per-launch-point dict
    fingerprints by sorted net name, and each :class:`InputStats` by its
    dataclass fields — equal statistics always fingerprint equally.
    """
    return value_fingerprint(stats)


def delay_fingerprint(delay_model: DelayModel) -> str:
    """SHA-256 over the delay model's canonical form.

    Dataclass fields are hashed recursively with ``Mapping`` values in
    sorted-key order, so mapping-bearing models
    (:class:`~repro.core.nldm.FrozenDelays`,
    :class:`~repro.opt.spsta_opt.SizedNormalDelay`, ...) built from
    differently-ordered dicts — which compare equal — fingerprint
    equally, and semantically identical checkpoint resumes are accepted.
    """
    return value_fingerprint(delay_model)


def seed_fingerprint(seq: Optional[np.random.SeedSequence]) -> str:
    """Canonical identity of the root seed stream."""
    if seq is None:
        return "none"
    return repr((seq.entropy, tuple(seq.spawn_key)))


@dataclass(frozen=True)
class CheckpointKey:
    """Everything the merged statistics are a pure function of."""

    circuit: str
    circuit_hash: str
    root_seed: str
    n_trials: int
    shards: int
    stats_hash: str
    delay_hash: str

    @classmethod
    def build(cls, netlist: Netlist,
              stats: Union[InputStats, Mapping[str, InputStats]],
              delay_model: DelayModel,
              root_seed: Optional[np.random.SeedSequence],
              n_trials: int, shards: int) -> "CheckpointKey":
        return cls(circuit=netlist.name,
                   circuit_hash=circuit_fingerprint(netlist),
                   root_seed=seed_fingerprint(root_seed),
                   n_trials=n_trials,
                   shards=shards,
                   stats_hash=stats_fingerprint(stats),
                   delay_hash=delay_fingerprint(delay_model))


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write-temp-then-rename so readers never observe a partial file."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class CheckpointStore:
    """One run's checkpoint directory (see module docstring).

    All writes happen in the *parent* process (via the executor's
    ``on_result`` hook), so the store needs no cross-process locking; the
    manifest is rewritten atomically after every shard.
    """

    def __init__(self, directory: Union[str, Path],
                 key: CheckpointKey) -> None:
        self.directory = Path(directory)
        self.key = key
        self._shards: Dict[int, Dict[str, object]] = {}

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    def shard_path(self, index: int) -> Path:
        return self.directory / f"shard_{index:05d}.pkl"

    # -- lifecycle ----------------------------------------------------------

    def open(self, resume: bool) -> Dict[int, ShardCheckpoint]:
        """Prepare the directory; return already-completed shards.

        Without ``resume``, a matching manifest is reset (the run starts
        from shard zero and overwrites as it goes); a manifest for a
        *different* run always raises :class:`CheckpointMismatchError` —
        pick a fresh directory rather than clobbering someone else's
        checkpoints.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        if not self.manifest_path.exists():
            self._shards = {}
            self._write_manifest()
            return {}
        manifest = self._read_manifest()
        self._check_key(manifest)
        if not resume:
            self._shards = {}
            self._write_manifest()
            return {}
        self._shards = {int(index): dict(entry)
                        for index, entry in manifest["shards"].items()}
        return self._load_shards()

    def save_shard(self, index: int,
                   accumulators: Dict[str, NetAccumulator],
                   report: ShardReport) -> None:
        """Persist one completed shard atomically and update the manifest.

        The payload lands (rename) before the manifest names it, so a kill
        between the two writes only costs the not-yet-listed shard."""
        payload = pickle.dumps((accumulators, report),
                               protocol=pickle.HIGHEST_PROTOCOL)
        path = self.shard_path(index)
        _atomic_write_bytes(path, payload)
        self._shards[index] = {
            "file": path.name,
            "n_trials": report.n_trials,
            "sha256": hashlib.sha256(payload).hexdigest(),
        }
        self._write_manifest()
        maybe_exit_after_persist(len(self._shards))

    @property
    def completed_indices(self) -> Tuple[int, ...]:
        return tuple(sorted(self._shards))

    # -- internals ----------------------------------------------------------

    def _read_manifest(self) -> Dict[str, object]:
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except (json.JSONDecodeError, OSError) as exc:
            raise CheckpointCorruptError(
                f"unreadable checkpoint manifest {self.manifest_path}: "
                f"{exc}") from exc
        if (not isinstance(manifest, dict)
                or manifest.get("format") != MANIFEST_FORMAT
                or not isinstance(manifest.get("shards"), dict)
                or not isinstance(manifest.get("key"), dict)):
            raise CheckpointCorruptError(
                f"{self.manifest_path} is not a {MANIFEST_FORMAT} manifest")
        return manifest

    def _check_key(self, manifest: Dict[str, object]) -> None:
        recorded = manifest["key"]
        expected = asdict(self.key)
        assert isinstance(recorded, dict)
        if recorded == expected:
            return
        diffs = sorted(set(expected) | set(recorded))
        lines = [f"  {name}: checkpoint has {recorded.get(name)!r}, "
                 f"this run has {expected.get(name)!r}"
                 for name in diffs
                 if recorded.get(name) != expected.get(name)]
        raise CheckpointMismatchError(
            "checkpoint directory belongs to a different run — refusing "
            "to merge stale shards:\n" + "\n".join(lines))

    def _write_manifest(self) -> None:
        manifest = {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "key": asdict(self.key),
            "shards": {str(index): self._shards[index]
                       for index in sorted(self._shards)},
        }
        _atomic_write_bytes(self.manifest_path,
                            (json.dumps(manifest, indent=2) + "\n").encode())

    def _load_shards(self) -> Dict[int, ShardCheckpoint]:
        loaded: Dict[int, ShardCheckpoint] = {}
        for index, entry in self._shards.items():
            path = self.directory / str(entry["file"])
            try:
                payload = path.read_bytes()
            except OSError as exc:
                raise CheckpointCorruptError(
                    f"shard {index} payload missing or unreadable "
                    f"({path}): {exc}") from exc
            digest = hashlib.sha256(payload).hexdigest()
            if digest != entry["sha256"]:
                raise CheckpointCorruptError(
                    f"shard {index} payload {path} fails its checksum "
                    f"(manifest {entry['sha256']}, file {digest}) — "
                    f"the checkpoint is corrupt; delete the directory "
                    f"and re-run")
            try:
                accumulators, report = pickle.loads(payload)
            except Exception as exc:  # noqa: BLE001 - any unpickle failure
                raise CheckpointCorruptError(
                    f"shard {index} payload {path} does not unpickle: "
                    f"{exc}") from exc
            if (not isinstance(accumulators, dict)
                    or not isinstance(report, ShardReport)
                    or report.n_trials != entry["n_trials"]):
                raise CheckpointCorruptError(
                    f"shard {index} payload {path} has unexpected "
                    f"contents")
            loaded[index] = (accumulators, report)
        return loaded
