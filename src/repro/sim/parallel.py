"""Shard scheduling for the Monte Carlo engines.

Splits an ``n_trials`` budget into shards, gives every shard an
independent, reproducible random stream, and fans the shard workloads out
over a ``multiprocessing`` pool (with a serial fallback when the pool is
unavailable or not worth its start-up cost).

Seeding discipline: shard streams come from
``numpy.random.SeedSequence.spawn`` on the caller's generator, so the
trial stream of shard *i* depends only on (root seed, shard index) — never
on the worker that happens to execute it.  Combined with the fixed merge
order in :func:`repro.sim.accumulator.merge_accumulators`, the same root
seed yields bit-identical merged statistics at any worker count.

Fault tolerance (see ``docs/robustness.md``): a :class:`RetryPolicy`
re-runs shards that fail with *transient* exceptions (exponential
backoff, bounded attempts); :func:`run_shards_resilient` additionally
supports a wall-clock ``deadline`` after which no new shards are
dispatched, and an ``on_result`` callback invoked the moment each shard
completes — the hook the checkpoint layer uses to persist progress
*before* a later shard can crash the run.  Because a shard's result is a
pure function of its plan, retries and resumes cannot change the merged
statistics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
import logging
import multiprocessing
import multiprocessing.pool
import pickle
import time
from typing import (
    Callable,
    Dict,
    Generic,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    TypeVar,
)

import numpy as np

logger = logging.getLogger(__name__)

T = TypeVar("T")
R = TypeVar("R")

#: How long one poll of the in-flight pool results may block (seconds).
_POLL_SECONDS = 0.01


class TransientShardError(RuntimeError):
    """A shard failure worth retrying (infrastructure hiccup, injected
    fault, ...).  Raise it from a shard worker — or list other exception
    classes in :attr:`RetryPolicy.transient` — to opt into retries."""


@dataclass(frozen=True)
class RetryPolicy:
    """Per-shard retry discipline for transient failures.

    A shard attempt that raises one of the ``transient`` exception classes
    is re-run up to ``max_attempts`` times in total, sleeping
    ``backoff_base * backoff_factor ** (attempt - 1)`` seconds between
    attempts.  Non-transient exceptions and exhausted budgets surface as
    :class:`ShardFailure` with the full attempt log.  ``sleep`` is
    injectable so tests can retry without waiting.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    transient: Tuple[Type[BaseException], ...] = (TransientShardError,
                                                  OSError, MemoryError)
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0.0:
            raise ValueError(
                f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}")

    def is_transient(self, error: BaseException) -> bool:
        return isinstance(error, self.transient)

    def backoff(self, failed_attempts: int) -> float:
        """Sleep before attempt ``failed_attempts + 1`` (1-based)."""
        return (self.backoff_base
                * self.backoff_factor ** (failed_attempts - 1))


class ShardFailure(RuntimeError):
    """A shard kept failing: the index, attempt count, and per-attempt
    error log (reprs), so the operator knows exactly what to re-run."""

    def __init__(self, index: int, attempts: int,
                 attempt_errors: Sequence[str]) -> None:
        self.index = index
        self.attempts = attempts
        self.attempt_errors: Tuple[str, ...] = tuple(attempt_errors)
        log = "; ".join(f"attempt {i + 1}: {e}"
                        for i, e in enumerate(self.attempt_errors))
        super().__init__(
            f"shard {index} failed after {attempts} attempt(s): {log}")


@dataclass(frozen=True)
class ShardPlan:
    """One shard's slice of the trial budget.

    ``offset`` is the first global trial index (used to slice shared launch
    samples); ``seed`` is the shard's spawned SeedSequence, or None for a
    single-shard run that borrows the caller's generator directly.
    """

    index: int
    n_trials: int
    offset: int
    seed: Optional[np.random.SeedSequence]


@dataclass(frozen=True)
class ShardReport:
    """Observability counters of one executed shard."""

    index: int
    n_trials: int
    seconds: float
    peak_wave_bytes: int
    attempts: int = 1

    def format(self) -> str:
        retries = (f", {self.attempts} attempts" if self.attempts > 1
                   else "")
        return (f"shard {self.index}: {self.n_trials} trials, "
                f"{self.seconds * 1e3:.1f} ms, "
                f"peak waves {self.peak_wave_bytes / 1024:.0f} KiB{retries}")


def seed_sequence_of(rng: np.random.Generator) -> np.random.SeedSequence:
    """The SeedSequence backing ``rng`` (every ``default_rng`` has one).

    Side effect on the fallback path only: an exotic bit generator without
    a stored SeedSequence derives one from its own stream, which consumes
    one ``integers`` draw and advances the caller's generator — the same
    caveat as :meth:`repro.stats.mixture.GaussianMixture.sample`.
    """
    seed_seq = getattr(rng.bit_generator, "seed_seq", None)
    if isinstance(seed_seq, np.random.SeedSequence):
        return seed_seq
    # Exotic bit generators without a stored SeedSequence: derive one
    # deterministically from the generator's own stream.
    return np.random.SeedSequence(int(rng.integers(0, 2 ** 63)))


def plan_shards(n_trials: int, shards: int,
                rng: np.random.Generator) -> List[ShardPlan]:
    """Split ``n_trials`` into ``shards`` near-equal chunks.

    The remainder goes to the leading shards so every shard size differs by
    at most one trial.  With a single shard no child stream is spawned: the
    caller's generator is used as-is, keeping one-shard streaming runs on
    the same draw sequence as the wave-retaining engine.
    """
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards > n_trials:
        shards = n_trials
    if shards == 1:
        return [ShardPlan(index=0, n_trials=n_trials, offset=0, seed=None)]
    base, extra = divmod(n_trials, shards)
    seeds = seed_sequence_of(rng).spawn(shards)
    plans: List[ShardPlan] = []
    offset = 0
    for i in range(shards):
        size = base + (1 if i < extra else 0)
        plans.append(ShardPlan(index=i, n_trials=size, offset=offset,
                               seed=seeds[i]))
        offset += size
    return plans


@dataclass
class _ShardOutcome:
    """What came back from one pool-side shard call: a value or the final
    exception (never both), plus the attempt accounting."""

    value: object = None
    error: Optional[BaseException] = None
    attempts: int = 1
    attempt_errors: Tuple[str, ...] = ()


class _ShardCall:
    """Pool-side wrapper that captures worker exceptions as outcomes and
    runs the retry loop *inside* the worker process.

    With worker failures carried back as data, any exception that escapes
    the pool round trip itself is pool/serialization infrastructure
    (unpicklable worker, payload, or result) by construction — the
    discriminator that lets the executors fall back serially on
    infrastructure failures while re-raising real worker bugs.  Running
    retries pool-side keeps the attempt counter coherent (one process owns
    the whole attempt sequence) and leaves the parent free to collect
    other shards meanwhile.
    """

    __slots__ = ("worker", "retry")

    def __init__(self, worker: Callable[[T], R],
                 retry: Optional[RetryPolicy] = None) -> None:
        self.worker = worker
        self.retry = retry

    def __call__(self, payload: T) -> _ShardOutcome:
        attempt_errors: List[str] = []
        attempts = 0
        while True:
            attempts += 1
            try:
                return _ShardOutcome(value=self.worker(payload),
                                     attempts=attempts,
                                     attempt_errors=tuple(attempt_errors))
            except Exception as exc:  # noqa: BLE001 - re-raised in parent
                attempt_errors.append(repr(exc))
                retry = self.retry
                if (retry is None or not retry.is_transient(exc)
                        or attempts >= retry.max_attempts):
                    return _ShardOutcome(error=exc, attempts=attempts,
                                         attempt_errors=tuple(attempt_errors))
                retry.sleep(retry.backoff(attempts))


@dataclass
class ShardRun(Generic[R]):
    """Outcome of a resilient shard sweep.

    ``results``/``attempts`` are keyed by *payload position*; ``pending``
    lists positions never completed because the deadline expired before
    they could run (or finish).  Without a deadline, ``results`` covers
    every payload or the sweep raised.
    """

    results: Dict[int, R] = field(default_factory=dict)
    attempts: Dict[int, int] = field(default_factory=dict)
    pending: Tuple[int, ...] = ()
    deadline_expired: bool = False

    @property
    def completed(self) -> Tuple[int, ...]:
        return tuple(sorted(self.results))

    def ordered_results(self) -> List[R]:
        """Completed results in payload order."""
        return [self.results[i] for i in self.completed]


class _PoolRoundTripError(Exception):
    """Internal: the pool could not ship the workload (pickling)."""

    def __init__(self, cause: BaseException) -> None:
        super().__init__(str(cause))
        self.cause = cause


def _raise_outcome(index: int, outcome: _ShardOutcome,
                   retry: Optional[RetryPolicy]) -> None:
    """Re-raise a failed outcome: the original exception when no retry
    policy was in force (legacy contract), a :class:`ShardFailure` with
    the attempt log when retries were exhausted or the error was
    permanent."""
    assert outcome.error is not None
    if retry is None:
        raise outcome.error
    raise ShardFailure(index, outcome.attempts,
                       outcome.attempt_errors) from outcome.error


def _run_serial(call: "_ShardCall", payloads: Sequence[T],
                run: ShardRun, deadline_at: Optional[float],
                retry: Optional[RetryPolicy],
                on_result: Optional[Callable[[int, R, int], None]],
                always_run_first: bool) -> None:
    """Serial sweep of every payload position not yet in ``run.results``.

    The deadline is checked *between* shards (an in-process shard cannot
    be preempted); with ``always_run_first`` and no result collected yet,
    the first pending shard runs even on an expired budget so a too-tight
    deadline still yields a usable estimate.
    """
    pending: List[int] = []
    for i, payload in enumerate(payloads):
        if i in run.results:
            continue
        expired = (deadline_at is not None
                   and time.monotonic() >= deadline_at)
        if expired and not (always_run_first and not run.results):
            run.deadline_expired = True
            pending.append(i)
            continue
        outcome = call(payload)
        if outcome.error is not None:
            _raise_outcome(i, outcome, retry)
        run.results[i] = outcome.value
        run.attempts[i] = outcome.attempts
        if on_result is not None:
            on_result(i, outcome.value, outcome.attempts)
    run.pending = tuple(pending)


def _run_pool(call: "_ShardCall", payloads: Sequence[T],
              pool: multiprocessing.pool.Pool, pool_size: int,
              run: ShardRun, deadline_at: Optional[float],
              retry: Optional[RetryPolicy],
              on_result: Optional[Callable[[int, R, int], None]]) -> None:
    """Pool sweep: keep up to ``pool_size`` shards in flight, collect each
    as it lands, stop dispatching once the deadline expires.

    In-flight shards are *abandoned* at the deadline (the caller
    terminates the pool), which is what makes a hung shard survivable:
    with ``workers > 1`` a hang costs its shard, not the run.
    """
    queue = deque(i for i in range(len(payloads)) if i not in run.results)
    inflight: Dict[int, multiprocessing.pool.AsyncResult] = {}
    while queue or inflight:
        expired = (deadline_at is not None
                   and time.monotonic() >= deadline_at)
        if expired:
            run.deadline_expired = True
            run.pending = tuple(sorted(list(queue) + list(inflight)))
            return
        while queue and len(inflight) < pool_size:
            i = queue.popleft()
            inflight[i] = pool.apply_async(call, (payloads[i],))
        next(iter(inflight.values())).wait(_POLL_SECONDS)
        ready = [i for i, r in inflight.items() if r.ready()]
        for i in ready:
            try:
                outcome = inflight.pop(i).get()
            except (pickle.PicklingError, TypeError, AttributeError,
                    multiprocessing.pool.MaybeEncodingError) as exc:
                # Worker exceptions were captured pool-side, so reaching
                # here means the workload never made the round trip.
                raise _PoolRoundTripError(exc) from exc
            if outcome.error is not None:
                _raise_outcome(i, outcome, retry)
            run.results[i] = outcome.value
            run.attempts[i] = outcome.attempts
            if on_result is not None:
                on_result(i, outcome.value, outcome.attempts)


def run_shards_resilient(
        worker: Callable[[T], R], payloads: Sequence[T],
        workers: int = 1,
        retry: Optional[RetryPolicy] = None,
        deadline: Optional[float] = None,
        on_result: Optional[Callable[[int, R, int], None]] = None,
        always_run_first: bool = False) -> ShardRun:
    """Map ``worker`` over ``payloads`` with fault tolerance.

    - ``retry``: re-run transient per-shard failures per the policy;
      exhausted budgets raise :class:`ShardFailure` (without a policy the
      first worker exception propagates unchanged).
    - ``deadline``: wall-clock seconds from now; once expired, no new
      shard is dispatched and the sweep returns the completed subset with
      ``deadline_expired`` set and the rest in ``pending``.  On the
      serial path the budget is checked between shards; on the pool path
      in-flight shards are abandoned (the pool is terminated), so even a
      hung shard cannot stall the run past the budget.
    - ``on_result(position, result, attempts)`` fires in the parent the
      moment each shard completes — the crash-safety hook: persist there
      and a later failure cannot lose earlier work.
    - ``always_run_first``: run the first pending shard even on an
      already-expired budget (serial path only) so the sweep always makes
      progress when nothing has completed yet.

    Pool standup or round-trip (pickling) failures fall back to the
    serial path, whose results are identical by construction.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    payloads = list(payloads)
    deadline_at = (None if deadline is None
                   else time.monotonic() + deadline)
    call: _ShardCall = _ShardCall(worker, retry)
    run: ShardRun = ShardRun()
    if workers == 1 or len(payloads) <= 1:
        _run_serial(call, payloads, run, deadline_at, retry, on_result,
                    always_run_first)
        return run
    try:
        pool = multiprocessing.Pool(min(workers, len(payloads)))
    except (OSError, ValueError, ImportError) as exc:
        logger.warning("multiprocessing pool unavailable (%s); "
                       "running %d shards serially", exc, len(payloads))
        _run_serial(call, payloads, run, deadline_at, retry, on_result,
                    always_run_first)
        return run
    try:
        with pool:
            _run_pool(call, payloads, pool, min(workers, len(payloads)),
                      run, deadline_at, retry, on_result)
    except _PoolRoundTripError as exc:
        logger.warning("shard workload not picklable (%s); "
                       "running %d shards serially", exc.cause,
                       len(payloads) - len(run.results))
        _run_serial(call, payloads, run, deadline_at, retry, on_result,
                    always_run_first)
    return run


def run_shards(worker: Callable[[T], R], payloads: Sequence[T],
               workers: int = 1,
               retry: Optional[RetryPolicy] = None) -> List[R]:
    """Map ``worker`` over ``payloads``, preserving payload order.

    ``workers > 1`` uses a ``multiprocessing.Pool``; failure to *stand the
    pool up* (restricted environments) or to *ship the workload through it*
    (unpicklable worker/payloads/results) logs the reason and falls back to
    the serial path, whose results are identical by construction.  An
    exception raised by ``worker`` itself propagates to the caller —
    silently re-running the whole workload serially would mask the bug and
    double the runtime.  Pass ``retry`` to re-run transient failures
    first (see :class:`RetryPolicy`); deadline-bounded partial sweeps are
    :func:`run_shards_resilient`'s job.
    """
    run = run_shards_resilient(worker, payloads, workers, retry=retry)
    return [run.results[i] for i in range(len(payloads))]


class WaveMemoryMeter:
    """Tracks the bytes held in live per-trial wave arrays.

    The streaming executor calls :meth:`allocated` when a net's wave is
    created and :meth:`released` when its last consumer retires it; the
    recorded peak is the O(circuit-width) working set the memory-bounded
    mode promises (accumulators hold O(1) per net and are not counted).
    """

    def __init__(self) -> None:
        self.live_bytes = 0
        self.peak_bytes = 0

    def allocated(self, *arrays: np.ndarray) -> None:
        self.live_bytes += sum(a.nbytes for a in arrays)
        if self.live_bytes > self.peak_bytes:
            self.peak_bytes = self.live_bytes

    def released(self, *arrays: np.ndarray) -> None:
        released = sum(a.nbytes for a in arrays)
        if released > self.live_bytes:
            # A double release would drive live_bytes negative and silently
            # corrupt every later peak_bytes reading — fail loudly instead.
            raise ValueError(
                f"released {released} bytes with only {self.live_bytes} "
                f"live — double release of a wave?")
        self.live_bytes -= released


def timed(fn: Callable[[], T]) -> "tuple[T, float]":
    """(result, wall seconds) of a thunk — shard workers time themselves so
    the counters survive the trip back from a pool worker."""
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0
