"""Shard scheduling for the Monte Carlo engines.

Splits an ``n_trials`` budget into shards, gives every shard an
independent, reproducible random stream, and fans the shard workloads out
over a ``multiprocessing`` pool (with a serial fallback when the pool is
unavailable or not worth its start-up cost).

Seeding discipline: shard streams come from
``numpy.random.SeedSequence.spawn`` on the caller's generator, so the
trial stream of shard *i* depends only on (root seed, shard index) — never
on the worker that happens to execute it.  Combined with the fixed merge
order in :func:`repro.sim.accumulator.merge_accumulators`, the same root
seed yields bit-identical merged statistics at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
import logging
import multiprocessing
import multiprocessing.pool
import pickle
import time
from typing import Callable, List, Optional, Sequence, TypeVar

import numpy as np

logger = logging.getLogger(__name__)

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class ShardPlan:
    """One shard's slice of the trial budget.

    ``offset`` is the first global trial index (used to slice shared launch
    samples); ``seed`` is the shard's spawned SeedSequence, or None for a
    single-shard run that borrows the caller's generator directly.
    """

    index: int
    n_trials: int
    offset: int
    seed: Optional[np.random.SeedSequence]


@dataclass(frozen=True)
class ShardReport:
    """Observability counters of one executed shard."""

    index: int
    n_trials: int
    seconds: float
    peak_wave_bytes: int

    def format(self) -> str:
        return (f"shard {self.index}: {self.n_trials} trials, "
                f"{self.seconds * 1e3:.1f} ms, "
                f"peak waves {self.peak_wave_bytes / 1024:.0f} KiB")


def seed_sequence_of(rng: np.random.Generator) -> np.random.SeedSequence:
    """The SeedSequence backing ``rng`` (every ``default_rng`` has one).

    Side effect on the fallback path only: an exotic bit generator without
    a stored SeedSequence derives one from its own stream, which consumes
    one ``integers`` draw and advances the caller's generator — the same
    caveat as :meth:`repro.stats.mixture.GaussianMixture.sample`.
    """
    seed_seq = getattr(rng.bit_generator, "seed_seq", None)
    if isinstance(seed_seq, np.random.SeedSequence):
        return seed_seq
    # Exotic bit generators without a stored SeedSequence: derive one
    # deterministically from the generator's own stream.
    return np.random.SeedSequence(int(rng.integers(0, 2 ** 63)))


def plan_shards(n_trials: int, shards: int,
                rng: np.random.Generator) -> List[ShardPlan]:
    """Split ``n_trials`` into ``shards`` near-equal chunks.

    The remainder goes to the leading shards so every shard size differs by
    at most one trial.  With a single shard no child stream is spawned: the
    caller's generator is used as-is, keeping one-shard streaming runs on
    the same draw sequence as the wave-retaining engine.
    """
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards > n_trials:
        shards = n_trials
    if shards == 1:
        return [ShardPlan(index=0, n_trials=n_trials, offset=0, seed=None)]
    base, extra = divmod(n_trials, shards)
    seeds = seed_sequence_of(rng).spawn(shards)
    plans: List[ShardPlan] = []
    offset = 0
    for i in range(shards):
        size = base + (1 if i < extra else 0)
        plans.append(ShardPlan(index=i, n_trials=size, offset=offset,
                               seed=seeds[i]))
        offset += size
    return plans


@dataclass
class _ShardOutcome:
    """What came back from one pool-side shard call: a value or the
    exception the worker raised (never both)."""

    value: object = None
    error: Optional[BaseException] = None


class _ShardCall:
    """Pool-side wrapper that captures worker exceptions as outcomes.

    With worker failures carried back as data, any exception that escapes
    ``pool.map`` itself is pool/serialization infrastructure (unpicklable
    worker, payload, or result) by construction — the discriminator that
    lets :func:`run_shards` fall back serially on infrastructure failures
    while re-raising real worker bugs.
    """

    __slots__ = ("worker",)

    def __init__(self, worker: Callable[[T], R]) -> None:
        self.worker = worker

    def __call__(self, payload: T) -> _ShardOutcome:
        try:
            return _ShardOutcome(value=self.worker(payload))
        except Exception as exc:   # noqa: BLE001 - re-raised in the parent
            return _ShardOutcome(error=exc)


def run_shards(worker: Callable[[T], R], payloads: Sequence[T],
               workers: int = 1) -> List[R]:
    """Map ``worker`` over ``payloads``, preserving payload order.

    ``workers > 1`` uses a ``multiprocessing.Pool``; failure to *stand the
    pool up* (restricted environments) or to *ship the workload through it*
    (unpicklable worker/payloads/results) logs the reason and falls back to
    the serial path, whose results are identical by construction.  An
    exception raised by ``worker`` itself propagates to the caller —
    silently re-running the whole workload serially would mask the bug and
    double the runtime.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    payloads = list(payloads)
    if workers == 1 or len(payloads) <= 1:
        return [worker(p) for p in payloads]
    try:
        pool = multiprocessing.Pool(min(workers, len(payloads)))
    except (OSError, ValueError, ImportError) as exc:
        logger.warning("multiprocessing pool unavailable (%s); "
                       "running %d shards serially", exc, len(payloads))
        return [worker(p) for p in payloads]
    try:
        with pool:
            outcomes = pool.map(_ShardCall(worker), payloads)
    except (pickle.PicklingError, TypeError, AttributeError,
            multiprocessing.pool.MaybeEncodingError) as exc:
        # Worker exceptions were captured pool-side, so reaching here means
        # the workload never made the round trip (pickling the callable,
        # a payload, or a result failed); the serial rerun is legitimate.
        logger.warning("shard workload not picklable (%s); "
                       "running %d shards serially", exc, len(payloads))
        return [worker(p) for p in payloads]
    results: List[R] = []
    for outcome in outcomes:
        if outcome.error is not None:
            raise outcome.error
        results.append(outcome.value)
    return results


class WaveMemoryMeter:
    """Tracks the bytes held in live per-trial wave arrays.

    The streaming executor calls :meth:`allocated` when a net's wave is
    created and :meth:`released` when its last consumer retires it; the
    recorded peak is the O(circuit-width) working set the memory-bounded
    mode promises (accumulators hold O(1) per net and are not counted).
    """

    def __init__(self) -> None:
        self.live_bytes = 0
        self.peak_bytes = 0

    def allocated(self, *arrays: np.ndarray) -> None:
        self.live_bytes += sum(a.nbytes for a in arrays)
        if self.live_bytes > self.peak_bytes:
            self.peak_bytes = self.live_bytes

    def released(self, *arrays: np.ndarray) -> None:
        self.live_bytes -= sum(a.nbytes for a in arrays)


def timed(fn: Callable[[], T]) -> "tuple[T, float]":
    """(result, wall seconds) of a thunk — shard workers time themselves so
    the counters survive the trip back from a pool worker."""
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0
