"""Shard scheduling for the Monte Carlo engines.

Splits an ``n_trials`` budget into shards, gives every shard an
independent, reproducible random stream, and fans the shard workloads out
over a ``multiprocessing`` pool (with a serial fallback when the pool is
unavailable or not worth its start-up cost).

Seeding discipline: shard streams come from
``numpy.random.SeedSequence.spawn`` on the caller's generator, so the
trial stream of shard *i* depends only on (root seed, shard index) — never
on the worker that happens to execute it.  Combined with the fixed merge
order in :func:`repro.sim.accumulator.merge_accumulators`, the same root
seed yields bit-identical merged statistics at any worker count.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, TypeVar

import numpy as np

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class ShardPlan:
    """One shard's slice of the trial budget.

    ``offset`` is the first global trial index (used to slice shared launch
    samples); ``seed`` is the shard's spawned SeedSequence, or None for a
    single-shard run that borrows the caller's generator directly.
    """

    index: int
    n_trials: int
    offset: int
    seed: Optional[np.random.SeedSequence]


@dataclass(frozen=True)
class ShardReport:
    """Observability counters of one executed shard."""

    index: int
    n_trials: int
    seconds: float
    peak_wave_bytes: int

    def format(self) -> str:
        return (f"shard {self.index}: {self.n_trials} trials, "
                f"{self.seconds * 1e3:.1f} ms, "
                f"peak waves {self.peak_wave_bytes / 1024:.0f} KiB")


def seed_sequence_of(rng: np.random.Generator) -> np.random.SeedSequence:
    """The SeedSequence backing ``rng`` (every ``default_rng`` has one)."""
    seed_seq = getattr(rng.bit_generator, "seed_seq", None)
    if isinstance(seed_seq, np.random.SeedSequence):
        return seed_seq
    # Exotic bit generators without a stored SeedSequence: derive one
    # deterministically from the generator's own stream.
    return np.random.SeedSequence(int(rng.integers(0, 2 ** 63)))


def plan_shards(n_trials: int, shards: int,
                rng: np.random.Generator) -> List[ShardPlan]:
    """Split ``n_trials`` into ``shards`` near-equal chunks.

    The remainder goes to the leading shards so every shard size differs by
    at most one trial.  With a single shard no child stream is spawned: the
    caller's generator is used as-is, keeping one-shard streaming runs on
    the same draw sequence as the wave-retaining engine.
    """
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards > n_trials:
        shards = n_trials
    if shards == 1:
        return [ShardPlan(index=0, n_trials=n_trials, offset=0, seed=None)]
    base, extra = divmod(n_trials, shards)
    seeds = seed_sequence_of(rng).spawn(shards)
    plans: List[ShardPlan] = []
    offset = 0
    for i in range(shards):
        size = base + (1 if i < extra else 0)
        plans.append(ShardPlan(index=i, n_trials=size, offset=offset,
                               seed=seeds[i]))
        offset += size
    return plans


def run_shards(worker: Callable[[T], R], payloads: Sequence[T],
               workers: int = 1) -> List[R]:
    """Map ``worker`` over ``payloads``, preserving payload order.

    ``workers > 1`` uses a ``multiprocessing.Pool``; any failure to stand
    the pool up (restricted environments, unpicklable payloads) falls back
    to the serial path, whose results are identical by construction.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    payloads = list(payloads)
    if workers == 1 or len(payloads) <= 1:
        return [worker(p) for p in payloads]
    try:
        with multiprocessing.Pool(min(workers, len(payloads))) as pool:
            return pool.map(worker, payloads)
    except Exception:
        return [worker(p) for p in payloads]


class WaveMemoryMeter:
    """Tracks the bytes held in live per-trial wave arrays.

    The streaming executor calls :meth:`allocated` when a net's wave is
    created and :meth:`released` when its last consumer retires it; the
    recorded peak is the O(circuit-width) working set the memory-bounded
    mode promises (accumulators hold O(1) per net and are not counted).
    """

    def __init__(self) -> None:
        self.live_bytes = 0
        self.peak_bytes = 0

    def allocated(self, *arrays: np.ndarray) -> None:
        self.live_bytes += sum(a.nbytes for a in arrays)
        if self.live_bytes > self.peak_bytes:
            self.peak_bytes = self.live_bytes

    def released(self, *arrays: np.ndarray) -> None:
        self.live_bytes -= sum(a.nbytes for a in arrays)


def timed(fn: Callable[[], T]) -> "tuple[T, float]":
    """(result, wall seconds) of a thunk — shard workers time themselves so
    the counters survive the trip back from a pool worker."""
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0
