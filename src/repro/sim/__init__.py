"""Four-value-logic Monte Carlo timing simulation (the paper's ground truth).

- :mod:`repro.sim.sampler` — draws launch-point four-value assignments and
  transition arrival times from :class:`repro.core.inputs.InputStats`.
- :mod:`repro.sim.reference` — scalar, event-stepping simulator: per trial,
  per gate, input transitions are applied in time order and the output
  arrival is the last output change.  Exact for every gate type; the oracle.
- :mod:`repro.sim.montecarlo` — numpy-vectorized simulator with closed-form
  per-gate-family rules, validated trial-for-trial against the reference.
  Two modes: ``"waves"`` retains every per-trial array, ``"stream"`` folds
  waves into O(1)-per-net statistics and can shard trials over processes.
- :mod:`repro.sim.accumulator` — the streaming sufficient statistics and
  their shard-merge algebra.
- :mod:`repro.sim.parallel` — shard planning (``SeedSequence.spawn``
  seeding) and the process-pool / serial shard executor, with per-shard
  retry (:class:`~repro.sim.parallel.RetryPolicy`) and deadline-bounded
  partial sweeps.
- :mod:`repro.sim.checkpoint` — crash-safe shard persistence (atomic
  writes, manifest keyed on seed/circuit/plan) behind ``--resume``.
- :mod:`repro.sim.faults` — deterministic fault injection (crash, hang,
  corrupt, kill-after-N-shards) proving the paths above end to end.
"""

from repro.sim.accumulator import (
    DirectionMoments,
    NetAccumulator,
    accumulate_waves,
    merge_accumulators,
)
from repro.sim.checkpoint import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointKey,
    CheckpointMismatchError,
    CheckpointStore,
    canonical_form,
    circuit_fingerprint,
    delay_fingerprint,
    stats_fingerprint,
    value_fingerprint,
)
from repro.sim.faults import (
    CrashShard,
    FaultInjector,
    HangShard,
    SlowShard,
    corrupt_shard_file,
)
from repro.sim.montecarlo import (
    DirectionStats,
    MonteCarloResult,
    StreamResult,
    run_monte_carlo,
)
from repro.sim.parallel import (
    RetryPolicy,
    ShardFailure,
    ShardPlan,
    ShardReport,
    ShardRun,
    TransientShardError,
    WaveMemoryMeter,
    plan_shards,
    run_shards,
    run_shards_resilient,
)
from repro.sim.reference import event_gate_output, simulate_trial
from repro.sim.sampler import LaunchSample, sample_launch_points

__all__ = [
    "run_monte_carlo",
    "MonteCarloResult",
    "StreamResult",
    "DirectionStats",
    "DirectionMoments",
    "NetAccumulator",
    "accumulate_waves",
    "merge_accumulators",
    "ShardPlan",
    "ShardReport",
    "ShardRun",
    "ShardFailure",
    "RetryPolicy",
    "TransientShardError",
    "WaveMemoryMeter",
    "plan_shards",
    "run_shards",
    "run_shards_resilient",
    "CheckpointError",
    "CheckpointMismatchError",
    "CheckpointCorruptError",
    "CheckpointKey",
    "CheckpointStore",
    "canonical_form",
    "circuit_fingerprint",
    "delay_fingerprint",
    "stats_fingerprint",
    "value_fingerprint",
    "FaultInjector",
    "CrashShard",
    "HangShard",
    "SlowShard",
    "corrupt_shard_file",
    "sample_launch_points",
    "LaunchSample",
    "simulate_trial",
    "event_gate_output",
]
