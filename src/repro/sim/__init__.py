"""Four-value-logic Monte Carlo timing simulation (the paper's ground truth).

- :mod:`repro.sim.sampler` — draws launch-point four-value assignments and
  transition arrival times from :class:`repro.core.inputs.InputStats`.
- :mod:`repro.sim.reference` — scalar, event-stepping simulator: per trial,
  per gate, input transitions are applied in time order and the output
  arrival is the last output change.  Exact for every gate type; the oracle.
- :mod:`repro.sim.montecarlo` — numpy-vectorized simulator with closed-form
  per-gate-family rules, validated trial-for-trial against the reference.
"""

from repro.sim.montecarlo import DirectionStats, MonteCarloResult, run_monte_carlo
from repro.sim.reference import event_gate_output, simulate_trial
from repro.sim.sampler import LaunchSample, sample_launch_points

__all__ = [
    "run_monte_carlo",
    "MonteCarloResult",
    "DirectionStats",
    "sample_launch_points",
    "LaunchSample",
    "simulate_trial",
    "event_gate_output",
]
