"""Streaming per-net sufficient statistics for the Monte Carlo engines.

The wave-retaining engine (:class:`repro.sim.montecarlo.MonteCarloResult`)
keeps every net's per-trial ``init``/``final``/``time`` arrays alive —
O(nets x trials) memory — only to answer a handful of summary questions:
per-direction occurrence probability and arrival moments, signal
probability, and toggling rate.  This module holds the same answers in
O(1) state per net:

- :class:`DirectionMoments` — occurrence count plus the running mean and
  the centered sum of squares (``m2``) of the arrival times of one
  transition direction.  Shards merge with Chan's parallel update, so a
  fixed merge order gives bit-identical results at any worker count.
- :class:`NetAccumulator` — both directions plus the constant-one tally
  that backs ``signal_probability`` and ``toggling_rate``.

Bit-exactness contract: for a single shard, every accessor reproduces the
wave-retaining accessor *bit for bit* on the same trials.  That pins the
exact numpy reductions used here — ``times.mean()`` and
``sum((t - mean)**2)`` over the *compacted* (boolean-indexed) time array,
matching ``numpy.std``'s two-pass algorithm — and is enforced by the
differential tests in ``tests/test_sim_stream.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import math
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.sim.sampler import LaunchSample


@dataclass(frozen=True)
class DirectionStats:
    """Monte Carlo estimate for one transition direction at one net: the
    occurrence probability and the conditional arrival moments (NaN when the
    transition never occurred in any trial; probability itself is NaN when
    there were no trials at all) — one Table 2 cell triple."""

    probability: float
    mean: float
    std: float
    n_occurrences: int


@dataclass
class DirectionMoments:
    """Count / mean / centered-sum-of-squares of one direction's arrivals.

    (count, mean, m2) are the classic sufficient statistics for (n, mu,
    sigma); ``sum`` and ``sum_sq`` are derivable and exposed as properties.
    """

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0

    @classmethod
    def from_times(cls, times: np.ndarray,
                   overwrite: bool = False) -> "DirectionMoments":
        """Moments of a compacted 1-D array of arrival times.

        Mirrors ``times.mean()`` / ``times.std()`` exactly: numpy's
        pairwise-summed mean, then the centered two-pass sum of squares.
        ``overwrite=True`` lets the centering clobber ``times`` (the
        streaming engine passes scratch views); the result is unchanged.
        """
        count = int(times.size)
        if count == 0:
            return cls()
        mean = times.mean()
        centered = (np.subtract(times, mean, out=times) if overwrite
                    else times - mean)
        m2 = float(np.multiply(centered, centered, out=centered).sum())
        return cls(count=count, mean=float(mean), m2=m2)

    @property
    def sum(self) -> float:
        return self.mean * self.count

    @property
    def sum_sq(self) -> float:
        return self.m2 + self.mean * self.mean * self.count

    @property
    def std(self) -> float:
        """Population standard deviation (what ``numpy.std`` reports)."""
        if self.count == 0:
            return float("nan")
        return math.sqrt(max(self.m2, 0.0) / self.count)

    def merge(self, other: "DirectionMoments") -> "DirectionMoments":
        """Chan's parallel combine.  Merging with an empty accumulator is
        the identity, which is what keeps single-shard runs bit-exact."""
        if other.count == 0:
            return DirectionMoments(self.count, self.mean, self.m2)
        if self.count == 0:
            return DirectionMoments(other.count, other.mean, other.m2)
        count = self.count + other.count
        delta = other.mean - self.mean
        mean = self.mean + delta * other.count / count
        m2 = (self.m2 + other.m2
              + delta * delta * self.count * other.count / count)
        return DirectionMoments(count, mean, m2)


@dataclass
class NetAccumulator:
    """Streaming sufficient statistics of one net over ``n_trials`` cycles."""

    n_trials: int = 0
    n_one: int = 0          # trials at constant logic one
    rise: DirectionMoments = field(default_factory=DirectionMoments)
    fall: DirectionMoments = field(default_factory=DirectionMoments)

    @classmethod
    def from_arrays(cls, init: np.ndarray, final: np.ndarray,
                    time: np.ndarray,
                    rise_mask: Optional[np.ndarray] = None,
                    fall_mask: Optional[np.ndarray] = None,
                    time_scratch: Optional[np.ndarray] = None
                    ) -> "NetAccumulator":
        """Accumulate one shard's wave.  ``rise_mask``/``fall_mask`` may be
        passed when the caller already computed them (the streaming engine
        gets them for free from its gate kernel); ``time_scratch`` is an
        optional reusable float64 buffer of ``n_trials`` that makes the
        whole fold allocation-free.  ``compress`` extracts the same
        elements in the same order as boolean indexing, so the moments are
        bit-identical either way."""
        if rise_mask is None:
            rise_mask = final > init       # init 0, final 1
        if fall_mask is None:
            fall_mask = init > final
        n_rise = int(np.count_nonzero(rise_mask))
        n_fall = int(np.count_nonzero(fall_mask))
        # Constant-one trials: final is 1 in (one | rise) trials.
        n_one = int(np.count_nonzero(final)) - n_rise

        def moments(mask: np.ndarray, count: int) -> DirectionMoments:
            if count == 0:
                return DirectionMoments()
            if time_scratch is None:
                return DirectionMoments.from_times(time[mask])
            picked = np.compress(mask, time, out=time_scratch[:count])
            return DirectionMoments.from_times(picked, overwrite=True)

        return cls(n_trials=int(init.shape[0]), n_one=n_one,
                   rise=moments(rise_mask, n_rise),
                   fall=moments(fall_mask, n_fall))

    def merge(self, other: "NetAccumulator") -> "NetAccumulator":
        return NetAccumulator(
            n_trials=self.n_trials + other.n_trials,
            n_one=self.n_one + other.n_one,
            rise=self.rise.merge(other.rise),
            fall=self.fall.merge(other.fall))

    # -- accessors (formulae match MonteCarloResult bit for bit) ------------

    def direction_stats(self, direction: str) -> DirectionStats:
        if direction == "rise":
            moments = self.rise
        elif direction == "fall":
            moments = self.fall
        else:
            raise ValueError(f"direction must be 'rise' or 'fall', "
                             f"got {direction!r}")
        if self.n_trials == 0:
            # An empty accumulator carries no evidence either way: NaN
            # throughout, matching the documented empty-direction
            # convention (not a ZeroDivisionError).
            return DirectionStats(float("nan"), float("nan"), float("nan"),
                                  0)
        probability = moments.count / self.n_trials
        if moments.count == 0:
            return DirectionStats(probability, float("nan"), float("nan"), 0)
        return DirectionStats(probability, moments.mean, moments.std,
                              moments.count)

    @property
    def signal_probability(self) -> float:
        """Time-average probability of logic one.  The wave accessor sums
        ``init + final`` (exact small integers in float64) then halves the
        mean; the integer tally reproduces the identical value.  NaN for
        an empty accumulator (no trials, no evidence)."""
        if self.n_trials == 0:
            return float("nan")
        total = 2 * self.n_one + self.rise.count + self.fall.count
        return (total / self.n_trials) / 2.0

    @property
    def toggling_rate(self) -> float:
        """Observed transitions per cycle; NaN for an empty accumulator."""
        if self.n_trials == 0:
            return float("nan")
        return (self.rise.count + self.fall.count) / self.n_trials


def accumulate_waves(waves: Mapping[str, LaunchSample]
                     ) -> Dict[str, NetAccumulator]:
    """Fold a wave dict (net -> LaunchSample) into per-net accumulators."""
    return {net: NetAccumulator.from_arrays(w.init, w.final, w.time)
            for net, w in waves.items()}


def merge_accumulators(shards: "List[Dict[str, NetAccumulator]]"
                       ) -> Dict[str, NetAccumulator]:
    """Merge per-shard accumulator dicts in shard order.

    The left fold over the given order makes the merged result a pure
    function of the shard list — worker count and completion order cannot
    change it.
    """
    if not shards:
        raise ValueError("no shard results to merge")
    merged = dict(shards[0])
    for shard in shards[1:]:
        if set(shard) != set(merged):
            raise ValueError("shards disagree on the net set")
        for net, acc in shard.items():
            merged[net] = merged[net].merge(acc)
    return merged
