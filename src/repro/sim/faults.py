"""Deterministic fault injection for the sharded Monte Carlo engines.

The fault-tolerance layer (retry, checkpoint/resume, deadline — see
``docs/robustness.md``) is only trustworthy if every failure path is
exercised end to end, so this module provides the failure modes as
*injectable, reproducible* faults rather than leaving them to chance:

- :class:`CrashShard` — raise a chosen exception on a chosen shard, a
  bounded number of times (``times=1`` models a transient blip the retry
  policy must absorb; ``times=None`` a persistent failure that must
  surface as :class:`~repro.sim.parallel.ShardFailure`);
- :class:`HangShard` — stall a shard so deadline preemption is provable;
- :class:`SlowShard` — pad every shard's runtime so deadline expiry is
  reachable deterministically at test scale;
- :func:`corrupt_shard_file` — flip bytes in a persisted checkpoint so
  checksum validation is provable;
- :data:`EXIT_AFTER_ENV` — an environment-variable kill switch
  (``SPSTA_FAULT_EXIT_AFTER_SHARDS=k``) that hard-exits the process the
  moment the k-th shard checkpoint is persisted, giving tests and CI a
  deterministic "killed mid-run" process to ``--resume`` from.

Faults wrap the shard worker via :class:`FaultInjector`; everything is
picklable so injection survives the trip into a process pool.  Because
faults only raise/sleep *around* the worker (never inside its random
stream), an injected-and-retried run remains bit-identical to a clean
run — the property the differential tests lean on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import os
from pathlib import Path
import time
from typing import Callable, Optional, Tuple, Type, TypeVar, Union

from repro.sim.parallel import ShardPlan, TransientShardError

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable: hard-exit (``os._exit``) with :data:`EXIT_CODE`
#: once this many shard checkpoints have been persisted.
EXIT_AFTER_ENV = "SPSTA_FAULT_EXIT_AFTER_SHARDS"

#: Exit status of the injected kill — distinguishable from a crash.
EXIT_CODE = 17


def maybe_exit_after_persist(n_completed: int) -> None:
    """Kill-switch hook called by the checkpoint store after each persist.

    A no-op unless :data:`EXIT_AFTER_ENV` is set; with it set to ``k``,
    the process hard-exits the moment ``k`` shards are on disk —
    simulating a mid-run ``kill -9`` at a deterministic point."""
    limit = os.environ.get(EXIT_AFTER_ENV)
    if limit is not None and n_completed >= int(limit):
        os._exit(EXIT_CODE)


def shard_index_of(payload: object) -> int:
    """The shard index of an executor payload.

    Understands a bare :class:`ShardPlan`, a bare int (unit tests), and
    any tuple containing a :class:`ShardPlan` (the Monte Carlo payload
    layout)."""
    if isinstance(payload, ShardPlan):
        return payload.index
    if isinstance(payload, int):
        return payload
    if isinstance(payload, tuple):
        for item in payload:
            if isinstance(item, ShardPlan):
                return item.index
    raise ValueError(
        f"cannot find a shard index in payload of type "
        f"{type(payload).__name__}")


class ShardFault:
    """Base class: hooks called around every shard execution attempt."""

    def before(self, index: int) -> None:
        """Called before the shard body runs (may raise or stall)."""

    def after(self, index: int) -> None:
        """Called after the shard body succeeded."""


@dataclass
class CrashShard(ShardFault):
    """Raise ``exc_type`` whenever shard ``index`` starts, for the first
    ``times`` attempts (``times=None``: every attempt, i.e. permanent).

    The attempt counter lives on the instance, so retries executed by the
    same process (the executor runs the retry loop pool-side) observe the
    fault exactly ``times`` times."""

    index: int
    times: Optional[int] = 1
    exc_type: Type[Exception] = TransientShardError
    fired: int = field(default=0, compare=False)

    def before(self, index: int) -> None:
        if index != self.index:
            return
        if self.times is not None and self.fired >= self.times:
            return
        self.fired += 1
        raise self.exc_type(
            f"injected crash on shard {index} (attempt {self.fired})")


@dataclass
class HangShard(ShardFault):
    """Stall shard ``index`` for ``seconds`` before it runs.

    With a deadline and ``workers > 1`` the executor abandons the hung
    shard at the budget; in serial mode the sleep simply runs (in-process
    preemption is impossible), so hang tests use the pool path."""

    index: int
    seconds: float = 60.0

    def before(self, index: int) -> None:
        if index == self.index:
            time.sleep(self.seconds)


@dataclass
class SlowShard(ShardFault):
    """Pad every shard (or one shard) by ``seconds`` — makes deadline
    expiry deterministic at test scale."""

    seconds: float = 0.2
    index: Optional[int] = None

    def before(self, index: int) -> None:
        if self.index is None or index == self.index:
            time.sleep(self.seconds)


class _InjectedWorker:
    """Picklable worker wrapper running each fault's hooks around the
    real shard body."""

    __slots__ = ("worker", "faults", "index_of")

    def __init__(self, worker: Callable[[T], R],
                 faults: Tuple[ShardFault, ...],
                 index_of: Callable[[object], int]) -> None:
        self.worker = worker
        self.faults = faults
        self.index_of = index_of

    def __call__(self, payload: T) -> R:
        index = self.index_of(payload)
        for fault in self.faults:
            fault.before(index)
        value = self.worker(payload)
        for fault in self.faults:
            fault.after(index)
        return value


class FaultInjector:
    """A bundle of shard faults that can wrap any shard worker.

    Pass one to ``run_monte_carlo(..., fault_injector=...)`` (or wrap a
    worker directly for executor-level tests)::

        injector = FaultInjector(CrashShard(index=2, times=2))
        run_monte_carlo(..., mode="stream", shards=4,
                        retry=RetryPolicy(max_attempts=3),
                        fault_injector=injector)
    """

    def __init__(self, *faults: ShardFault,
                 index_of: Callable[[object], int] = shard_index_of) -> None:
        self.faults: Tuple[ShardFault, ...] = tuple(faults)
        self.index_of = index_of

    def wrap(self, worker: Callable[[T], R]) -> Callable[[T], R]:
        return _InjectedWorker(worker, self.faults, self.index_of)


def corrupt_shard_file(directory: Union[str, Path], index: int,
                       offset: int = 0) -> Path:
    """Flip one byte of a persisted shard payload (checksum-test helper).

    Returns the corrupted path; raises ``FileNotFoundError`` if the shard
    was never persisted."""
    path = Path(directory) / f"shard_{index:05d}.pkl"
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"shard payload {path} is empty")
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))
    return path
