"""Vectorized four-value Monte Carlo timing simulator.

All trials propagate simultaneously as numpy arrays.  Per-gate-family rules
(derived in DESIGN.md and validated against :mod:`repro.sim.reference`):

- AND core: output rises at the LAST rising input (MAX), falls at the FIRST
  falling input (MIN); inverting variants relabel the output direction.
- OR core: the mirror image (rise = MIN over rising, fall = MAX over falling).
- Parity (XOR core): the output toggles at every switching input; it
  transitions iff initial and final parity differ, settling at the LAST
  switching input (MAX over all switching inputs).
- Glitches are filtered by initial/final evaluation, matching the paper's
  "we do not count glitch" (Sec. 4).

Gate delays come from the :class:`~repro.core.delay.DelayModel`; a non-zero
delay sigma draws an independent Gaussian delay per gate per trial.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.delay import DelayModel, UnitDelay
from repro.core.inputs import InputStats
from repro.logic.gates import GateType, gate_spec
from repro.netlist.core import Netlist
from repro.sim.sampler import LaunchSample, sample_launch_points


@dataclass(frozen=True)
class DirectionStats:
    """Monte Carlo estimate for one transition direction at one net: the
    occurrence probability and the conditional arrival moments (NaN when the
    transition never occurred in any trial) — one Table 2 cell triple."""

    probability: float
    mean: float
    std: float
    n_occurrences: int


class MonteCarloResult:
    """Per-net waveform arrays over all trials, with summary accessors."""

    def __init__(self, netlist_name: str, n_trials: int,
                 waves: Dict[str, LaunchSample]) -> None:
        self.netlist_name = netlist_name
        self.n_trials = n_trials
        self._waves = waves

    def wave(self, net: str) -> LaunchSample:
        return self._waves[net]

    @property
    def nets(self) -> Sequence[str]:
        return tuple(self._waves)

    def direction_stats(self, net: str, direction: str) -> DirectionStats:
        """Estimate (P, mean, std) for 'rise' or 'fall' at a net."""
        wave = self._waves[net]
        if direction == "rise":
            mask = ~wave.init & wave.final
        elif direction == "fall":
            mask = wave.init & ~wave.final
        else:
            raise ValueError(f"direction must be 'rise' or 'fall', "
                             f"got {direction!r}")
        count = int(mask.sum())
        probability = count / self.n_trials
        if count == 0:
            return DirectionStats(probability, float("nan"), float("nan"), 0)
        times = wave.time[mask]
        return DirectionStats(probability, float(times.mean()),
                              float(times.std()), count)

    def signal_probability(self, net: str) -> float:
        """Time-average probability of logic one: trials at constant 1 count
        fully, transitioning trials count half a cycle (matches
        :attr:`repro.core.inputs.Prob4.signal_probability`)."""
        wave = self._waves[net]
        return float((wave.init.astype(float) + wave.final.astype(float))
                     .mean() / 2.0)

    def toggling_rate(self, net: str) -> float:
        """Observed transitions per cycle."""
        wave = self._waves[net]
        return float((wave.init != wave.final).mean())


def run_monte_carlo(netlist: Netlist,
                    stats: Union[InputStats, Mapping[str, InputStats]],
                    n_trials: int = 10_000,
                    delay_model: DelayModel = UnitDelay(),
                    rng: Optional[np.random.Generator] = None,
                    samples: Optional[Dict[str, LaunchSample]] = None
                    ) -> MonteCarloResult:
    """Simulate ``n_trials`` independent cycles of the whole netlist.

    Pass ``samples`` (from :func:`repro.sim.sampler.sample_launch_points`)
    to reuse a fixed set of launch draws — e.g. to compare engines on
    identical trials.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if samples is None:
        samples = sample_launch_points(netlist, stats, n_trials, rng)
    waves: Dict[str, LaunchSample] = dict(samples)
    mis_aware = hasattr(delay_model, "delay_mis")
    for gate in netlist.combinational_gates:
        operands = [waves[src] for src in gate.inputs]
        if mis_aware:
            delay_draw = _mis_delay_draw(delay_model, gate, operands,
                                         n_trials, rng)
        else:
            delay = delay_model.delay(gate)
            if delay.sigma > 0.0:
                delay_draw = rng.normal(delay.mu, delay.sigma, size=n_trials)
            else:
                delay_draw = delay.mu
        waves[gate.name] = _gate_wave(gate.gate_type, operands, delay_draw)
    return MonteCarloResult(netlist.name, n_trials, waves)


def _mis_delay_draw(delay_model: DelayModel, gate, operands, n_trials: int,
                    rng: np.random.Generator) -> np.ndarray:
    """Per-trial delays for a MIS-aware model: each trial's delay depends
    on how many of the gate's inputs switch simultaneously in that trial
    (matching SPSTA's per-subset delays exactly)."""
    switching = np.zeros(n_trials, dtype=np.int64)
    for o in operands:
        switching += o.init != o.final
    ks = np.clip(switching, 1, None)
    per_k = {k: delay_model.delay_mis(gate, int(k))
             for k in np.unique(ks)}
    mus = np.empty(n_trials)
    sigmas = np.zeros(n_trials)
    for k, d in per_k.items():
        mask = ks == k
        mus[mask] = d.mu
        sigmas[mask] = d.sigma
    if np.any(sigmas > 0.0):
        return mus + sigmas * rng.standard_normal(n_trials)
    return mus


def _gate_wave(gate_type: GateType, operands: Sequence[LaunchSample],
               delay: Union[float, np.ndarray]) -> LaunchSample:
    spec = gate_spec(gate_type)
    if gate_type is GateType.BUFF:
        src = operands[0]
        return _delayed(src.init, src.final, src.time, delay)
    if gate_type is GateType.NOT:
        src = operands[0]
        return _delayed(~src.init, ~src.final, src.time, delay)
    if spec.is_parity:
        init, final, time = _parity_wave(operands)
        if spec.inverting:
            init, final = ~init, ~final
        return _delayed(init, final, time, delay)
    init, final, time = _controlling_wave(operands,
                                          and_core=spec.controlling_value == 0)
    if spec.inverting:
        init, final = ~init, ~final
    return _delayed(init, final, time, delay)


def _delayed(init: np.ndarray, final: np.ndarray, time: np.ndarray,
             delay: Union[float, np.ndarray]) -> LaunchSample:
    transition = init != final
    out_time = np.where(transition, time + delay, np.nan)
    return LaunchSample(init=init, final=final, time=out_time)


def _controlling_wave(operands: Sequence[LaunchSample], and_core: bool):
    inits = np.stack([o.init for o in operands])
    finals = np.stack([o.final for o in operands])
    times = np.stack([o.time for o in operands])
    rising = ~inits & finals
    falling = inits & ~finals
    if and_core:
        init = inits.all(axis=0)
        final = finals.all(axis=0)
        t_rise = np.where(rising, times, -math.inf).max(axis=0)
        t_fall = np.where(falling, times, math.inf).min(axis=0)
    else:
        init = inits.any(axis=0)
        final = finals.any(axis=0)
        t_rise = np.where(rising, times, math.inf).min(axis=0)
        t_fall = np.where(falling, times, -math.inf).max(axis=0)
    out_rise = ~init & final
    out_fall = init & ~final
    time = np.where(out_rise, t_rise, np.where(out_fall, t_fall, np.nan))
    return init, final, time


def _parity_wave(operands: Sequence[LaunchSample]):
    inits = np.stack([o.init for o in operands])
    finals = np.stack([o.final for o in operands])
    times = np.stack([o.time for o in operands])
    init = np.bitwise_xor.reduce(inits, axis=0)
    final = np.bitwise_xor.reduce(finals, axis=0)
    switching = inits != finals
    t_last = np.where(switching, times, -math.inf).max(axis=0)
    time = np.where(init != final, t_last, np.nan)
    return init, final, time
