"""Vectorized four-value Monte Carlo timing simulator.

All trials propagate simultaneously as numpy arrays.  Per-gate-family rules
(derived in DESIGN.md and validated against :mod:`repro.sim.reference`):

- AND core: output rises at the LAST rising input (MAX), falls at the FIRST
  falling input (MIN); inverting variants relabel the output direction.
- OR core: the mirror image (rise = MIN over rising, fall = MAX over falling).
- Parity (XOR core): the output toggles at every switching input; it
  transitions iff initial and final parity differ, settling at the LAST
  switching input (MAX over all switching inputs).
- Glitches are filtered by initial/final evaluation, matching the paper's
  "we do not count glitch" (Sec. 4).

Gate delays come from the :class:`~repro.core.delay.DelayModel`; a non-zero
delay sigma draws an independent Gaussian delay per gate per trial.

Two execution modes share these semantics:

- ``mode="waves"`` (default) retains every net's per-trial arrays in a
  :class:`MonteCarloResult` — O(nets x trials) memory, full waveform access.
- ``mode="stream"`` folds each wave into O(1)-per-net sufficient statistics
  (:mod:`repro.sim.accumulator`) the moment its last consumer has read it,
  optionally sharding the trial budget over a process pool
  (:mod:`repro.sim.parallel`).  Single-shard streaming runs are bit-exact
  against the wave engine on the same launch draws; the kernel below reuses
  retired trial buffers, which also makes it measurably faster.
"""

from __future__ import annotations

import dataclasses
import math
from pathlib import Path
import time as _time
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.delay import DelayModel, UnitDelay
from repro.core.inputs import InputStats
from repro.logic.gates import GateType, gate_spec
from repro.netlist.core import Gate, Netlist
from repro.sim.accumulator import (
    DirectionStats,
    NetAccumulator,
    merge_accumulators,
)
from repro.sim.checkpoint import CheckpointKey, CheckpointStore
from repro.sim.faults import FaultInjector
from repro.sim.parallel import (
    RetryPolicy,
    ShardPlan,
    ShardReport,
    WaveMemoryMeter,
    plan_shards,
    run_shards_resilient,
    seed_sequence_of,
)
from repro.sim.sampler import LaunchSample, sample_launch_points

__all__ = [
    "DirectionStats",
    "MonteCarloResult",
    "StreamResult",
    "run_monte_carlo",
]


class MonteCarloResult:
    """Per-net waveform arrays over all trials, with summary accessors."""

    def __init__(self, netlist_name: str, n_trials: int,
                 waves: Dict[str, LaunchSample]) -> None:
        self.netlist_name = netlist_name
        self.n_trials = n_trials
        self._waves = waves

    def wave(self, net: str) -> LaunchSample:
        return self._waves[net]

    @property
    def nets(self) -> Sequence[str]:
        return tuple(self._waves)

    def direction_stats(self, net: str, direction: str) -> DirectionStats:
        """Estimate (P, mean, std) for 'rise' or 'fall' at a net."""
        wave = self._waves[net]
        if direction == "rise":
            mask = ~wave.init & wave.final
        elif direction == "fall":
            mask = wave.init & ~wave.final
        else:
            raise ValueError(f"direction must be 'rise' or 'fall', "
                             f"got {direction!r}")
        count = int(mask.sum())
        probability = count / self.n_trials
        if count == 0:
            return DirectionStats(probability, float("nan"), float("nan"), 0)
        times = wave.time[mask]
        return DirectionStats(probability, float(times.mean()),
                              float(times.std()), count)

    def signal_probability(self, net: str) -> float:
        """Time-average probability of logic one: trials at constant 1 count
        fully, transitioning trials count half a cycle (matches
        :attr:`repro.core.inputs.Prob4.signal_probability`)."""
        wave = self._waves[net]
        return float((wave.init.astype(float) + wave.final.astype(float))
                     .mean() / 2.0)

    def toggling_rate(self, net: str) -> float:
        """Observed transitions per cycle."""
        wave = self._waves[net]
        return float((wave.init != wave.final).mean())


def run_monte_carlo(netlist: Netlist,
                    stats: Union[InputStats, Mapping[str, InputStats]],
                    n_trials: int = 10_000,
                    delay_model: DelayModel = UnitDelay(),
                    rng: Optional[np.random.Generator] = None,
                    samples: Optional[Dict[str, LaunchSample]] = None,
                    mode: str = "waves",
                    shards: int = 1,
                    workers: int = 1,
                    keep_nets: Sequence[str] = (),
                    retry: Optional[RetryPolicy] = None,
                    deadline: Optional[float] = None,
                    checkpoint: Optional[Union[str, Path]] = None,
                    resume: bool = False,
                    fault_injector: Optional[FaultInjector] = None
                    ) -> "Union[MonteCarloResult, StreamResult]":
    """Simulate ``n_trials`` independent cycles of the whole netlist.

    Pass ``samples`` (from :func:`repro.sim.sampler.sample_launch_points`)
    to reuse a fixed set of launch draws — e.g. to compare engines on
    identical trials.

    ``mode="stream"`` returns a :class:`StreamResult` of merged per-net
    statistics instead of retained waves: the trial budget is split into
    ``shards`` chunks (each independently seeded via
    ``SeedSequence.spawn``, so results depend only on the root seed and
    shard count), executed on up to ``workers`` processes, and folded
    shard by shard.  Waves are retired as soon as their last consumer has
    read them; name nets in ``keep_nets`` to retain their full waveforms
    anyway.  With ``shards=1`` the streaming statistics are bit-exact
    against this function's ``mode="waves"`` accessors on the same draws.

    Fault tolerance (stream mode only — see ``docs/robustness.md``):
    ``retry`` re-runs shards that fail transiently; ``checkpoint`` names a
    directory where each completed shard is atomically persisted, and
    ``resume=True`` skips shards already on disk (rejecting checkpoints
    whose seed/circuit/configuration do not match); ``deadline`` bounds
    the wall-clock budget — once expired no new shard is dispatched and
    the completed subset is merged, with
    :attr:`StreamResult.deadline_expired` set and ``n_trials`` reporting
    the *effective* trial count.  ``fault_injector`` deterministically
    injects failures for testing (:mod:`repro.sim.faults`).  None of
    these affect the merged statistics of the shards that do run: a
    retried, resumed, or re-sharded-onto-more-workers run is bit-identical
    to an uninterrupted one.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if mode == "stream":
        return _run_stream(netlist, stats, n_trials, delay_model, rng,
                           samples, shards, workers, tuple(keep_nets),
                           retry, deadline, checkpoint, resume,
                           fault_injector)
    if mode != "waves":
        raise ValueError(f"mode must be 'waves' or 'stream', got {mode!r}")
    if shards != 1 or workers != 1 or keep_nets:
        raise ValueError("shards/workers/keep_nets require mode='stream' "
                         "(mode='waves' retains every wave in one shard)")
    if (retry is not None or deadline is not None or checkpoint is not None
            or resume or fault_injector is not None):
        raise ValueError("retry/deadline/checkpoint/resume/fault_injector "
                         "require mode='stream'")
    if samples is None:
        samples = sample_launch_points(netlist, stats, n_trials, rng)
    waves: Dict[str, LaunchSample] = dict(samples)
    mis_aware = hasattr(delay_model, "delay_mis")
    for gate in netlist.combinational_gates:
        operands = [waves[src] for src in gate.inputs]
        delay_draw = _delay_draw(delay_model, gate, operands, n_trials, rng,
                                 mis_aware)
        waves[gate.name] = _gate_wave(gate.gate_type, operands, delay_draw)
    return MonteCarloResult(netlist.name, n_trials, waves)


def _delay_draw(delay_model: DelayModel, gate: Gate,
                operands: Sequence[LaunchSample], n_trials: int,
                rng: np.random.Generator, mis_aware: bool
                ) -> Union[float, np.ndarray]:
    """Per-gate delay (scalar) or per-trial delay draw (array) — shared by
    both execution modes so identical rngs consume identical streams."""
    if mis_aware:
        return _mis_delay_draw(delay_model, gate, operands, n_trials, rng)
    delay = delay_model.delay(gate)
    if delay.sigma > 0.0:
        return rng.normal(delay.mu, delay.sigma, size=n_trials)
    return delay.mu


def _mis_delay_draw(delay_model: DelayModel, gate: Gate,
                    operands: Sequence[LaunchSample], n_trials: int,
                    rng: np.random.Generator) -> np.ndarray:
    """Per-trial delays for a MIS-aware model: each trial's delay depends
    on how many of the gate's inputs switch simultaneously in that trial
    (matching SPSTA's per-subset delays exactly)."""
    switching = np.zeros(n_trials, dtype=np.int64)
    for o in operands:
        switching += o.init != o.final
    ks = np.clip(switching, 1, None)
    per_k = {k: delay_model.delay_mis(gate, int(k))
             for k in np.unique(ks)}
    mus = np.empty(n_trials)
    sigmas = np.zeros(n_trials)
    for k, d in per_k.items():
        mask = ks == k
        mus[mask] = d.mu
        sigmas[mask] = d.sigma
    if np.any(sigmas > 0.0):
        return mus + sigmas * rng.standard_normal(n_trials)
    return mus


def _gate_wave(gate_type: GateType, operands: Sequence[LaunchSample],
               delay: Union[float, np.ndarray]) -> LaunchSample:
    spec = gate_spec(gate_type)
    if gate_type is GateType.BUFF:
        src = operands[0]
        return _delayed(src.init, src.final, src.time, delay)
    if gate_type is GateType.NOT:
        src = operands[0]
        return _delayed(~src.init, ~src.final, src.time, delay)
    if spec.is_parity:
        init, final, time = _parity_wave(operands)
        if spec.inverting:
            init, final = ~init, ~final
        return _delayed(init, final, time, delay)
    init, final, time = _controlling_wave(operands,
                                          and_core=spec.controlling_value == 0)
    if spec.inverting:
        init, final = ~init, ~final
    return _delayed(init, final, time, delay)


def _delayed(init: np.ndarray, final: np.ndarray, time: np.ndarray,
             delay: Union[float, np.ndarray]) -> LaunchSample:
    transition = init != final
    out_time = np.where(transition, time + delay, np.nan)
    return LaunchSample(init=init, final=final, time=out_time)


def _controlling_wave(operands: Sequence[LaunchSample], and_core: bool
                      ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    inits = np.stack([o.init for o in operands])
    finals = np.stack([o.final for o in operands])
    times = np.stack([o.time for o in operands])
    rising = ~inits & finals
    falling = inits & ~finals
    if and_core:
        init = inits.all(axis=0)
        final = finals.all(axis=0)
        t_rise = np.where(rising, times, -math.inf).max(axis=0)
        t_fall = np.where(falling, times, math.inf).min(axis=0)
    else:
        init = inits.any(axis=0)
        final = finals.any(axis=0)
        t_rise = np.where(rising, times, math.inf).min(axis=0)
        t_fall = np.where(falling, times, -math.inf).max(axis=0)
    out_rise = ~init & final
    out_fall = init & ~final
    time = np.where(out_rise, t_rise, np.where(out_fall, t_fall, np.nan))
    return init, final, time


def _parity_wave(operands: Sequence[LaunchSample]
                 ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    inits = np.stack([o.init for o in operands])
    finals = np.stack([o.final for o in operands])
    times = np.stack([o.time for o in operands])
    init = np.bitwise_xor.reduce(inits, axis=0)
    final = np.bitwise_xor.reduce(finals, axis=0)
    switching = inits != finals
    t_last = np.where(switching, times, -math.inf).max(axis=0)
    time = np.where(init != final, t_last, np.nan)
    return init, final, time


# ---------------------------------------------------------------------------
# Streaming (memory-bounded, sharded) mode
# ---------------------------------------------------------------------------

class StreamResult:
    """Merged streaming statistics of a sharded Monte Carlo run.

    Offers the same summary accessors as :class:`MonteCarloResult`
    (``direction_stats`` / ``signal_probability`` / ``toggling_rate``)
    backed by O(1)-per-net accumulators instead of retained waves.
    Waveforms exist only for nets that were named in ``keep_nets``.

    ``n_trials`` is the *effective* trial count (what the accumulators
    actually hold).  After a deadline-bounded run it can fall short of
    ``planned_trials``; ``missing_shards`` names the shards that never
    ran and :attr:`stderr_widening` is the factor by which every
    standard-error bar widens relative to the planned budget.
    """

    def __init__(self, netlist_name: str, n_trials: int,
                 accumulators: Dict[str, NetAccumulator],
                 shard_reports: Tuple[ShardReport, ...],
                 kept_waves: Dict[str, LaunchSample],
                 planned_trials: Optional[int] = None,
                 missing_shards: Tuple[int, ...] = (),
                 deadline_expired: bool = False) -> None:
        self.netlist_name = netlist_name
        self.n_trials = n_trials
        self._accumulators = accumulators
        self.shard_reports = shard_reports
        self._kept = kept_waves
        self.planned_trials = (n_trials if planned_trials is None
                               else planned_trials)
        self.missing_shards = missing_shards
        self.deadline_expired = deadline_expired

    @property
    def complete(self) -> bool:
        """Every planned shard contributed to the merged statistics."""
        return not self.missing_shards

    @property
    def stderr_widening(self) -> float:
        """Factor by which standard errors widen versus the planned
        budget: ``sqrt(planned / effective)`` (1.0 for a complete run).
        Monte Carlo standard errors scale as ``1/sqrt(n)``, so a run
        degraded to half its trials carries ``sqrt(2)``-wider bars."""
        if self.n_trials <= 0:
            return float("inf")
        return math.sqrt(self.planned_trials / self.n_trials)

    @property
    def nets(self) -> Sequence[str]:
        return tuple(self._accumulators)

    def accumulator(self, net: str) -> NetAccumulator:
        return self._accumulators[net]

    def wave(self, net: str) -> LaunchSample:
        if net not in self._kept:
            raise KeyError(
                f"net {net!r} has no retained wave: streaming mode frees "
                f"waves after accumulation; pass keep_nets=[{net!r}] to "
                f"run_monte_carlo to retain it")
        return self._kept[net]

    def direction_stats(self, net: str, direction: str) -> DirectionStats:
        """Estimate (P, mean, std) for 'rise' or 'fall' at a net."""
        return self._accumulators[net].direction_stats(direction)

    def signal_probability(self, net: str) -> float:
        return self._accumulators[net].signal_probability

    def toggling_rate(self, net: str) -> float:
        return self._accumulators[net].toggling_rate

    @property
    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.shard_reports)

    @property
    def peak_wave_bytes(self) -> int:
        """Largest per-shard live-wave working set observed."""
        return max((r.peak_wave_bytes for r in self.shard_reports), default=0)

    def summary(self) -> str:
        """Human-readable run summary with per-shard counters."""
        lines = [
            f"streaming MC on {self.netlist_name}: {self.n_trials} trials, "
            f"{len(self.shard_reports)} shard(s), "
            f"{self.total_seconds * 1e3:.1f} ms shard CPU, "
            f"peak waves {self.peak_wave_bytes / 1024:.0f} KiB"]
        if not self.complete:
            cause = ("deadline expired" if self.deadline_expired
                     else "shards missing")
            lines.append(
                f"  PARTIAL ({cause}): {self.n_trials} of "
                f"{self.planned_trials} planned trials "
                f"({len(self.missing_shards)} shard(s) not run); "
                f"standard errors ~{self.stderr_widening:.2f}x wider")
        lines.extend("  " + r.format() for r in self.shard_reports)
        return "\n".join(lines)


class _BufferPool:
    """Recycles retired per-trial arrays so the hot loop stops allocating."""

    __slots__ = ("n_trials", "_bools", "_floats")

    def __init__(self, n_trials: int) -> None:
        self.n_trials = n_trials
        self._bools: List[np.ndarray] = []
        self._floats: List[np.ndarray] = []

    def take_bool(self) -> np.ndarray:
        return self._bools.pop() if self._bools else np.empty(
            self.n_trials, dtype=bool)

    def take_float(self) -> np.ndarray:
        return self._floats.pop() if self._floats else np.empty(
            self.n_trials, dtype=np.float64)

    def give(self, *arrays: np.ndarray) -> None:
        for array in arrays:
            if array.dtype == np.bool_:
                self._bools.append(array)
            else:
                self._floats.append(array)


def _stream_gate(gate_type: GateType, operands: Sequence[LaunchSample],
                 delay: Union[float, np.ndarray], pool: _BufferPool,
                 rise_out: np.ndarray, fall_out: np.ndarray,
                 tmp_bool: np.ndarray
                 ) -> Tuple[LaunchSample, np.ndarray, np.ndarray]:
    """The wave-engine gate rules, restated without redundant passes.

    Returns ``(wave, rise_mask, fall_mask)``; the masks live in the caller's
    scratch buffers.  Bit-exactness with :func:`_gate_wave` rests on two
    invariants: a wave's ``time`` is NaN exactly where ``init == final``
    (so ``fmax``/``fmin`` folds see only switching arrivals, reproducing the
    masked MIN/MAX reductions), and ``NaN + delay`` stays NaN (so the
    glitch-filter ``where`` is already encoded in the time array).
    """
    spec = gate_spec(gate_type)
    init = pool.take_bool()
    final = pool.take_bool()
    if len(operands) == 1:
        src = operands[0]
        time = pool.take_float()
        np.add(src.time, delay, out=time)
        if spec.inverting:
            np.logical_not(src.init, out=init)
            np.logical_not(src.final, out=final)
        else:
            np.copyto(init, src.init)
            np.copyto(final, src.final)
    elif spec.is_parity:
        time = pool.take_float()
        first, second = operands[0], operands[1]
        np.logical_xor(first.init, second.init, out=init)
        np.logical_xor(first.final, second.final, out=final)
        np.fmax(first.time, second.time, out=time)
        for other in operands[2:]:
            np.logical_xor(init, other.init, out=init)
            np.logical_xor(final, other.final, out=final)
            np.fmax(time, other.time, out=time)
        np.equal(init, final, out=tmp_bool)
        time[tmp_bool] = np.nan
        np.add(time, delay, out=time)
        if spec.inverting:
            np.logical_not(init, out=init)
            np.logical_not(final, out=final)
    else:
        and_core = spec.controlling_value == 0
        fold = np.logical_and if and_core else np.logical_or
        t_max = pool.take_float()
        t_min = pool.take_float()
        first, second = operands[0], operands[1]
        fold(first.init, second.init, out=init)
        fold(first.final, second.final, out=final)
        np.fmax(first.time, second.time, out=t_max)
        np.fmin(first.time, second.time, out=t_min)
        for other in operands[2:]:
            fold(init, other.init, out=init)
            fold(final, other.final, out=final)
            np.fmax(t_max, other.time, out=t_max)
            np.fmin(t_min, other.time, out=t_min)
        np.greater(final, init, out=rise_out)
        np.greater(init, final, out=fall_out)
        # Rise settles at the MAX (AND core) / MIN (OR core) switching
        # arrival; fall at the opposite extreme.
        time, t_other = (t_max, t_min) if and_core else (t_min, t_max)
        np.copyto(time, t_other, where=fall_out)
        np.logical_or(rise_out, fall_out, out=tmp_bool)
        np.logical_not(tmp_bool, out=tmp_bool)
        time[tmp_bool] = np.nan
        np.add(time, delay, out=time)
        pool.give(t_other)
        if spec.inverting:
            np.logical_not(init, out=init)
            np.logical_not(final, out=final)
            return (LaunchSample(init=init, final=final, time=time),
                    fall_out, rise_out)
        return (LaunchSample(init=init, final=final, time=time),
                rise_out, fall_out)
    np.greater(final, init, out=rise_out)
    np.greater(init, final, out=fall_out)
    return (LaunchSample(init=init, final=final, time=time),
            rise_out, fall_out)


def _stream_shard(netlist: Netlist,
                  stats: Union[InputStats, Mapping[str, InputStats]],
                  plan: ShardPlan,
                  delay_model: DelayModel,
                  samples: Optional[Dict[str, LaunchSample]],
                  keep_nets: Tuple[str, ...],
                  rng: Optional[np.random.Generator]
                  ) -> Tuple[Dict[str, NetAccumulator],
                             Dict[str, LaunchSample], ShardReport]:
    """Run one shard: sample (unless given), propagate, fold, retire."""
    t_start = _time.perf_counter()
    n_trials = plan.n_trials
    if rng is None:
        rng = np.random.default_rng(plan.seed)
    owns_samples = samples is None
    if samples is None:
        samples = sample_launch_points(netlist, stats, n_trials, rng)
    keep: Set[str] = set(keep_nets)
    meter = WaveMemoryMeter()
    pool = _BufferPool(n_trials)
    rise_scratch = np.empty(n_trials, dtype=bool)
    fall_scratch = np.empty(n_trials, dtype=bool)
    tmp_bool = np.empty(n_trials, dtype=bool)
    time_scratch = np.empty(n_trials, dtype=np.float64)
    refs: Dict[str, int] = {}
    for gate in netlist.combinational_gates:
        for src in gate.inputs:
            refs[src] = refs.get(src, 0) + 1
    accumulators: Dict[str, NetAccumulator] = {}
    waves: Dict[str, LaunchSample] = {}
    owned: Set[str] = set()
    kept: Dict[str, LaunchSample] = {}

    def retire(net: str) -> None:
        if refs.get(net, 0) == 0 and net in waves and net not in keep:
            wave = waves.pop(net)
            meter.released(wave.init, wave.final, wave.time)
            if net in owned:
                pool.give(wave.init, wave.final, wave.time)

    for net, wave in samples.items():
        meter.allocated(wave.init, wave.final, wave.time)
        np.greater(wave.final, wave.init, out=rise_scratch)
        np.greater(wave.init, wave.final, out=fall_scratch)
        accumulators[net] = NetAccumulator.from_arrays(
            wave.init, wave.final, wave.time, rise_scratch, fall_scratch,
            time_scratch)
        waves[net] = wave
        if owns_samples:
            owned.add(net)
        if net in keep:
            kept[net] = wave
        retire(net)
    mis_aware = hasattr(delay_model, "delay_mis")
    for gate in netlist.combinational_gates:
        operands = [waves[src] for src in gate.inputs]
        delay = _delay_draw(delay_model, gate, operands, n_trials, rng,
                            mis_aware)
        wave, rise, fall = _stream_gate(gate.gate_type, operands, delay,
                                        pool, rise_scratch, fall_scratch,
                                        tmp_bool)
        meter.allocated(wave.init, wave.final, wave.time)
        accumulators[gate.name] = NetAccumulator.from_arrays(
            wave.init, wave.final, wave.time, rise, fall, time_scratch)
        waves[gate.name] = wave
        owned.add(gate.name)
        if gate.name in keep:
            kept[gate.name] = wave
        for src in gate.inputs:
            refs[src] -= 1
            retire(src)
        retire(gate.name)
    report = ShardReport(index=plan.index, n_trials=n_trials,
                         seconds=_time.perf_counter() - t_start,
                         peak_wave_bytes=meter.peak_bytes)
    return accumulators, kept, report


#: The picklable payload handed to each shard worker.
_StreamPayload = Tuple[Netlist, Union[InputStats, Mapping[str, InputStats]],
                       ShardPlan, DelayModel,
                       Optional[Dict[str, LaunchSample]], Tuple[str, ...],
                       Optional[np.random.Generator]]

#: One shard's product: accumulators, kept waves, execution report.
_ShardResult = Tuple[Dict[str, NetAccumulator], Dict[str, LaunchSample],
                     ShardReport]


def _run_stream_shard(payload: _StreamPayload) -> _ShardResult:
    """Top-level (picklable) shard entry point for the process pool."""
    return _stream_shard(*payload)


def _slice_samples(samples: Dict[str, LaunchSample], offset: int,
                   n_trials: int) -> Dict[str, LaunchSample]:
    end = offset + n_trials
    return {net: LaunchSample(init=w.init[offset:end],
                              final=w.final[offset:end],
                              time=w.time[offset:end])
            for net, w in samples.items()}


def _run_stream(netlist: Netlist,
                stats: Union[InputStats, Mapping[str, InputStats]],
                n_trials: int,
                delay_model: DelayModel,
                rng: np.random.Generator,
                samples: Optional[Dict[str, LaunchSample]],
                shards: int,
                workers: int,
                keep_nets: Tuple[str, ...],
                retry: Optional[RetryPolicy] = None,
                deadline: Optional[float] = None,
                checkpoint: Optional[Union[str, Path]] = None,
                resume: bool = False,
                fault_injector: Optional[FaultInjector] = None
                ) -> StreamResult:
    known = set(netlist.nets)
    unknown = [net for net in keep_nets if net not in known]
    if unknown:
        raise ValueError(f"keep_nets name unknown nets: {unknown}")
    if samples is not None:
        have = next(iter(samples.values())).n_trials if samples else 0
        if have != n_trials:
            raise ValueError(
                f"samples hold {have} trials but n_trials={n_trials}")
    if resume and checkpoint is None:
        raise ValueError("resume=True requires a checkpoint directory")
    if checkpoint is not None and samples is not None:
        raise ValueError("checkpointing cannot fingerprint caller-supplied "
                         "launch samples; drop samples= or checkpoint=")
    if checkpoint is not None and keep_nets:
        raise ValueError("checkpoints persist accumulators only, so "
                         "keep_nets cannot survive a resume; drop one")
    # The store key must capture the root stream *before* plan_shards
    # spawns from it (for default_rng generators seed_sequence_of is a
    # pure read, so planning is unaffected).
    root_seed = (seed_sequence_of(rng) if checkpoint is not None else None)
    plans = plan_shards(n_trials, shards, rng)

    store: Optional[CheckpointStore] = None
    done: Dict[int, Tuple[Dict[str, NetAccumulator], ShardReport]] = {}
    if checkpoint is not None:
        key = CheckpointKey.build(netlist, stats, delay_model, root_seed,
                                  n_trials, len(plans))
        store = CheckpointStore(checkpoint, key)
        done = store.open(resume=resume)

    remaining = [plan for plan in plans if plan.index not in done]
    payloads: List[_StreamPayload] = []
    for plan in remaining:
        shard_samples = None
        if samples is not None:
            shard_samples = _slice_samples(samples, plan.offset,
                                           plan.n_trials)
        shard_rng = rng if plan.seed is None else None
        payloads.append((netlist, stats, plan, delay_model, shard_samples,
                         keep_nets, shard_rng))
    worker = (_run_stream_shard if fault_injector is None
              else fault_injector.wrap(_run_stream_shard))

    kept_parts: Dict[int, Dict[str, LaunchSample]] = {}

    def collect(position: int, result: _ShardResult, attempts: int) -> None:
        """Runs the moment a shard completes: record (and persist) it so a
        later shard failure or kill cannot lose the work."""
        accumulators, kept_waves, report = result
        if attempts != report.attempts:
            report = dataclasses.replace(report, attempts=attempts)
        index = remaining[position].index
        if store is not None:
            store.save_shard(index, accumulators, report)
        done[index] = (accumulators, report)
        if keep_nets:
            kept_parts[index] = kept_waves

    run = run_shards_resilient(worker, payloads, workers, retry=retry,
                               deadline=deadline, on_result=collect,
                               always_run_first=not done)
    if not done:
        raise RuntimeError(
            f"deadline expired before any of the {len(plans)} shards "
            f"completed; no statistics to merge — raise --deadline")
    completed = sorted(done)
    missing = tuple(plan.index for plan in plans if plan.index not in done)
    # Fixed merge order (ascending shard index) regardless of which shards
    # came from checkpoints and which just ran: the bit-exact-resume
    # guarantee.
    accumulators = merge_accumulators([done[i][0] for i in completed])
    reports = tuple(done[i][1] for i in completed)
    effective = sum(plans[i].n_trials for i in completed)
    kept: Dict[str, LaunchSample] = {}
    if keep_nets and kept_parts:
        order = [i for i in completed if i in kept_parts]
        if len(order) == 1:
            kept = kept_parts[order[0]]
        else:
            for net in keep_nets:
                parts = [kept_parts[i][net] for i in order]
                kept[net] = LaunchSample(
                    init=np.concatenate([p.init for p in parts]),
                    final=np.concatenate([p.final for p in parts]),
                    time=np.concatenate([p.time for p in parts]))
    return StreamResult(netlist.name, effective, accumulators, reports,
                        kept, planned_trials=n_trials,
                        missing_shards=missing,
                        deadline_expired=run.deadline_expired)
