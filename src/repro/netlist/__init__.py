"""Gate-level netlist substrate.

- :mod:`repro.netlist.core` — the netlist data model (gates, nets, DFF
  boundaries, topological order, levelization, validation).
- :mod:`repro.netlist.bench` — ISCAS'89 ``.bench`` format parser and writer.
- :mod:`repro.netlist.generator` — deterministic synthetic generator for
  ISCAS'89-profile sequential circuits (see DESIGN.md substitution table).
- :mod:`repro.netlist.benchmarks` — the benchmark suite used by the paper's
  evaluation: the bundled genuine ``s27`` plus synthetic s208..s1238.
- :mod:`repro.netlist.analysis` — structural analyses (depth, critical
  endpoints, fan-in cones, circuit statistics).
"""

from repro.netlist.analysis import (
    CircuitStats,
    circuit_stats,
    critical_endpoint,
    fanin_cone,
    net_depths,
)
from repro.netlist.bench import parse_bench, parse_bench_file, write_bench
from repro.netlist.benchmarks import benchmark_circuit, benchmark_names
from repro.netlist.core import Gate, Netlist
from repro.netlist.generator import GeneratorProfile, generate_circuit

__all__ = [
    "Gate",
    "Netlist",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "GeneratorProfile",
    "generate_circuit",
    "benchmark_circuit",
    "benchmark_names",
    "net_depths",
    "critical_endpoint",
    "fanin_cone",
    "circuit_stats",
    "CircuitStats",
]
