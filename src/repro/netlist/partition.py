"""Netlist partitioning for hierarchical analysis (see :mod:`repro.hier`).

SPSTA's cycle-based model re-asserts fresh launch statistics at every DFF
output, so sequential elements already cut the timing graph: the only
dependencies between partitions of the *combinational* gate graph are
combinational nets crossing a cut.  The partitioner exploits this in two
layers:

1. **Register-boundary cut** — the weakly-connected components of the
   combinational gate graph (edges are gate-driven nets only; shared
   launch points impose no ordering) are the natural atomic units.  When
   the netlist decomposes into at least as many components as requested
   regions, components are bin-packed into regions and the region DAG has
   *no* edges — every region can be analyzed independently.

2. **Level-band min-cut fallback** — a monolithic combinational blob is
   split along logic-level bands, choosing the cut levels with the fewest
   crossing gate-driven nets (all timing-graph edges point from lower to
   higher levels, so any level cut is a valid DAG cut).  Crossing nets
   become boundary pins: the upstream region exports their TOPs, the
   downstream region seeds them via ``run_spsta(..., seed_tops=...)``.

Every region materializes as an ordinary :class:`~repro.netlist.core.Netlist`
whose primary inputs are its boundary-in pins, so the existing engines run
per region unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.logic.gates import GateType
from repro.netlist.core import Gate, Netlist


@dataclass(frozen=True)
class Region:
    """One partition of the combinational gate graph.

    ``gates`` lists the member gate names in full-netlist topological
    order.  ``inputs`` are the nets read but not driven inside the region
    — genuine launch points of the parent netlist plus cut nets driven by
    upstream regions; ``cut_inputs`` is the latter subset.  ``outputs``
    are the region-driven nets visible outside: cut nets read by other
    regions, endpoint nets, and dangling gate outputs (so the sub-netlist
    observes everything the flat analysis would).
    """

    index: int
    gates: Tuple[str, ...]
    inputs: Tuple[str, ...]
    cut_inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]

    @property
    def n_gates(self) -> int:
        return len(self.gates)

    @property
    def boundary_width(self) -> int:
        """Total boundary pins — the size of the region's interface."""
        return len(self.inputs) + len(self.outputs)


@dataclass(frozen=True)
class Partition:
    """A full partitioning: regions plus the region dependency DAG.

    ``edges`` holds ``(producer, consumer)`` region-index pairs — consumer
    regions seed the producer's exported TOPs at their cut pins.  ``waves``
    groups region indices by DAG depth: all regions of one wave are
    mutually independent and may run concurrently.
    """

    netlist_name: str
    regions: Tuple[Region, ...]
    edges: Tuple[Tuple[int, int], ...]
    waves: Tuple[Tuple[int, ...], ...] = field(default=())

    @property
    def n_regions(self) -> int:
        return len(self.regions)

    @property
    def max_boundary_width(self) -> int:
        return max((r.boundary_width for r in self.regions), default=0)

    def summary(self) -> str:
        lines = [f"partition of {self.netlist_name}: "
                 f"{self.n_regions} regions, {len(self.edges)} edges, "
                 f"{len(self.waves)} waves"]
        for region in self.regions:
            lines.append(
                f"  region {region.index}: {region.n_gates} gates, "
                f"{len(region.inputs)} in ({len(region.cut_inputs)} cut), "
                f"{len(region.outputs)} out")
        return "\n".join(lines)


def subnetlist(netlist: Netlist, region: Region) -> Netlist:
    """Materialize one region as a standalone :class:`Netlist`.

    Boundary-in pins become primary inputs; region gates keep their names
    and connectivity, so per-net results transfer back verbatim.
    """
    gates = [netlist.gates[name] for name in region.gates]
    return Netlist(f"{netlist.name}#r{region.index}",
                   region.inputs, region.outputs, gates)


@dataclass(frozen=True)
class RegionView:
    """Validation-free view of a region, for content addressing.

    Exposes exactly the :class:`~repro.netlist.core.Netlist` attributes
    the interface-model digests consume.  Building a real sub-netlist
    re-runs structural validation and topological sorting per region —
    at a million gates that alone costs more than analyzing a cached
    region — so the scheduler hashes this view and only materializes
    :func:`subnetlist` for regions it actually dispatches.  ``gates``
    keeps the region's member order, which is the parent netlist's
    topological order restricted to the region (itself a valid
    topological order, and identical across isomorphic regions).
    """

    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    combinational_gates: Tuple[Gate, ...]


def region_view(netlist: Netlist, region: Region) -> RegionView:
    """The digestable :class:`RegionView` of ``region``."""
    return RegionView(
        inputs=region.inputs, outputs=region.outputs,
        combinational_gates=tuple(netlist.gates[name]
                                  for name in region.gates))


def _components(comb: Sequence[Gate],
                driven: Set[str]) -> List[List[int]]:
    """Weakly-connected components over gate-driven-net edges.

    Union-find over gate positions; two gates connect iff one reads the
    net the other drives.  Launch points are not ``driven`` and never
    merge components (their TOPs are asserted, not propagated).
    """
    parent = list(range(len(comb)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    position = {gate.name: i for i, gate in enumerate(comb)}
    for i, gate in enumerate(comb):
        for src in gate.inputs:
            if src in driven:
                union(i, position[src])
    buckets: Dict[int, List[int]] = {}
    for i in range(len(comb)):
        buckets.setdefault(find(i), []).append(i)
    # Deterministic order: by first (topologically earliest) member.
    return sorted(buckets.values(), key=lambda members: members[0])


def _pack_components(components: List[List[int]],
                     n_regions: int) -> List[List[int]]:
    """Longest-processing-time bin-packing of components into regions.

    Components are placed largest-first onto the lightest bin (ties by
    bin index), which keeps replicated-tile workloads balanced *and*
    deterministic; member lists stay topologically sorted.
    """
    bins: List[List[int]] = [[] for _ in range(n_regions)]
    loads = [0] * n_regions
    order = sorted(range(len(components)),
                   key=lambda c: (-len(components[c]), c))
    for c in order:
        target = min(range(n_regions), key=lambda b: (loads[b], b))
        bins[target].extend(components[c])
        loads[target] += len(components[c])
    packed = [sorted(members) for members in bins if members]
    return sorted(packed, key=lambda members: members[0])


def _level_bands(comb: Sequence[Gate], members: List[int],
                 levels: Dict[str, int], n_bands: int) -> List[List[int]]:
    """Split one component into level bands minimizing crossing nets.

    ``crossing[c]`` counts gate-driven nets produced at level <= c and
    consumed above it; the ``n_bands - 1`` cheapest distinct cut levels
    (that leave every band non-empty) become the band edges.
    """
    if n_bands <= 1 or len(members) <= 1:
        return [members]
    member_set = {comb[i].name for i in members}
    max_level = max(levels[comb[i].name] for i in members)
    if max_level < 2:
        return [members]
    # crossing[c] = nets driven at level <= c with a consumer at level > c;
    # derived from the max consumer level of each driven net.
    crossing = [0] * max_level
    max_consumer: Dict[str, int] = {}
    for i in members:
        gate = comb[i]
        for src in gate.inputs:
            if src in member_set:
                lvl = levels[gate.name]
                if lvl > max_consumer.get(src, -1):
                    max_consumer[src] = lvl
    for name, top in max_consumer.items():
        for c in range(levels[name], min(top, max_level)):
            if 1 <= c <= max_level - 1:
                crossing[c] += 1
    candidates = sorted(range(1, max_level),
                        key=lambda c: (crossing[c], c))
    cuts = sorted(candidates[:min(n_bands - 1, len(candidates))])
    bands: List[List[int]] = [[] for _ in range(len(cuts) + 1)]
    for i in members:
        lvl = levels[comb[i].name]
        band = 0
        for cut in cuts:
            if lvl > cut:
                band += 1
            else:
                break
        bands[band].append(i)
    return [band for band in bands if band]


def partition_netlist(netlist: Netlist, n_regions: int) -> Partition:
    """Cut ``netlist`` into at most ``n_regions`` regions.

    Register boundaries come for free (DFF outputs restart as launch
    points); independent combinational components are bin-packed, and a
    too-coarse decomposition falls back to level-band cuts of the largest
    regions (see module docstring).  The result always has between 1 and
    ``n_regions`` regions, each non-empty, covering every combinational
    gate exactly once.
    """
    if n_regions < 1:
        raise ValueError(f"n_regions must be >= 1, got {n_regions}")
    comb = netlist.combinational_gates
    if not comb:
        raise ValueError(
            f"{netlist.name} has no combinational gates to partition")
    n_regions = min(n_regions, len(comb))
    driven = {gate.name for gate in comb}
    components = _components(comb, driven)

    if len(components) >= n_regions:
        groups = _pack_components(components, n_regions)
    else:
        # Too few components: split the largest ones along level bands
        # until the region budget is met (or no component can split).
        levels = {gate.name: lvl
                  for lvl, level in enumerate(netlist.levels)
                  for gate in level}
        groups = list(components)
        while len(groups) < n_regions:
            groups.sort(key=lambda members: (-len(members), members[0]))
            largest = groups[0]
            want = n_regions - len(groups) + 1
            bands = _level_bands(comb, largest, levels, want)
            if len(bands) <= 1:
                break
            groups = bands + groups[1:]
        groups = sorted((sorted(members) for members in groups),
                        key=lambda members: members[0])

    return _build_partition(netlist, comb, groups)


def _build_partition(netlist: Netlist, comb: Sequence[Gate],
                     groups: List[List[int]]) -> Partition:
    """Assemble regions, boundary pins, DAG edges, and waves."""
    region_of: Dict[str, int] = {}
    for r, members in enumerate(groups):
        for i in members:
            region_of[comb[i].name] = r
    endpoints = set(netlist.endpoints)
    # External readers: DFF data pins read combinational nets too.
    dff_reads = {g.inputs[0] for g in netlist.dffs}

    regions: List[Region] = []
    edges: Set[Tuple[int, int]] = set()
    for r, members in enumerate(groups):
        names = tuple(comb[i].name for i in members)
        inside = set(names)
        inputs: List[str] = []
        cut_inputs: List[str] = []
        seen_in: Set[str] = set()
        for i in members:
            for src in comb[i].inputs:
                if src in inside or src in seen_in:
                    continue
                seen_in.add(src)
                inputs.append(src)
                producer = region_of.get(src)
                if producer is not None:
                    cut_inputs.append(src)
                    edges.add((producer, r))
        outputs: List[str] = []
        for i in members:
            name = comb[i].name
            exported = (name in endpoints or name in dff_reads
                        or any(region_of.get(sink) != r
                               for sink in netlist.fanouts(name)))
            # Dangling outputs stay observable (sub-netlist validity).
            if exported or not netlist.fanouts(name):
                outputs.append(name)
        regions.append(Region(index=r, gates=names,
                              inputs=tuple(sorted(inputs)),
                              cut_inputs=tuple(sorted(cut_inputs)),
                              outputs=tuple(outputs)))

    # Longest-path wave assignment over the region DAG.
    depth = [0] * len(groups)
    changed = True
    while changed:
        changed = False
        for producer, consumer in edges:
            if depth[consumer] < depth[producer] + 1:
                depth[consumer] = depth[producer] + 1
                changed = True
    waves: Dict[int, List[int]] = {}
    for r, d in enumerate(depth):
        waves.setdefault(d, []).append(r)
    wave_tuple = tuple(tuple(sorted(waves[d])) for d in sorted(waves))
    return Partition(netlist_name=netlist.name,
                     regions=tuple(regions),
                     edges=tuple(sorted(edges)),
                     waves=wave_tuple)
