"""Deterministic generator for ISCAS'89-profile sequential circuits.

The paper evaluates on the ISCAS'89 suite, whose netlists are not bundled
here; per DESIGN.md we substitute synthetic circuits that match each
benchmark's published *structural profile* — primary input / output / DFF /
gate counts, gate-type mix, fan-in distribution — and a logic depth chosen so
the unit-delay critical path matches what Table 2 implies.  The experiment
only exercises structure (unit delays, independent random inputs, statistics
along the deepest path), so a profile-matched circuit drives the identical
code paths.

The construction is layered:

1. lay down a *spine* — a chain of gates of length ``depth`` so the target
   depth is achieved exactly;
2. scatter the remaining gates over levels 1..depth, each drawing at least
   one fan-in from the previous level (keeping levels meaningful) and the
   rest from any earlier level;
3. connect DFF data inputs and primary outputs preferentially to otherwise
   unused gate outputs, then stitch any remaining dangling outputs into
   downstream gates, so (almost) every net is observable.

Generation is a pure function of the :class:`GeneratorProfile` (seeded RNG),
so benchmark circuits are bit-identical across runs and machines.
"""

from __future__ import annotations

from dataclasses import dataclass
import random
from typing import Dict, List

from repro.logic.gates import GateType
from repro.netlist.core import Gate, Netlist

# Gate-type mix modeled on the ISCAS'89 suite (NAND/NOR heavy, few XORs
# except in the parity-laden s1196/s1238 family).
_MULTI_INPUT_TYPES = (GateType.NAND, GateType.NOR, GateType.AND, GateType.OR)
_MULTI_INPUT_WEIGHTS = (0.35, 0.25, 0.20, 0.20)
_SINGLE_INPUT_TYPES = (GateType.NOT, GateType.BUFF)
_SINGLE_INPUT_WEIGHTS = (0.8, 0.2)
_FANIN_CHOICES = (1, 2, 3, 4)
_FANIN_WEIGHTS = (0.15, 0.55, 0.20, 0.10)
_MAX_FANIN = 5


@dataclass(frozen=True)
class GeneratorProfile:
    """Structural recipe for one synthetic circuit."""

    name: str
    n_inputs: int
    n_outputs: int
    n_dffs: int
    n_gates: int
    depth: int
    seed: int
    xor_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.n_inputs < 1:
            raise ValueError("need at least one primary input")
        if self.n_outputs < 1:
            raise ValueError("need at least one primary output")
        if self.depth < 1:
            raise ValueError("depth must be >= 1")
        if self.n_gates < self.depth:
            raise ValueError(
                f"{self.name}: n_gates ({self.n_gates}) must cover the "
                f"spine depth ({self.depth})")
        if not 0.0 <= self.xor_fraction <= 1.0:
            raise ValueError("xor_fraction must be in [0, 1]")


def generate_circuit(profile: GeneratorProfile) -> Netlist:
    """Build the synthetic netlist for ``profile`` (deterministic)."""
    rng = random.Random(profile.seed)
    counter = 0

    def fresh(prefix: str) -> str:
        nonlocal counter
        counter += 1
        return f"{prefix}{counter}"

    inputs = [fresh("I") for _ in range(profile.n_inputs)]
    dff_outputs = [fresh("L") for _ in range(profile.n_dffs)]

    # levels[d] = nets whose unit-delay depth is exactly d.
    levels: Dict[int, List[str]] = {0: list(inputs) + list(dff_outputs)}
    gates: List[Gate] = []
    consumed: set = set()  # nets already read by some gate

    def pick_gate_type(fanin: int) -> GateType:
        if fanin == 1:
            return rng.choices(_SINGLE_INPUT_TYPES,
                               _SINGLE_INPUT_WEIGHTS)[0]
        if profile.xor_fraction > 0.0 and rng.random() < profile.xor_fraction:
            return rng.choice((GateType.XOR, GateType.XNOR))
        return rng.choices(_MULTI_INPUT_TYPES, _MULTI_INPUT_WEIGHTS)[0]

    def earlier_net(level: int) -> str:
        """A random net from any level strictly below ``level``, biased to
        recent levels (connected cones) and to not-yet-consumed nets (so few
        gate outputs end up dangling)."""
        candidate_levels = [d for d in range(level) if levels.get(d)]
        weights = [1.0 + 3.0 * d / max(level, 1) for d in candidate_levels]
        chosen = rng.choices(candidate_levels, weights)[0]
        pool = levels[chosen]
        unused = [n for n in pool if n not in consumed]
        if unused and rng.random() < 0.7:
            return rng.choice(unused)
        return rng.choice(pool)

    def prev_level_net(level: int) -> str:
        pool = levels[level - 1]
        unused = [n for n in pool if n not in consumed]
        if unused and rng.random() < 0.7:
            return rng.choice(unused)
        return rng.choice(pool)

    def add_gate(level: int, force_input: str = "") -> Gate:
        fanin = rng.choices(_FANIN_CHOICES, _FANIN_WEIGHTS)[0]
        gate_type = pick_gate_type(fanin)
        sources = [force_input or prev_level_net(level)]
        while len(sources) < fanin:
            net = earlier_net(level)
            if net not in sources:
                sources.append(net)
            elif rng.random() < 0.25:
                break  # tolerate an occasional smaller fan-in
        gate = Gate(fresh("G"), gate_type, tuple(sources))
        gates.append(gate)
        consumed.update(sources)
        levels.setdefault(level, []).append(gate.name)
        return gate

    # 1. the spine guarantees the target depth exactly and mimics how the
    #    real suite's critical paths behave: transitions actually propagate
    #    to the deep endpoint, arriving roughly `depth` units late.
    #
    #    Spine gates are inverter-rich (transitions pass unconditionally);
    #    each 2-input spine gate at level k draws its side operand from a
    #    dedicated independent buffer/inverter chain of length ~ k-1, rooted
    #    at a fresh source.  This keeps every path to the spine top close to
    #    full depth (so the conditional arrival mean tracks depth, with a
    #    small length jitter supplying the arrival-time spread) and keeps
    #    the spine cone free of reconvergence (reusing a source at two spine
    #    levels with opposite polarity requirements would structurally block
    #    the path: a transition ANDed with its own complement never
    #    propagates).
    spine_names: set = set()
    spine_side_used: set = set()

    def fresh_source() -> str:
        pool = [n for n in levels[0] if n not in spine_side_used]
        net = rng.choice(pool or levels[0])
        spine_side_used.add(net)
        return net

    def side_chain(target_level: int) -> str:
        """An independent NOT/BUFF chain ending at ~``target_level``."""
        length = max(target_level - rng.randint(0, 3), 0)
        net = fresh_source()
        for step in range(1, length + 1):
            gate_type = rng.choices(_SINGLE_INPUT_TYPES,
                                    _SINGLE_INPUT_WEIGHTS)[0]
            gate = Gate(fresh("G"), gate_type, (net,))
            gates.append(gate)
            consumed.add(net)
            levels.setdefault(step, []).append(gate.name)
            spine_names.add(gate.name)
            net = gate.name
        return net

    spine_prev = fresh_source()
    for level in range(1, profile.depth + 1):
        fanin = rng.choices((1, 2), (0.6, 0.4))[0]
        gate_type = pick_gate_type(fanin)
        sources = [spine_prev]
        if fanin == 2:
            side = side_chain(level - 1)
            if side != spine_prev:
                sources.append(side)
            else:
                gate_type = pick_gate_type(1)
        gate = Gate(fresh("G"), gate_type, tuple(sources))
        gates.append(gate)
        consumed.update(sources)
        levels.setdefault(level, []).append(gate.name)
        spine_prev = gate.name
        spine_names.add(gate.name)

    # 2. scatter the remaining gates; every level keeps at least the spine
    #    gate, so `levels[level - 1]` is always non-empty.
    remaining = max(profile.n_gates - len(gates), 0)
    # Scatter stays below the spine top so the full-depth endpoint is unique
    # (every analyzer then reports the same, transition-friendly critical
    # path).  Bias toward shallow levels: deep gates have no room for
    # downstream consumers and would otherwise all become dangling outputs.
    top_scatter = max(profile.depth - 1, 1)
    level_weights = [float(top_scatter - lvl + 1)
                     for lvl in range(1, top_scatter + 1)]
    for _ in range(remaining):
        level = rng.choices(range(1, top_scatter + 1), level_weights)[0]
        add_gate(level)

    # 3. sinks: DFF data inputs and primary outputs prefer unused outputs.
    used: set = set()
    for gate in gates:
        used.update(gate.inputs)
    dangling = [g.name for g in gates if g.name not in used]
    rng.shuffle(dangling)
    deepest = max(levels), levels[max(levels)]

    dff_gates: List[Gate] = []
    for ff_out in dff_outputs:
        data = dangling.pop() if dangling else rng.choice(gates).name
        dff_gates.append(Gate(ff_out, GateType.DFF, (data,)))

    outputs: List[str] = []
    spine_top = spine_prev  # the full-depth net: always observable
    outputs.append(spine_top)
    while len(outputs) < profile.n_outputs:
        if dangling:
            net = dangling.pop()
        else:
            net = rng.choice(deepest[1] + [g.name for g in gates])
        if net not in outputs:
            outputs.append(net)

    # 4. stitch leftover dangling outputs into downstream gates (fan-in cap),
    #    so the circuit has no unobservable logic.
    if dangling:
        gate_level = {net: lvl for lvl, nets in levels.items()
                      for net in nets}
        by_name = {g.name: g for g in gates}
        for net in dangling:
            lvl = gate_level.get(net, 0)
            # Select hosts from the *current* gate map: a host patched for an
            # earlier dangling net must keep that net when patched again.
            hosts = [g for g in by_name.values()
                     if gate_level.get(g.name, 0) > lvl
                     and len(g.inputs) < _MAX_FANIN
                     and g.gate_type not in (GateType.NOT, GateType.BUFF)
                     and g.name not in spine_names  # keep the spine clean
                     and net not in g.inputs]
            if hosts:
                host = rng.choice(sorted(hosts, key=lambda g: g.name))
                by_name[host.name] = Gate(host.name, host.gate_type,
                                          host.inputs + (net,))
            elif net not in outputs:
                outputs.append(net)  # last resort: observe it as a PO
        gates = [by_name[g.name] for g in gates]

    return Netlist(profile.name, inputs, outputs, gates + dff_gates)
