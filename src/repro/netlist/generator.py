"""Deterministic generator for ISCAS'89-profile sequential circuits.

The paper evaluates on the ISCAS'89 suite, whose netlists are not bundled
here; per DESIGN.md we substitute synthetic circuits that match each
benchmark's published *structural profile* — primary input / output / DFF /
gate counts, gate-type mix, fan-in distribution — and a logic depth chosen so
the unit-delay critical path matches what Table 2 implies.  The experiment
only exercises structure (unit delays, independent random inputs, statistics
along the deepest path), so a profile-matched circuit drives the identical
code paths.

The construction is layered:

1. lay down a *spine* — a chain of gates of length ``depth`` so the target
   depth is achieved exactly;
2. scatter the remaining gates over levels 1..depth, each drawing at least
   one fan-in from the previous level (keeping levels meaningful) and the
   rest from any earlier level;
3. connect DFF data inputs and primary outputs preferentially to otherwise
   unused gate outputs, then stitch any remaining dangling outputs into
   downstream gates, so (almost) every net is observable.

Generation is a pure function of the :class:`GeneratorProfile` (seeded RNG),
so benchmark circuits are bit-identical across runs and machines.
"""

from __future__ import annotations

from dataclasses import dataclass
import random
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.logic.gates import GateType
from repro.netlist.core import Gate, Netlist

# Gate-type mix modeled on the ISCAS'89 suite (NAND/NOR heavy, few XORs
# except in the parity-laden s1196/s1238 family).
_MULTI_INPUT_TYPES = (GateType.NAND, GateType.NOR, GateType.AND, GateType.OR)
_MULTI_INPUT_WEIGHTS = (0.35, 0.25, 0.20, 0.20)
_SINGLE_INPUT_TYPES = (GateType.NOT, GateType.BUFF)
_SINGLE_INPUT_WEIGHTS = (0.8, 0.2)
_FANIN_CHOICES = (1, 2, 3, 4)
_FANIN_WEIGHTS = (0.15, 0.55, 0.20, 0.10)
_MAX_FANIN = 5


@dataclass(frozen=True)
class GeneratorProfile:
    """Structural recipe for one synthetic circuit."""

    name: str
    n_inputs: int
    n_outputs: int
    n_dffs: int
    n_gates: int
    depth: int
    seed: int
    xor_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.n_inputs < 1:
            raise ValueError("need at least one primary input")
        if self.n_outputs < 1:
            raise ValueError("need at least one primary output")
        if self.depth < 1:
            raise ValueError("depth must be >= 1")
        if self.n_gates < self.depth:
            raise ValueError(
                f"{self.name}: n_gates ({self.n_gates}) must cover the "
                f"spine depth ({self.depth})")
        if not 0.0 <= self.xor_fraction <= 1.0:
            raise ValueError("xor_fraction must be in [0, 1]")


def generate_circuit(profile: GeneratorProfile) -> Netlist:
    """Build the synthetic netlist for ``profile`` (deterministic).

    The construction keeps incremental indexes instead of rebuilding
    per-gate scans — the not-yet-consumed net pool of each level, the
    level-weight vectors of ``earlier_net``, and the stitching host
    candidates are all maintained as gates land.  Every random draw
    happens in the same order with the same arguments as the historical
    per-gate-scan construction, so the output netlist is bit-identical
    for any profile (pinned by ``tests/test_generator_equivalence.py``).
    """
    rng = random.Random(profile.seed)
    counter = 0

    def fresh(prefix: str) -> str:
        nonlocal counter
        counter += 1
        return f"{prefix}{counter}"

    inputs = [fresh("I") for _ in range(profile.n_inputs)]
    dff_outputs = [fresh("L") for _ in range(profile.n_dffs)]

    # levels[d] = nets whose unit-delay depth is exactly d.
    levels: Dict[int, List[str]] = {0: list(inputs) + list(dff_outputs)}
    gates: List[Gate] = []
    consumed: Set[str] = set()  # nets already read by some gate

    # Incremental indexes (pure bookkeeping — no RNG involvement):
    # per-level insertion-ordered pools of unconsumed nets (dict order ==
    # append-order-filtered list, so draws match the historical
    # ``[n for n in pool if n not in consumed]`` rebuild), with a lazily
    # materialized list cache, plus the level of every net and a version
    # counter for the hoisted ``earlier_net`` weight vectors.
    level_of: Dict[str, int] = {net: 0 for net in levels[0]}
    unused_pools: Dict[int, Dict[str, None]] = {
        0: dict.fromkeys(levels[0])}
    unused_cache: Dict[int, List[str]] = {}
    levels_version = 0
    weights_cache: Dict[int, Tuple[int, List[int], List[float]]] = {}

    def register(net: str, level: int) -> None:
        nonlocal levels_version
        pool = levels.get(level)
        if pool is None:
            levels[level] = pool = []
            levels_version += 1
        pool.append(net)
        level_of[net] = level
        if net not in consumed:
            unused_pools.setdefault(level, {})[net] = None
            unused_cache.pop(level, None)

    def consume(nets: List[str]) -> None:
        for net in nets:
            if net in consumed:
                continue
            consumed.add(net)
            level = level_of[net]
            pool = unused_pools.get(level)
            if pool is not None and net in pool:
                del pool[net]
                unused_cache.pop(level, None)

    def unused_at(level: int) -> List[str]:
        cached = unused_cache.get(level)
        if cached is None:
            cached = list(unused_pools.get(level, ()))
            unused_cache[level] = cached
        return cached

    def pick_gate_type(fanin: int) -> GateType:
        if fanin == 1:
            return rng.choices(_SINGLE_INPUT_TYPES,
                               _SINGLE_INPUT_WEIGHTS)[0]
        if profile.xor_fraction > 0.0 and rng.random() < profile.xor_fraction:
            return rng.choice((GateType.XOR, GateType.XNOR))
        return rng.choices(_MULTI_INPUT_TYPES, _MULTI_INPUT_WEIGHTS)[0]

    def earlier_net(level: int) -> str:
        """A random net from any level strictly below ``level``, biased to
        recent levels (connected cones) and to not-yet-consumed nets (so few
        gate outputs end up dangling)."""
        entry = weights_cache.get(level)
        if entry is None or entry[0] != levels_version:
            candidate_levels = [d for d in range(level) if levels.get(d)]
            weights = [1.0 + 3.0 * d / max(level, 1)
                       for d in candidate_levels]
            entry = (levels_version, candidate_levels, weights)
            weights_cache[level] = entry
        _, candidate_levels, weights = entry
        chosen = rng.choices(candidate_levels, weights)[0]
        pool = levels[chosen]
        unused = unused_at(chosen)
        if unused and rng.random() < 0.7:
            return rng.choice(unused)
        return rng.choice(pool)

    def prev_level_net(level: int) -> str:
        pool = levels[level - 1]
        unused = unused_at(level - 1)
        if unused and rng.random() < 0.7:
            return rng.choice(unused)
        return rng.choice(pool)

    def add_gate(level: int, force_input: str = "") -> Gate:
        fanin = rng.choices(_FANIN_CHOICES, _FANIN_WEIGHTS)[0]
        gate_type = pick_gate_type(fanin)
        sources = [force_input or prev_level_net(level)]
        while len(sources) < fanin:
            net = earlier_net(level)
            if net not in sources:
                sources.append(net)
            elif rng.random() < 0.25:
                break  # tolerate an occasional smaller fan-in
        gate = Gate(fresh("G"), gate_type, tuple(sources))
        gates.append(gate)
        consume(sources)
        register(gate.name, level)
        return gate

    # 1. the spine guarantees the target depth exactly and mimics how the
    #    real suite's critical paths behave: transitions actually propagate
    #    to the deep endpoint, arriving roughly `depth` units late.
    #
    #    Spine gates are inverter-rich (transitions pass unconditionally);
    #    each 2-input spine gate at level k draws its side operand from a
    #    dedicated independent buffer/inverter chain of length ~ k-1, rooted
    #    at a fresh source.  This keeps every path to the spine top close to
    #    full depth (so the conditional arrival mean tracks depth, with a
    #    small length jitter supplying the arrival-time spread) and keeps
    #    the spine cone free of reconvergence (reusing a source at two spine
    #    levels with opposite polarity requirements would structurally block
    #    the path: a transition ANDed with its own complement never
    #    propagates).
    spine_names: set = set()
    spine_side_used: set = set()

    def fresh_source() -> str:
        pool = [n for n in levels[0] if n not in spine_side_used]
        net = rng.choice(pool or levels[0])
        spine_side_used.add(net)
        return net

    def side_chain(target_level: int) -> str:
        """An independent NOT/BUFF chain ending at ~``target_level``."""
        length = max(target_level - rng.randint(0, 3), 0)
        net = fresh_source()
        for step in range(1, length + 1):
            gate_type = rng.choices(_SINGLE_INPUT_TYPES,
                                    _SINGLE_INPUT_WEIGHTS)[0]
            gate = Gate(fresh("G"), gate_type, (net,))
            gates.append(gate)
            consume([net])
            register(gate.name, step)
            spine_names.add(gate.name)
            net = gate.name
        return net

    spine_prev = fresh_source()
    for level in range(1, profile.depth + 1):
        fanin = rng.choices((1, 2), (0.6, 0.4))[0]
        gate_type = pick_gate_type(fanin)
        sources = [spine_prev]
        if fanin == 2:
            side = side_chain(level - 1)
            if side != spine_prev:
                sources.append(side)
            else:
                gate_type = pick_gate_type(1)
        gate = Gate(fresh("G"), gate_type, tuple(sources))
        gates.append(gate)
        consume(sources)
        register(gate.name, level)
        spine_prev = gate.name
        spine_names.add(gate.name)

    # 2. scatter the remaining gates; every level keeps at least the spine
    #    gate, so `levels[level - 1]` is always non-empty.
    remaining = max(profile.n_gates - len(gates), 0)
    # Scatter stays below the spine top so the full-depth endpoint is unique
    # (every analyzer then reports the same, transition-friendly critical
    # path).  Bias toward shallow levels: deep gates have no room for
    # downstream consumers and would otherwise all become dangling outputs.
    top_scatter = max(profile.depth - 1, 1)
    level_weights = [float(top_scatter - lvl + 1)
                     for lvl in range(1, top_scatter + 1)]
    for _ in range(remaining):
        level = rng.choices(range(1, top_scatter + 1), level_weights)[0]
        add_gate(level)

    # 3. sinks: DFF data inputs and primary outputs prefer unused outputs.
    # ``consumed`` is exactly the union of all gate fan-ins by construction.
    dangling = [g.name for g in gates if g.name not in consumed]
    rng.shuffle(dangling)
    deepest = max(levels), levels[max(levels)]

    dff_gates: List[Gate] = []
    for ff_out in dff_outputs:
        data = dangling.pop() if dangling else rng.choice(gates).name
        dff_gates.append(Gate(ff_out, GateType.DFF, (data,)))

    outputs: List[str] = []
    spine_top = spine_prev  # the full-depth net: always observable
    outputs.append(spine_top)
    while len(outputs) < profile.n_outputs:
        if dangling:
            net = dangling.pop()
        else:
            net = rng.choice(deepest[1] + [g.name for g in gates])
        if net not in outputs:
            outputs.append(net)

    # 4. stitch leftover dangling outputs into downstream gates (fan-in cap),
    #    so the circuit has no unobservable logic.  Host candidates (multi-
    #    input, off-spine, under the fan-in cap) are indexed name-sorted per
    #    level up front; the merged host list of each dangling level is
    #    cached and only rebuilt when a patch fills a host to the cap.  The
    #    historical scan filtered ``net not in g.inputs`` against the
    #    *current* gate map; a dangling net has no consumers and is visited
    #    exactly once, so only nets stitched earlier in this very loop could
    #    trip that filter — tracked in ``stitched``.
    if dangling:
        by_name = {g.name: g for g in gates}
        host_names_by_level: Dict[int, List[str]] = {}
        for gate in gates:
            if (len(gate.inputs) < _MAX_FANIN
                    and gate.gate_type not in (GateType.NOT, GateType.BUFF)
                    and gate.name not in spine_names):  # keep spine clean
                host_names_by_level.setdefault(
                    level_of[gate.name], []).append(gate.name)
        for names in host_names_by_level.values():
            names.sort()
        hosts_cache: Dict[int, List[str]] = {}
        stitched: Set[str] = set()

        def hosts_above(lvl: int) -> List[str]:
            cached = hosts_cache.get(lvl)
            if cached is None:
                cached = sorted(
                    name
                    for host_level, names in host_names_by_level.items()
                    if host_level > lvl
                    for name in names)
                hosts_cache[lvl] = cached
            return cached

        for net in dangling:
            lvl = level_of.get(net, 0)
            hosts = hosts_above(lvl)
            if net in stitched:
                hosts = [name for name in hosts
                         if net not in by_name[name].inputs]
            if hosts:
                host = by_name[rng.choice(hosts)]
                patched = Gate(host.name, host.gate_type,
                               host.inputs + (net,))
                by_name[host.name] = patched
                stitched.add(net)
                if len(patched.inputs) >= _MAX_FANIN:
                    host_names_by_level[level_of[host.name]].remove(
                        host.name)
                    hosts_cache.clear()
            elif net not in outputs:
                outputs.append(net)  # last resort: observe it as a PO
        gates = [by_name[g.name] for g in gates]

    return Netlist(profile.name, inputs, outputs, gates + dff_gates)


@dataclass(frozen=True)
class TiledProfile:
    """Recipe for a tile-replicated scale circuit (10^5 - 10^6 gates).

    ``n_tiles`` mutually disconnected tiles, each a single weakly
    connected combinational block of ``gates_per_tile`` gates feeding
    its own DFF bank; only ``tile_variants`` distinct structures exist,
    instantiated round-robin under per-tile net-name prefixes.  The
    partitioner therefore assigns one region per tile, and the
    hierarchical scheduler's interface-model dedup analyzes each variant
    exactly once — the workload the scale benchmark measures.
    """

    name: str
    n_tiles: int
    gates_per_tile: int
    inputs_per_tile: int = 8
    dffs_per_tile: int = 4
    depth: int = 12
    seed: int = 0
    tile_variants: int = 2
    xor_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.n_tiles < 1:
            raise ValueError("need at least one tile")
        if self.depth < 2:
            raise ValueError("tile depth must be >= 2")
        if self.gates_per_tile < self.depth:
            raise ValueError(
                f"{self.name}: gates_per_tile ({self.gates_per_tile}) "
                f"must cover the tile depth ({self.depth})")
        if self.inputs_per_tile < 1:
            raise ValueError("need at least one input per tile")
        if self.dffs_per_tile < 0:
            raise ValueError("dffs_per_tile must be >= 0")
        if not 1 <= self.tile_variants <= self.n_tiles:
            raise ValueError("tile_variants must be in [1, n_tiles]")
        if not 0.0 <= self.xor_fraction <= 1.0:
            raise ValueError("xor_fraction must be in [0, 1]")

    @property
    def n_gates(self) -> int:
        """Total gate count including the per-tile DFF banks."""
        return self.n_tiles * (self.gates_per_tile + self.dffs_per_tile)


@dataclass(frozen=True)
class _TileTemplate:
    """One tile variant: structure over pool/gate indices, no names.

    Source tokens are ints: ``tok < n_pool`` is pool pin ``tok``
    (primary inputs first, then DFF outputs); otherwise the token is
    ``n_pool + q`` for the template gate at construction position ``q``.
    """

    pool_suffixes: Tuple[str, ...]
    gate_suffixes: Tuple[str, ...]
    gates: Tuple[Tuple[GateType, Tuple[int, ...]], ...]
    dff_data: Tuple[int, ...]      # template gate positions
    output_positions: Tuple[int, ...]


def _tile_template(profile: TiledProfile, variant: int) -> _TileTemplate:
    """Build one tile variant with vectorized (numpy) structure draws.

    Levels, fan-ins, gate types, and source indices are drawn as whole
    arrays; the only per-gate Python work is assembling the final token
    tuples.  Every gate at level ``L >= 2`` draws its first source from
    a gate at level ``L - 1`` (level 1 holds only the spine root), which
    makes the tile one weakly connected component by induction.
    """
    rng = np.random.default_rng((profile.seed, variant))
    n_gates = profile.gates_per_tile
    n_pool = profile.inputs_per_tile + profile.dffs_per_tile
    depth = profile.depth

    # Levels: a spine chain pins 1..depth; scatter gates land on 2..depth
    # with a shallow bias (deep gates have no room for consumers).
    level = np.empty(n_gates, dtype=np.int64)
    level[:depth] = np.arange(1, depth + 1)
    if n_gates > depth:
        band = np.arange(2, depth + 1)
        weights = (depth + 1.0 - band)
        weights /= weights.sum()
        level[depth:] = rng.choice(band, size=n_gates - depth, p=weights)

    # Construction (template) order is stable level order, so sources
    # always point at earlier template positions.
    order = np.argsort(level, kind="stable")
    position = np.empty(n_gates, dtype=np.int64)
    position[order] = np.arange(n_gates)
    sorted_levels = level[order]
    # below[L] = number of gates at levels < L.
    below = np.searchsorted(sorted_levels, np.arange(depth + 2))

    fanin = np.full(n_gates, 2, dtype=np.int64)
    if n_gates > depth:
        fanin[depth:] = rng.choice(
            _FANIN_CHOICES, size=n_gates - depth, p=_FANIN_WEIGHTS)

    # First source: the spine is a hard chain; scatter gate at level L
    # draws uniformly from the gates at L - 1.
    first = np.empty(n_gates, dtype=np.int64)     # original gate index
    first[0] = -1                                 # pool pin, drawn below
    first[1:depth] = np.arange(depth - 1)
    first_pool = int(rng.integers(n_pool))
    if n_gates > depth:
        lo = below[level[depth:] - 1]
        hi = below[level[depth:]]
        pick = lo + (rng.random(n_gates - depth) * (hi - lo)).astype(
            np.int64)
        first[depth:] = order[pick]

    # Extra sources: any pool pin or any gate at a lower level.
    max_extra = int(fanin.max()) - 1
    bound = n_pool + below[level]
    extra = (rng.random((n_gates, max(max_extra, 1)))
             * bound[:, None]).astype(np.int64)

    # Gate types, drawn as arrays.
    multi = rng.choice(len(_MULTI_INPUT_TYPES), size=n_gates,
                       p=np.array(_MULTI_INPUT_WEIGHTS))
    single = rng.choice(len(_SINGLE_INPUT_TYPES), size=n_gates,
                        p=np.array(_SINGLE_INPUT_WEIGHTS))
    xor_draw = rng.random(n_gates)
    xor_kind = rng.integers(2, size=n_gates)

    gates: List[Tuple[GateType, Tuple[int, ...]]] = []
    for pos in range(n_gates):
        j = int(order[pos])
        if j == 0:
            tokens = [first_pool]
        else:
            tokens = [n_pool + int(position[first[j]])]
        for e in range(int(fanin[j]) - 1):
            raw = int(extra[j, e])
            tok = raw if raw < n_pool else n_pool + int(position[order[
                raw - n_pool]])
            if tok not in tokens:
                tokens.append(tok)
        if len(tokens) == 1:
            gate_type = _SINGLE_INPUT_TYPES[int(single[j])]
        elif (profile.xor_fraction > 0.0 and len(tokens) == 2
                and xor_draw[j] < profile.xor_fraction):
            gate_type = (GateType.XOR, GateType.XNOR)[int(xor_kind[j])]
        else:
            gate_type = _MULTI_INPUT_TYPES[int(multi[j])]
        gates.append((gate_type, tuple(tokens)))

    # DFF data taps prefer deep gates (distinct where possible).
    deep = np.flatnonzero(sorted_levels >= max(depth // 2, 2))
    if deep.size == 0:
        deep = np.arange(n_gates)
    n_dffs = profile.dffs_per_tile
    dff_data = tuple(
        int(q) for q in rng.choice(
            deep, size=n_dffs, replace=n_dffs > deep.size))

    consumed = np.zeros(n_gates, dtype=bool)
    for _, tokens in gates:
        for tok in tokens:
            if tok >= n_pool:
                consumed[tok - n_pool] = True
    for q in dff_data:
        consumed[q] = True
    output_positions = tuple(int(q) for q in np.flatnonzero(~consumed))

    pool_suffixes = tuple(
        [f"I{k}" for k in range(profile.inputs_per_tile)]
        + [f"L{d}" for d in range(n_dffs)])
    gate_suffixes = tuple(f"G{q}" for q in range(n_gates))
    return _TileTemplate(pool_suffixes, gate_suffixes, tuple(gates),
                         dff_data, output_positions)


def generate_tiled_circuit(profile: TiledProfile) -> Netlist:
    """Instantiate the tile templates into one flat netlist.

    Deterministic in ``profile`` alone; tile ``t`` uses variant
    ``t % tile_variants`` under the net-name prefix ``t{t}_``, so tiles
    of one variant are isomorphic under the canonical-region relabeling
    (same declared input order, same construction order).
    """
    templates = [_tile_template(profile, v)
                 for v in range(profile.tile_variants)]
    inputs: List[str] = []
    outputs: List[str] = []
    gates: List[Gate] = []
    n_pool = profile.inputs_per_tile + profile.dffs_per_tile
    for tile in range(profile.n_tiles):
        template = templates[tile % profile.tile_variants]
        prefix = f"t{tile}_"
        pool = [prefix + s for s in template.pool_suffixes]
        names = [prefix + s for s in template.gate_suffixes]
        inputs.extend(pool[:profile.inputs_per_tile])
        for q, (gate_type, tokens) in enumerate(template.gates):
            gates.append(Gate(names[q], gate_type, tuple(
                pool[tok] if tok < n_pool else names[tok - n_pool]
                for tok in tokens)))
        for d, data_q in enumerate(template.dff_data):
            gates.append(Gate(pool[profile.inputs_per_tile + d],
                              GateType.DFF, (names[data_q],)))
        outputs.extend(names[q] for q in template.output_positions)
    return Netlist(profile.name, inputs, outputs, gates)
