"""Netlist data model.

A :class:`Netlist` is a named collection of nets and gates in the ISCAS'89
style: every gate drives exactly one net, named after the gate.  Sequential
elements (DFF) delimit the combinational timing graph:

- *launch points* — primary inputs and DFF outputs — are where cycle-level
  statistics (signal probabilities, arrival-time distributions) are asserted;
- *endpoints* — primary outputs and DFF data inputs — are where arrival-time
  statistics are observed.

All analyzers and simulators in this repository share this model and the
topological order it provides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.lint.diagnostics import NetlistError, Severity
from repro.lint.structural import construction_diagnostics
from repro.logic.gates import GateType, gate_spec


@dataclass(frozen=True)
class Gate:
    """One gate instance; ``name`` is also the name of the net it drives."""

    name: str
    gate_type: GateType
    inputs: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("gate name must be non-empty")
        if self.gate_type is GateType.DFF:
            if len(self.inputs) != 1:
                raise ValueError(
                    f"DFF {self.name} must have exactly one input, "
                    f"got {len(self.inputs)}")
        else:
            gate_spec(self.gate_type).validate_arity(len(self.inputs))


class Netlist:
    """An immutable-after-construction gate-level netlist."""

    def __init__(self, name: str, inputs: Sequence[str],
                 outputs: Sequence[str], gates: Iterable[Gate]) -> None:
        self.name = name
        self.inputs: Tuple[str, ...] = tuple(inputs)
        self.outputs: Tuple[str, ...] = tuple(outputs)
        gate_list = tuple(gates)
        self._validate(gate_list)
        self.gates: Dict[str, Gate] = {g.name: g for g in gate_list}
        self._topo: Tuple[Gate, ...] = self._topological_order()
        self._fanouts = self._build_fanouts()
        self._levels: Tuple[Tuple[Gate, ...], ...] = ()

    # -- validation ---------------------------------------------------------

    def _validate(self, gates: Sequence[Gate]) -> None:
        """Reject malformed netlists with structured diagnostics.

        Validation is delegated to the linter's SP1xx structural rules
        (:func:`repro.lint.structural.construction_diagnostics`) so
        construction errors and ``spsta lint`` reports share rule IDs,
        locations, and messages; any error-severity finding —
        duplicate/gate-driven primary inputs, multi-driven or undriven
        nets, undriven outputs, combinational cycles (as explicit paths)
        — raises a :class:`~repro.lint.diagnostics.NetlistError`, which
        remains a ``ValueError`` for compatibility.
        """
        diagnostics = construction_diagnostics(
            self.name, self.inputs, self.outputs, gates)
        errors = [d for d in diagnostics if d.severity is Severity.ERROR]
        if errors:
            raise NetlistError(self.name, errors)

    # -- basic views ----------------------------------------------------------

    @property
    def nets(self) -> Tuple[str, ...]:
        """All nets: primary inputs first, then gate outputs."""
        return self.inputs + tuple(self.gates)

    @property
    def dffs(self) -> Tuple[Gate, ...]:
        return tuple(g for g in self.gates.values()
                     if g.gate_type is GateType.DFF)

    @property
    def combinational_gates(self) -> Tuple[Gate, ...]:
        """Combinational gates in topological order (launch points first)."""
        return self._topo

    @property
    def launch_points(self) -> Tuple[str, ...]:
        """Primary inputs plus DFF outputs — timing-graph sources."""
        return self.inputs + tuple(g.name for g in self.dffs)

    @property
    def endpoints(self) -> Tuple[str, ...]:
        """Primary outputs plus DFF data-input nets (deduplicated, ordered)."""
        seen: Set[str] = set()
        result: List[str] = []
        for net in tuple(self.outputs) + tuple(g.inputs[0] for g in self.dffs):
            if net not in seen:
                seen.add(net)
                result.append(net)
        return tuple(result)

    def driver(self, net: str) -> Gate:
        """The gate driving ``net``; raises KeyError for primary inputs."""
        return self.gates[net]

    def is_launch_point(self, net: str) -> bool:
        if net in self.gates:
            return self.gates[net].gate_type is GateType.DFF
        return net in set(self.inputs)

    def fanouts(self, net: str) -> Tuple[str, ...]:
        """Names of gates that read ``net``."""
        return self._fanouts.get(net, ())

    def _build_fanouts(self) -> Dict[str, Tuple[str, ...]]:
        acc: Dict[str, List[str]] = {}
        for gate in self.gates.values():
            for src in gate.inputs:
                acc.setdefault(src, []).append(gate.name)
        return {net: tuple(sinks) for net, sinks in acc.items()}

    # -- topological order ----------------------------------------------------

    def _topological_order(self) -> Tuple[Gate, ...]:
        """Kahn's algorithm over combinational gates.

        DFFs are cut: their outputs count as sources and their inputs as
        sinks, so sequential loops (ubiquitous in ISCAS'89) are legal while
        combinational cycles raise ValueError.
        """
        comb = [g for g in self.gates.values()
                if g.gate_type is not GateType.DFF]
        sources = set(self.launch_points)
        pending: Dict[str, int] = {}
        dependents: Dict[str, List[Gate]] = {}
        ready: List[Gate] = []
        for gate in comb:
            waits = 0
            for src in gate.inputs:
                if src in sources:
                    continue
                waits += 1
                dependents.setdefault(src, []).append(gate)
            if waits == 0:
                ready.append(gate)
            else:
                pending[gate.name] = waits
        order: List[Gate] = []
        cursor = 0
        while cursor < len(ready):
            gate = ready[cursor]
            cursor += 1
            order.append(gate)
            for dep in dependents.get(gate.name, ()):
                pending[dep.name] -= 1
                if pending[dep.name] == 0:
                    ready.append(dep)
        if len(order) != len(comb):
            stuck = sorted(name for name, n in pending.items() if n > 0)
            raise ValueError(
                f"combinational cycle in {self.name}; "
                f"unresolved gates: {stuck[:8]}...")
        return tuple(order)

    @property
    def levels(self) -> Tuple[Tuple[Gate, ...], ...]:
        """Combinational gates grouped by logic level (computed lazily).

        A gate's level is 1 + the maximum level of its inputs; launch points
        sit at level 0.  All gates within one level are mutually independent,
        which is what lets the levelized SPSTA engine batch a whole level's
        grid densities into stacked array operations (and, opt-in, farm the
        level out to worker processes).  Concatenating the levels yields a
        valid topological order.
        """
        if not self._levels and self._topo:
            depth: Dict[str, int] = {net: 0 for net in self.launch_points}
            buckets: Dict[int, List[Gate]] = {}
            for gate in self._topo:
                level = 1 + max(depth[src] for src in gate.inputs)
                depth[gate.name] = level
                buckets.setdefault(level, []).append(gate)
            self._levels = tuple(tuple(buckets[level])
                                 for level in sorted(buckets))
        return self._levels

    # -- summaries ------------------------------------------------------------

    def __repr__(self) -> str:
        return (f"Netlist({self.name!r}: {len(self.inputs)} PI, "
                f"{len(self.outputs)} PO, {len(self.dffs)} DFF, "
                f"{len(self.gates) - len(self.dffs)} gates)")

    def counts(self) -> Mapping[str, int]:
        """Gate-type histogram, for reports and the generator's self-check."""
        acc: Dict[str, int] = {}
        for gate in self.gates.values():
            acc[gate.gate_type.value] = acc.get(gate.gate_type.value, 0) + 1
        return acc
