"""Gate-level structural Verilog reader/writer.

Supports the primitive-instantiation subset that gate-level academic
netlists (ISCAS'89 conversions, synthesized benchmarks) actually use:

    module s27 (G0, G1, G17);
      input G0, G1;
      output G17;
      wire n1, n2;
      nand U1 (n1, G0, G1);       // first port drives, the rest read
      not  U2 (G17, n1);
      dff  U3 (q, d);             // common academic DFF primitive
      assign y = n1;              // treated as a buffer
    endmodule

Out of scope (rejected with clear errors): vectors/buses, expressions on
``assign`` right-hand sides, parameterized instances, and hierarchies with
more than one module per file.
"""

from __future__ import annotations

from pathlib import Path
import re
from typing import Dict, List, Union

from repro.logic.gates import GateType
from repro.netlist.core import Gate, Netlist

_PRIMITIVES: Dict[str, GateType] = {
    "and": GateType.AND,
    "or": GateType.OR,
    "nand": GateType.NAND,
    "nor": GateType.NOR,
    "xor": GateType.XOR,
    "xnor": GateType.XNOR,
    "not": GateType.NOT,
    "buf": GateType.BUFF,
    "buff": GateType.BUFF,
    "dff": GateType.DFF,
}

_IDENT = r"[A-Za-z_][A-Za-z0-9_$]*|\\[^\s]+"

_MODULE_RE = re.compile(
    rf"module\s+({_IDENT})\s*(?:\(([^)]*)\))?\s*;", re.DOTALL)
_DECL_RE = re.compile(
    rf"(input|output|wire)\s+([^;]+);")
_INSTANCE_RE = re.compile(
    rf"({_IDENT})\s+(?:({_IDENT})\s+)?\(([^)]*)\)\s*;")
_ASSIGN_RE = re.compile(
    rf"assign\s+({_IDENT})\s*=\s*({_IDENT})\s*;")


class VerilogParseError(ValueError):
    """Raised on syntax or unsupported constructs, with context."""


def _strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    text = re.sub(r"//[^\n]*", " ", text)
    return text


def _split_names(decl: str, context: str) -> List[str]:
    names = []
    for part in decl.split(","):
        name = part.strip()
        if not name:
            continue
        if "[" in name or "]" in name:
            raise VerilogParseError(
                f"vector declarations are not supported: {context!r}")
        names.append(name.lstrip("\\"))
    return names


def parse_verilog(text: str, name: str = "") -> Netlist:
    """Parse one structural gate-level module into a :class:`Netlist`."""
    clean = _strip_comments(text)
    module = _MODULE_RE.search(clean)
    if module is None:
        raise VerilogParseError("no module declaration found")
    if _MODULE_RE.search(clean, module.end()) is not None:
        raise VerilogParseError("multiple modules per file are not supported")
    module_name = name or module.group(1).lstrip("\\")
    body = clean[module.end():]
    end = body.find("endmodule")
    if end < 0:
        raise VerilogParseError("missing endmodule")
    body = body[:end]

    inputs: List[str] = []
    outputs: List[str] = []
    for match in _DECL_RE.finditer(body):
        kind, decl = match.group(1), match.group(2)
        names = _split_names(decl, match.group(0))
        if kind == "input":
            inputs.extend(names)
        elif kind == "output":
            outputs.extend(names)
        # wires carry no semantic information for us.
    body_wo_decls = _DECL_RE.sub(" ", body)

    gates: List[Gate] = []
    for match in _ASSIGN_RE.finditer(body_wo_decls):
        lhs, rhs = (match.group(1).lstrip("\\"),
                    match.group(2).lstrip("\\"))
        gates.append(Gate(lhs, GateType.BUFF, (rhs,)))
    body_wo_assigns = _ASSIGN_RE.sub(" ", body_wo_decls)

    for match in _INSTANCE_RE.finditer(body_wo_assigns):
        prim, _instance, ports_text = match.groups()
        prim_lower = prim.lower()
        if prim_lower == "module":
            continue
        gate_type = _PRIMITIVES.get(prim_lower)
        if gate_type is None:
            raise VerilogParseError(
                f"unsupported primitive or submodule {prim!r} "
                f"(supported: {', '.join(sorted(_PRIMITIVES))})")
        ports = _split_names(ports_text, match.group(0))
        if len(ports) < 2:
            raise VerilogParseError(
                f"instance of {prim!r} needs an output and at least one "
                f"input: {match.group(0)!r}")
        gates.append(Gate(ports[0], gate_type, tuple(ports[1:])))

    try:
        return Netlist(module_name, inputs, outputs, gates)
    except ValueError as exc:
        raise VerilogParseError(str(exc)) from exc


def parse_verilog_file(path: Union[str, Path]) -> Netlist:
    path = Path(path)
    return parse_verilog(path.read_text())


def write_verilog(netlist: Netlist) -> str:
    """Serialize a netlist as structural Verilog (parse round-trips)."""
    ports = list(netlist.inputs) + list(netlist.outputs)
    lines = [f"module {netlist.name} ({', '.join(ports)});"]
    if netlist.inputs:
        lines.append(f"  input {', '.join(netlist.inputs)};")
    if netlist.outputs:
        lines.append(f"  output {', '.join(netlist.outputs)};")
    internal = [net for net in netlist.gates
                if net not in set(netlist.outputs)]
    if internal:
        lines.append(f"  wire {', '.join(internal)};")
    lines.append("")
    prim_of = {gate_type: prim for prim, gate_type in _PRIMITIVES.items()
               if prim not in ("buff",)}
    for i, gate in enumerate(netlist.gates.values()):
        prim = prim_of[gate.gate_type]
        ports_text = ", ".join((gate.name,) + gate.inputs)
        lines.append(f"  {prim} U{i} ({ports_text});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
