"""ISCAS'89 ``.bench`` format parser and writer.

The format (as distributed with the ISCAS'89 suite) is line-oriented:

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G5 = DFF(G10)
    G8 = AND(G14, G6)

Gate keywords are case-insensitive; ``BUF`` is accepted as an alias for
``BUFF`` and ``NXOR`` for ``XNOR`` (aliases seen in circulating copies of
the suite).
"""

from __future__ import annotations

from pathlib import Path
import re
from typing import List, Union

from repro.logic.gates import GateType
from repro.netlist.core import Gate, Netlist

_ALIASES = {
    "BUF": GateType.BUFF,
    "BUFF": GateType.BUFF,
    "NXOR": GateType.XNOR,
}

_IO_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^\s()]+)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(
    r"^([^\s=()]+)\s*=\s*([A-Za-z]+)\s*\(\s*([^()]*)\s*\)$")


class BenchParseError(ValueError):
    """Raised with file/line context on malformed ``.bench`` input."""

    def __init__(self, message: str, line_no: int, line: str) -> None:
        super().__init__(f"line {line_no}: {message}: {line!r}")
        self.line_no = line_no
        self.line = line


def _gate_type(keyword: str, line_no: int, line: str) -> GateType:
    upper = keyword.upper()
    if upper in _ALIASES:
        return _ALIASES[upper]
    try:
        return GateType(upper)
    except ValueError:
        raise BenchParseError(f"unknown gate type {keyword!r}",
                              line_no, line) from None


def parse_bench(text: str, name: str = "circuit") -> Netlist:
    """Parse ``.bench`` text into a validated :class:`Netlist`."""
    inputs: List[str] = []
    outputs: List[str] = []
    gates: List[Gate] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            keyword, net = io_match.group(1).upper(), io_match.group(2)
            (inputs if keyword == "INPUT" else outputs).append(net)
            continue
        gate_match = _GATE_RE.match(line)
        if gate_match:
            out_net, keyword, arg_text = gate_match.groups()
            args = tuple(a.strip() for a in arg_text.split(",") if a.strip())
            if not args:
                raise BenchParseError("gate with no inputs", line_no, line)
            gtype = _gate_type(keyword, line_no, line)
            try:
                gates.append(Gate(out_net, gtype, args))
            except ValueError as exc:
                raise BenchParseError(str(exc), line_no, line) from exc
            continue
        raise BenchParseError("unrecognized statement", line_no, line)
    return Netlist(name, inputs, outputs, gates)


def parse_bench_file(path: Union[str, Path]) -> Netlist:
    """Parse a ``.bench`` file; the netlist is named after the file stem."""
    path = Path(path)
    return parse_bench(path.read_text(), name=path.stem)


def write_bench(netlist: Netlist) -> str:
    """Serialize a netlist back to ``.bench`` text (parse round-trips)."""
    lines: List[str] = [f"# {netlist.name}"]
    lines.extend(f"INPUT({pi})" for pi in netlist.inputs)
    lines.extend(f"OUTPUT({po})" for po in netlist.outputs)
    lines.append("")
    for gate in netlist.gates.values():
        args = ", ".join(gate.inputs)
        lines.append(f"{gate.name} = {gate.gate_type.value}({args})")
    return "\n".join(lines) + "\n"
