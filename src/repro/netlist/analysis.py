"""Structural netlist analyses shared by the timing engines.

Unit-delay structural depth doubles as the deterministic STA arrival time in
the paper's experimental setup (unit gate delay, zero net delay), and picks
the "most critical path" endpoint all engines report on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Set, Tuple

from repro.logic.gates import GateType
from repro.netlist.core import Netlist


def net_depths(netlist: Netlist) -> Dict[str, int]:
    """Unit-delay structural depth of every net.

    Launch points have depth 0; every combinational gate adds 1.  With the
    paper's unit gate delay this is exactly the deterministic arrival time.
    """
    depths: Dict[str, int] = {net: 0 for net in netlist.launch_points}
    for gate in netlist.combinational_gates:
        depths[gate.name] = 1 + max(depths[src] for src in gate.inputs)
    return depths


def critical_endpoint(netlist: Netlist) -> Tuple[str, int]:
    """The endpoint of maximum structural depth and that depth.

    Ties break on net name for determinism, so every analyzer reports the
    same "most critical path" endpoint (paper Table 2 rows).
    """
    depths = net_depths(netlist)
    best = max(netlist.endpoints, key=lambda net: (depths[net], net))
    return best, depths[best]


def fanin_cone(netlist: Netlist, net: str) -> Set[str]:
    """All nets in the transitive fan-in of ``net`` (inclusive), stopping at
    launch points — the sub-circuit that determines its arrival time."""
    cone: Set[str] = set()
    stack = [net]
    while stack:
        current = stack.pop()
        if current in cone:
            continue
        cone.add(current)
        if netlist.is_launch_point(current):
            continue
        gate = netlist.driver(current)
        stack.extend(gate.inputs)
    return cone


def max_fanin(netlist: Netlist) -> int:
    """Largest combinational gate fan-in — bounds the 2^k subset enumeration
    cost of the four-value SPSTA propagation (paper Sec. 3.3)."""
    fanins = [len(g.inputs) for g in netlist.combinational_gates]
    return max(fanins) if fanins else 0


@dataclass(frozen=True)
class CircuitStats:
    """Summary statistics used in reports and generator self-checks."""

    name: str
    n_inputs: int
    n_outputs: int
    n_dffs: int
    n_gates: int
    depth: int
    max_fanin: int
    gate_histogram: Mapping[str, int]


def circuit_stats(netlist: Netlist) -> CircuitStats:
    """Compute a :class:`CircuitStats` summary for a netlist."""
    _, depth = critical_endpoint(netlist)
    histogram = dict(netlist.counts())
    histogram.pop(GateType.DFF.value, None)
    return CircuitStats(
        name=netlist.name,
        n_inputs=len(netlist.inputs),
        n_outputs=len(netlist.outputs),
        n_dffs=len(netlist.dffs),
        n_gates=len(netlist.gates) - len(netlist.dffs),
        depth=depth,
        max_fanin=max_fanin(netlist),
        gate_histogram=histogram,
    )
