"""The benchmark suite used by the paper's evaluation.

``s27`` is the genuine (public, tiny) ISCAS'89 circuit, bundled as a
``.bench`` file.  The nine circuits of Table 2/3 (s208..s1238) are synthetic
profile matches produced by :mod:`repro.netlist.generator`; their PI/PO/DFF/
gate counts follow the published ISCAS'89 profiles and their depth follows
the unit-delay critical-path length implied by the paper's Table 2 (SSTA
mean ~ depth + Clark drift).  See DESIGN.md, "Substitutions".
"""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path
from typing import Dict, Tuple

from repro.netlist.bench import parse_bench_file
from repro.netlist.core import Netlist
from repro.netlist.generator import GeneratorProfile, generate_circuit

_DATA_DIR = Path(__file__).parent / "data"

# name -> (n_inputs, n_outputs, n_dffs, n_gates, depth, xor_fraction)
_PROFILES: Dict[str, Tuple[int, int, int, int, int, float]] = {
    "s208": (10, 1, 8, 96, 7, 0.0),
    "s298": (3, 6, 14, 119, 5, 0.0),
    "s344": (9, 11, 15, 160, 8, 0.0),
    "s349": (9, 11, 15, 161, 8, 0.0),
    "s382": (3, 6, 21, 158, 6, 0.0),
    "s386": (7, 7, 6, 159, 8, 0.0),
    "s526": (3, 6, 21, 193, 5, 0.0),
    "s1196": (14, 14, 18, 529, 13, 0.10),
    "s1238": (14, 14, 18, 508, 12, 0.10),
    # Larger ISCAS'89 profiles beyond the paper's Table 2 suite, for scale
    # testing the engines (s5378/s9234-class sizes).
    "s5378": (35, 49, 179, 2779, 17, 0.0),
    "s9234": (36, 39, 211, 5597, 20, 0.02),
}

# Table 2 / Table 3 circuit order (the paper's evaluation suite).
TABLE_CIRCUITS: Tuple[str, ...] = (
    "s208", "s298", "s344", "s349", "s382", "s386", "s526", "s1196", "s1238")

# Additional large circuits for scale tests/benches (not in the paper).
SCALE_CIRCUITS: Tuple[str, ...] = ("s5378", "s9234")


def benchmark_names() -> Tuple[str, ...]:
    """All available benchmark circuit names (bundled + synthetic)."""
    return ("s27",) + TABLE_CIRCUITS + SCALE_CIRCUITS


def _profile_for(name: str) -> GeneratorProfile:
    n_in, n_out, n_dff, n_gates, depth, xor_frac = _PROFILES[name]
    # Seed derives from the circuit name so each circuit is a fixed artifact.
    seed = sum(ord(c) * 131 ** i for i, c in enumerate(name)) % (2 ** 31)
    return GeneratorProfile(
        name=name, n_inputs=n_in, n_outputs=n_out, n_dffs=n_dff,
        n_gates=n_gates, depth=depth, seed=seed, xor_fraction=xor_frac)


@lru_cache(maxsize=None)
def benchmark_circuit(name: str) -> Netlist:
    """Load (s27) or deterministically generate a benchmark circuit."""
    if name == "s27":
        return parse_bench_file(_DATA_DIR / "s27.bench")
    if name not in _PROFILES:
        known = ", ".join(benchmark_names())
        raise KeyError(f"unknown benchmark {name!r}; known: {known}")
    return generate_circuit(_profile_for(name))
