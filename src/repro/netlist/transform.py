"""Netlist transformations with BDD-verified logic equivalence.

- :func:`decompose_fanin` — split wide AND/OR-family and parity gates into
  balanced trees of bounded fan-in.  SPSTA's per-gate cost is 2^k (subset
  enumeration) or 4^k (parity), so bounding k trades a little modelling
  granularity for a lot of runtime; the ablation benchmark quantifies it.
- :func:`sweep_constants` — propagate tied-off inputs through the logic,
  simplifying gates and removing constant nets.
- :func:`equivalent` — BDD-based combinational equivalence check between
  two netlists over the same launch points (the verifier every transform
  is tested against).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.logic.bdd import BDDManager
from repro.logic.gates import GateSpec, GateType, gate_spec
from repro.netlist.core import Gate, Netlist
from repro.power.density import build_net_bdds


def decompose_fanin(netlist: Netlist, max_fanin: int = 2) -> Netlist:
    """Rewrite gates with fan-in above ``max_fanin`` as balanced trees.

    AND/OR decompose into same-type trees; NAND/NOR/XNOR keep the inversion
    at the final (root) gate with non-inverting internals; XOR decomposes
    into an XOR tree.  NOT/BUFF/DFF pass through.  New internal nets are
    named ``<gate>__d<i>`` (double underscore avoids collisions with
    generator names).
    """
    if max_fanin < 2:
        raise ValueError("max_fanin must be >= 2")
    body_type = {
        GateType.AND: GateType.AND, GateType.NAND: GateType.AND,
        GateType.OR: GateType.OR, GateType.NOR: GateType.OR,
        GateType.XOR: GateType.XOR, GateType.XNOR: GateType.XOR,
    }
    new_gates: List[Gate] = []
    for gate in netlist.gates.values():
        if (gate.gate_type in (GateType.DFF, GateType.NOT, GateType.BUFF)
                or len(gate.inputs) <= max_fanin):
            new_gates.append(gate)
            continue
        inner = body_type[gate.gate_type]
        counter = 0
        level = list(gate.inputs)
        while len(level) > max_fanin:
            next_level: List[str] = []
            for i in range(0, len(level), max_fanin):
                chunk = level[i:i + max_fanin]
                if len(chunk) == 1:
                    next_level.append(chunk[0])
                    continue
                counter += 1
                name = f"{gate.name}__d{counter}"
                new_gates.append(Gate(name, inner, tuple(chunk)))
                next_level.append(name)
            level = next_level
        new_gates.append(Gate(gate.name, gate.gate_type, tuple(level)))
    return Netlist(netlist.name, netlist.inputs, netlist.outputs, new_gates)


def sweep_constants(netlist: Netlist,
                    tied: Mapping[str, int]) -> Netlist:
    """Propagate constant launch points through the logic.

    ``tied`` maps launch-point nets to 0/1.  Gates whose value becomes
    constant are removed; their fanouts see the constant directly.  Gates
    reduced to a single live input become buffers/inverters.  Constant
    primary outputs are kept alive through a tied pseudo-input so the
    netlist stays well-formed (and the caller is told via the name).
    """
    for net, value in tied.items():
        if net not in set(netlist.launch_points):
            raise ValueError(f"{net} is not a launch point")
        if value not in (0, 1):
            raise ValueError(f"tie value must be 0/1, got {value}")
    constants: Dict[str, int] = dict(tied)
    new_gates: List[Gate] = []

    for gate in netlist.combinational_gates:
        spec = gate_spec(gate.gate_type)
        live: List[str] = []
        const_bits: List[int] = []
        for src in gate.inputs:
            if src in constants:
                const_bits.append(constants[src])
            else:
                live.append(src)
        result = _simplify(gate, spec, live, const_bits)
        if isinstance(result, int):
            constants[gate.name] = result
        else:
            new_gates.append(result)
    # Sequential elements: a DFF with constant data keeps a tied input net.
    tie_inputs: List[str] = []
    for gate in netlist.gates.values():
        if gate.gate_type is not GateType.DFF:
            continue
        data = gate.inputs[0]
        if data in constants:
            tie_net = f"__tie{constants[data]}"
            if tie_net not in tie_inputs:
                tie_inputs.append(tie_net)
            new_gates.append(Gate(gate.name, GateType.DFF, (tie_net,)))
        else:
            new_gates.append(gate)
    outputs: List[str] = []
    for po in netlist.outputs:
        if po in constants:
            tie_net = f"__tie{constants[po]}"
            if tie_net not in tie_inputs:
                tie_inputs.append(tie_net)
            outputs.append(tie_net)
        else:
            outputs.append(po)
    inputs = [pi for pi in netlist.inputs if pi not in tied]
    return Netlist(netlist.name, list(inputs) + tie_inputs,
                   outputs, new_gates)


def _simplify(gate: Gate, spec: GateSpec, live: List[str],
              const_bits: List[int]) -> Union[Gate, int]:
    """Simplified replacement for one gate, or a constant 0/1."""
    gt = gate.gate_type
    if not const_bits:
        return gate
    if gt in (GateType.NOT, GateType.BUFF):
        value = const_bits[0]
        return spec.eval_bits([value])
    if spec.is_parity:
        parity = sum(const_bits) & 1
        inverted = spec.inverting ^ bool(parity)
        if not live:
            return int(inverted)
        if len(live) == 1:
            return Gate(gate.name,
                        GateType.NOT if inverted else GateType.BUFF,
                        (live[0],))
        return Gate(gate.name,
                    GateType.XNOR if inverted else GateType.XOR,
                    tuple(live))
    # Controlling-value family.
    if spec.controlling_value in const_bits:
        return spec.controlled_value
    # All constants were non-controlling: they drop out.
    if not live:
        return spec.non_controlled_value
    if len(live) == 1:
        return Gate(gate.name,
                    GateType.NOT if spec.inverting else GateType.BUFF,
                    (live[0],))
    return Gate(gate.name, gt, tuple(live))


def equivalent(a: Netlist, b: Netlist,
               nets: Optional[Tuple[str, ...]] = None) -> bool:
    """BDD equivalence of two netlists over shared launch points.

    Compares the functions of ``nets`` (default: primary outputs and DFF
    data inputs of ``a``) as functions of the launch-point variables; the
    two netlists must have identical launch-point names.
    """
    if set(a.launch_points) != set(b.launch_points):
        raise ValueError("netlists have different launch points")
    targets = nets if nets is not None else tuple(a.endpoints)
    manager = BDDManager()
    funcs_a = build_net_bdds(a, manager)
    funcs_b = build_net_bdds(b, manager)
    for net in targets:
        if net not in funcs_a or net not in funcs_b:
            raise ValueError(f"net {net} missing from one of the netlists")
        if funcs_a[net] != funcs_b[net]:
            return False
    return True
