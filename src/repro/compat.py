"""Compatibility shims for the declared dependency floors.

``pyproject.toml`` pins ``numpy>=1.21``; ``np.trapezoid`` only exists from
NumPy 2.0 (it renamed ``np.trapz``).  Every trapezoid-rule call in the
package goes through this module so a fresh install at the declared floor
works, and so a future floor bump deletes exactly one branch.  CI's
``numpy-floor`` job installs the floor versions and runs ``spsta analyze``
to keep this promise honest.
"""

from __future__ import annotations

import numpy as np

if hasattr(np, "trapezoid"):
    trapezoid = np.trapezoid
else:  # pragma: no cover - exercised by CI's numpy-floor job (numpy < 2.0)
    trapezoid = np.trapz
