"""Human-readable timing reports (PrimeTime-style, miniaturized).

Combines the analyzers into a per-endpoint signoff view for a given clock
period: deterministic STA slack, SSTA mean/sigma slack, SPSTA occurrence-
weighted statistics, and the K most critical paths with per-stage detail.
"""

from __future__ import annotations

from dataclasses import dataclass
import math
from typing import List, Optional, Sequence

from repro.core.delay import DelayModel, UnitDelay
from repro.core.inputs import CONFIG_I, InputStats
from repro.core.paths import k_longest_paths, path_delay
from repro.core.spsta import run_spsta
from repro.core.ssta import SstaResult, run_ssta
from repro.core.sta import run_sta
from repro.netlist.analysis import net_depths
from repro.netlist.core import Netlist
from repro.stats.normal import Normal


@dataclass(frozen=True)
class EndpointReport:
    """One endpoint's consolidated timing view."""

    endpoint: str
    depth: int
    sta_arrival: float
    sta_slack: float
    ssta_worst: Normal          # later of rise/fall, Clark-combined
    ssta_slack_mean: float
    ssta_miss_probability: float
    spsta_rise: tuple           # (P, mean, sigma)
    spsta_fall: tuple
    spsta_miss_probability: float


@dataclass(frozen=True)
class TimingReport:
    """The full report: endpoints (worst first) plus critical paths."""

    netlist_name: str
    clock_period: float
    endpoints: Sequence[EndpointReport]
    critical_paths: Sequence[str]

    @property
    def worst(self) -> EndpointReport:
        return self.endpoints[0]

    @property
    def chip_yield_spsta(self) -> float:
        """P(no endpoint misses the clock), SPSTA occurrence-weighted,
        endpoints treated as independent."""
        acc = 1.0
        for ep in self.endpoints:
            acc *= 1.0 - min(ep.spsta_miss_probability, 1.0)
        return acc

    @property
    def chip_yield_ssta(self) -> float:
        """The SSTA counterpart: always-switching worst arrivals."""
        acc = 1.0
        for ep in self.endpoints:
            acc *= 1.0 - min(ep.ssta_miss_probability, 1.0)
        return acc

    def render(self, max_endpoints: int = 10) -> str:
        lines = [
            f"Timing report for {self.netlist_name} "
            f"(clock period {self.clock_period:g})",
            "",
            f"{'endpoint':>12} {'depth':>5} {'STA slack':>10} "
            f"{'SSTA slack':>11} {'P(miss|SSTA)':>13} {'P(miss|SPSTA)':>14}",
            "-" * 70,
        ]
        for ep in self.endpoints[:max_endpoints]:
            lines.append(
                f"{ep.endpoint:>12} {ep.depth:>5} {ep.sta_slack:>10.3f} "
                f"{ep.ssta_slack_mean:>11.3f} "
                f"{ep.ssta_miss_probability:>13.4f} "
                f"{ep.spsta_miss_probability:>14.4f}")
        if len(self.endpoints) > max_endpoints:
            lines.append(f"  ... {len(self.endpoints) - max_endpoints} "
                         f"more endpoints")
        lines.append("")
        lines.append(f"Chip timing yield at this clock: "
                     f"SPSTA {self.chip_yield_spsta:.4f}   "
                     f"SSTA {self.chip_yield_ssta:.4f}")
        lines.append("")
        lines.append("Most critical paths:")
        lines.extend(f"  {p}" for p in self.critical_paths)
        return "\n".join(lines)


def generate_report(netlist: Netlist,
                    clock_period: float,
                    stats: Optional[InputStats] = None,
                    delay_model: DelayModel = UnitDelay(),
                    n_paths: int = 3) -> TimingReport:
    """Build a :class:`TimingReport` for every endpoint of ``netlist``.

    ``P(miss | SSTA)`` is the probability the (always-assumed) worst
    arrival exceeds the period; ``P(miss | SPSTA)`` weighs each transition
    direction by its occurrence probability — quiet cycles cannot miss,
    which is exactly the pessimism gap the paper describes.
    """
    if clock_period <= 0.0:
        raise ValueError("clock_period must be > 0")
    if stats is None:
        stats = CONFIG_I
    depths = net_depths(netlist)
    sta = run_sta(netlist, delay_model)
    ssta = run_ssta(netlist, delay_model)
    spsta = run_spsta(netlist, stats, delay_model)

    endpoints: List[EndpointReport] = []
    for net in netlist.endpoints:
        worst = _later(ssta, net)
        miss_ssta = 1.0 - worst.cdf(clock_period)
        rise = spsta.report(net, "rise")
        fall = spsta.report(net, "fall")
        miss_spsta = (_miss(rise, clock_period)
                      + _miss(fall, clock_period))
        endpoints.append(EndpointReport(
            endpoint=net,
            depth=depths[net],
            sta_arrival=sta.max_arrival[net],
            sta_slack=clock_period - sta.max_arrival[net],
            ssta_worst=worst,
            ssta_slack_mean=clock_period - worst.mu,
            ssta_miss_probability=miss_ssta,
            spsta_rise=rise,
            spsta_fall=fall,
            spsta_miss_probability=min(miss_spsta, 1.0)))
    endpoints.sort(key=lambda ep: (ep.sta_slack, ep.endpoint))

    paths = k_longest_paths(netlist, k=n_paths, delay_model=delay_model)
    rendered = []
    for path in paths:
        dist = path_delay(path, netlist, delay_model,
                          launch_arrival=stats.rise_arrival)
        route = " -> ".join(path.nets)
        rendered.append(
            f"{route}  [delay {dist.mu:.2f} +/- {dist.sigma:.2f}]")
    return TimingReport(netlist.name, clock_period, endpoints, rendered)


def _later(ssta: SstaResult, net: str) -> Normal:
    from repro.stats.clark import clark_max
    pair = ssta.arrivals[net]
    return clark_max(pair.rise, pair.fall)


def _miss(report_triple, clock_period: float) -> float:
    p, mu, sigma = report_triple
    if p <= 0.0 or math.isnan(mu):
        return 0.0
    return p * (1.0 - Normal(mu, sigma).cdf(clock_period))
