"""SPSTA — Signal Probability Based Statistical Timing Analysis.

A from-scratch reproduction of Bao Liu, "Signal Probability Based
Statistical Timing Analysis" (DATE 2008): the SPSTA engine with three TOP
abstractions, the min/max-separated SSTA baseline, deterministic STA, a
four-value-logic Monte Carlo timing simulator, the power-estimation
substrate (signal probabilities, transition densities, BDDs), ISCAS'89
netlist handling, and harnesses regenerating every table and figure of the
paper's evaluation.

Quickstart::

    from repro import (
        CONFIG_I,
        benchmark_circuit,
        critical_endpoint,
        run_monte_carlo,
        run_spsta,
        run_ssta,
    )

    netlist = benchmark_circuit("s27")
    endpoint, _depth = critical_endpoint(netlist)
    spsta = run_spsta(netlist, CONFIG_I)
    print(spsta.report(endpoint, "rise"))   # (P, mean, sigma)
"""

from repro.core import (
    CONFIG_I,
    CONFIG_II,
    GridAlgebra,
    InputStats,
    MixtureAlgebra,
    MomentAlgebra,
    NormalDelay,
    Prob4,
    SpstaProfile,
    SpstaResult,
    SstaResult,
    StaResult,
    UnitDelay,
    propagate_prob4,
    run_spsta,
    run_ssta,
    run_sta,
    signal_probabilities,
)
from repro.netlist import (
    Gate,
    Netlist,
    benchmark_circuit,
    benchmark_names,
    critical_endpoint,
    parse_bench,
    parse_bench_file,
    write_bench,
)
from repro.sim import run_monte_carlo

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # netlist
    "Netlist",
    "Gate",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "benchmark_circuit",
    "benchmark_names",
    "critical_endpoint",
    # inputs
    "InputStats",
    "Prob4",
    "CONFIG_I",
    "CONFIG_II",
    # delay
    "UnitDelay",
    "NormalDelay",
    # engines
    "run_sta",
    "StaResult",
    "run_ssta",
    "SstaResult",
    "run_spsta",
    "SpstaProfile",
    "SpstaResult",
    "MomentAlgebra",
    "MixtureAlgebra",
    "GridAlgebra",
    "run_monte_carlo",
    # probabilities
    "propagate_prob4",
    "signal_probabilities",
]
