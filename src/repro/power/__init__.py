"""Statistical power estimation (paper Sec. 2.2) — the substrate SPSTA
imports its signal-probability machinery from.

- :mod:`repro.power.density` — transition densities via Boolean-difference
  propagation (Najm; paper Eq. 6/7) and via the four-value Prob4 view.
- :mod:`repro.power.power` — switching-power estimates from toggling rates.
"""

from repro.power.density import (
    boolean_difference_probability,
    transition_densities,
    transition_densities_bdd,
)
from repro.power.power import PowerReport, switching_power

__all__ = [
    "transition_densities",
    "transition_densities_bdd",
    "boolean_difference_probability",
    "switching_power",
    "PowerReport",
]
