"""Transition density propagation (Najm; paper Sec. 2.2.2, Eq. 6/7).

The transition density (expected transitions per unit time / per cycle) of a
gate output is the weighted sum of input densities, each weighted by the
probability of the Boolean difference — the condition under which a
transition on that input propagates to the output:

    rho_y = sum_i P(dy/dx_i) * rho_{x_i}          (Eq. 6)
    dy/dx_i = y|x_i=1 XOR y|x_i=0                 (Eq. 7)

Two implementations are provided: closed-form per-gate propagation under the
independence assumption (one netlist traversal, like the paper's), and a
BDD-exact version that expresses every net over the launch points and so
captures reconvergent-fanout correlation in the Boolean differences.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Union

from repro.core.probability import signal_probabilities
from repro.logic.bdd import BDDManager
from repro.logic.gates import GateType, gate_spec
from repro.netlist.core import Netlist


def gate_boolean_difference_probs(gate_type: GateType,
                                  input_probs: Sequence[float]
                                  ) -> Sequence[float]:
    """P(dy/dx_i) per input, independent inputs, closed form.

    AND/NAND: the other inputs must all be 1; OR/NOR: all 0; inverters and
    parity gates always propagate (their Boolean difference is constant 1).
    """
    spec = gate_spec(gate_type)
    spec.validate_arity(len(input_probs))
    n = len(input_probs)
    if gate_type in (GateType.NOT, GateType.BUFF) or spec.is_parity:
        return [1.0] * n
    result = []
    for i in range(n):
        acc = 1.0
        for j, p in enumerate(input_probs):
            if j == i:
                continue
            acc *= p if spec.controlling_value == 0 else (1.0 - p)
        result.append(acc)
    return result


def transition_densities(netlist: Netlist,
                         launch_probs: Union[float, Mapping[str, float]],
                         launch_densities: Union[float, Mapping[str, float]]
                         ) -> Dict[str, float]:
    """One-traversal density propagation under independence (paper Eq. 6)."""
    probs = signal_probabilities(netlist, launch_probs)
    densities: Dict[str, float] = {}
    for net in netlist.launch_points:
        rho = (launch_densities if isinstance(launch_densities, (int, float))
               else launch_densities[net])
        if rho < 0.0:
            raise ValueError(f"density of {net} must be >= 0, got {rho}")
        densities[net] = float(rho)
    for gate in netlist.combinational_gates:
        in_probs = [probs[src] for src in gate.inputs]
        weights = gate_boolean_difference_probs(gate.gate_type, in_probs)
        densities[gate.name] = sum(
            w * densities[src] for w, src in zip(weights, gate.inputs))
    return densities


def boolean_difference_probability(
        manager: BDDManager, f: int, var: str,
        probabilities: Mapping[str, float]) -> float:
    """P(df/dvar) evaluated exactly on the BDD (Eq. 7 + Sec. 2.2.1)."""
    diff = manager.boolean_difference(f, var)
    return manager.signal_probability(diff, dict(probabilities))


def build_net_bdds(netlist: Netlist,
                   manager: BDDManager) -> Dict[str, int]:
    """BDD of every net as a function of the launch points (symbolic
    simulation, paper Sec. 3.5)."""
    funcs: Dict[str, int] = {}
    for net in netlist.launch_points:
        funcs[net] = manager.var(net)
    for gate in netlist.combinational_gates:
        operands = [funcs[src] for src in gate.inputs]
        funcs[gate.name] = manager.apply_gate(gate.gate_type, operands)
    return funcs


def transition_densities_bdd(netlist: Netlist,
                             launch_probs: Union[float, Mapping[str, float]],
                             launch_densities: Union[
                                 float, Mapping[str, float]],
                             ) -> Dict[str, float]:
    """Correlation-exact density propagation: every net's Boolean difference
    with respect to every launch point in its support, on BDDs.

    Cost grows with BDD sizes; intended for the small/medium benchmark
    circuits (it is the accuracy reference for :func:`transition_densities`).
    """
    manager = BDDManager()
    funcs = build_net_bdds(netlist, manager)
    probs: Dict[str, float] = {}
    rhos: Dict[str, float] = {}
    for net in netlist.launch_points:
        p = (launch_probs if isinstance(launch_probs, (int, float))
             else launch_probs[net])
        probs[net] = float(p)
        rho = (launch_densities if isinstance(launch_densities, (int, float))
               else launch_densities[net])
        rhos[net] = float(rho)
    densities: Dict[str, float] = dict(rhos)
    for gate in netlist.combinational_gates:
        f = funcs[gate.name]
        total = 0.0
        for var in manager.support(f):
            total += (boolean_difference_probability(manager, f, var, probs)
                      * rhos[var])
        densities[gate.name] = total
    return densities
