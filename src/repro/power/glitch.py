"""Glitch-rate estimation (paper Sec. 3.3's glitch discussion, quantified).

The paper notes that a two-value WEIGHTED SUM counts glitches while the
four-value logic filters them ("Moving to four-value logic allows
identification of glitches").  The flip side is a power-estimation feature:
the *difference* between the Boolean-difference transition density (Eq. 6,
which counts every propagating input toggle) and the four-value toggling
rate (which keeps only net value changes that survive to the settled value)
estimates the glitch activity a power tool must still charge for:

    glitch_rate(y) ~ rho_Eq6(y) - (Pr(y) + Pf(y))

Units are glitch *edges* per cycle (a full glitch pulse contributes two
edges, which is also what the CV^2 f power model charges for).  The exact
per-trial edge count is available from the event-stepping simulator
(:func:`count_output_changes`), used as the test oracle.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.core.inputs import InputStats
from repro.core.probability import propagate_prob4
from repro.logic.fourvalue import final_bit, init_bit
from repro.logic.gates import gate_spec
from repro.netlist.core import Netlist
from repro.power.density import transition_densities
from repro.power.power import PowerReport, switching_power
from repro.sim.reference import NetState


def glitch_rates(netlist: Netlist,
                 stats: InputStats) -> Dict[str, float]:
    """Estimated glitches per cycle per net (>= 0)."""
    rho = transition_densities(
        netlist,
        stats.prob4.signal_probability,
        stats.prob4.toggling_rate)
    prob4 = propagate_prob4(netlist, stats.prob4)
    return {net: max(rho[net] - prob4[net].toggling_rate, 0.0)
            for net in netlist.nets}


def glitch_power(netlist: Netlist, stats: InputStats,
                 vdd: float = 1.0, f_clk: float = 1.0e9) -> PowerReport:
    """Dynamic power charged to glitches alone (CV^2 f over glitch rates)."""
    return switching_power(netlist, glitch_rates(netlist, stats),
                           vdd=vdd, f_clk=f_clk)


def count_output_changes(gate_type, inputs: Sequence[NetState]) -> int:
    """Exact number of output value changes for one trial of one gate —
    including glitch excursions the four-value abstraction filters.

    Replays the input transitions in time order (the same semantics as
    :func:`repro.sim.reference.event_gate_output`) and counts every flip of
    the gate function's value.
    """
    spec = gate_spec(gate_type)
    values = [v for v, _ in inputs]
    spec.validate_arity(len(values))
    bits = [init_bit(v) for v in values]
    current = spec.eval_bits(bits)
    events = sorted(
        (t, i) for i, (v, t) in enumerate(inputs)
        if init_bit(v) != final_bit(v))
    changes = 0
    for _t, i in events:
        bits[i] = 1 - bits[i]
        new = spec.eval_bits(bits)
        if new != current:
            changes += 1
            current = new
    return changes


def simulate_glitch_counts(
        netlist: Netlist,
        stats: Union[InputStats, Dict[str, InputStats]],
        n_trials: int = 5_000,
        rng: Optional[np.random.Generator] = None) -> Dict[str, float]:
    """Monte Carlo oracle: mean glitches per cycle per net.

    A glitch is an output change beyond the single settled transition
    (i.e. ``changes - 1`` for a toggling net, ``changes`` for a net whose
    initial and final values coincide).
    """
    from repro.logic.fourvalue import from_bits
    from repro.sim.reference import event_gate_output
    from repro.sim.sampler import sample_launch_points

    if rng is None:
        rng = np.random.default_rng(0)
    samples = sample_launch_points(netlist, stats, n_trials, rng)
    totals: Dict[str, float] = {
        g.name: 0.0 for g in netlist.combinational_gates}
    for trial in range(n_trials):
        states: Dict[str, NetState] = {}
        for net, wave in samples.items():
            symbol = from_bits(int(wave.init[trial]), int(wave.final[trial]))
            t = wave.time[trial]
            states[net] = (symbol, None if np.isnan(t) else float(t))
        for gate in netlist.combinational_gates:
            operands = [states[src] for src in gate.inputs]
            changes = count_output_changes(gate.gate_type, operands)
            symbol, time = event_gate_output(gate.gate_type, operands, 1.0)
            settles = 1 if init_bit(symbol) != final_bit(symbol) else 0
            totals[gate.name] += max(changes - settles, 0)
            states[gate.name] = (symbol, time)
    return {net: total / n_trials for net, total in totals.items()}
