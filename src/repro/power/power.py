"""Dynamic switching-power estimation from toggling rates.

The classic CV^2 f model: every net toggle charges/discharges the net's load
capacitance, so

    P = 0.5 * Vdd^2 * f_clk * sum_nets C_net * rho_net

with rho the per-cycle transition density.  The load model is a simple
fanout-proportional capacitance; the point of this module is to demonstrate
the paper's Sec. 3.1 claim that SPSTA's TOP integrals (toggling rates) feed
directly into power estimation, not to be a signoff power tool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.netlist.core import Netlist


@dataclass(frozen=True)
class PowerReport:
    """Total dynamic power plus the per-net breakdown."""

    total_watts: float
    per_net_watts: Mapping[str, float]

    def top_consumers(self, n: int = 10):
        """The ``n`` nets with the highest switching power."""
        ranked = sorted(self.per_net_watts.items(),
                        key=lambda kv: kv[1], reverse=True)
        return ranked[:n]


def switching_power(netlist: Netlist,
                    toggling_rates: Mapping[str, float],
                    vdd: float = 1.0,
                    f_clk: float = 1.0e9,
                    c_gate_input: float = 2.0e-15,
                    c_wire: float = 1.0e-15) -> PowerReport:
    """Estimate dynamic power from per-net toggling rates.

    ``toggling_rates`` maps nets to expected transitions per cycle — from
    :func:`repro.power.density.transition_densities`, from an SPSTA result's
    :meth:`~repro.core.spsta.SpstaResult.toggling_rate`, or from a Monte
    Carlo result's
    :meth:`~repro.sim.montecarlo.MonteCarloResult.toggling_rate`.
    Net load = wire capacitance + one gate-input capacitance per fanout.
    """
    if vdd <= 0.0 or f_clk <= 0.0:
        raise ValueError("vdd and f_clk must be positive")
    per_net: Dict[str, float] = {}
    for net in netlist.nets:
        rate = toggling_rates.get(net)
        if rate is None:
            continue
        load = c_wire + c_gate_input * len(netlist.fanouts(net))
        per_net[net] = 0.5 * vdd * vdd * f_clk * load * rate
    return PowerReport(sum(per_net.values()), per_net)
