"""Testability analysis on top of the signal-probability substrate.

- :mod:`repro.testability.cop` — COP-style controllability / observability
  / random-pattern detectability, plus a reference fault simulator used as
  the oracle.  Full-scan is assumed: DFF outputs are controllable launch
  points and DFF data inputs are observable endpoints, exactly the timing
  graph's boundary convention.
"""

from repro.testability.cop import (
    CopResult,
    Fault,
    compute_cop,
    patterns_for_confidence,
    random_pattern_coverage,
    simulate_fault_detection,
)

__all__ = [
    "compute_cop",
    "CopResult",
    "Fault",
    "patterns_for_confidence",
    "random_pattern_coverage",
    "simulate_fault_detection",
]
