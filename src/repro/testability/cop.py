"""COP-style testability measures from signal probabilities.

COP (Controllability/Observability Program, Brglez) computes, per net:

- 1-controllability CC1 = P(net = 1) — exactly the Eq. 5 signal
  probability this library already propagates;
- observability O = probability a value change on the net propagates to an
  observable point: O(output) = 1, and through a gate input,
  O(x_i) = O(y) * P(dy/dx_i) — the Boolean-difference probability of
  Eq. 7.  Fanout stems take the maximum over branches (a change is
  observable if its most observable branch is);
- stuck-at-v detectability D = P(net = !v) * O(net): a random pattern
  detects the fault iff it drives the opposite value AND the site is
  observed.

From detectabilities follow random-pattern test lengths and expected fault
coverage.  Full scan is assumed (DFF outputs controllable, DFF data inputs
observable).  All quantities inherit the independence approximation of the
underlying probabilities; :func:`simulate_fault_detection` is the exact
Monte Carlo oracle the tests compare against.
"""

from __future__ import annotations

from dataclasses import dataclass
import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.probability import signal_probabilities
from repro.logic.gates import GateType, gate_spec
from repro.netlist.core import Netlist
from repro.power.density import gate_boolean_difference_probs


@dataclass(frozen=True)
class Fault:
    """A single stuck-at fault site."""

    net: str
    stuck_at: int

    def __post_init__(self) -> None:
        if self.stuck_at not in (0, 1):
            raise ValueError("stuck_at must be 0 or 1")

    def __str__(self) -> str:
        return f"{self.net}/sa{self.stuck_at}"


@dataclass(frozen=True)
class CopResult:
    """Per-net testability measures."""

    controllability: Mapping[str, float]   # CC1 = P(net = 1)
    observability: Mapping[str, float]
    detectability: Mapping[Fault, float]

    def hardest_faults(self, n: int = 10) -> List[Tuple[Fault, float]]:
        """The ``n`` least detectable faults (ties by site name)."""
        ranked = sorted(self.detectability.items(),
                        key=lambda kv: (kv[1], kv[0].net, kv[0].stuck_at))
        return ranked[:n]


def compute_cop(netlist: Netlist,
                launch_probs: Union[float, Mapping[str, float]] = 0.5
                ) -> CopResult:
    """COP controllability/observability/detectability for every net."""
    cc1 = signal_probabilities(netlist, launch_probs)

    observability: Dict[str, float] = {net: 0.0 for net in netlist.nets}
    for net in netlist.endpoints:
        observability[net] = 1.0
    for gate in reversed(netlist.combinational_gates):
        if observability[gate.name] <= 0.0:
            continue
        in_probs = [cc1[src] for src in gate.inputs]
        weights = gate_boolean_difference_probs(gate.gate_type, in_probs)
        for src, w in zip(gate.inputs, weights):
            through_here = observability[gate.name] * w
            if through_here > observability[src]:
                observability[src] = through_here

    detectability: Dict[Fault, float] = {}
    for net in netlist.nets:
        for stuck in (0, 1):
            opposite = cc1[net] if stuck == 0 else 1.0 - cc1[net]
            detectability[Fault(net, stuck)] = opposite * observability[net]
    return CopResult(cc1, observability, detectability)


def patterns_for_confidence(detectability: float,
                            confidence: float = 0.95) -> float:
    """Random patterns needed to detect a fault with given confidence.

    N such that 1 - (1 - D)^N >= confidence; infinity for undetectable
    faults (D = 0).
    """
    if not 0.0 <= detectability <= 1.0:
        raise ValueError("detectability must be in [0, 1]")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if detectability <= 0.0:
        return math.inf
    if detectability >= 1.0:
        return 1.0
    return math.log(1.0 - confidence) / math.log(1.0 - detectability)


def random_pattern_coverage(result: CopResult, n_patterns: int) -> float:
    """Expected stuck-at coverage after ``n_patterns`` random patterns."""
    if n_patterns < 0:
        raise ValueError("n_patterns must be >= 0")
    detected = [1.0 - (1.0 - d) ** n_patterns
                for d in result.detectability.values()]
    return sum(detected) / len(detected)


def simulate_fault_detection(
        netlist: Netlist, fault: Fault, n_patterns: int,
        launch_probs: Union[float, Mapping[str, float]] = 0.5,
        rng: Optional[np.random.Generator] = None) -> float:
    """Monte Carlo oracle: the fraction of random patterns detecting
    ``fault`` (good vs faulty settled values differing at any endpoint)."""
    if rng is None:
        rng = np.random.default_rng(0)
    launch_points = netlist.launch_points

    def prob(net: str) -> float:
        return (launch_probs if isinstance(launch_probs, (int, float))
                else launch_probs[net])

    draws = {net: rng.random(n_patterns) < prob(net)
             for net in launch_points}

    def evaluate(faulty: bool) -> Dict[str, np.ndarray]:
        values: Dict[str, np.ndarray] = {}
        for net in launch_points:
            v = draws[net]
            if faulty and net == fault.net:
                v = np.full(n_patterns, bool(fault.stuck_at))
            values[net] = v
        for gate in netlist.combinational_gates:
            ins = [values[src] for src in gate.inputs]
            out = eval_gate(gate.gate_type, ins)
            if faulty and gate.name == fault.net:
                out = np.full(n_patterns, bool(fault.stuck_at))
            values[gate.name] = out
        return values

    good = evaluate(faulty=False)
    bad = evaluate(faulty=True)
    detected = np.zeros(n_patterns, dtype=bool)
    for net in netlist.endpoints:
        detected |= good[net] != bad[net]
    return float(detected.mean())


def eval_gate(gate_type: GateType,
              inputs: Sequence[np.ndarray]) -> np.ndarray:
    """Vectorized two-value gate evaluation over boolean pattern arrays.

    The exact-semantics sampler shared by the fault-detection oracle
    above and the bounds-containment Monte Carlo check
    (:mod:`repro.bounds.sampling`).
    """
    spec = gate_spec(gate_type)
    if gate_type is GateType.BUFF:
        return inputs[0].copy()
    if gate_type is GateType.NOT:
        return ~inputs[0]
    if gate_type in (GateType.AND, GateType.NAND):
        acc = inputs[0].copy()
        for x in inputs[1:]:
            acc &= x
    elif gate_type in (GateType.OR, GateType.NOR):
        acc = inputs[0].copy()
        for x in inputs[1:]:
            acc |= x
    else:  # parity
        acc = inputs[0].copy()
        for x in inputs[1:]:
            acc ^= x
    if spec.inverting:
        acc = ~acc
    return acc
