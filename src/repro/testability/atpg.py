"""BDD-based deterministic test generation (ATPG) for stuck-at faults.

For a fault site the *miter* construction gives exact test cubes: build
each endpoint's function twice — in the good circuit and in a faulty copy
with the site forced to the stuck value — and OR the XORs:

    miter(fault) = OR over endpoints e of ( good_e  XOR  faulty_e )

Any satisfying assignment of the miter is a test vector; an unsatisfiable
miter proves the fault untestable (redundant logic).  This complements the
statistical COP view: COP says how *likely* a random pattern is to catch a
fault, the miter says *whether and how* a deterministic pattern can.

A greedy test-set generator covers all testable faults with fault
simulation between pattern selections (each deterministic vector usually
catches many easy faults for free).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.logic.bdd import FALSE, TRUE, BDDManager
from repro.netlist.core import Netlist
from repro.power.density import build_net_bdds
from repro.testability.cop import Fault, eval_gate


@dataclass(frozen=True)
class TestVector:
    """One input pattern (per-launch-point bits) and the faults it targets."""

    assignment: Dict[str, int]
    targets: Tuple[Fault, ...]


class AtpgEngine:
    """Deterministic pattern generation over one netlist's BDDs."""

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self._manager = BDDManager()
        self._good = build_net_bdds(netlist, self._manager)
        self._faulty_cache: Dict[Fault, Dict[str, int]] = {}

    def _faulty_functions(self, fault: Fault) -> Dict[str, int]:
        cached = self._faulty_cache.get(fault)
        if cached is not None:
            return cached
        manager = self._manager
        constant = TRUE if fault.stuck_at else FALSE
        funcs: Dict[str, int] = {}
        for net in self.netlist.launch_points:
            funcs[net] = (constant if net == fault.net
                          else manager.var(net))
        for gate in self.netlist.combinational_gates:
            if gate.name == fault.net:
                funcs[gate.name] = constant
                continue
            operands = [funcs[src] for src in gate.inputs]
            funcs[gate.name] = manager.apply_gate(gate.gate_type, operands)
        self._faulty_cache[fault] = funcs
        return funcs

    def miter(self, fault: Fault) -> int:
        """The BDD of "some endpoint differs" for this fault."""
        if fault.net not in set(self.netlist.nets):
            raise KeyError(f"unknown net {fault.net}")
        faulty = self._faulty_functions(fault)
        manager = self._manager
        acc = FALSE
        for net in self.netlist.endpoints:
            diff = manager.apply_xor(self._good[net], faulty[net])
            acc = manager.apply_or(acc, diff)
        return acc

    def generate_test(self, fault: Fault) -> Optional[Dict[str, int]]:
        """A complete input assignment detecting ``fault``; None if the
        fault is untestable (redundant)."""
        cube = self._manager.any_sat(self.miter(fault))
        if cube is None:
            return None
        # Complete the cube: unconstrained launch points default to 0.
        assignment = {net: 0 for net in self.netlist.launch_points}
        assignment.update(cube)
        return assignment

    def is_testable(self, fault: Fault) -> bool:
        return self.miter(fault) != FALSE


def detected_faults(netlist: Netlist, assignment: Dict[str, int],
                    faults: Sequence[Fault]) -> List[Fault]:
    """Fault-simulate one pattern: which of ``faults`` it detects."""
    values = _settle(netlist, assignment, fault=None)
    caught: List[Fault] = []
    for fault in faults:
        faulty = _settle(netlist, assignment, fault)
        if any(values[net] != faulty[net] for net in netlist.endpoints):
            caught.append(fault)
    return caught


def _settle(netlist: Netlist, assignment: Dict[str, int],
            fault: Optional[Fault]) -> Dict[str, int]:
    values: Dict[str, int] = {}
    for net in netlist.launch_points:
        v = assignment[net]
        if fault is not None and net == fault.net:
            v = fault.stuck_at
        values[net] = v
    for gate in netlist.combinational_gates:
        ins = [np.array([bool(values[src])]) for src in gate.inputs]
        out = int(eval_gate(gate.gate_type, ins)[0])
        if fault is not None and gate.name == fault.net:
            out = fault.stuck_at
        values[gate.name] = out
    return values


@dataclass(frozen=True)
class TestSet:
    """A generated pattern set with coverage accounting."""

    vectors: Tuple[TestVector, ...]
    covered: Tuple[Fault, ...]
    untestable: Tuple[Fault, ...]

    @property
    def coverage(self) -> float:
        total = len(self.covered) + len(self.untestable)
        testable = len(self.covered)
        denominator = total - len(self.untestable)
        return testable / denominator if denominator else 1.0


def generate_test_set(netlist: Netlist,
                      faults: Optional[Sequence[Fault]] = None) -> TestSet:
    """Greedy complete test set: pick an uncovered fault, generate a
    deterministic vector for it, fault-simulate to credit incidental
    detections, repeat.  Untestable faults are reported, not retried."""
    if faults is None:
        faults = [Fault(net, v) for net in netlist.nets for v in (0, 1)]
    engine = AtpgEngine(netlist)
    remaining: List[Fault] = list(faults)
    vectors: List[TestVector] = []
    covered: List[Fault] = []
    untestable: List[Fault] = []
    while remaining:
        target = remaining[0]
        assignment = engine.generate_test(target)
        if assignment is None:
            untestable.append(target)
            remaining.pop(0)
            continue
        caught = detected_faults(netlist, assignment, remaining)
        assert target in caught, "generated vector must detect its target"
        vectors.append(TestVector(assignment, tuple(caught)))
        covered.extend(caught)
        caught_set = set(caught)
        remaining = [f for f in remaining if f not in caught_set]
    return TestSet(tuple(vectors), tuple(covered), tuple(untestable))
