"""Reproduction drivers for every table and figure in the paper.

- :mod:`repro.experiments.table2` — Table 2: SPSTA vs SSTA vs 10K-trial
  Monte Carlo arrival statistics on the critical path, configs (I) and (II).
- :mod:`repro.experiments.table3` — Table 3: analyzer runtimes.
- :mod:`repro.experiments.figures` — Figure 1 (bounds vs distributions) and
  Figure 4 (MAX vs WEIGHTED SUM) data series.
- :mod:`repro.experiments.errors` — the abstract's headline error summary
  (SPSTA within 6.2%/18.6% of MC vs SSTA within 13.4%/64.3%; signal
  probability within 14.28%).
"""

from repro.experiments.errors import ErrorSummary, error_summary
from repro.experiments.figures import figure1_series, figure4_series
from repro.experiments.table2 import Table2Row, format_table2, run_table2
from repro.experiments.table3 import RuntimeRow, format_table3, run_table3

__all__ = [
    "run_table2",
    "Table2Row",
    "format_table2",
    "run_table3",
    "RuntimeRow",
    "format_table3",
    "figure1_series",
    "figure4_series",
    "error_summary",
    "ErrorSummary",
]
