"""Data series for the paper's figures.

Figure 4 — the paper's central illustration: for a two-input AND gate whose
inputs both have signal probability 0.9 and arrival times with the same mean
but different deviations, the MAX operation produces a skewed, narrowed
density while the WEIGHTED SUM keeps a symmetric one.

Figure 1 — a circuit's actual arrival distribution (Monte Carlo histogram)
against the STA min/max bounds and the SSTA best/worst-case distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.compat import trapezoid
from repro.core.delay import DelayModel, UnitDelay
from repro.core.inputs import InputStats
from repro.core.ssta import run_ssta
from repro.core.sta import run_sta
from repro.netlist.benchmarks import benchmark_circuit
from repro.sim.montecarlo import run_monte_carlo
from repro.stats.clark import clark_max_many, clark_min_many
from repro.stats.grid import GridDensity, TimeGrid
from repro.stats.normal import Normal


@dataclass(frozen=True)
class Figure4Series:
    """Densities over a shared time axis plus their summary moments."""

    times: np.ndarray
    max_pdf: np.ndarray
    weighted_sum_pdf: np.ndarray
    max_mean: float
    max_std: float
    weighted_sum_mean: float
    weighted_sum_std: float
    weighted_sum_skewness: float
    max_skewness: float


def figure4_series(signal_probability: float = 0.9,
                   mean: float = 0.0,
                   sigma1: float = 0.5,
                   sigma2: float = 1.5,
                   grid: Optional[TimeGrid] = None) -> Figure4Series:
    """Figure 4: MAX vs WEIGHTED SUM at a two-input AND gate.

    Inputs have the same arrival mean but different deviations (the figure's
    setup).  The WEIGHTED SUM follows Eq. 8 with Boolean-difference weights
    P(dy/dx_i) = P(x_other) = ``signal_probability``; both outputs are
    normalized for shape comparison.
    """
    if grid is None:
        span = 6.0 * max(sigma1, sigma2)
        grid = TimeGrid(mean - span, mean + span, 4096)
    d1 = GridDensity.from_normal(grid, Normal(mean, sigma1))
    d2 = GridDensity.from_normal(grid, Normal(mean, sigma2))
    max_pdf = d1.max_with(d2)
    p = signal_probability
    wsum = (d1.scaled(p) + d2.scaled(p)).normalized()
    return Figure4Series(
        times=grid.points,
        max_pdf=max_pdf.values,
        weighted_sum_pdf=wsum.values,
        max_mean=max_pdf.mean(), max_std=max_pdf.std(),
        weighted_sum_mean=wsum.mean(), weighted_sum_std=wsum.std(),
        weighted_sum_skewness=_grid_skewness(wsum),
        max_skewness=_grid_skewness(max_pdf))


def _grid_skewness(density: GridDensity) -> float:
    mean, var = density.mean(), density.var()
    if var <= 0.0:
        return 0.0
    t = density.grid.points
    w = density.total_weight
    third = float(trapezoid((t - mean) ** 3 * density.values,
                            dx=density.grid.dt)) / w
    return third / var ** 1.5


@dataclass(frozen=True)
class Figure1Series:
    """Actual chip-delay distribution vs STA bounds vs SSTA distributions."""

    circuit: str
    mc_delays: np.ndarray            # per-trial chip delay (last transition)
    mc_no_transition_fraction: float
    sta_min: float
    sta_max: float
    ssta_best: Normal                # MIN over endpoints (best case)
    ssta_worst: Normal               # MAX over endpoints (worst case)


def figure1_series(circuit: str = "s344",
                   config: Optional[InputStats] = None,
                   n_trials: int = 10_000,
                   seed: int = 0,
                   delay_model: DelayModel = UnitDelay()) -> Figure1Series:
    """Figure 1 data for one circuit.

    Chip delay per trial is the latest transition over all endpoints; trials
    where nothing toggles have no delay sample (their fraction is reported —
    STA/SSTA silently assume it is zero, which is the paper's point).
    """
    if config is None:
        from repro.core.inputs import CONFIG_I
        config = CONFIG_I
    netlist = benchmark_circuit(circuit)
    endpoints = netlist.endpoints

    mc = run_monte_carlo(netlist, config, n_trials, delay_model,
                         rng=np.random.default_rng(seed))
    stacked = np.stack([mc.wave(net).time for net in endpoints])
    # nanmax warns on all-NaN trials (nothing toggled); compute manually.
    finite = np.where(np.isnan(stacked), -np.inf, stacked)
    chip_delay = finite.max(axis=0)
    has_transition = np.isfinite(chip_delay)

    sta = run_sta(netlist, delay_model)
    sta_min = min(sta.min_arrival[net] for net in endpoints)
    sta_max = max(sta.max_arrival[net] for net in endpoints)

    ssta = run_ssta(netlist, delay_model)
    all_arrivals = [getattr(ssta.arrivals[net], d)
                    for net in endpoints for d in ("rise", "fall")]
    return Figure1Series(
        circuit=circuit,
        mc_delays=chip_delay[has_transition],
        mc_no_transition_fraction=float(1.0 - has_transition.mean()),
        sta_min=sta_min,
        sta_max=sta_max,
        ssta_best=clark_min_many(all_arrivals),
        ssta_worst=clark_max_many(all_arrivals))


def figure3_example() -> Dict[str, Tuple[float, float]]:
    """Figure 3: signal probability and toggling rate at a two-input AND
    gate with P(x1) = P(x2) = 0.5 and unit input densities.

    Returns {'signal_probability': (computed, expected),
             'toggling_rate': (computed, expected)}.
    """
    from repro.core.probability import gate_signal_probability
    from repro.logic.gates import GateType
    from repro.power.density import gate_boolean_difference_probs

    p = gate_signal_probability(GateType.AND, [0.5, 0.5])
    weights = gate_boolean_difference_probs(GateType.AND, [0.5, 0.5])
    rho = sum(w * 1.0 for w in weights)
    return {"signal_probability": (p, 0.25),
            "toggling_rate": (rho, 1.0)}
