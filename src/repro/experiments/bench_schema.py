"""Schema of the ``BENCH_scenario_sweep.json`` trajectory artifact.

``benchmarks/test_bench_scenario.py`` measures the scenario-batched
backend against the looped fast engine over a trajectory of grid sizes
and writes the result as machine-readable JSON (CI uploads it as a build
artifact).  This module is the single source of truth for that format:
the writer validates before writing and ``tests/test_bench_schema.py``
pins the schema itself, so a format drift fails fast on both ends.

Validation prefers `jsonschema <https://python-jsonschema.readthedocs.io>`_
when importable and falls back to an equivalent structural check — the
schema is deliberately simple enough to verify by hand.
"""

from __future__ import annotations

from typing import Any, Dict, List

try:                                        # pragma: no cover - optional
    import jsonschema                       # type: ignore[import-untyped]
except ImportError:                         # pragma: no cover
    jsonschema = None

#: JSON-Schema (draft 7 subset) of the scenario-sweep benchmark artifact.
SCENARIO_SWEEP_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["report", "version", "circuit", "n_scenarios",
                 "algebra", "headline", "trajectory"],
    "properties": {
        "report": {"const": "spsta-scenario-sweep"},
        "version": {"type": "integer", "minimum": 1},
        "circuit": {"type": "string", "minLength": 1},
        "n_scenarios": {"type": "integer", "minimum": 1},
        "algebra": {"type": "string", "minLength": 1},
        "repeats": {"type": "integer", "minimum": 1},
        "headline": {
            "type": "object",
            "required": ["grid_n", "speedup"],
            "properties": {
                "grid_n": {"type": "integer", "minimum": 8},
                "speedup": {"type": "number", "exclusiveMinimum": 0},
            },
        },
        "trajectory": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["grid", "batched_seconds", "looped_seconds",
                             "speedup"],
                "properties": {
                    "grid": {
                        "type": "object",
                        "required": ["start", "stop", "n"],
                        "properties": {
                            "start": {"type": "number"},
                            "stop": {"type": "number"},
                            "n": {"type": "integer", "minimum": 8},
                        },
                    },
                    "batched_seconds": {"type": "number",
                                        "exclusiveMinimum": 0},
                    "looped_seconds": {"type": "number",
                                       "exclusiveMinimum": 0},
                    "speedup": {"type": "number", "exclusiveMinimum": 0},
                },
            },
        },
    },
}

#: Bump on breaking format changes (mirrors the lint report convention).
SCENARIO_SWEEP_VERSION = 1


def _fail(message: str) -> None:
    raise ValueError(f"BENCH_scenario_sweep payload invalid: {message}")


def _check_number(obj: Dict[str, Any], key: str, positive: bool = False,
                  where: str = "") -> None:
    value = obj.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        _fail(f"{where}{key} must be a number, got {value!r}")
    if positive and value <= 0:
        _fail(f"{where}{key} must be > 0, got {value!r}")


def _validate_fallback(payload: Dict[str, Any]) -> None:
    """Structural validation mirroring :data:`SCENARIO_SWEEP_SCHEMA`."""
    if not isinstance(payload, dict):
        _fail("top level must be an object")
    for key in SCENARIO_SWEEP_SCHEMA["required"]:
        if key not in payload:
            _fail(f"missing required key {key!r}")
    if payload["report"] != "spsta-scenario-sweep":
        _fail(f"report must be 'spsta-scenario-sweep', "
              f"got {payload['report']!r}")
    if not isinstance(payload["version"], int) or payload["version"] < 1:
        _fail("version must be an integer >= 1")
    for key in ("circuit", "algebra"):
        if not isinstance(payload[key], str) or not payload[key]:
            _fail(f"{key} must be a non-empty string")
    if not isinstance(payload["n_scenarios"], int) \
            or payload["n_scenarios"] < 1:
        _fail("n_scenarios must be an integer >= 1")
    headline = payload["headline"]
    if not isinstance(headline, dict):
        _fail("headline must be an object")
    if not isinstance(headline.get("grid_n"), int):
        _fail("headline.grid_n must be an integer")
    _check_number(headline, "speedup", positive=True, where="headline.")
    trajectory = payload["trajectory"]
    if not isinstance(trajectory, list) or not trajectory:
        _fail("trajectory must be a non-empty array")
    for i, point in enumerate(trajectory):
        where = f"trajectory[{i}]."
        if not isinstance(point, dict):
            _fail(f"trajectory[{i}] must be an object")
        grid = point.get("grid")
        if not isinstance(grid, dict):
            _fail(f"{where}grid must be an object")
        _check_number(grid, "start", where=where + "grid.")
        _check_number(grid, "stop", where=where + "grid.")
        if not isinstance(grid.get("n"), int) or grid["n"] < 8:
            _fail(f"{where}grid.n must be an integer >= 8")
        for key in ("batched_seconds", "looped_seconds", "speedup"):
            _check_number(point, key, positive=True, where=where)


def validate_scenario_sweep(payload: Dict[str, Any]) -> None:
    """Raise ``ValueError`` if ``payload`` violates the artifact schema."""
    if jsonschema is not None:
        try:
            jsonschema.validate(payload, SCENARIO_SWEEP_SCHEMA)
        except jsonschema.ValidationError as exc:
            raise ValueError(
                f"BENCH_scenario_sweep payload invalid: {exc.message}"
            ) from exc
        return
    _validate_fallback(payload)


def trajectory_speedups(payload: Dict[str, Any]) -> List[float]:
    """The per-grid speedups, in trajectory order (payload assumed valid)."""
    return [point["speedup"] for point in payload["trajectory"]]
