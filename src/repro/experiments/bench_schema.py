"""Schemas of the machine-readable benchmark-trajectory artifacts.

``benchmarks/test_bench_scenario.py`` measures the scenario-batched
backend against the looped fast engine over a trajectory of grid sizes
and writes ``BENCH_scenario_sweep.json``;
``benchmarks/test_bench_hier.py`` measures the hierarchical partition
scheduler against the flat fast engine over a trajectory of circuit
sizes (10^4 to 10^6 gates) and writes ``BENCH_hier_scale.json`` (CI
uploads both as build artifacts).  This module is the single source of
truth for those formats: the writers validate before writing and
``tests/test_bench_schema.py`` pins the schemas themselves, so a format
drift fails fast on both ends.

In the hier-scale trajectory a point's ``flat_seconds`` (and hence
``speedup``) may be ``null``: at the top of the trajectory the flat
engine's whole-design state no longer fits the memory budget, so there
is no baseline to run — the point instead carries a
``flat_infeasible_reason`` recording the projected footprint.  The
validator enforces that null-consistency.

Validation prefers `jsonschema <https://python-jsonschema.readthedocs.io>`_
when importable and falls back to an equivalent structural check — the
schema is deliberately simple enough to verify by hand.
"""

from __future__ import annotations

from typing import Any, Dict, List

try:                                        # pragma: no cover - optional
    import jsonschema                       # type: ignore[import-untyped]
except ImportError:                         # pragma: no cover
    jsonschema = None

#: JSON-Schema (draft 7 subset) of the scenario-sweep benchmark artifact.
SCENARIO_SWEEP_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["report", "version", "circuit", "n_scenarios",
                 "algebra", "headline", "trajectory"],
    "properties": {
        "report": {"const": "spsta-scenario-sweep"},
        "version": {"type": "integer", "minimum": 1},
        "circuit": {"type": "string", "minLength": 1},
        "n_scenarios": {"type": "integer", "minimum": 1},
        "algebra": {"type": "string", "minLength": 1},
        "repeats": {"type": "integer", "minimum": 1},
        "headline": {
            "type": "object",
            "required": ["grid_n", "speedup"],
            "properties": {
                "grid_n": {"type": "integer", "minimum": 8},
                "speedup": {"type": "number", "exclusiveMinimum": 0},
            },
        },
        "trajectory": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["grid", "batched_seconds", "looped_seconds",
                             "speedup"],
                "properties": {
                    "grid": {
                        "type": "object",
                        "required": ["start", "stop", "n"],
                        "properties": {
                            "start": {"type": "number"},
                            "stop": {"type": "number"},
                            "n": {"type": "integer", "minimum": 8},
                        },
                    },
                    "batched_seconds": {"type": "number",
                                        "exclusiveMinimum": 0},
                    "looped_seconds": {"type": "number",
                                       "exclusiveMinimum": 0},
                    "speedup": {"type": "number", "exclusiveMinimum": 0},
                },
            },
        },
    },
}

#: Bump on breaking format changes (mirrors the lint report convention).
SCENARIO_SWEEP_VERSION = 1


def _fail(message: str) -> None:
    raise ValueError(f"BENCH_scenario_sweep payload invalid: {message}")


def _check_number(obj: Dict[str, Any], key: str, positive: bool = False,
                  where: str = "") -> None:
    value = obj.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        _fail(f"{where}{key} must be a number, got {value!r}")
    if positive and value <= 0:
        _fail(f"{where}{key} must be > 0, got {value!r}")


def _validate_fallback(payload: Dict[str, Any]) -> None:
    """Structural validation mirroring :data:`SCENARIO_SWEEP_SCHEMA`."""
    if not isinstance(payload, dict):
        _fail("top level must be an object")
    for key in SCENARIO_SWEEP_SCHEMA["required"]:
        if key not in payload:
            _fail(f"missing required key {key!r}")
    if payload["report"] != "spsta-scenario-sweep":
        _fail(f"report must be 'spsta-scenario-sweep', "
              f"got {payload['report']!r}")
    if not isinstance(payload["version"], int) or payload["version"] < 1:
        _fail("version must be an integer >= 1")
    for key in ("circuit", "algebra"):
        if not isinstance(payload[key], str) or not payload[key]:
            _fail(f"{key} must be a non-empty string")
    if not isinstance(payload["n_scenarios"], int) \
            or payload["n_scenarios"] < 1:
        _fail("n_scenarios must be an integer >= 1")
    headline = payload["headline"]
    if not isinstance(headline, dict):
        _fail("headline must be an object")
    if not isinstance(headline.get("grid_n"), int):
        _fail("headline.grid_n must be an integer")
    _check_number(headline, "speedup", positive=True, where="headline.")
    trajectory = payload["trajectory"]
    if not isinstance(trajectory, list) or not trajectory:
        _fail("trajectory must be a non-empty array")
    for i, point in enumerate(trajectory):
        where = f"trajectory[{i}]."
        if not isinstance(point, dict):
            _fail(f"trajectory[{i}] must be an object")
        grid = point.get("grid")
        if not isinstance(grid, dict):
            _fail(f"{where}grid must be an object")
        _check_number(grid, "start", where=where + "grid.")
        _check_number(grid, "stop", where=where + "grid.")
        if not isinstance(grid.get("n"), int) or grid["n"] < 8:
            _fail(f"{where}grid.n must be an integer >= 8")
        for key in ("batched_seconds", "looped_seconds", "speedup"):
            _check_number(point, key, positive=True, where=where)


def validate_scenario_sweep(payload: Dict[str, Any]) -> None:
    """Raise ``ValueError`` if ``payload`` violates the artifact schema."""
    if jsonschema is not None:
        try:
            jsonschema.validate(payload, SCENARIO_SWEEP_SCHEMA)
        except jsonschema.ValidationError as exc:
            raise ValueError(
                f"BENCH_scenario_sweep payload invalid: {exc.message}"
            ) from exc
        return
    _validate_fallback(payload)


def trajectory_speedups(payload: Dict[str, Any]) -> List[float]:
    """The per-grid speedups, in trajectory order (payload assumed valid)."""
    return [point["speedup"] for point in payload["trajectory"]]


#: JSON-Schema (draft 7 subset) of the hier-scale benchmark artifact.
#: ``flat_seconds``/``speedup`` are nullable — see the module docstring;
#: the cross-field consistency between them is checked by
#: :func:`validate_hier_scale` (draft-07 conditionals would obscure an
#: otherwise hand-checkable schema).
HIER_SCALE_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["report", "version", "workers", "algebra",
                 "memory_budget_bytes", "headline", "trajectory"],
    "properties": {
        "report": {"const": "spsta-hier-scale"},
        "version": {"type": "integer", "minimum": 1},
        "workers": {"type": "integer", "minimum": 1},
        "algebra": {"type": "string", "minLength": 1},
        "memory_budget_bytes": {"type": "integer", "exclusiveMinimum": 0},
        "repeats": {"type": "integer", "minimum": 1},
        "headline": {
            "type": "object",
            "required": ["n_gates", "speedup"],
            "properties": {
                "n_gates": {"type": "integer", "minimum": 1},
                "speedup": {"type": "number", "exclusiveMinimum": 0},
            },
        },
        "trajectory": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["n_gates", "n_regions", "grid_n",
                             "hier_seconds", "flat_seconds", "speedup",
                             "peak_rss_bytes", "complete"],
                "properties": {
                    "n_gates": {"type": "integer", "minimum": 1},
                    "n_regions": {"type": "integer", "minimum": 1},
                    "grid_n": {"type": "integer", "minimum": 8},
                    "hier_seconds": {"type": "number",
                                     "exclusiveMinimum": 0},
                    "flat_seconds": {"type": ["number", "null"],
                                     "exclusiveMinimum": 0},
                    "speedup": {"type": ["number", "null"],
                                "exclusiveMinimum": 0},
                    "flat_infeasible_reason": {"type": "string",
                                               "minLength": 1},
                    "peak_rss_bytes": {"type": "integer",
                                       "exclusiveMinimum": 0},
                    "complete": {"const": True},
                    "dedup_hits": {"type": "integer", "minimum": 0},
                },
            },
        },
    },
}

#: Bump on breaking format changes.
HIER_SCALE_VERSION = 1


def _hier_fail(message: str) -> None:
    raise ValueError(f"BENCH_hier_scale payload invalid: {message}")


def _check_nullable_number(obj: Dict[str, Any], key: str,
                           where: str) -> None:
    value = obj.get(key)
    if value is None:
        return
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        _hier_fail(f"{where}{key} must be a number or null, got {value!r}")
    if value <= 0:
        _hier_fail(f"{where}{key} must be > 0, got {value!r}")


def _validate_hier_fallback(payload: Dict[str, Any]) -> None:
    """Structural validation mirroring :data:`HIER_SCALE_SCHEMA`."""
    if not isinstance(payload, dict):
        _hier_fail("top level must be an object")
    for key in HIER_SCALE_SCHEMA["required"]:
        if key not in payload:
            _hier_fail(f"missing required key {key!r}")
    if payload["report"] != "spsta-hier-scale":
        _hier_fail(f"report must be 'spsta-hier-scale', "
                   f"got {payload['report']!r}")
    if not isinstance(payload["version"], int) or payload["version"] < 1:
        _hier_fail("version must be an integer >= 1")
    if not isinstance(payload["workers"], int) or payload["workers"] < 1:
        _hier_fail("workers must be an integer >= 1")
    if not isinstance(payload["algebra"], str) or not payload["algebra"]:
        _hier_fail("algebra must be a non-empty string")
    budget = payload["memory_budget_bytes"]
    if not isinstance(budget, int) or isinstance(budget, bool) \
            or budget <= 0:
        _hier_fail("memory_budget_bytes must be an integer > 0")
    headline = payload["headline"]
    if not isinstance(headline, dict):
        _hier_fail("headline must be an object")
    if not isinstance(headline.get("n_gates"), int) \
            or headline["n_gates"] < 1:
        _hier_fail("headline.n_gates must be an integer >= 1")
    value = headline.get("speedup")
    if not isinstance(value, (int, float)) or isinstance(value, bool) \
            or value <= 0:
        _hier_fail("headline.speedup must be a number > 0")
    trajectory = payload["trajectory"]
    if not isinstance(trajectory, list) or not trajectory:
        _hier_fail("trajectory must be a non-empty array")
    for i, point in enumerate(trajectory):
        where = f"trajectory[{i}]."
        if not isinstance(point, dict):
            _hier_fail(f"trajectory[{i}] must be an object")
        for key in ("n_gates", "n_regions", "grid_n", "peak_rss_bytes"):
            value = point.get(key)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                _hier_fail(f"{where}{key} must be an integer >= 1")
        if point["grid_n"] < 8:
            _hier_fail(f"{where}grid_n must be an integer >= 8")
        value = point.get("hier_seconds")
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or value <= 0:
            _hier_fail(f"{where}hier_seconds must be a number > 0")
        if "flat_seconds" not in point or "speedup" not in point:
            _hier_fail(f"{where}flat_seconds and speedup are required")
        _check_nullable_number(point, "flat_seconds", where)
        _check_nullable_number(point, "speedup", where)
        if point.get("complete") is not True:
            _hier_fail(f"{where}complete must be true")


def validate_hier_scale(payload: Dict[str, Any]) -> None:
    """Raise ``ValueError`` if ``payload`` violates the artifact schema.

    On top of the structural schema, enforces the null-consistency the
    format promises: ``flat_seconds`` and ``speedup`` are null together,
    and a null baseline must carry a ``flat_infeasible_reason``.
    """
    if jsonschema is not None:
        try:
            jsonschema.validate(payload, HIER_SCALE_SCHEMA)
        except jsonschema.ValidationError as exc:
            raise ValueError(
                f"BENCH_hier_scale payload invalid: {exc.message}"
            ) from exc
    else:
        _validate_hier_fallback(payload)
    for i, point in enumerate(payload["trajectory"]):
        where = f"trajectory[{i}]."
        flat_null = point["flat_seconds"] is None
        if flat_null != (point["speedup"] is None):
            _hier_fail(f"{where}flat_seconds and speedup must be "
                       f"null together")
        if flat_null and not point.get("flat_infeasible_reason"):
            _hier_fail(f"{where}flat_infeasible_reason is required when "
                       f"flat_seconds is null")


def hier_speedups(payload: Dict[str, Any]) -> Dict[int, float]:
    """Measured speedups by gate count, flat-infeasible points omitted
    (payload assumed valid)."""
    return {point["n_gates"]: point["speedup"]
            for point in payload["trajectory"]
            if point["speedup"] is not None}


#: JSON-Schema (draft 7 subset) of the optimizer-loop benchmark artifact
#: (``benchmarks/test_bench_opt.py`` -> ``BENCH_opt_loop.json``): the same
#: optimizer move schedule re-timed incrementally per move vs with a full
#: analysis per move, per circuit.
OPT_LOOP_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["report", "version", "algebra", "metric", "headline",
                 "circuits"],
    "properties": {
        "report": {"const": "spsta-opt-loop"},
        "version": {"type": "integer", "minimum": 1},
        "algebra": {"type": "string", "minLength": 1},
        "metric": {"type": "string", "minLength": 1},
        "repeats": {"type": "integer", "minimum": 1},
        "headline": {
            "type": "object",
            "required": ["circuit", "speedup"],
            "properties": {
                "circuit": {"type": "string", "minLength": 1},
                "speedup": {"type": "number", "exclusiveMinimum": 0},
            },
        },
        "circuits": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["circuit", "n_gates", "moves",
                             "incremental_seconds", "full_seconds",
                             "speedup", "recomputed_gates",
                             "full_gate_evals"],
                "properties": {
                    "circuit": {"type": "string", "minLength": 1},
                    "n_gates": {"type": "integer", "minimum": 1},
                    "moves": {"type": "integer", "minimum": 1},
                    "incremental_seconds": {"type": "number",
                                            "exclusiveMinimum": 0},
                    "full_seconds": {"type": "number",
                                     "exclusiveMinimum": 0},
                    "speedup": {"type": "number", "exclusiveMinimum": 0},
                    "recomputed_gates": {"type": "integer", "minimum": 1},
                    "full_gate_evals": {"type": "integer", "minimum": 1},
                },
            },
        },
    },
}

#: Bump on breaking format changes.
OPT_LOOP_VERSION = 1


def _opt_fail(message: str) -> None:
    raise ValueError(f"BENCH_opt_loop payload invalid: {message}")


def _validate_opt_fallback(payload: Dict[str, Any]) -> None:
    """Structural validation mirroring :data:`OPT_LOOP_SCHEMA`."""
    if not isinstance(payload, dict):
        _opt_fail("top level must be an object")
    for key in OPT_LOOP_SCHEMA["required"]:
        if key not in payload:
            _opt_fail(f"missing required key {key!r}")
    if payload["report"] != "spsta-opt-loop":
        _opt_fail(f"report must be 'spsta-opt-loop', "
                  f"got {payload['report']!r}")
    if not isinstance(payload["version"], int) or payload["version"] < 1:
        _opt_fail("version must be an integer >= 1")
    for key in ("algebra", "metric"):
        if not isinstance(payload[key], str) or not payload[key]:
            _opt_fail(f"{key} must be a non-empty string")
    headline = payload["headline"]
    if not isinstance(headline, dict):
        _opt_fail("headline must be an object")
    if not isinstance(headline.get("circuit"), str) \
            or not headline["circuit"]:
        _opt_fail("headline.circuit must be a non-empty string")
    value = headline.get("speedup")
    if not isinstance(value, (int, float)) or isinstance(value, bool) \
            or value <= 0:
        _opt_fail("headline.speedup must be a number > 0")
    circuits = payload["circuits"]
    if not isinstance(circuits, list) or not circuits:
        _opt_fail("circuits must be a non-empty array")
    for i, point in enumerate(circuits):
        where = f"circuits[{i}]."
        if not isinstance(point, dict):
            _opt_fail(f"circuits[{i}] must be an object")
        if not isinstance(point.get("circuit"), str) \
                or not point["circuit"]:
            _opt_fail(f"{where}circuit must be a non-empty string")
        for key in ("n_gates", "moves", "recomputed_gates",
                    "full_gate_evals"):
            value = point.get(key)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                _opt_fail(f"{where}{key} must be an integer >= 1")
        for key in ("incremental_seconds", "full_seconds", "speedup"):
            value = point.get(key)
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool) or value <= 0:
                _opt_fail(f"{where}{key} must be a number > 0")


def validate_opt_loop(payload: Dict[str, Any]) -> None:
    """Raise ``ValueError`` if ``payload`` violates the artifact schema."""
    if jsonschema is not None:
        try:
            jsonschema.validate(payload, OPT_LOOP_SCHEMA)
        except jsonschema.ValidationError as exc:
            raise ValueError(
                f"BENCH_opt_loop payload invalid: {exc.message}"
            ) from exc
        return
    _validate_opt_fallback(payload)


def opt_speedups(payload: Dict[str, Any]) -> Dict[str, float]:
    """Measured incremental-vs-full speedups by circuit name (payload
    assumed valid)."""
    return {point["circuit"]: point["speedup"]
            for point in payload["circuits"]}


#: JSON-Schema (draft 7 subset) of the bounds-pruning benchmark artifact
#: (``benchmarks/test_bench_bounds.py`` -> ``BENCH_bounds_pruning.json``):
#: the same ``optimize_spsta`` mean-ksigma run executed with and without
#: the certified interval pruning of :mod:`repro.bounds`.  The headline
#: claim is not a speedup but a *certificate*: ``identical`` asserts the
#: two runs produced bit-identical moves and final metric while
#: ``pruned_candidates`` gates were provably excluded — so it is pinned
#: ``const true`` and ``pruned_candidates`` has a floor of 1 (an artifact
#: that pruned nothing, or changed the result, does not validate).
BOUNDS_PRUNING_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["report", "version", "algebra", "metric", "k_sigma",
                 "headline", "circuits"],
    "properties": {
        "report": {"const": "spsta-bounds-pruning"},
        "version": {"type": "integer", "minimum": 1},
        "algebra": {"type": "string", "minLength": 1},
        "metric": {"const": "mean-ksigma"},
        "k_sigma": {"type": "number", "exclusiveMinimum": 0},
        "headline": {
            "type": "object",
            "required": ["circuit", "pruned_candidates", "identical"],
            "properties": {
                "circuit": {"type": "string", "minLength": 1},
                "pruned_candidates": {"type": "integer", "minimum": 1},
                "identical": {"const": True},
            },
        },
        "circuits": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["circuit", "n_gates", "n_endpoints",
                             "clock_period", "pruned_candidates",
                             "pruned_endpoints", "moves", "identical",
                             "pruned_seconds", "unpruned_seconds"],
                "properties": {
                    "circuit": {"type": "string", "minLength": 1},
                    "n_gates": {"type": "integer", "minimum": 1},
                    "n_endpoints": {"type": "integer", "minimum": 1},
                    "clock_period": {"type": "number",
                                     "exclusiveMinimum": 0},
                    "pruned_candidates": {"type": "integer", "minimum": 1},
                    "pruned_endpoints": {"type": "integer", "minimum": 0},
                    "moves": {"type": "integer", "minimum": 0},
                    "identical": {"const": True},
                    "pruned_seconds": {"type": "number",
                                       "exclusiveMinimum": 0},
                    "unpruned_seconds": {"type": "number",
                                         "exclusiveMinimum": 0},
                },
            },
        },
    },
}

#: Bump on breaking format changes.
BOUNDS_PRUNING_VERSION = 1


def _bounds_fail(message: str) -> None:
    raise ValueError(f"BENCH_bounds_pruning payload invalid: {message}")


def _validate_bounds_fallback(payload: Dict[str, Any]) -> None:
    """Structural validation mirroring :data:`BOUNDS_PRUNING_SCHEMA`."""
    if not isinstance(payload, dict):
        _bounds_fail("top level must be an object")
    for key in BOUNDS_PRUNING_SCHEMA["required"]:
        if key not in payload:
            _bounds_fail(f"missing required key {key!r}")
    if payload["report"] != "spsta-bounds-pruning":
        _bounds_fail(f"report must be 'spsta-bounds-pruning', "
                     f"got {payload['report']!r}")
    if not isinstance(payload["version"], int) or payload["version"] < 1:
        _bounds_fail("version must be an integer >= 1")
    if not isinstance(payload["algebra"], str) or not payload["algebra"]:
        _bounds_fail("algebra must be a non-empty string")
    if payload["metric"] != "mean-ksigma":
        _bounds_fail(f"metric must be 'mean-ksigma', "
                     f"got {payload['metric']!r}")
    k_sigma = payload["k_sigma"]
    if not isinstance(k_sigma, (int, float)) or isinstance(k_sigma, bool) \
            or k_sigma <= 0:
        _bounds_fail("k_sigma must be a number > 0")
    headline = payload["headline"]
    if not isinstance(headline, dict):
        _bounds_fail("headline must be an object")
    if not isinstance(headline.get("circuit"), str) \
            or not headline["circuit"]:
        _bounds_fail("headline.circuit must be a non-empty string")
    value = headline.get("pruned_candidates")
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        _bounds_fail("headline.pruned_candidates must be an integer >= 1")
    if headline.get("identical") is not True:
        _bounds_fail("headline.identical must be true")
    circuits = payload["circuits"]
    if not isinstance(circuits, list) or not circuits:
        _bounds_fail("circuits must be a non-empty array")
    for i, point in enumerate(circuits):
        where = f"circuits[{i}]."
        if not isinstance(point, dict):
            _bounds_fail(f"circuits[{i}] must be an object")
        if not isinstance(point.get("circuit"), str) \
                or not point["circuit"]:
            _bounds_fail(f"{where}circuit must be a non-empty string")
        for key, floor in (("n_gates", 1), ("n_endpoints", 1),
                           ("pruned_candidates", 1),
                           ("pruned_endpoints", 0), ("moves", 0)):
            value = point.get(key)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < floor:
                _bounds_fail(f"{where}{key} must be an integer "
                             f">= {floor}")
        for key in ("clock_period", "pruned_seconds", "unpruned_seconds"):
            value = point.get(key)
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool) or value <= 0:
                _bounds_fail(f"{where}{key} must be a number > 0")
        if point.get("identical") is not True:
            _bounds_fail(f"{where}identical must be true")


def validate_bounds_pruning(payload: Dict[str, Any]) -> None:
    """Raise ``ValueError`` if ``payload`` violates the artifact schema."""
    if jsonschema is not None:
        try:
            jsonschema.validate(payload, BOUNDS_PRUNING_SCHEMA)
        except jsonschema.ValidationError as exc:
            raise ValueError(
                f"BENCH_bounds_pruning payload invalid: {exc.message}"
            ) from exc
        return
    _validate_bounds_fallback(payload)


def pruned_fractions(payload: Dict[str, Any]) -> Dict[str, float]:
    """Fraction of gates certified never-critical, by circuit (payload
    assumed valid)."""
    return {point["circuit"]: point["pruned_candidates"] / point["n_gates"]
            for point in payload["circuits"]}
