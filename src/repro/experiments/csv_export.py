"""CSV export of the reproduction artifacts (plot-ready data).

The text tables in ``benchmarks/results/`` are human-oriented; these
helpers emit the same data as CSV so figures can be regenerated in any
plotting environment:

- :func:`table2_csv` — one row per (circuit, direction) with all nine
  columns of the paper's Table 2;
- :func:`table3_csv` — runtimes per circuit;
- :func:`figure1_csv` — the Monte Carlo chip-delay histogram plus the
  STA/SSTA overlay parameters;
- :func:`figure4_csv` — the MAX and WEIGHTED SUM densities on their grid.

All functions return the CSV text and optionally write it to a path.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro.experiments.figures import Figure1Series, Figure4Series
from repro.experiments.table2 import Table2Row
from repro.experiments.table3 import RuntimeRow


def _finish(buffer: io.StringIO,
            path: Optional[Union[str, Path]]) -> str:
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def table2_csv(rows: Sequence[Table2Row],
               path: Optional[Union[str, Path]] = None) -> str:
    """Table 2 rows as CSV (NaN cells rendered empty)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow([
        "circuit", "direction", "endpoint", "depth",
        "spsta_p", "spsta_mu", "spsta_sigma",
        "ssta_mu", "ssta_sigma",
        "mc_p", "mc_mu", "mc_sigma"])
    for row in rows:
        writer.writerow([
            row.circuit, row.direction, row.endpoint, row.depth,
            _cell(row.spsta_p), _cell(row.spsta_mu), _cell(row.spsta_sigma),
            _cell(row.ssta_mu), _cell(row.ssta_sigma),
            _cell(row.mc_p), _cell(row.mc_mu), _cell(row.mc_sigma)])
    return _finish(buffer, path)


def table3_csv(rows: Sequence[RuntimeRow],
               path: Optional[Union[str, Path]] = None) -> str:
    """Table 3 runtime rows as CSV."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["circuit", "spsta_seconds", "ssta_seconds",
                     "mc_seconds", "mc_scalar_seconds"])
    for row in rows:
        writer.writerow([row.circuit, _cell(row.spsta_seconds),
                         _cell(row.ssta_seconds), _cell(row.mc_seconds),
                         _cell(row.mc_scalar_seconds)])
    return _finish(buffer, path)


def figure1_csv(series: Figure1Series, bins: int = 30,
                path: Optional[Union[str, Path]] = None) -> str:
    """Figure 1 data: histogram rows plus a trailing parameter block.

    Columns: kind, x (bin left edge or parameter name), value.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["kind", "x", "value"])
    counts, edges = np.histogram(series.mc_delays, bins=bins)
    for left, count in zip(edges[:-1], counts):
        writer.writerow(["mc_histogram", f"{left:.6g}", int(count)])
    for name, value in (
            ("sta_min", series.sta_min),
            ("sta_max", series.sta_max),
            ("ssta_best_mu", series.ssta_best.mu),
            ("ssta_best_sigma", series.ssta_best.sigma),
            ("ssta_worst_mu", series.ssta_worst.mu),
            ("ssta_worst_sigma", series.ssta_worst.sigma),
            ("no_transition_fraction", series.mc_no_transition_fraction)):
        writer.writerow(["parameter", name, f"{value:.6g}"])
    return _finish(buffer, path)


def figure4_csv(series: Figure4Series,
                path: Optional[Union[str, Path]] = None,
                stride: int = 8) -> str:
    """Figure 4 densities: time, max_pdf, weighted_sum_pdf (downsampled by
    ``stride`` to keep files plot-sized)."""
    if stride < 1:
        raise ValueError("stride must be >= 1")
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["time", "max_pdf", "weighted_sum_pdf"])
    for t, m, w in zip(series.times[::stride],
                       series.max_pdf[::stride],
                       series.weighted_sum_pdf[::stride]):
        writer.writerow([f"{t:.6g}", f"{m:.6g}", f"{w:.6g}"])
    return _finish(buffer, path)


def _cell(value: float) -> str:
    if value != value:  # NaN
        return ""
    return f"{value:.6g}"
