"""The abstract's headline error summary.

The paper reports, over the Table 2 rows: "SPSTA computes mean (standard
deviation) of signal arrival times within 6.2% (18.6%), while SSTA computes
mean (standard deviation) of signal arrival times within 13.40% (64.3%) of
Monte Carlo simulation results; SPSTA also provides signal probability
estimation within 14.28%".

We compute the same aggregates as mean absolute relative errors against the
Monte Carlo columns.  Rows whose Monte Carlo reference is undefined (no
transition ever occurred) or zero are skipped for the corresponding ratio,
mirroring what any finite summary of Table 2 must do (the paper's own table
contains sigma = 0.00 MC cells).
"""

from __future__ import annotations

from dataclasses import dataclass
import math
from typing import List, Sequence

from repro.experiments.table2 import Table2Row


@dataclass(frozen=True)
class ErrorSummary:
    """Mean absolute relative errors (in %) against Monte Carlo."""

    spsta_mean_error: float
    spsta_sigma_error: float
    ssta_mean_error: float
    ssta_sigma_error: float
    spsta_probability_error: float
    n_rows: int

    def spsta_beats_ssta(self) -> bool:
        """The paper's qualitative claim: SPSTA closer to MC than SSTA on
        both moments."""
        return (self.spsta_mean_error < self.ssta_mean_error
                and self.spsta_sigma_error < self.ssta_sigma_error)


def error_summary(rows: Sequence[Table2Row]) -> ErrorSummary:
    """Aggregate Table 2 rows into the abstract's error percentages."""
    spsta_mu: List[float] = []
    spsta_sd: List[float] = []
    ssta_mu: List[float] = []
    ssta_sd: List[float] = []
    spsta_p: List[float] = []
    for row in rows:
        if _usable(row.mc_mu):
            if not math.isnan(row.spsta_mu):
                spsta_mu.append(_rel(row.spsta_mu, row.mc_mu))
            ssta_mu.append(_rel(row.ssta_mu, row.mc_mu))
        if _usable(row.mc_sigma):
            if not math.isnan(row.spsta_sigma):
                spsta_sd.append(_rel(row.spsta_sigma, row.mc_sigma))
            ssta_sd.append(_rel(row.ssta_sigma, row.mc_sigma))
        if row.mc_p > 0.0:
            spsta_p.append(_rel(row.spsta_p, row.mc_p))
    return ErrorSummary(
        spsta_mean_error=_mean(spsta_mu),
        spsta_sigma_error=_mean(spsta_sd),
        ssta_mean_error=_mean(ssta_mu),
        ssta_sigma_error=_mean(ssta_sd),
        spsta_probability_error=_mean(spsta_p),
        n_rows=len(rows))


def format_error_summary(summary: ErrorSummary,
                         title: str = "Error vs Monte Carlo (%)") -> str:
    return "\n".join([
        title,
        f"  SPSTA:  mean {summary.spsta_mean_error:6.2f}%   "
        f"sigma {summary.spsta_sigma_error:6.2f}%   "
        f"P {summary.spsta_probability_error:6.2f}%",
        f"  SSTA:   mean {summary.ssta_mean_error:6.2f}%   "
        f"sigma {summary.ssta_sigma_error:6.2f}%",
        f"  (paper: SPSTA 6.2% / 18.6%, SSTA 13.40% / 64.3%, P 14.28%; "
        f"{summary.n_rows} rows)",
    ])


def _usable(reference: float) -> bool:
    return not math.isnan(reference) and abs(reference) > 1e-9


def _rel(value: float, reference: float) -> float:
    return abs(value - reference) / abs(reference) * 100.0


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else float("nan")
