"""Table 2 reproduction: arrival statistics on the most critical path.

For every benchmark circuit and both transition directions, report

    SPSTA (mu, sigma, P)  |  SSTA (mu, sigma)  |  Monte Carlo (mu, sigma, P)

at the deepest endpoint, under input configuration (I) or (II).  The SSTA
columns are independent of the configuration by construction — reproducing
the paper's observation 1 ("SSTA results are also independent of primary
inputs and flip-flop outputs statistics").
"""

from __future__ import annotations

from dataclasses import dataclass
import math
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.delay import DelayModel, UnitDelay
from repro.core.inputs import InputStats
from repro.core.spsta import TopAlgebra, run_spsta
from repro.core.ssta import run_ssta
from repro.netlist.analysis import critical_endpoint
from repro.netlist.benchmarks import TABLE_CIRCUITS, benchmark_circuit
from repro.sim.montecarlo import run_monte_carlo
from repro.sim.parallel import RetryPolicy


def experiment_checkpoint(base: Optional[Union[str, Path]],
                          circuit: str) -> Optional[Path]:
    """Per-circuit checkpoint subdirectory under an experiment's base dir.

    Each circuit gets its own store (``BASE/circuit``) because a
    checkpoint directory is keyed to exactly one run; sharing one
    directory across the sweep would make every second circuit a
    :class:`~repro.sim.checkpoint.CheckpointMismatchError`.
    """
    if base is None:
        return None
    return Path(base) / circuit


@dataclass(frozen=True)
class Table2Row:
    """One row of Table 2 (a circuit + direction under one configuration)."""

    circuit: str
    direction: str          # 'rise' or 'fall'
    endpoint: str
    depth: int
    spsta_p: float
    spsta_mu: float
    spsta_sigma: float
    ssta_mu: float
    ssta_sigma: float
    mc_p: float
    mc_mu: float
    mc_sigma: float


def run_table2(config: InputStats,
               circuits: Sequence[str] = TABLE_CIRCUITS,
               n_trials: int = 10_000,
               seed: int = 0,
               delay_model: DelayModel = UnitDelay(),
               algebra: Optional[TopAlgebra] = None,
               mc_mode: str = "waves",
               shards: int = 1,
               workers: int = 1,
               retry: Optional[RetryPolicy] = None,
               deadline: Optional[float] = None,
               checkpoint_dir: Optional[Union[str, Path]] = None,
               resume: bool = False) -> List[Table2Row]:
    """Run all three analyzers on each circuit; one row per direction.

    ``mc_mode``/``shards``/``workers`` select the Monte Carlo engine
    (see :func:`repro.sim.montecarlo.run_monte_carlo`); the table only
    needs the summary accessors both engines share.  ``retry`` /
    ``deadline`` / ``checkpoint_dir`` / ``resume`` apply fault tolerance
    to each circuit's streaming run (``checkpoint_dir`` holds one
    subdirectory per circuit; the ``deadline`` budget applies per
    circuit, not to the whole sweep).
    """
    rows: List[Table2Row] = []
    for name in circuits:
        netlist = benchmark_circuit(name)
        endpoint, depth = critical_endpoint(netlist)
        spsta = run_spsta(netlist, config, delay_model, algebra)
        ssta = run_ssta(netlist, delay_model)
        mc = run_monte_carlo(netlist, config, n_trials, delay_model,
                             rng=np.random.default_rng(seed),
                             mode=mc_mode,
                             shards=shards if mc_mode == "stream" else 1,
                             workers=workers if mc_mode == "stream" else 1,
                             retry=retry, deadline=deadline,
                             checkpoint=experiment_checkpoint(
                                 checkpoint_dir, name),
                             resume=resume)
        for direction in ("rise", "fall"):
            p, mu, sigma = spsta.report(endpoint, direction)
            pair = getattr(ssta.arrivals[endpoint], direction)
            stats = mc.direction_stats(endpoint, direction)
            rows.append(Table2Row(
                circuit=name, direction=direction, endpoint=endpoint,
                depth=depth,
                spsta_p=p, spsta_mu=mu, spsta_sigma=sigma,
                ssta_mu=pair.mu, ssta_sigma=pair.sigma,
                mc_p=stats.probability, mc_mu=stats.mean,
                mc_sigma=stats.std))
    return rows


def format_table2(rows: Sequence[Table2Row], title: str = "Table 2") -> str:
    """Render rows in the paper's layout (rise block then fall block)."""
    lines = [
        title,
        f"{'test':>7} {'':>2} | {'SPSTA':^23} | {'SSTA':^13} | "
        f"{'Monte Carlo':^23}",
        f"{'case':>7} {'':>2} | {'mu':>7} {'sigma':>7} {'P':>7} | "
        f"{'mu':>6} {'sigma':>6} | {'mu':>7} {'sigma':>7} {'P':>7}",
        "-" * 82,
    ]
    for direction in ("rise", "fall"):
        for row in rows:
            if row.direction != direction:
                continue
            lines.append(
                f"{row.circuit:>7} {direction[0]:>2} | "
                f"{_fmt(row.spsta_mu)} {_fmt(row.spsta_sigma)} "
                f"{_fmt(row.spsta_p)} | "
                f"{row.ssta_mu:>6.2f} {row.ssta_sigma:>6.2f} | "
                f"{_fmt(row.mc_mu)} {_fmt(row.mc_sigma)} {_fmt(row.mc_p)}")
    return "\n".join(lines)


def _fmt(value: float) -> str:
    if math.isnan(value):
        return f"{'--':>7}"
    return f"{value:>7.2f}"
