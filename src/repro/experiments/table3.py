"""Table 3 reproduction: analyzer CPU runtimes.

Absolute seconds are hardware-bound (the paper reports a 2008 machine); the
claims to reproduce are *relative*: SPSTA costs a small multiple of SSTA
(the 2^k subset enumeration vs plain Clark folds) and both are far cheaper
than a 10,000-trial Monte Carlo simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
import time
from typing import List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.delay import DelayModel, UnitDelay
from repro.core.inputs import InputStats
from repro.core.profiling import SpstaProfile
from repro.core.spsta import run_spsta
from repro.core.ssta import run_ssta
from repro.experiments.table2 import experiment_checkpoint
from repro.netlist.benchmarks import TABLE_CIRCUITS, benchmark_circuit
from repro.sim.montecarlo import run_monte_carlo
from repro.sim.parallel import RetryPolicy


@dataclass(frozen=True)
class RuntimeRow:
    """Wall-clock seconds of each analyzer on one circuit.

    ``mc_scalar_seconds`` estimates a plain (non-vectorized) logic
    simulator's cost for the same trial count — the engine class the paper
    actually timed — extrapolated from a short scalar run.
    ``spsta_profile_summary`` is the rendered SPSTA profile block when the
    run was profiled (empty otherwise).
    """

    circuit: str
    spsta_seconds: float
    ssta_seconds: float
    mc_seconds: float
    mc_scalar_seconds: float = float("nan")
    mc_shard_summary: str = ""
    spsta_profile_summary: str = ""

    @property
    def mc_over_spsta(self) -> float:
        return self.mc_seconds / self.spsta_seconds

    @property
    def scalar_mc_over_spsta(self) -> float:
        return self.mc_scalar_seconds / self.spsta_seconds


def run_table3(config: InputStats,
               circuits: Sequence[str] = TABLE_CIRCUITS,
               n_trials: int = 10_000,
               seed: int = 0,
               delay_model: DelayModel = UnitDelay(),
               scalar_probe_trials: int = 200,
               mc_mode: str = "waves",
               shards: int = 1,
               workers: int = 1,
               engine: str = "fast",
               spsta_workers: int = 1,
               profile: bool = False,
               retry: Optional[RetryPolicy] = None,
               deadline: Optional[float] = None,
               checkpoint_dir: Optional[Union[str, Path]] = None,
               resume: bool = False) -> List[RuntimeRow]:
    """Time each analyzer once per circuit (same workload as Table 2).

    ``scalar_probe_trials`` scalar-reference trials are timed and linearly
    extrapolated to ``n_trials`` for the ``mc_scalar_seconds`` column
    (0 disables the probe).  ``mc_mode="stream"`` times the sharded
    streaming engine instead and records its per-shard timing/memory
    counters in ``mc_shard_summary``.  ``engine``/``spsta_workers`` select
    the SPSTA propagation engine and its process pool; ``profile=True``
    records each SPSTA run's phase timings and work counters into
    ``spsta_profile_summary``.  ``retry``/``deadline``/``checkpoint_dir``/
    ``resume`` apply the streaming engine's fault tolerance per circuit
    (one checkpoint subdirectory each); note a resumed run's
    ``mc_seconds`` times only the shards that still had to execute.
    """
    rows: List[RuntimeRow] = []
    for name in circuits:
        netlist = benchmark_circuit(name)
        spsta_profile = SpstaProfile() if profile else None
        t0 = time.perf_counter()
        run_spsta(netlist, config, delay_model, engine=engine,
                  workers=spsta_workers, profile=spsta_profile)
        t1 = time.perf_counter()
        run_ssta(netlist, delay_model)
        t2 = time.perf_counter()
        mc = run_monte_carlo(netlist, config, n_trials, delay_model,
                             rng=np.random.default_rng(seed),
                             mode=mc_mode,
                             shards=shards if mc_mode == "stream" else 1,
                             workers=workers if mc_mode == "stream" else 1,
                             retry=retry, deadline=deadline,
                             checkpoint=experiment_checkpoint(
                                 checkpoint_dir, name),
                             resume=resume)
        t3 = time.perf_counter()
        scalar_seconds = float("nan")
        if scalar_probe_trials > 0:
            scalar_seconds = (_time_scalar_mc(netlist, config,
                                              scalar_probe_trials, seed,
                                              delay_model)
                              * n_trials / scalar_probe_trials)
        shard_summary = mc.summary() if hasattr(mc, "summary") else ""
        profile_summary = (spsta_profile.render(indent="  ")
                           if spsta_profile is not None else "")
        rows.append(RuntimeRow(name, t1 - t0, t2 - t1, t3 - t2,
                               scalar_seconds, shard_summary,
                               profile_summary))
    return rows


@dataclass(frozen=True)
class ConfigSweepRow:
    """One circuit's config-sweep timing through the batched backend.

    ``looped_seconds`` is NaN when the per-config reference loop was not
    timed (``compare_looped=False``).
    """

    circuit: str
    configs: Tuple[str, ...]
    batched_seconds: float
    looped_seconds: float = float("nan")

    @property
    def speedup(self) -> float:
        return self.looped_seconds / self.batched_seconds


def run_config_sweep(configs: Mapping[str, InputStats],
                     circuits: Sequence[str] = TABLE_CIRCUITS,
                     delay_model: DelayModel = UnitDelay(),
                     compare_looped: bool = True) -> List[ConfigSweepRow]:
    """The Table 3 config sweep routed through the batched backend.

    Historically the CONFIG (I) / CONFIG (II) sweep reran the whole
    analysis per configuration (the ``errors`` command still shows that
    shape for Table 2).  Here each circuit compiles once and all
    configurations execute as one :func:`run_scenario_batch` call;
    ``compare_looped=True`` also times the per-config
    ``run_spsta(engine="fast")`` loop the sweep replaced.
    """
    from repro.core.scenario import (
        run_scenario_batch,
        run_scenarios_looped,
        scenarios_from_stats,
    )

    rows: List[ConfigSweepRow] = []
    names = tuple(configs)
    for name in circuits:
        netlist = benchmark_circuit(name)
        scenarios = scenarios_from_stats(configs, delay_model)
        t0 = time.perf_counter()
        run_scenario_batch(netlist, scenarios)
        t1 = time.perf_counter()
        looped_seconds = float("nan")
        if compare_looped:
            run_scenarios_looped(netlist, scenarios)
            looped_seconds = time.perf_counter() - t1
        rows.append(ConfigSweepRow(name, names, t1 - t0, looped_seconds))
    return rows


def format_config_sweep(rows: Sequence[ConfigSweepRow],
                        title: str = "Table 3 config sweep "
                                     "(batched backend, seconds)") -> str:
    lines = [
        title,
        f"{'test':>7} | {'configs':>12} | {'batched':>9} | "
        f"{'looped':>9} | {'speedup':>8}",
        "-" * 58,
    ]
    for row in rows:
        no_loop = row.looped_seconds != row.looped_seconds
        looped = "   --    " if no_loop else f"{row.looped_seconds:>9.4f}"
        speedup = "   --   " if no_loop else f"{row.speedup:>7.1f}x"
        lines.append(
            f"{row.circuit:>7} | {','.join(row.configs):>12} | "
            f"{row.batched_seconds:>9.4f} | {looped} | {speedup}")
    return "\n".join(lines)


def _time_scalar_mc(netlist, config: InputStats, trials: int, seed: int,
                    delay_model: DelayModel) -> float:
    """Wall-clock of ``trials`` scalar event-simulator runs."""
    from repro.logic.fourvalue import from_bits
    from repro.sim.reference import simulate_trial
    from repro.sim.sampler import sample_launch_points

    rng = np.random.default_rng(seed)
    samples = sample_launch_points(netlist, config, trials, rng)
    t0 = time.perf_counter()
    for trial in range(trials):
        launch = {}
        for net, wave in samples.items():
            symbol = from_bits(int(wave.init[trial]), int(wave.final[trial]))
            t = wave.time[trial]
            launch[net] = (symbol, None if np.isnan(t) else float(t))
        simulate_trial(netlist, launch, delay_model)
    return time.perf_counter() - t0


def format_table3(rows: Sequence[RuntimeRow],
                  title: str = "Table 3 (seconds)") -> str:
    lines = [
        title,
        f"{'test':>7} | {'SPSTA':>9} | {'SSTA':>9} | {'10K MC':>9} | "
        f"{'scalar MC':>10} | {'MC/SPSTA':>9} | {'scal/SPSTA':>10}",
        "-" * 84,
    ]
    for row in rows:
        no_scalar = row.mc_scalar_seconds != row.mc_scalar_seconds
        scalar = ("   --     " if no_scalar
                  else f"{row.mc_scalar_seconds:>10.2f}")
        ratio = ("    --    " if no_scalar
                 else f"{row.scalar_mc_over_spsta:>9.1f}x")
        lines.append(
            f"{row.circuit:>7} | {row.spsta_seconds:>9.4f} | "
            f"{row.ssta_seconds:>9.4f} | {row.mc_seconds:>9.4f} | "
            f"{scalar} | {row.mc_over_spsta:>8.1f}x | {ratio}")
    shard_blocks = [row.mc_shard_summary for row in rows
                    if row.mc_shard_summary]
    if shard_blocks:
        lines.append("")
        lines.append("Monte Carlo shard counters:")
        lines.extend(shard_blocks)
    profile_blocks = [row.spsta_profile_summary for row in rows
                      if row.spsta_profile_summary]
    if profile_blocks:
        lines.append("")
        lines.append("SPSTA profiles:")
        lines.extend(profile_blocks)
    return "\n".join(lines)
