"""Gaussian random variables and the SSTA SUM operation (paper Sec. 2.1.1).

A :class:`Normal` models a signal arrival time (or a gate delay) as a normal
random variable.  Addition of independent normals implements Eq. 1/2 of the
paper:

    mu(t0) = mu(t1) + mu(d)
    var(t0) = var(t1) + var(d) + 2 cov(t1, d)

Covariances are handled explicitly by the callers that track them (see
:mod:`repro.core.spsta`); the operators here assume independence.
"""

from __future__ import annotations

from dataclasses import dataclass
import math

_SQRT2 = math.sqrt(2.0)
_INV_SQRT_2PI = 1.0 / math.sqrt(2.0 * math.pi)


def norm_pdf(x: float, mu: float = 0.0, sigma: float = 1.0) -> float:
    """Density of N(mu, sigma^2) at ``x``.  A point mass is approximated by
    an indicator-style density (inf at the mean, 0 elsewhere is not useful
    numerically, so sigma == 0 returns 0 except exactly at the mean)."""
    if sigma <= 0.0:
        return math.inf if x == mu else 0.0
    z = (x - mu) / sigma
    return _INV_SQRT_2PI * math.exp(-0.5 * z * z) / sigma


def norm_cdf(x: float, mu: float = 0.0, sigma: float = 1.0) -> float:
    """Cumulative distribution of N(mu, sigma^2) at ``x``."""
    if sigma <= 0.0:
        return 1.0 if x >= mu else 0.0
    return 0.5 * (1.0 + math.erf((x - mu) / (sigma * _SQRT2)))


@dataclass(frozen=True)
class Normal:
    """A normal random variable with mean ``mu`` and standard deviation
    ``sigma`` (``sigma == 0`` denotes a deterministic value).

    Instances are immutable; arithmetic returns new instances.
    """

    mu: float
    sigma: float = 0.0

    def __post_init__(self) -> None:
        if not (math.isfinite(self.mu) and math.isfinite(self.sigma)):
            raise ValueError(
                f"Normal parameters must be finite, got mu={self.mu}, "
                f"sigma={self.sigma} (NaN/Inf sentinel: an upstream "
                f"operation diverged)")
        if self.sigma < 0.0:
            raise ValueError(f"sigma must be non-negative, got {self.sigma}")

    @property
    def var(self) -> float:
        """Variance sigma^2."""
        return self.sigma * self.sigma

    def pdf(self, x: float) -> float:
        """Probability density at ``x``."""
        return norm_pdf(x, self.mu, self.sigma)

    def cdf(self, x: float) -> float:
        """Cumulative probability P(X <= x)."""
        return norm_cdf(x, self.mu, self.sigma)

    def quantile(self, p: float) -> float:
        """Inverse cdf via scipy-free bisection-quality rational approximation.

        Uses the Acklam rational approximation (max abs error ~1.15e-9),
        adequate for reporting 3-sigma style corner points.
        """
        if not 0.0 < p < 1.0:
            raise ValueError(f"p must be in (0, 1), got {p}")
        return self.mu + self.sigma * _standard_normal_quantile(p)

    def shift(self, offset: float) -> "Normal":
        """Add a deterministic delay: the SUM operation with sigma(d)=0."""
        return Normal(self.mu + offset, self.sigma)

    def __add__(self, other: "Normal") -> "Normal":
        """SUM of independent normals (paper Eq. 2 with cov = 0)."""
        if not isinstance(other, Normal):
            return NotImplemented
        return Normal(self.mu + other.mu, math.hypot(self.sigma, other.sigma))

    def __neg__(self) -> "Normal":
        return Normal(-self.mu, self.sigma)

    def __sub__(self, other: "Normal") -> "Normal":
        if not isinstance(other, Normal):
            return NotImplemented
        return Normal(self.mu - other.mu, math.hypot(self.sigma, other.sigma))

    def scaled(self, k: float) -> "Normal":
        """Return k * X (sigma scales by |k|)."""
        return Normal(k * self.mu, abs(k) * self.sigma)


def _standard_normal_quantile(p: float) -> float:
    """Acklam's rational approximation to the standard normal inverse cdf."""
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low, p_high = 0.02425, 1.0 - 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        num = ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
        den = (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        return (num + c[5]) / den
    if p <= p_high:
        q = p - 0.5
        r = q * q
        num = ((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
        den = ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r
        return (num + a[5]) * q / (den + 1.0)
    q = math.sqrt(-2.0 * math.log(1.0 - p))
    num = ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
    den = (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
    return -(num + c[5]) / den
