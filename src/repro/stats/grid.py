"""Densities discretized on a shared time grid.

This is the numerically exact (up to discretization) engine used to
cross-check the closed-form Gaussian machinery and to regenerate Figure 4:
for independent arrival times the MAX density is

    pdf_max(t) = pdf1(t) cdf2(t) + pdf2(t) cdf1(t)          (paper Eq. 3)

and the WEIGHTED SUM is a plain pointwise linear combination (Eq. 8).  Like
TOP functions, grid densities are sub-probability densities: the integral is
the transition occurrence probability.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.stats.normal import Normal


class TimeGrid:
    """A uniform time grid shared by all densities in one analysis."""

    __slots__ = ("start", "stop", "n", "points", "dt")

    def __init__(self, start: float, stop: float, n: int = 2048) -> None:
        if stop <= start:
            raise ValueError(f"stop ({stop}) must exceed start ({start})")
        if n < 8:
            raise ValueError(f"grid must have at least 8 points, got {n}")
        self.start = float(start)
        self.stop = float(stop)
        self.n = int(n)
        self.points = np.linspace(self.start, self.stop, self.n)
        self.dt = float(self.points[1] - self.points[0])

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, TimeGrid) and self.start == other.start
                and self.stop == other.stop and self.n == other.n)

    def __hash__(self) -> int:
        return hash((self.start, self.stop, self.n))

    def __repr__(self) -> str:
        return f"TimeGrid({self.start}, {self.stop}, n={self.n})"


class GridDensity:
    """A (sub-)probability density sampled on a :class:`TimeGrid`."""

    __slots__ = ("grid", "values")

    def __init__(self, grid: TimeGrid, values: Sequence[float]) -> None:
        self.grid = grid
        arr = np.asarray(values, dtype=float)
        if arr.shape != (grid.n,):
            raise ValueError(
                f"values shape {arr.shape} does not match grid size {grid.n}")
        if np.any(arr < -1e-12):
            raise ValueError("density values must be non-negative")
        self.values = np.clip(arr, 0.0, None)

    @classmethod
    def from_normal(cls, grid: TimeGrid, normal: Normal,
                    weight: float = 1.0) -> "GridDensity":
        """Sample ``weight * N(mu, sigma^2)``; sigma == 0 becomes a one-bin
        point mass carrying the full weight."""
        if normal.sigma <= 0.0:
            values = np.zeros(grid.n)
            idx = int(np.clip(round((normal.mu - grid.start) / grid.dt),
                              0, grid.n - 1))
            values[idx] = weight / grid.dt
            return cls(grid, values)
        z = (grid.points - normal.mu) / normal.sigma
        values = weight * np.exp(-0.5 * z * z) / (normal.sigma * math.sqrt(2 * math.pi))
        return cls(grid, values)

    @classmethod
    def zero(cls, grid: TimeGrid) -> "GridDensity":
        """The empty density (no transition occurs)."""
        return cls(grid, np.zeros(grid.n))

    @property
    def total_weight(self) -> float:
        """Integral of the density (trapezoid rule)."""
        return float(np.trapezoid(self.values, dx=self.grid.dt))

    def cdf_values(self) -> np.ndarray:
        """Cumulative integral on the grid (same shape as ``values``)."""
        cum = np.concatenate((
            [0.0],
            np.cumsum((self.values[1:] + self.values[:-1]) * 0.5 * self.grid.dt)))
        return cum

    def mean(self) -> float:
        """Mean of the normalized distribution."""
        w = self.total_weight
        if w <= 0.0:
            raise ValueError("mean of an empty density is undefined")
        return float(np.trapezoid(self.grid.points * self.values, dx=self.grid.dt)) / w

    def var(self) -> float:
        """Variance of the normalized distribution."""
        w = self.total_weight
        if w <= 0.0:
            raise ValueError("variance of an empty density is undefined")
        m = self.mean()
        raw2 = float(np.trapezoid(self.grid.points ** 2 * self.values,
                              dx=self.grid.dt)) / w
        return max(raw2 - m * m, 0.0)

    def std(self) -> float:
        return math.sqrt(self.var())

    def scaled(self, factor: float) -> "GridDensity":
        if factor < 0.0:
            raise ValueError(f"weight factor must be >= 0, got {factor}")
        return GridDensity(self.grid, self.values * factor)

    def normalized(self) -> "GridDensity":
        w = self.total_weight
        if w <= 0.0:
            raise ValueError("cannot normalize an empty density")
        return self.scaled(1.0 / w)

    def __add__(self, other: "GridDensity") -> "GridDensity":
        """Pointwise WEIGHTED SUM accumulation."""
        self._check_grid(other)
        return GridDensity(self.grid, self.values + other.values)

    def shifted(self, delay: float) -> "GridDensity":
        """Deterministic delay: shift by a whole number of bins (the delay is
        rounded to the grid pitch; unit-delay experiments use an exact pitch
        divisor so no rounding error accrues)."""
        bins = int(round(delay / self.grid.dt))
        values = np.zeros_like(self.values)
        if bins >= 0:
            if bins < self.grid.n:
                values[bins:] = self.values[:self.grid.n - bins]
        else:
            values[:bins] = self.values[-bins:]
        return GridDensity(self.grid, values)

    def convolved(self, delay: Normal) -> "GridDensity":
        """SUM with an independent Gaussian delay via discrete convolution."""
        if delay.sigma <= 0.0:
            return self.shifted(delay.mu)
        half = int(math.ceil(6.0 * delay.sigma / self.grid.dt))
        offsets = np.arange(-half, half + 1) * self.grid.dt
        z = (offsets - delay.mu) / delay.sigma
        kernel = np.exp(-0.5 * z * z)
        kernel /= kernel.sum()
        full = np.convolve(self.values, kernel)
        values = full[half:half + self.grid.n]
        return GridDensity(self.grid, values)

    def max_with(self, other: "GridDensity") -> "GridDensity":
        """MAX of independent conditional distributions (Eq. 3), normalized."""
        self._check_grid(other)
        a, b = self.normalized(), other.normalized()
        values = a.values * b.cdf_values() + b.values * a.cdf_values()
        return GridDensity(self.grid, values)

    def min_with(self, other: "GridDensity") -> "GridDensity":
        """MIN analogue: pdf_min = f1 (1 - F2) + f2 (1 - F1), normalized."""
        self._check_grid(other)
        a, b = self.normalized(), other.normalized()
        values = (a.values * (1.0 - b.cdf_values())
                  + b.values * (1.0 - a.cdf_values()))
        return GridDensity(self.grid, values)

    def _check_grid(self, other: "GridDensity") -> None:
        if self.grid != other.grid:
            raise ValueError("densities live on different time grids")

    def __repr__(self) -> str:
        return (f"GridDensity(weight={self.total_weight:.4g}, "
                f"grid={self.grid!r})")


def grid_weighted_sum(grid: TimeGrid,
                      terms: Iterable[Tuple[float, GridDensity]]) -> GridDensity:
    """WEIGHTED SUM (Eq. 8) of grid densities."""
    acc = GridDensity.zero(grid)
    for weight, density in terms:
        acc = acc + density.scaled(weight)
    return acc
