"""Densities discretized on a shared time grid.

This is the numerically exact (up to discretization) engine used to
cross-check the closed-form Gaussian machinery and to regenerate Figure 4:
for independent arrival times the MAX density is

    pdf_max(t) = pdf1(t) cdf2(t) + pdf2(t) cdf1(t)          (paper Eq. 3)

and the WEIGHTED SUM is a plain pointwise linear combination (Eq. 8).  Like
TOP functions, grid densities are sub-probability densities: the integral is
the transition occurrence probability.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Sequence, Tuple
import warnings

import numpy as np

from repro.compat import trapezoid
from repro.stats.normal import Normal, norm_cdf

#: Kernels at or above this many taps are convolved via FFT under
#: ``method="auto"``; below it the direct ``np.convolve`` wins (the O(n*m)
#: constant is small and there is no transform overhead).
FFT_TAP_THRESHOLD = 48

#: Batches at least this tall convolve faster through one fast-length FFT
#: than through a per-row ``np.convolve`` loop even for narrow kernels.
FFT_BATCH_THRESHOLD = 16

#: Fraction of a density's mass clipped off the grid edge above which the
#: operation emits a :class:`MassTruncationWarning` (and a
#: :class:`MassLedger` counts a clip event).  Well above the ~1e-16 tail of
#: a properly sized grid, well below anything that distorts moments.
MASS_WARN_FRACTION = 1e-6

#: Off-grid fraction above which :meth:`GridDensity.from_normal` refuses to
#: build the density: a Gaussian mostly (or entirely) past the grid edge
#: would be silently renormalized into an edge artifact.
MASS_ERROR_FRACTION = 0.5


class MassTruncationWarning(RuntimeWarning):
    """Probability mass was clipped off the grid edge and renormalized away.

    Raised-as-warning by the grid operations when an operation loses more
    than :data:`MASS_WARN_FRACTION` of its mass past the grid window — the
    symptom of a time grid that is too small for the circuit being
    analyzed.  The conformance harness (``repro.verify``) turns the same
    signal, accounted in a :class:`MassLedger`, into a red check.
    """


class MassLedger:
    """Mass-conservation accounting for grid operations.

    Before this ledger existed, probability clipped off the grid edge by
    ``from_normal`` / ``shifted`` / ``convolved`` was silently renormalized
    away — an undersized grid produced confidently wrong moments.  Engines
    attach one ledger per analysis (see
    :class:`~repro.core.spsta.GridAlgebra`); the counters surface through
    :class:`~repro.core.profiling.SpstaProfile` and ``analyze --profile``,
    and the verify harness fails a run whose ``max_clip_fraction`` exceeds
    its policy.
    """

    __slots__ = ("checks", "clipped_mass", "clip_events", "max_clip_fraction")

    def __init__(self) -> None:
        self.checks = 0              # operations accounted
        self.clipped_mass = 0.0      # total probability lost off-grid
        self.clip_events = 0         # operations past MASS_WARN_FRACTION
        self.max_clip_fraction = 0.0

    def record(self, clipped: float, reference: float) -> float:
        """Account one operation; returns the clipped fraction.

        ``clipped`` is the mass lost past the grid window, ``reference``
        the mass the operation should have preserved.  Negative ``clipped``
        (trapezoid/FFT rounding) clamps to zero.
        """
        self.checks += 1
        if reference <= 0.0:
            return 0.0
        clipped = max(clipped, 0.0)
        fraction = clipped / reference
        self.clipped_mass += clipped
        if fraction > MASS_WARN_FRACTION:
            self.clip_events += 1
        if fraction > self.max_clip_fraction:
            self.max_clip_fraction = fraction
        return fraction


def _warn_truncation(operation: str, fraction: float) -> None:
    warnings.warn(
        f"{operation} clipped {fraction:.3g} of its probability mass off "
        f"the grid edge (> {MASS_WARN_FRACTION:g}); the result is "
        f"renormalized on the window — enlarge the TimeGrid",
        MassTruncationWarning, stacklevel=3)


class TimeGrid:
    """A uniform time grid shared by all densities in one analysis."""

    __slots__ = ("start", "stop", "n", "points", "dt")

    def __init__(self, start: float, stop: float, n: int = 2048) -> None:
        if stop <= start:
            raise ValueError(f"stop ({stop}) must exceed start ({start})")
        if n < 8:
            raise ValueError(f"grid must have at least 8 points, got {n}")
        self.start = float(start)
        self.stop = float(stop)
        self.n = int(n)
        self.points = np.linspace(self.start, self.stop, self.n)
        self.dt = float(self.points[1] - self.points[0])

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, TimeGrid) and self.start == other.start
                and self.stop == other.stop and self.n == other.n)

    def __hash__(self) -> int:
        return hash((self.start, self.stop, self.n))

    def __repr__(self) -> str:
        return f"TimeGrid({self.start}, {self.stop}, n={self.n})"


class GaussianKernel:
    """A discretized Gaussian delay kernel on a grid, with cached FFT.

    The delay mean is split into ``shift`` whole grid bins plus a residual
    below half a pitch; ``taps`` spans ``[-half, +half]`` grid steps around
    that residual and sums to one.  Centering the tap window this way keeps
    the full kernel mass on the window for any mean (a window fixed around
    zero truncates — or loses entirely — a Gaussian whose mean exceeds its
    6-sigma reach).  The rFFT of the zero-padded taps is computed lazily
    per transform size and memoized, so a batched convolution pays for one
    kernel transform no matter how many densities it processes.
    """

    __slots__ = ("mu", "sigma", "shift", "half", "taps", "_rfft")

    def __init__(self, grid: TimeGrid, delay: Normal) -> None:
        if delay.sigma <= 0.0:
            raise ValueError("GaussianKernel requires sigma > 0; "
                             "deterministic delays are grid shifts")
        self.mu = delay.mu
        self.sigma = delay.sigma
        self.shift = int(round(delay.mu / grid.dt))
        residual = delay.mu - self.shift * grid.dt
        self.half = int(math.ceil(6.0 * delay.sigma / grid.dt)) + 1
        offsets = np.arange(-self.half, self.half + 1) * grid.dt
        z = (offsets - residual) / delay.sigma
        taps = np.exp(-0.5 * z * z)
        taps /= taps.sum()
        self.taps = taps
        self._rfft: Dict[int, np.ndarray] = {}

    def rfft(self, nfft: int) -> np.ndarray:
        """rFFT of the taps zero-padded to ``nfft`` (memoized)."""
        spectrum = self._rfft.get(nfft)
        if spectrum is None:
            spectrum = np.fft.rfft(self.taps, nfft)
            self._rfft[nfft] = spectrum
        return spectrum

    def __len__(self) -> int:
        return self.taps.shape[0]


class KernelCache:
    """Per-analysis cache of :class:`GaussianKernel` keyed on (mu, sigma).

    One SPSTA/SSTA sweep over an ISCAS netlist asks for the same handful of
    delay kernels thousands of times (every gate of a unit-delay bench shares
    one); building each discretized Gaussian once is pure win.  The cache is
    bound to a single :class:`TimeGrid` — mixing grids is an error.
    """

    __slots__ = ("grid", "hits", "misses", "_kernels")

    def __init__(self, grid: TimeGrid) -> None:
        self.grid = grid
        self.hits = 0
        self.misses = 0
        self._kernels: Dict[Tuple[float, float], GaussianKernel] = {}

    def kernel(self, delay: Normal) -> GaussianKernel:
        key = (delay.mu, delay.sigma)
        kernel = self._kernels.get(key)
        if kernel is None:
            kernel = GaussianKernel(self.grid, delay)
            self._kernels[key] = kernel
            self.misses += 1
        else:
            self.hits += 1
        return kernel

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def _next_pow2(n: int) -> int:
    return 1 << (n - 1).bit_length()


def _next_fast_len(n: int) -> int:
    """Smallest 5-smooth integer >= n (a fast FFT size for pocketfft).

    A 2048-point density convolved with a ±half kernel needs an FFT of only
    n + 2*half points; rounding that up to the next power of two (4096) can
    double the transform cost.  5-smooth sizes keep the transform within a
    few percent of the power-of-two throughput at nearly the minimal length.
    """
    if n <= 6:
        return max(n, 1)
    best = _next_pow2(n)
    p5 = 1
    while p5 < best:
        p35 = p5
        while p35 < best:
            # Round n / p35 up to the next power of two.
            q = -(-n // p35)
            candidate = p35 * _next_pow2(q)
            if n <= candidate < best:
                best = candidate
            p35 *= 3
        p5 *= 5
    return best


def shift_rows(rows: np.ndarray, bins: int) -> np.ndarray:
    """Deterministic delay on a stack of densities: shift every row by
    ``bins`` grid steps, zero-filling (same edge semantics as
    :meth:`GridDensity.shifted`)."""
    out = np.zeros_like(rows)
    n = rows.shape[1]
    if bins >= 0:
        if bins < n:
            out[:, bins:] = rows[:, :n - bins]
    else:
        out[:, :bins] = rows[:, -bins:]
    return out


def convolve_rows(rows: np.ndarray, kernel: GaussianKernel,
                  method: str = "auto") -> np.ndarray:
    """Convolve a (m, n) stack of densities with one shared kernel.

    The residual-mean taps are applied as a windowed convolution (the
    ``[half : half + n]`` slice of the full convolution) and the kernel's
    whole-bin mean as a zero-filling grid shift, so the delay mean is
    honored exactly no matter how it compares to the kernel's 6-sigma
    reach.  FFT and direct results are interchangeable (up to ~1e-15
    rounding).  ``method`` is ``"direct"``, ``"fft"``, or ``"auto"`` (FFT
    for wide kernels or tall batches).
    """
    n = rows.shape[1]
    half = kernel.half
    if method == "auto":
        # Per-row flops decide for a lone row: direct costs O(n * taps),
        # FFT costs O(nfft log nfft) regardless of kernel width.  Tall
        # batches amortize the kernel spectrum and transform bookkeeping,
        # so the FFT also wins there even for narrow kernels.
        method = ("fft" if len(kernel) >= FFT_TAP_THRESHOLD
                  or rows.shape[0] >= FFT_BATCH_THRESHOLD else "direct")
    if method == "direct":
        out = np.empty_like(rows)
        for i in range(rows.shape[0]):
            out[i] = np.convolve(rows[i], kernel.taps)[half:half + n]
    elif method == "fft":
        nfft = _next_fast_len(n + 2 * half)
        spectra = np.fft.rfft(rows, nfft) * kernel.rfft(nfft)
        full = np.fft.irfft(spectra, nfft)
        out = np.ascontiguousarray(full[:, half:half + n])
    else:
        raise ValueError(f"unknown convolution method {method!r}")
    if kernel.shift:
        out = shift_rows(out, kernel.shift)
    return out


def trapezoid_rows(rows: np.ndarray, dt: float) -> np.ndarray:
    """Trapezoid-rule integral of each row of a (m, n) density stack."""
    return (rows.sum(axis=1) - 0.5 * (rows[:, 0] + rows[:, -1])) * dt


def kernel_retention_vector(kernel: GaussianKernel, n: int,
                            dt: float) -> np.ndarray:
    """Vector ``c`` with ``trapezoid(convolve(f, kernel)) == f @ c``.

    Convolution truncated to the grid window and the trapezoid rule are
    both linear in the input row, so the integral of a convolved density —
    the per-term normalizer of the naive mix — is an inner product with a
    fixed, kernel-dependent vector.  This lets the fast engine pre-mix all
    terms sharing a delay kernel (dividing each by its exact retention)
    and convolve the group once, instead of convolving every Eq. 11 term
    separately just to measure its edge losses.

    ``c`` composes the two linear stages of :func:`convolve_rows` — the
    windowed tap convolution, then the whole-bin mean shift: correlating
    the shift stage's own retention vector with the taps pulls it back
    through the convolution (``(A^T c_shift)[s] = sum_t taps[t - s + half]
    c_shift[t]``), so ``c[i]`` is exactly the trapezoid weight source bin
    ``i`` retains end to end.
    """
    c_shift = shift_retention_vector(kernel.shift, n, dt)
    half = kernel.half
    return np.convolve(c_shift, kernel.taps[::-1])[half:half + n]


def shift_retention_vector(bins: int, n: int, dt: float) -> np.ndarray:
    """Vector ``c`` with ``trapezoid(shift(f, bins)) == f @ c``.

    Same idea as :func:`kernel_retention_vector` for deterministic delays:
    bins shifted off the grid contribute nothing, and the sources landing
    on the two boundary bins are half-weighted by the trapezoid rule.
    """
    i = np.arange(n)
    c = ((i + bins >= 0) & (i + bins <= n - 1)).astype(float)
    first_src = -bins           # source bin that lands on out[0]
    if 0 <= first_src < n:
        c[first_src] -= 0.5
    last_src = n - 1 - bins     # source bin that lands on out[-1]
    if 0 <= last_src < n:
        c[last_src] -= 0.5
    return dt * c


def cdf_rows(rows: np.ndarray, dt: float) -> np.ndarray:
    """Cumulative trapezoid integral of each row (same shape), matching
    :meth:`GridDensity.cdf_values` bin for bin."""
    out = np.empty_like(rows)
    out[:, 0] = 0.0
    np.cumsum((rows[:, 1:] + rows[:, :-1]) * (0.5 * dt), axis=1,
              out=out[:, 1:])
    return out


class GridDensity:
    """A (sub-)probability density sampled on a :class:`TimeGrid`."""

    __slots__ = ("grid", "values")

    def __init__(self, grid: TimeGrid, values: Sequence[float]) -> None:
        self.grid = grid
        arr = np.asarray(values, dtype=float)
        if arr.shape != (grid.n,):
            raise ValueError(
                f"values shape {arr.shape} does not match grid size {grid.n}")
        if not np.isfinite(arr).all():
            raise ValueError("density values must be finite (NaN/Inf "
                             "sentinel: an upstream operation diverged)")
        if np.any(arr < -1e-12):
            raise ValueError("density values must be non-negative")
        self.values = np.clip(arr, 0.0, None)

    @classmethod
    def from_normal(cls, grid: TimeGrid, normal: Normal, weight: float = 1.0,
                    *, ledger: Optional[MassLedger] = None) -> "GridDensity":
        """Sample ``weight * N(mu, sigma^2)``; sigma == 0 becomes a one-bin
        point mass carrying the full weight.

        Mass conservation is checked analytically: the Gaussian tail beyond
        the grid window is recorded in ``ledger`` (if given), warned about
        past :data:`MASS_WARN_FRACTION`, and refused past
        :data:`MASS_ERROR_FRACTION` — a Gaussian centered at or past the
        grid edge no longer comes back as a silently renormalized edge
        artifact.
        """
        if normal.sigma <= 0.0:
            off_fraction = (0.0 if grid.start - 0.5 * grid.dt <= normal.mu
                            <= grid.stop + 0.5 * grid.dt else 1.0)
        else:
            on_grid = (norm_cdf(grid.stop, normal.mu, normal.sigma)
                       - norm_cdf(grid.start, normal.mu, normal.sigma))
            off_fraction = max(1.0 - on_grid, 0.0)
        if ledger is not None:
            ledger.record(weight * off_fraction, weight)
        if off_fraction >= MASS_ERROR_FRACTION:
            raise ValueError(
                f"N({normal.mu:g}, {normal.sigma:g}^2) lies "
                f"{100 * off_fraction:.1f}% outside {grid!r}; refusing to "
                f"build a silently renormalized density — enlarge the grid")
        if off_fraction > MASS_WARN_FRACTION:
            _warn_truncation("from_normal", off_fraction)
        if normal.sigma <= 0.0:
            values = np.zeros(grid.n)
            idx = int(np.clip(round((normal.mu - grid.start) / grid.dt),
                              0, grid.n - 1))
            values[idx] = weight / grid.dt
            return cls(grid, values)
        z = (grid.points - normal.mu) / normal.sigma
        norm = normal.sigma * math.sqrt(2 * math.pi)
        values = weight * np.exp(-0.5 * z * z) / norm
        return cls(grid, values)

    @classmethod
    def zero(cls, grid: TimeGrid) -> "GridDensity":
        """The empty density (no transition occurs)."""
        return cls(grid, np.zeros(grid.n))

    @classmethod
    def from_trusted(cls, grid: TimeGrid, values: np.ndarray) -> "GridDensity":
        """Wrap an array known to be a valid density (right shape, >= 0).

        The batched fast path produces thousands of intermediate arrays from
        operations that preserve non-negativity, so it skips the per-array
        validation/clip of ``__init__`` (which profiles as a top cost of the
        naive sweep).
        """
        density = cls.__new__(cls)
        density.grid = grid
        density.values = values
        return density

    @property
    def total_weight(self) -> float:
        """Integral of the density (trapezoid rule)."""
        return float(trapezoid(self.values, dx=self.grid.dt))

    def cdf_values(self) -> np.ndarray:
        """Cumulative integral on the grid (same shape as ``values``)."""
        mids = (self.values[1:] + self.values[:-1]) * 0.5 * self.grid.dt
        cum = np.concatenate(([0.0], np.cumsum(mids)))
        return cum

    def mean(self) -> float:
        """Mean of the normalized distribution."""
        w = self.total_weight
        if w <= 0.0:
            raise ValueError("mean of an empty density is undefined")
        first = trapezoid(self.grid.points * self.values, dx=self.grid.dt)
        return float(first) / w

    def var(self) -> float:
        """Variance of the normalized distribution."""
        w = self.total_weight
        if w <= 0.0:
            raise ValueError("variance of an empty density is undefined")
        m = self.mean()
        raw2 = float(trapezoid(self.grid.points ** 2 * self.values,
                               dx=self.grid.dt)) / w
        return max(raw2 - m * m, 0.0)

    def std(self) -> float:
        return math.sqrt(self.var())

    def scaled(self, factor: float) -> "GridDensity":
        if factor < 0.0:
            raise ValueError(f"weight factor must be >= 0, got {factor}")
        return GridDensity(self.grid, self.values * factor)

    def normalized(self) -> "GridDensity":
        w = self.total_weight
        if w <= 0.0:
            raise ValueError("cannot normalize an empty density")
        return self.scaled(1.0 / w)

    def __add__(self, other: "GridDensity") -> "GridDensity":
        """Pointwise WEIGHTED SUM accumulation."""
        self._check_grid(other)
        return GridDensity(self.grid, self.values + other.values)

    def shifted(self, delay: float, *,
                ledger: Optional[MassLedger] = None) -> "GridDensity":
        """Deterministic delay: shift by a whole number of bins (the delay is
        rounded to the grid pitch; unit-delay experiments use an exact pitch
        divisor so no rounding error accrues).  Bins shifted past the grid
        edge are accounted in ``ledger`` and warned about past
        :data:`MASS_WARN_FRACTION` instead of vanishing silently."""
        bins = int(round(delay / self.grid.dt))
        values = np.zeros_like(self.values)
        if bins >= 0:
            if bins < self.grid.n:
                values[bins:] = self.values[:self.grid.n - bins]
        else:
            values[:bins] = self.values[-bins:]
        result = GridDensity(self.grid, values)
        if bins != 0:
            before = self.total_weight
            clipped = max(before - result.total_weight, 0.0)
            if ledger is not None:
                fraction = ledger.record(clipped, before)
            else:
                fraction = clipped / before if before > 0.0 else 0.0
            if fraction > MASS_WARN_FRACTION:
                _warn_truncation("shifted", fraction)
        return result

    def convolved(self, delay: Normal, method: str = "direct",
                  cache: Optional[KernelCache] = None, *,
                  ledger: Optional[MassLedger] = None) -> "GridDensity":
        """SUM with an independent Gaussian delay via discrete convolution.

        ``method`` selects the algorithm: ``"direct"`` (per-row
        ``np.convolve``, the default), ``"fft"`` (circular convolution on a
        zero-padded fast-composite transform long enough to be exactly
        linear, identical up to ~1e-15), or ``"auto"`` (FFT once the kernel
        passes ``FFT_TAP_THRESHOLD`` taps).  The delay mean is applied
        exactly — whole grid bins as a shift, the sub-bin residual inside
        the kernel (see :class:`GaussianKernel`).  A :class:`KernelCache`
        reuses the discretized kernel — and its FFT — across the thousands
        of identical delays of one analysis.  Mass pushed past the grid
        window by the convolution is accounted in ``ledger`` and warned
        about past :data:`MASS_WARN_FRACTION`.
        """
        if delay.sigma <= 0.0:
            return self.shifted(delay.mu, ledger=ledger)
        if cache is not None:
            kernel = cache.kernel(delay)
        else:
            kernel = GaussianKernel(self.grid, delay)
        values = convolve_rows(self.values[np.newaxis, :], kernel, method)[0]
        result = GridDensity(self.grid, values)
        before = self.total_weight
        clipped = max(before - result.total_weight, 0.0)
        if ledger is not None:
            fraction = ledger.record(clipped, before)
        else:
            fraction = clipped / before if before > 0.0 else 0.0
        if fraction > MASS_WARN_FRACTION:
            _warn_truncation("convolved", fraction)
        return result

    def max_with(self, other: "GridDensity") -> "GridDensity":
        """MAX of independent conditional distributions (Eq. 3), normalized."""
        self._check_grid(other)
        a, b = self.normalized(), other.normalized()
        values = a.values * b.cdf_values() + b.values * a.cdf_values()
        return GridDensity(self.grid, values)

    def min_with(self, other: "GridDensity") -> "GridDensity":
        """MIN analogue: pdf_min = f1 (1 - F2) + f2 (1 - F1), normalized."""
        self._check_grid(other)
        a, b = self.normalized(), other.normalized()
        values = (a.values * (1.0 - b.cdf_values())
                  + b.values * (1.0 - a.cdf_values()))
        return GridDensity(self.grid, values)

    def _check_grid(self, other: "GridDensity") -> None:
        if self.grid != other.grid:
            raise ValueError("densities live on different time grids")

    def __repr__(self) -> str:
        return (f"GridDensity(weight={self.total_weight:.4g}, "
                f"grid={self.grid!r})")


def grid_weighted_sum(grid: TimeGrid,
                      terms: Iterable[Tuple[float, GridDensity]],
                      ) -> GridDensity:
    """WEIGHTED SUM (Eq. 8) of grid densities."""
    acc = GridDensity.zero(grid)
    for weight, density in terms:
        acc = acc + density.scaled(weight)
    return acc
