"""Clark's moment formulas for MAX/MIN of Gaussians (paper Sec. 2.1.2, Eq. 4).

For t0 = MAX(t1, t2) with t1 ~ N(mu1, s1^2), t2 ~ N(mu2, s2^2) and covariance
cov(t1, t2):

    theta^2 = s1^2 + s2^2 - 2 cov
    lam     = (mu1 - mu2) / theta
    P       = phi(lam)          (standard normal pdf)
    Q       = Phi(lam)          (standard normal cdf)

    E[t0]   = mu1 Q + mu2 (1 - Q) + theta P
    E[t0^2] = (mu1^2 + s1^2) Q + (mu2^2 + s2^2) (1 - Q) + (mu1 + mu2) theta P

These are exact first and second moments of the (non-Gaussian) max; SSTA's
moment-matching approximation then treats t0 as N(E[t0], Var[t0]).  The paper
reproduces exactly these equations; MIN follows from
MIN(t1, t2) = -MAX(-t1, -t2).
"""

from __future__ import annotations

import math
from typing import Iterable, Tuple

from repro.stats.normal import Normal, norm_cdf, norm_pdf

MomentPair = Tuple[float, float]


def clark_max_moments(mu1: float, var1: float, mu2: float, var2: float,
                      cov: float = 0.0) -> MomentPair:
    """Return (mean, variance) of MAX of two jointly normal variables.

    Degenerate case: when theta == 0 the two variables are perfectly
    correlated with equal variance, so the max is simply the larger-mean
    variable.
    """
    theta_sq = var1 + var2 - 2.0 * cov
    if theta_sq <= 1e-24:
        if mu1 >= mu2:
            return mu1, var1
        return mu2, var2
    theta = math.sqrt(theta_sq)
    lam = (mu1 - mu2) / theta
    p = norm_pdf(lam)
    q = norm_cdf(lam)
    mean = mu1 * q + mu2 * (1.0 - q) + theta * p
    raw2 = ((mu1 * mu1 + var1) * q + (mu2 * mu2 + var2) * (1.0 - q)
            + (mu1 + mu2) * theta * p)
    var = max(raw2 - mean * mean, 0.0)
    return mean, var


def clark_min_moments(mu1: float, var1: float, mu2: float, var2: float,
                      cov: float = 0.0) -> MomentPair:
    """Return (mean, variance) of MIN via MIN(a, b) = -MAX(-a, -b)."""
    mean, var = clark_max_moments(-mu1, var1, -mu2, var2, cov)
    return -mean, var


def clark_tightness(mu1: float, var1: float, mu2: float, var2: float,
                    cov: float = 0.0) -> float:
    """Tightness probability Q = P(t1 >= t2): the weight of the first input
    in Clark's linear mixing, used for sensitivity/covariance propagation."""
    theta_sq = var1 + var2 - 2.0 * cov
    if theta_sq <= 1e-24:
        return 1.0 if mu1 >= mu2 else 0.0
    return norm_cdf((mu1 - mu2) / math.sqrt(theta_sq))


def clark_max(a: Normal, b: Normal, cov: float = 0.0) -> Normal:
    """Moment-matched Gaussian approximation of MAX(a, b)."""
    mean, var = clark_max_moments(a.mu, a.var, b.mu, b.var, cov)
    return Normal(mean, math.sqrt(var))


def clark_min(a: Normal, b: Normal, cov: float = 0.0) -> Normal:
    """Moment-matched Gaussian approximation of MIN(a, b)."""
    mean, var = clark_min_moments(a.mu, a.var, b.mu, b.var, cov)
    return Normal(mean, math.sqrt(var))


def clark_max_many(variables: Iterable[Normal]) -> Normal:
    """Iterated pairwise Clark MAX of independent normals.

    This is the standard block-based SSTA reduction for k-input gates; each
    pairwise result is re-approximated as Gaussian before the next fold.
    Raises ValueError on an empty iterable.
    """
    result = None
    for v in variables:
        result = v if result is None else clark_max(result, v)
    if result is None:
        raise ValueError("clark_max_many requires at least one variable")
    return result


def clark_min_many(variables: Iterable[Normal]) -> Normal:
    """Iterated pairwise Clark MIN of independent normals."""
    result = None
    for v in variables:
        result = v if result is None else clark_min(result, v)
    if result is None:
        raise ValueError("clark_min_many requires at least one variable")
    return result


def clark_cov_with_third(mu1: float, var1: float, mu2: float, var2: float,
                         cov12: float, cov1k: float, cov2k: float) -> float:
    """Covariance of MAX(t1, t2) with a third jointly normal variable t_k.

    Clark (1961) gives   cov(max, t_k) = Q cov(t1, t_k) + (1-Q) cov(t2, t_k)
    where Q is the tightness probability.  Used by the covariance-tracking
    extension of the SPSTA moment engine (paper Sec. 3.4).
    """
    q = clark_tightness(mu1, var1, mu2, var2, cov12)
    return q * cov1k + (1.0 - q) * cov2k
