"""Moment algebra for the SPSTA moment engine (paper Sec. 3.4, Eq. 13).

A TOP function abstracted to moments is a triple (weight, mean, variance):
the weight is the transition occurrence probability (integral of the TOP),
and mean/variance describe the conditional arrival-time distribution.  The
WEIGHTED SUM of TOPs then mixes conditional distributions with weights

    w_y       = sum_i  p_i w_i
    E[t_y]    = sum_i  p_i w_i E[t_i]            / w_y
    E[t_y^2]  = sum_i  p_i w_i (E[t_i]^2 + V_i)  / w_y

which is exactly the mixture-moment form of Eq. 13 (the paper states the
unconditional linear-combination form; conditioning on occurrence makes the
bookkeeping explicit and is what the evaluation reports).
"""

from __future__ import annotations

from dataclasses import dataclass
import math
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class WeightedMoments:
    """(weight, mean, var) abstraction of a TOP function."""

    weight: float
    mean: float
    var: float

    def __post_init__(self) -> None:
        if self.weight < 0.0:
            raise ValueError(f"weight must be >= 0, got {self.weight}")
        if self.var < -1e-12:
            raise ValueError(f"variance must be >= 0, got {self.var}")

    @property
    def std(self) -> float:
        return math.sqrt(max(self.var, 0.0))

    @property
    def raw2(self) -> float:
        """Second raw moment E[t^2] of the conditional distribution."""
        return self.mean * self.mean + self.var

    def shifted(self, delay_mean: float,
                delay_var: float = 0.0) -> "WeightedMoments":
        """SUM with an independent delay (Eq. 2)."""
        return WeightedMoments(self.weight, self.mean + delay_mean,
                               self.var + delay_var)

    @classmethod
    def absent(cls) -> "WeightedMoments":
        """A never-occurring transition."""
        return cls(0.0, 0.0, 0.0)

    @property
    def occurs(self) -> bool:
        return self.weight > 0.0


def weighted_sum_moments(
        terms: Sequence[Tuple[float, WeightedMoments]]) -> WeightedMoments:
    """WEIGHTED SUM (Eq. 8/13) over (probability, moments) terms.

    Terms whose moments carry zero weight contribute nothing.  The result's
    weight is sum(p_i * w_i); the conditional mean/variance are the mixture
    moments.
    """
    total_w = 0.0
    acc_mean = 0.0
    acc_raw2 = 0.0
    for p, m in terms:
        if p < 0.0:
            raise ValueError(f"term probability must be >= 0, got {p}")
        w = p * m.weight
        if w <= 0.0:
            continue
        total_w += w
        acc_mean += w * m.mean
        acc_raw2 += w * m.raw2
    if total_w <= 0.0:
        return WeightedMoments.absent()
    mean = acc_mean / total_w
    var = max(acc_raw2 / total_w - mean * mean, 0.0)
    return WeightedMoments(total_w, mean, var)


def empirical_moments(samples: Sequence[float]) -> Tuple[float, float]:
    """(mean, population std) of a sample set — the Monte Carlo estimator
    used in Table 2 (population normalization, matching a 10K-run census)."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("empirical moments of an empty sample are undefined")
    return float(arr.mean()), float(arr.std())


def skewness_from_moments(mean: float, var: float,
                          third_central: float) -> float:
    """Standardized skewness from central moments; 0 for zero variance."""
    if var <= 0.0:
        return 0.0
    return third_central / var ** 1.5
