"""Statistical toolkit underlying all timing engines.

This package implements, from scratch, the probability machinery the paper's
equations rely on:

- :mod:`repro.stats.normal` — Gaussian random-variable arithmetic (the SUM
  operation of Sec. 2.1.1) and density/cdf evaluation.
- :mod:`repro.stats.clark` — Clark's moment formulas for the MAX/MIN of two
  (possibly correlated) Gaussians (Eq. 4 of the paper).
- :mod:`repro.stats.mixture` — weighted Gaussian mixtures: the natural closed
  form of the WEIGHTED SUM operation (Eq. 8/11), with component merging.
- :mod:`repro.stats.grid` — densities discretized on a shared time grid, used
  as a numerically exact cross-check (Figure 4) and a fourth engine.
- :mod:`repro.stats.moments` — raw/central moment algebra for weighted sums
  (Eq. 13) and empirical moment helpers used by the Monte Carlo analyses.
"""

from repro.stats.clark import (
    clark_max,
    clark_max_many,
    clark_min,
    clark_min_many,
)
from repro.stats.grid import GridDensity, TimeGrid
from repro.stats.mixture import GaussianMixture, MixtureComponent
from repro.stats.moments import (
    WeightedMoments,
    empirical_moments,
    skewness_from_moments,
    weighted_sum_moments,
)
from repro.stats.normal import Normal

__all__ = [
    "Normal",
    "clark_max",
    "clark_min",
    "clark_max_many",
    "clark_min_many",
    "GaussianMixture",
    "MixtureComponent",
    "TimeGrid",
    "GridDensity",
    "WeightedMoments",
    "weighted_sum_moments",
    "empirical_moments",
    "skewness_from_moments",
]
