"""Weighted Gaussian mixtures — the closed form of the WEIGHTED SUM operation.

The paper's TOP (transition temporal occurrence probability) functions are
sub-probability densities: their integral is the transition occurrence
probability, not 1 (Sec. 3.1).  A weighted Gaussian mixture represents this
exactly for the WEIGHTED SUM operation (Eq. 8/11): summing densities with
scalar weights just concatenates scaled components.  The MAX operation is
approximated component-pairwise with Clark's formulas, and a component-count
cap keeps propagation linear-time (moment-preserving merge of the closest
pair, in the style of Gaussian mixture reduction).
"""

from __future__ import annotations

from dataclasses import dataclass
import math
from typing import Iterable, List, Sequence, Tuple

from repro.stats.clark import clark_max_moments, clark_min_moments
from repro.stats.normal import Normal, norm_cdf, norm_pdf


@dataclass(frozen=True)
class MixtureComponent:
    """One Gaussian component with a non-negative weight."""

    weight: float
    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.weight) and math.isfinite(self.mu)
                and math.isfinite(self.sigma)):
            raise ValueError(
                f"component parameters must be finite, got "
                f"(w={self.weight}, mu={self.mu}, sigma={self.sigma}) "
                f"(NaN/Inf sentinel: an upstream operation diverged)")
        if self.weight < 0.0:
            raise ValueError(
                f"component weight must be >= 0, got {self.weight}")
        if self.sigma < 0.0:
            raise ValueError(f"component sigma must be >= 0, got {self.sigma}")


class GaussianMixture:
    """A finite weighted sum of Gaussians, 0 <= total weight (<= 1 for TOPs).

    The mixture is immutable from the caller's perspective: all operations
    return new mixtures.
    """

    __slots__ = ("_components",)

    def __init__(self, components: Iterable[MixtureComponent] = ()) -> None:
        self._components: Tuple[MixtureComponent, ...] = tuple(
            c for c in components if c.weight > 0.0)

    @classmethod
    def from_normal(cls, normal: Normal,
                    weight: float = 1.0) -> "GaussianMixture":
        """A single-component mixture from a Gaussian with a given weight."""
        return cls([MixtureComponent(weight, normal.mu, normal.sigma)])

    @classmethod
    def empty(cls) -> "GaussianMixture":
        """The zero density (no transition ever occurs)."""
        return cls()

    @property
    def components(self) -> Tuple[MixtureComponent, ...]:
        return self._components

    def __len__(self) -> int:
        return len(self._components)

    def __bool__(self) -> bool:
        return bool(self._components)

    @property
    def total_weight(self) -> float:
        """Integral of the density = transition occurrence probability."""
        return sum(c.weight for c in self._components)

    def mean(self) -> float:
        """Mean of the normalized (conditional-on-occurrence) form."""
        w = self.total_weight
        if w <= 0.0:
            raise ValueError("mean of an empty mixture is undefined")
        return sum(c.weight * c.mu for c in self._components) / w

    def var(self) -> float:
        """Variance of the normalized distribution."""
        w = self.total_weight
        if w <= 0.0:
            raise ValueError("variance of an empty mixture is undefined")
        raw2 = sum(c.weight * (c.mu * c.mu + c.sigma * c.sigma)
                   for c in self._components) / w
        m = self.mean()
        return max(raw2 - m * m, 0.0)

    def std(self) -> float:
        """Standard deviation of the normalized distribution."""
        return math.sqrt(self.var())

    def third_central_moment(self) -> float:
        """Third central moment of the normalized distribution (for skewness).

        Uses E[(X-m)^3] = sum_i w_i [ (mu_i - m)^3 + 3 (mu_i - m) sigma_i^2 ]
        since each Gaussian component has zero own third central moment.
        """
        w = self.total_weight
        if w <= 0.0:
            raise ValueError("moment of an empty mixture is undefined")
        m = self.mean()
        acc = 0.0
        for c in self._components:
            d = c.mu - m
            acc += c.weight * (d * d * d + 3.0 * d * c.sigma * c.sigma)
        return acc / w

    def pdf(self, x: float) -> float:
        """Density at ``x`` (unnormalized: integrates to total weight)."""
        return sum(c.weight * norm_pdf(x, c.mu, c.sigma)
                   for c in self._components)

    def cdf(self, x: float) -> float:
        """Sub-probability cdf at ``x`` (tends to total weight as x -> inf)."""
        return sum(c.weight * norm_cdf(x, c.mu, c.sigma)
                   for c in self._components)

    def scaled(self, factor: float) -> "GaussianMixture":
        """Scale all weights — the scalar multiply of a WEIGHTED SUM term."""
        if factor < 0.0:
            raise ValueError(f"weight factor must be >= 0, got {factor}")
        return GaussianMixture(
            MixtureComponent(c.weight * factor, c.mu, c.sigma)
            for c in self._components)

    def shifted(self, delay: float) -> "GaussianMixture":
        """Add a deterministic delay to every component (SUM with sigma=0)."""
        return GaussianMixture(
            MixtureComponent(c.weight, c.mu + delay, c.sigma)
            for c in self._components)

    def convolved(self, delay: Normal) -> "GaussianMixture":
        """SUM with an independent Gaussian delay (exact for mixtures)."""
        return GaussianMixture(
            MixtureComponent(c.weight, c.mu + delay.mu,
                             math.hypot(c.sigma, delay.sigma))
            for c in self._components)

    def __add__(self, other: "GaussianMixture") -> "GaussianMixture":
        """WEIGHTED SUM of densities: concatenation of components."""
        if not isinstance(other, GaussianMixture):
            return NotImplemented
        return GaussianMixture(self._components + other._components)

    def normalized(self) -> "GaussianMixture":
        """Rescale to unit total weight (TOP -> arrival-time pdf, Sec. 3.1)."""
        w = self.total_weight
        if w <= 0.0:
            raise ValueError("cannot normalize an empty mixture")
        return self.scaled(1.0 / w)

    def as_normal(self) -> Normal:
        """Moment-matched single Gaussian of the normalized distribution."""
        return Normal(self.mean(), self.std())

    def max_with(self, other: "GaussianMixture") -> "GaussianMixture":
        """MAX of two independent mixture-distributed arrival times.

        Both operands are treated as conditional (normalized) distributions;
        the result is normalized too.  Each component pair is combined with
        Clark's max and re-weighted by the product of component weights.
        """
        return self._extreme_with(other, clark_max_moments)

    def min_with(self, other: "GaussianMixture") -> "GaussianMixture":
        """MIN analogue of :meth:`max_with`."""
        return self._extreme_with(other, clark_min_moments)

    def _extreme_with(self, other: "GaussianMixture", op) -> "GaussianMixture":
        if not self or not other:
            raise ValueError("MAX/MIN of an empty mixture is undefined")
        a, b = self.normalized(), other.normalized()
        out: List[MixtureComponent] = []
        for ca in a.components:
            for cb in b.components:
                mean, var = op(ca.mu, ca.sigma * ca.sigma,
                               cb.mu, cb.sigma * cb.sigma)
                out.append(MixtureComponent(ca.weight * cb.weight,
                                            mean, math.sqrt(var)))
        return GaussianMixture(out)

    def reduced(self, max_components: int) -> "GaussianMixture":
        """Merge closest pairs until ``max_components`` or fewer remain.

        Each merge is moment-preserving for the pair (weight, mean, and
        variance of the two-component sub-mixture are kept exactly), the
        standard Gaussian-mixture-reduction step.  Distance is the weighted
        squared-mean gap of West's reduction heuristic, restricted to
        mean-adjacent pairs (after sorting by mean) so reduction stays
        O(n^2) even for the large cross products the MAX operation creates.
        """
        if max_components < 1:
            raise ValueError("max_components must be >= 1")
        comps = sorted(self._components, key=lambda c: c.mu)
        while len(comps) > max_components:
            best_i = 0
            best_cost = math.inf
            for i in range(len(comps) - 1):
                ci, cj = comps[i], comps[i + 1]
                wsum = ci.weight + cj.weight
                if wsum <= 0.0:
                    cost = 0.0
                else:
                    d = ci.mu - cj.mu
                    cost = ci.weight * cj.weight / wsum * d * d
                if cost < best_cost:
                    best_cost = cost
                    best_i = i
            merged = _merge_pair(comps[best_i], comps[best_i + 1])
            comps[best_i:best_i + 2] = [merged]
        return GaussianMixture(comps)

    def quantile(self, p: float, tol: float = 1e-9) -> float:
        """Inverse cdf of the normalized mixture by bisection.

        Used for percentile-style reporting (e.g. a 99.9% arrival time
        from an SPSTA mixture result).
        """
        if not 0.0 < p < 1.0:
            raise ValueError(f"p must be in (0, 1), got {p}")
        if not self._components:
            raise ValueError("quantile of an empty mixture is undefined")
        total = self.total_weight
        lo = min(c.mu - 10.0 * max(c.sigma, 1e-12) for c in self._components)
        hi = max(c.mu + 10.0 * max(c.sigma, 1e-12) for c in self._components)
        target = p * total
        while hi - lo > tol * max(1.0, abs(hi), abs(lo)):
            mid = 0.5 * (lo + hi)
            if self.cdf(mid) < target:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def sample(self, n: int, rng) -> "np.ndarray":
        """Draw ``n`` samples from the normalized mixture as a float array
        (``rng`` is a numpy Generator).  Used for validation (e.g. KS tests
        against Monte Carlo) and for driving downstream samplers from SPSTA
        results.

        Side effect: the draw advances ``rng``'s stream (one ``choice`` of
        size ``n`` plus one ``standard_normal`` of size ``n``) — callers
        sharing a generator across samplers must account for the consumed
        state, the same caveat as
        :func:`repro.sim.parallel.seed_sequence_of`'s exotic-bit-generator
        fallback.
        """
        import numpy as np
        if not self._components:
            raise ValueError("cannot sample an empty mixture")
        weights = np.array([c.weight for c in self._components])
        weights = weights / weights.sum()
        choices = rng.choice(len(self._components), size=n, p=weights)
        mus = np.array([c.mu for c in self._components])
        sigmas = np.array([c.sigma for c in self._components])
        return mus[choices] + sigmas[choices] * rng.standard_normal(n)

    def __repr__(self) -> str:
        body = ", ".join(
            f"({c.weight:.4g}, N({c.mu:.4g}, {c.sigma:.4g}))"
            for c in self._components)
        return f"GaussianMixture[{body}]"


def _merge_pair(a: MixtureComponent, b: MixtureComponent) -> MixtureComponent:
    """Moment-preserving merge of two weighted Gaussians into one."""
    w = a.weight + b.weight
    if w <= 0.0:
        return MixtureComponent(0.0, 0.0, 0.0)
    mu = (a.weight * a.mu + b.weight * b.mu) / w
    raw2 = (a.weight * (a.mu * a.mu + a.sigma * a.sigma)
            + b.weight * (b.mu * b.mu + b.sigma * b.sigma)) / w
    var = max(raw2 - mu * mu, 0.0)
    return MixtureComponent(w, mu, math.sqrt(var))


def mixture_weighted_sum(
        terms: Sequence[Tuple[float, GaussianMixture]]) -> GaussianMixture:
    """WEIGHTED SUM (Eq. 8): sum_i  w_i * phi(x_i), as one mixture."""
    result = GaussianMixture.empty()
    for weight, mixture in terms:
        result = result + mixture.scaled(weight)
    return result
