"""The bounds engine: certified facts from one static pass.

:func:`compute_bounds` propagates two abstractions through the
levelized netlist:

**Signal-probability intervals.**  Per gate, the stem sweep
(:mod:`repro.bounds.stems`) picks the sound regime:

- ``independent`` — no fan-out stem lands on two input cones, so the
  inputs are provably independent and the exact closed form applies
  (interval width 0 stays 0: fanout-free circuits get the point SP,
  bit-identical to :func:`repro.core.probability.signal_probabilities`);
- ``bdd`` — reconvergent, but the cone's launch support fits under
  ``max_cone_inputs``: the cone collapses to a BDD over its launch
  points (shared manager, ``max_bdd_nodes`` cap) and an interval Shannon
  walk gives the exact probability — structural correlation included;
- ``frechet`` — reconvergent and too wide (or the node cap was hit):
  Fréchet–Hoeffding widening, sound under any input dependence.

**Arrival-time bound boxes** ``(mu_lo, mu_hi, var_hi, sigma_lo)`` per
net, valid for the *conditional* transition-arrival distributions any
of the SPSTA algebras propagate, under any joint: means fold through a
Clark-style upper envelope that is monotone in its arguments, the
variance upper bound adds the per-input variances, the gate delay
variance, and a mixture-spread term ``((mu_hi - mu_lo)/2)^2`` (the
algebras' conditional arrival is a mixture over switching subsets;
a mixture's variance includes the spread of component means — see
docs/theory.md for why each term is required).  The lower sigma keeps
only the gate's own delay sigma: maxing can destroy input variance
(``Var(max(X, -X)) < Var(X)``), so input sigmas cannot be kept.

Per-endpoint criticality bounds ``mu + k sigma`` follow, with
:meth:`BoundsResult.non_critical_gates` giving the certified set of
gates that can never sit on a critical path to any contender endpoint.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.bounds.intervals import (
    Interval,
    gate_interval_frechet,
    gate_interval_independent,
)
from repro.bounds.stems import launch_support_counts, sweep_stems
from repro.core.delay import DelayModel, UnitDelay
from repro.core.inputs import CONFIG_I, InputStats
from repro.logic.bdd import FALSE, TRUE, BDDManager
from repro.netlist.core import Gate, Netlist

#: Launch-support width above which a reconvergent cone is not collapsed.
DEFAULT_MAX_CONE_INPUTS = 10
#: Shared-manager node cap for all cone collapses of one analysis.
DEFAULT_MAX_BDD_NODES = 100_000

LaunchSpec = Union[float, Interval, Mapping[str, Union[float, Interval]]]


@dataclass(frozen=True)
class DelayBounds:
    """Box of gate-delay moments: mu and sigma each in a closed range."""

    mu_lo: float
    mu_hi: float
    sigma_lo: float
    sigma_hi: float

    def __post_init__(self) -> None:
        if not (self.mu_lo <= self.mu_hi
                and 0.0 <= self.sigma_lo <= self.sigma_hi):
            raise ValueError(f"invalid delay bounds {self}")

    @staticmethod
    def from_point(mu: float, sigma: float) -> "DelayBounds":
        return DelayBounds(mu, mu, sigma, sigma)


@dataclass(frozen=True)
class ArrivalBounds:
    """Arrival-moment box for one net's conditional transition arrival."""

    mu_lo: float
    mu_hi: float
    var_hi: float
    sigma_lo: float

    @property
    def sigma_hi(self) -> float:
        return math.sqrt(self.var_hi)

    def criticality(self, k_sigma: float) -> Tuple[float, float]:
        """Certified ``[lo, hi]`` of the ``mu + k sigma`` severity."""
        return (self.mu_lo + k_sigma * self.sigma_lo,
                self.mu_hi + k_sigma * self.sigma_hi)


@dataclass
class BoundsResult:
    """Everything :func:`compute_bounds` certifies about a netlist."""

    netlist: Netlist
    k_sigma: float
    clock_period: Optional[float]
    sp: Dict[str, Interval]
    regimes: Dict[str, str]
    bdd_exhausted: bool
    arrivals: Dict[str, ArrivalBounds]
    endpoint_criticality: Dict[str, Tuple[float, float]]
    critical_lower: float
    _non_critical_cache: Dict[float, FrozenSet[str]] = field(
        default_factory=dict, repr=False)

    @property
    def regime_counts(self) -> Dict[str, int]:
        counts = {"independent": 0, "bdd": 0, "frechet": 0}
        for regime in self.regimes.values():
            counts[regime] += 1
        return counts

    def never_critical_endpoints(self, threshold: float) -> List[str]:
        """Endpoints whose upper criticality bound is strictly below
        ``threshold`` — they can never be the worst endpoint while the
        worst severity is at or above the threshold."""
        return [net for net in self.netlist.endpoints
                if self.endpoint_criticality[net][1] < threshold]

    def non_critical_gates(self, threshold: float) -> FrozenSet[str]:
        """Gates provably absent from every critical path.

        A critical path is a fan-in-cone backtrace from the worst
        endpoint; a gate can appear on one only if some contender
        endpoint (upper criticality bound >= ``threshold``) lies in its
        fan-out cone.  One reverse-topological sweep marks the fan-in
        cones of all contenders; everything unmarked is certified.
        """
        cached = self._non_critical_cache.get(threshold)
        if cached is not None:
            return cached
        contenders = {net for net in self.netlist.endpoints
                      if self.endpoint_criticality[net][1] >= threshold}
        marked = set(contenders)
        for gate in reversed(self.netlist.combinational_gates):
            if gate.name in marked:
                marked.update(gate.inputs)
        result = frozenset(
            gate.name for gate in self.netlist.combinational_gates
            if gate.name not in marked)
        self._non_critical_cache[threshold] = result
        return result

    def yield_bounds(self, clock_period: float) -> Tuple[float, float]:
        """Certified ``[lo, hi]`` on timing yield at ``clock_period``.

        The lower bound is unconditional: per endpoint, a Cantelli tail
        bound over the arrival box caps P(late | transition), which also
        caps P(late); a union bound over endpoints then holds under any
        dependence.  The upper bound assumes worst-case activity (every
        endpoint transitions): the two-value SP domain cannot certify a
        transition-occurrence lower bound, so 1 minus the largest
        certified conditional-late lower bound is reported as the
        worst-case-activity ceiling.
        """
        late_his = []
        late_lo = 0.0
        for net in self.netlist.endpoints:
            bounds = self.arrivals[net]
            slack = clock_period - bounds.mu_hi
            if slack <= 0.0:
                late_hi = 1.0
            elif bounds.var_hi == 0.0:
                late_hi = 0.0
            else:
                late_hi = bounds.var_hi / (bounds.var_hi + slack * slack)
            late_his.append(late_hi)
            gap = bounds.mu_lo - clock_period
            if gap > 0.0:
                late_lo = max(late_lo,
                              gap * gap / (gap * gap + bounds.var_hi))
        return (max(0.0, 1.0 - sum(late_his)), 1.0 - late_lo)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "report": "spsta-bounds",
            "k_sigma": self.k_sigma,
            "clock_period": self.clock_period,
            "regimes": self.regime_counts,
            "bdd_exhausted": self.bdd_exhausted,
            "critical_lower": self.critical_lower,
            "endpoints": {
                net: {"crit_lo": lo, "crit_hi": hi,
                      "mu_lo": self.arrivals[net].mu_lo,
                      "mu_hi": self.arrivals[net].mu_hi,
                      "sigma_lo": self.arrivals[net].sigma_lo,
                      "sigma_hi": self.arrivals[net].sigma_hi}
                for net, (lo, hi) in self.endpoint_criticality.items()},
        }
        if self.sp:
            widths = [iv.width for iv in self.sp.values()]
            payload["signal_probability"] = {
                "nets": len(self.sp),
                "max_width": max(widths),
                "mean_width": sum(widths) / len(widths),
            }
        if self.clock_period is not None:
            lo, hi = self.yield_bounds(self.clock_period)
            never = self.never_critical_endpoints(self.clock_period)
            payload["clock"] = {
                "yield_lo": lo, "yield_hi": hi,
                "never_critical_endpoints": len(never),
                "non_critical_gates": len(
                    self.non_critical_gates(self.clock_period)),
            }
        return payload


def _launch_interval(spec: LaunchSpec, net: str) -> Interval:
    value = spec[net] if isinstance(spec, Mapping) else spec
    if isinstance(value, Interval):
        return value
    return Interval.point(float(value))


def _propagate_sp(netlist: Netlist, launch: LaunchSpec,
                  reconvergent: FrozenSet[str], max_cone_inputs: int,
                  max_bdd_nodes: int,
                  ) -> Tuple[Dict[str, Interval], Dict[str, str], bool]:
    sp: Dict[str, Interval] = {}
    for net in netlist.launch_points:
        sp[net] = _launch_interval(launch, net)
    support = launch_support_counts(netlist) if reconvergent else {}
    manager = BDDManager(max_nodes=max_bdd_nodes)
    funcs: Dict[str, int] = {}
    walk_memo: Dict[int, Interval] = {
        FALSE: Interval.point(0.0), TRUE: Interval.point(1.0)}
    regimes: Dict[str, str] = {}
    exhausted = False

    for gate in netlist.combinational_gates:
        operands = [sp[src] for src in gate.inputs]
        if gate.name not in reconvergent:
            regimes[gate.name] = "independent"
            sp[gate.name] = gate_interval_independent(gate.gate_type,
                                                      operands)
            continue
        if not exhausted and support[gate.name] <= max_cone_inputs:
            try:
                f = _cone_bdd(netlist, gate.name, manager, funcs)
            except MemoryError:
                exhausted = True
            else:
                regimes[gate.name] = "bdd"
                sp[gate.name] = _interval_walk(manager, f, sp, walk_memo)
                continue
        regimes[gate.name] = "frechet"
        sp[gate.name] = gate_interval_frechet(gate.gate_type, operands)
    return sp, regimes, exhausted


def _cone_bdd(netlist: Netlist, net: str, manager: BDDManager,
              funcs: Dict[str, int]) -> int:
    """BDD of ``net`` over its launch points, iteratively and memoized
    across cones (same build order as repro.power.density)."""
    stack = [net]
    while stack:
        top = stack[-1]
        if top in funcs:
            stack.pop()
            continue
        if netlist.is_launch_point(top):
            funcs[top] = manager.var(top)
            stack.pop()
            continue
        gate = netlist.gates[top]
        pending = [src for src in gate.inputs if src not in funcs]
        if pending:
            stack.extend(pending)
        else:
            funcs[top] = manager.apply_gate(
                gate.gate_type, [funcs[src] for src in gate.inputs])
            stack.pop()
    return funcs[net]


def _interval_walk(manager: BDDManager, f: int, sp: Dict[str, Interval],
                   memo: Dict[int, Interval]) -> Interval:
    """Interval Shannon walk: exact per BDD node for independent launch
    points, mirroring ``BDDManager.signal_probability`` expression for
    expression so point launches reproduce it bit for bit."""
    found = memo.get(f)
    if found is not None:
        return found
    level, low, high = manager._nodes[f]
    p = sp[manager._level_names[level]]
    wh = _interval_walk(manager, high, sp, memo)
    wl = _interval_walk(manager, low, sp, memo)
    lo = min(p.lo * wh.lo + (1.0 - p.lo) * wl.lo,
             p.hi * wh.lo + (1.0 - p.hi) * wl.lo)
    hi = max(p.lo * wh.hi + (1.0 - p.lo) * wl.hi,
             p.hi * wh.hi + (1.0 - p.hi) * wl.hi)
    result = Interval(min(max(lo, 0.0), 1.0), min(max(hi, 0.0), 1.0))
    memo[f] = result
    return result


def _clark_upper(mu_a: float, var_a: float, mu_b: float,
                 var_b: float) -> float:
    """Upper bound on E[max(A, B)] valid under any joint distribution
    with the given marginal moments, monotone increasing in the means
    and variances (so plugging per-input upper bounds composes)."""
    sig = math.sqrt(var_a) + math.sqrt(var_b)
    return (mu_a + mu_b) / 2.0 + 0.5 * math.sqrt(
        (mu_a - mu_b) ** 2 + sig * sig)


def _clark_lower(mu_a: float, var_a: float, mu_b: float,
                 var_b: float) -> float:
    """Lower bound on E[min(A, B)] under any joint: ``min(A, B) =
    -max(-A, -B)`` turns :func:`_clark_upper` around.  Monotone
    increasing in the means, decreasing in the variances, so plugging
    lower means with upper variances composes."""
    sig = math.sqrt(var_a) + math.sqrt(var_b)
    return (mu_a + mu_b) / 2.0 - 0.5 * math.sqrt(
        (mu_a - mu_b) ** 2 + sig * sig)


_INV_SQRT_2 = 1.0 / math.sqrt(2.0)
_INV_SQRT_2PI = 1.0 / math.sqrt(2.0 * math.pi)


def _clark_max_mean(mu_a: float, var_a: float, mu_b: float,
                    var_b: float) -> float:
    """E[max(A, B)] for independent Gaussians (Clark's exact mean),
    monotone increasing in both means and both variances — so interval
    endpoints compose, and it upper-bounds the moment algebra's
    pairwise folds (which evaluate exactly this formula)."""
    theta_sq = var_a + var_b
    if theta_sq == 0.0:
        return max(mu_a, mu_b)
    theta = math.sqrt(theta_sq)
    alpha = (mu_a - mu_b) / theta
    cdf = 0.5 * (1.0 + math.erf(alpha * _INV_SQRT_2))
    pdf = _INV_SQRT_2PI * math.exp(-0.5 * alpha * alpha)
    return mu_a * cdf + mu_b * (1.0 - cdf) + theta * pdf


def _clark_min_mean(mu_a: float, var_a: float, mu_b: float,
                    var_b: float) -> float:
    """E[min(A, B)] for independent Gaussians: ``mu_a + mu_b -
    E[max]``.  Monotone increasing in the means and *decreasing* in the
    variances, so lower means with upper variances give a sound lower
    bound on the moment algebra's min folds."""
    return mu_a + mu_b - _clark_max_mean(mu_a, var_a, mu_b, var_b)


def compute_bounds(
    netlist: Netlist,
    *,
    stats: InputStats = CONFIG_I,
    launch: Optional[LaunchSpec] = None,
    delay_model: Optional[DelayModel] = None,
    delay_bounds: Optional[Callable[[Gate], DelayBounds]] = None,
    k_sigma: float = 3.0,
    clock_period: Optional[float] = None,
    max_cone_inputs: int = DEFAULT_MAX_CONE_INPUTS,
    max_bdd_nodes: int = DEFAULT_MAX_BDD_NODES,
    include_sp: bool = True,
    mode: str = "any",
) -> BoundsResult:
    """One static pass: SP intervals + arrival boxes + criticality.

    ``launch`` overrides the per-launch-point signal probability (a
    float, an :class:`Interval`, or a mapping of either; default: the
    two-value SP of ``stats``).  ``delay_bounds`` maps each gate to its
    delay-moment box; when omitted, the point box of ``delay_model``
    (default :class:`UnitDelay`) is used.

    ``mode`` picks the arrival-box transfer functions:

    - ``"any"`` (default): distribution-free.  Means fold through the
      Lai–Robbins envelope ``mid ± 0.5 sqrt(dmu^2 + (sig_a+sig_b)^2)``
      and ``Var(min/max_S) <= sum_i Var_i`` — both valid under any
      joint and any component distributions, so the box contains what
      *every* algebra computes, but the variance sum compounds
      exponentially with depth;
    - ``"moment"``: bounds on what the *moment algebra* computes.  It
      moment-matches every top to a Gaussian and treats gate inputs as
      independent, so the exact Clark max/min mean (monotone increasing
      in both means and, for max, both sigmas) evaluated at interval
      endpoints bounds its pairwise folds, and the Gaussian Poincaré
      inequality gives ``Var(min/max_S) <= max_i Var_i`` (the gradient
      of min/max is a unit indicator vector).  Tight enough to certify
      non-critical cones on deep circuits; sound for
      :class:`~repro.core.spsta.MomentAlgebra` results only.
    """
    if mode not in ("any", "moment"):
        raise ValueError(f"unknown mode {mode!r}")
    if launch is None:
        launch = stats.signal_probability
    if delay_bounds is not None:
        bounds_of = delay_bounds
    else:
        model = delay_model if delay_model is not None else UnitDelay()

        def bounds_of(gate: Gate, _model: DelayModel = model,
                      ) -> DelayBounds:
            d = _model.delay(gate)
            return DelayBounds.from_point(d.mu, d.sigma)

    sp: Dict[str, Interval] = {}
    regimes: Dict[str, str] = {}
    exhausted = False
    if include_sp:
        sweep = sweep_stems(netlist)
        sp, regimes, exhausted = _propagate_sp(
            netlist, launch, sweep.reconvergent_gates,
            max_cone_inputs, max_bdd_nodes)

    if mode == "any":
        upper_fold, lower_fold = _clark_upper, _clark_lower
    else:
        upper_fold, lower_fold = _clark_max_mean, _clark_min_mean

    arrivals: Dict[str, ArrivalBounds] = {}
    rise, fall = stats.rise_arrival, stats.fall_arrival
    launch_arrival = ArrivalBounds(
        mu_lo=min(rise.mu, fall.mu),
        mu_hi=max(rise.mu, fall.mu),
        var_hi=max(rise.sigma, fall.sigma) ** 2,
        sigma_lo=min(rise.sigma, fall.sigma))
    for net in netlist.launch_points:
        arrivals[net] = launch_arrival

    for gate in netlist.combinational_gates:
        db = bounds_of(gate)
        inputs = [arrivals[src] for src in gate.inputs]
        # Every conditional output arrival is a mixture of (min or max
        # over an input subset) + delay; E[max_S] <= E[max_all] and
        # E[min_S] >= E[min_all], so one fold over all inputs bounds
        # every component from each side.
        fold_hi, fold_lo = inputs[0].mu_hi, inputs[0].mu_lo
        fold_var = inputs[0].var_hi
        component_var = inputs[0].var_hi
        for a in inputs[1:]:
            fold_hi = upper_fold(fold_hi, fold_var, a.mu_hi, a.var_hi)
            fold_lo = lower_fold(fold_lo, fold_var, a.mu_lo, a.var_hi)
            if mode == "any":
                component_var += a.var_hi
            else:
                # Gaussian Poincaré: Var(min/max of independent
                # Gaussians) <= max of their variances, and the running
                # partial fold stays under the running max.
                component_var = max(component_var, a.var_hi)
            fold_var = component_var
        mu_lo = fold_lo + db.mu_lo
        mu_hi = fold_hi + db.mu_hi
        var_hi = component_var + db.sigma_hi ** 2
        if len(inputs) > 1:
            # Mixture over switching subsets: the spread of component
            # means contributes Var on top of the within-component sum.
            half_range = (mu_hi - mu_lo) / 2.0
            var_hi += half_range * half_range
        arrivals[gate.name] = ArrivalBounds(
            mu_lo=mu_lo, mu_hi=mu_hi, var_hi=var_hi,
            sigma_lo=db.sigma_lo)

    endpoint_criticality = {
        net: arrivals[net].criticality(k_sigma)
        for net in netlist.endpoints}
    critical_lower = max(
        (lo for lo, _ in endpoint_criticality.values()),
        default=-math.inf)
    return BoundsResult(
        netlist=netlist, k_sigma=k_sigma, clock_period=clock_period,
        sp=sp, regimes=regimes, bdd_exhausted=exhausted,
        arrivals=arrivals, endpoint_criticality=endpoint_criticality,
        critical_lower=critical_lower)
