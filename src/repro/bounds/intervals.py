"""Interval domain for two-value signal probability (Eq. 5).

Two transfer functions per gate type:

- :func:`gate_interval_independent` — sound **and tight** when the gate's
  inputs are independent (the stem sweep certifies this when no fan-out
  stem lands on two input cones).  Each op mirrors
  :func:`repro.core.probability.gate_signal_probability` expression for
  expression, so on point inputs (``lo == hi``) the result is
  bit-identical to the point propagation — intervals collapse to width 0
  on fanout-free circuits with no floating-point slack.

- :func:`gate_interval_frechet` — sound under **any** joint distribution
  of the inputs (Fréchet–Hoeffding bounds), used where reconvergence
  makes independence unprovable and the BDD collapse is too expensive.
  The independence corners must *not* be intersected in: under
  dependence the true probability can sit outside them.

All outputs are clamped to ``[0, 1]``; the clamp is a no-op on the
independent path for in-range inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.logic.gates import GateSpec, GateType, gate_spec


@dataclass(frozen=True)
class Interval:
    """A closed probability interval ``[lo, hi]``."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.lo <= self.hi <= 1.0):
            raise ValueError(f"invalid probability interval "
                             f"[{self.lo}, {self.hi}]")

    @staticmethod
    def point(p: float) -> "Interval":
        return Interval(p, p)

    @property
    def width(self) -> float:
        return self.hi - self.lo

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi

    def complement(self) -> "Interval":
        """Interval of ``1 - X`` — exact, mirrors ``1.0 - p``."""
        return Interval(1.0 - self.hi, 1.0 - self.lo)

    def contains(self, p: float, slack: float = 0.0) -> bool:
        return self.lo - slack <= p <= self.hi + slack


def _prod(values: Iterable[float]) -> float:
    acc = 1.0
    for v in values:
        acc *= v
    return acc


def _clamp(lo: float, hi: float) -> Interval:
    return Interval(min(max(lo, 0.0), 1.0), min(max(hi, 0.0), 1.0))


def gate_interval_independent(gate_type: GateType,
                              inputs: Sequence[Interval]) -> Interval:
    """Output interval of one gate whose inputs are independent.

    Monotone gates (AND/OR cores) evaluate the closed form at the
    matching corner; the parity fold is bilinear per step, so its
    extrema sit on corners of each ``(partial, input)`` box.
    """
    spec: GateSpec = gate_spec(gate_type)
    spec.validate_arity(len(inputs))
    if gate_type is GateType.BUFF:
        return inputs[0]
    if gate_type is GateType.NOT:
        return inputs[0].complement()
    if gate_type in (GateType.AND, GateType.NAND):
        lo = _prod(x.lo for x in inputs)
        hi = _prod(x.hi for x in inputs)
        result = Interval(lo, hi)
        return result.complement() if spec.inverting else result
    if gate_type in (GateType.OR, GateType.NOR):
        zero_lo = _prod(1.0 - x.hi for x in inputs)
        zero_hi = _prod(1.0 - x.lo for x in inputs)
        zeros = Interval(zero_lo, zero_hi)
        return zeros if spec.inverting else zeros.complement()
    # Parity: fold the two-value XOR probability, corner-evaluating the
    # bilinear step p*(1-x) + (1-p)*x over each (p, x) box.
    acc = Interval.point(0.0)
    for x in inputs:
        corners = [p * (1.0 - v) + (1.0 - p) * v
                   for p in (acc.lo, acc.hi) for v in (x.lo, x.hi)]
        acc = _clamp(min(corners), max(corners))
    return acc.complement() if spec.inverting else acc


def gate_interval_frechet(gate_type: GateType,
                          inputs: Sequence[Interval]) -> Interval:
    """Output interval valid under any joint input distribution.

    AND of events: ``P(all) in [max(0, sum p_i - (k-1)), min p_i]``;
    OR: ``P(any) in [max p_i, min(1, sum p_i)]`` — the Fréchet–Hoeffding
    bounds.  Parity folds the pairwise XOR identity ``P(xor) = p + q -
    2 P(and)`` with the AND term swept over its Fréchet range.
    """
    spec = gate_spec(gate_type)
    spec.validate_arity(len(inputs))
    if gate_type is GateType.BUFF:
        return inputs[0]
    if gate_type is GateType.NOT:
        return inputs[0].complement()
    if gate_type in (GateType.AND, GateType.NAND):
        lo = max(0.0, sum(x.lo for x in inputs) - (len(inputs) - 1))
        hi = min(x.hi for x in inputs)
        result = _clamp(lo, max(lo, hi))
        return result.complement() if spec.inverting else result
    if gate_type in (GateType.OR, GateType.NOR):
        lo = max(x.lo for x in inputs)
        hi = min(1.0, sum(x.hi for x in inputs))
        result = _clamp(lo, max(lo, hi))
        return result.complement() if spec.inverting else result
    acc = Interval.point(0.0)
    for x in inputs:
        acc = _xor_frechet(acc, x)
    return acc.complement() if spec.inverting else acc


def _xor_frechet(p: Interval, q: Interval) -> Interval:
    # min over joints of |P(p) - P(q)|, then over the box:
    lo = max(0.0, p.lo - q.hi, q.lo - p.hi)
    # max over joints is min(s, 2 - s) with s = P(p) + P(q):
    s_lo = p.lo + q.lo
    s_hi = p.hi + q.hi
    if s_lo <= 1.0 <= s_hi:
        hi = 1.0
    elif s_hi < 1.0:
        hi = s_hi
    else:
        hi = 2.0 - s_lo
    return _clamp(lo, max(lo, hi))
