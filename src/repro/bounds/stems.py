"""Packed-uint64 bitset sweeps over the levelized netlist.

The reconvergent-stem sweep was born inside ``repro.lint.accuracy``
(SP301/SP302); it now lives here because the bounds engine
(:mod:`repro.bounds.engine`) needs the same facts to pick the sound
propagation regime per gate: a gate whose inputs share no fan-out stem
has provably independent inputs (any net shared by two input cones fans
out at least twice, which makes it a stem, which the sweep catches), so
the interval transfer function may compose marginals; a gate in
:attr:`StemSweep.reconvergent_gates` may not.

All sweeps are one topological pass over packed-uint64 bitsets:
``O(nets x bits / 64)`` words, a few MB even for the s9234-class
profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Tuple

import numpy as np

from repro.logic.gates import GateType
from repro.netlist.analysis import net_depths

if TYPE_CHECKING:
    from repro.netlist.core import Netlist


class StemRecord:
    """Aggregated reconvergence facts for one fan-out stem."""

    __slots__ = ("stem", "first_gate", "n_gates", "max_depth")

    def __init__(self, stem: str, first_gate: str, depth: int) -> None:
        self.stem = stem
        self.first_gate = first_gate
        self.n_gates = 1
        self.max_depth = depth


@dataclass
class StemSweep:
    """Everything one stem sweep learns about a netlist.

    ``stems`` is every net with >= 2 combinational sinks (bit order of
    the sweep); ``records`` maps each stem that actually reconverges to
    its :class:`StemRecord`; ``endpoint_metrics`` maps each endpoint that
    observes reconverged cones to ``{"reconvergent_stems": n,
    "max_correlation_depth": d}``; ``reconvergent_gates`` is the set of
    gates where at least one stem lands on two or more input cones — the
    gates whose inputs are *not* provably independent.
    """

    stems: Tuple[str, ...]
    records: Dict[str, StemRecord]
    endpoint_metrics: Dict[str, Dict[str, int]]
    reconvergent_gates: FrozenSet[str]


def sweep_stems(netlist: "Netlist") -> StemSweep:
    """One levelized sweep with packed-uint64 bitsets: per gate, a stem
    seen on two input cones lands in the ``seen_twice`` mask."""
    stems = [net for net in netlist.nets
             if sum(1 for sink in netlist.fanouts(net)
                    if netlist.gates[sink].gate_type is not GateType.DFF) >= 2]
    if not stems:
        return StemSweep((), {}, {}, frozenset())
    stem_bit = {net: i for i, net in enumerate(stems)}
    words = (len(stems) + 63) // 64
    zero = np.zeros(words, dtype=np.uint64)
    depths = net_depths(netlist)

    masks: Dict[str, np.ndarray] = {}
    recon: Dict[str, np.ndarray] = {}
    event_depth: Dict[str, int] = {}
    records: Dict[str, StemRecord] = {}
    reconvergent: List[str] = []

    def mask_of(net: str) -> np.ndarray:
        mask = masks.get(net, zero)
        if net in stem_bit:
            mask = mask.copy()
            bit = stem_bit[net]
            mask[bit >> 6] |= np.uint64(1 << (bit & 63))
        return mask

    for gate in netlist.combinational_gates:
        seen_once = zero
        seen_twice = zero
        acc_recon = zero
        acc_event = 0
        for src in gate.inputs:
            m = mask_of(src)
            seen_twice = seen_twice | (seen_once & m)
            seen_once = seen_once | m
            acc_recon = acc_recon | recon.get(src, zero)
            acc_event = max(acc_event, event_depth.get(src, 0))
        if seen_twice.any():
            reconvergent.append(gate.name)
            for bit in _set_bits(seen_twice):
                stem = stems[bit]
                depth = depths[gate.name] - depths[stem]
                record = records.get(stem)
                if record is None:
                    records[stem] = StemRecord(stem, gate.name, depth)
                else:
                    record.n_gates += 1
                    record.max_depth = max(record.max_depth, depth)
                acc_event = max(acc_event, depth)
            acc_recon = acc_recon | seen_twice
        masks[gate.name] = seen_once
        recon[gate.name] = acc_recon
        event_depth[gate.name] = acc_event

    endpoint_metrics: Dict[str, Dict[str, int]] = {}
    for endpoint in netlist.endpoints:
        n = int(_popcount(recon.get(endpoint, zero)))
        if n:
            endpoint_metrics[endpoint] = {
                "reconvergent_stems": n,
                "max_correlation_depth": event_depth.get(endpoint, 0)}
    return StemSweep(tuple(stems), records, endpoint_metrics,
                     frozenset(reconvergent))


def find_reconvergence(
    netlist: "Netlist",
) -> Tuple[Dict[str, StemRecord], Dict[str, Dict[str, int]]]:
    """Reconvergent stems and per-endpoint correlation metrics.

    Returns ``(stems, endpoint_metrics)`` where ``stems`` maps each
    reconvergent stem net to its :class:`StemRecord` and
    ``endpoint_metrics`` maps each affected endpoint to
    ``{"reconvergent_stems": n, "max_correlation_depth": d}`` — the
    SP301/SP302 view of :func:`sweep_stems`.
    """
    sweep = sweep_stems(netlist)
    return sweep.records, sweep.endpoint_metrics


def launch_support_counts(netlist: "Netlist") -> Dict[str, int]:
    """Number of launch points in every net's fan-in cone.

    Same packed-bitset walk as the stem sweep, with one bit per launch
    point; the count is the BDD variable count a cone collapse would
    need, which is what the bounds engine's SP202-style cost gate prices.
    """
    launches = list(netlist.launch_points)
    words = max((len(launches) + 63) // 64, 1)
    zero = np.zeros(words, dtype=np.uint64)
    masks: Dict[str, np.ndarray] = {}
    for i, net in enumerate(launches):
        mask = zero.copy()
        mask[i >> 6] |= np.uint64(1 << (i & 63))
        masks[net] = mask
    counts: Dict[str, int] = {net: 1 for net in launches}
    for gate in netlist.combinational_gates:
        acc = zero
        for src in gate.inputs:
            acc = acc | masks[src]
        masks[gate.name] = acc
        counts[gate.name] = _popcount(acc)
    return counts


def _set_bits(mask: np.ndarray) -> List[int]:
    bits = np.unpackbits(mask.view(np.uint8), bitorder="little")
    return [int(b) for b in np.nonzero(bits)[0]]


def _popcount(mask: np.ndarray) -> int:
    return int(np.unpackbits(mask.view(np.uint8)).sum())
