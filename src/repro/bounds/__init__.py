"""``repro.bounds`` — sound interval abstract interpretation.

Static analysis that certifies facts about a netlist without running an
engine: per-net signal-probability intervals ``[lo, hi]`` guaranteed to
contain the exact Eq. 5 probability (exact on fanout-free regions,
BDD-exact on small reconvergent cones, Fréchet-widened elsewhere), and
per-endpoint arrival-time bound boxes ``(mu_lo, mu_hi, sigma_lo,
sigma_hi)`` valid under *any* joint input distribution with the given
marginal boxes.  Surfaced as the SP4xx lint family (``repro.lint``),
the optimizer's bounds-certified candidate pruning (``repro.opt``),
and the ``spsta bounds`` CLI report.  See ``docs/theory.md``.

``stems`` is imported eagerly (``repro.lint.accuracy`` depends on it and
it only needs numpy + the netlist layer); the engine modules load
lazily through ``__getattr__`` to keep imports cheap.
"""

from __future__ import annotations

from typing import List

from repro.bounds.stems import (
    StemRecord,
    StemSweep,
    find_reconvergence,
    launch_support_counts,
    sweep_stems,
)

_INTERVAL_EXPORTS = (
    "Interval", "gate_interval_frechet", "gate_interval_independent",
)
_ENGINE_EXPORTS = (
    "ArrivalBounds", "BoundsResult", "DelayBounds", "compute_bounds",
)
_SAMPLING_EXPORTS = ("hoeffding_slack", "sample_signal_probabilities")

__all__ = [
    "StemRecord", "StemSweep", "find_reconvergence",
    "launch_support_counts", "sweep_stems",
    *_INTERVAL_EXPORTS, *_ENGINE_EXPORTS, *_SAMPLING_EXPORTS,
]


def __getattr__(name: str) -> object:
    if name in _INTERVAL_EXPORTS:
        from repro.bounds import intervals
        return getattr(intervals, name)
    if name in _ENGINE_EXPORTS:
        from repro.bounds import engine
        return getattr(engine, name)
    if name in _SAMPLING_EXPORTS:
        from repro.bounds import sampling
        return getattr(sampling, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> List[str]:
    return sorted(__all__)
