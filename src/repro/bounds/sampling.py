"""Monte Carlo estimation of two-value signal probabilities.

The statistical half of the bounds-containment check: draw random input
patterns from the launch probabilities, evaluate the netlist with exact
Boolean semantics (the vectorized evaluator shared with the fault
oracle in :mod:`repro.testability.cop`), and report per-net frequencies
of logic one.  A sound interval must contain the estimate to within the
two-sided Hoeffding slack ``sqrt(ln(2/delta) / (2 n))`` except with
probability ``delta`` per net.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional, Union

import numpy as np

from repro.netlist.core import Netlist
from repro.testability.cop import eval_gate


def hoeffding_slack(trials: int, delta: float = 1e-9) -> float:
    """Two-sided Hoeffding half-width: ``P(|p_hat - p| > slack) <=
    delta`` for a Bernoulli mean over ``trials`` draws."""
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    return math.sqrt(math.log(2.0 / delta) / (2.0 * trials))


def sample_signal_probabilities(
        netlist: Netlist,
        launch: Union[float, Mapping[str, float]] = 0.5,
        trials: int = 20_000,
        rng: Optional[np.random.Generator] = None) -> Dict[str, float]:
    """Per-net frequency of logic one over ``trials`` random patterns."""
    if rng is None:
        rng = np.random.default_rng(0)

    def prob(net: str) -> float:
        return (float(launch) if isinstance(launch, (int, float))
                else float(launch[net]))

    values: Dict[str, np.ndarray] = {
        net: rng.random(trials) < prob(net)
        for net in netlist.launch_points}
    for gate in netlist.combinational_gates:
        ins = [values[src] for src in gate.inputs]
        values[gate.name] = eval_gate(gate.gate_type, ins)
    return {net: float(bits.mean()) for net, bits in values.items()}
