"""Logic substrate: four-value algebra, gate functions, and a BDD engine.

- :mod:`repro.logic.fourvalue` — the {0, 1, r, f} algebra of paper Table 1,
  realized through initial/final-value evaluation with glitch filtering.
- :mod:`repro.logic.gates` — the Boolean gate library shared by the netlist,
  the analyzers, and the simulators (controlling values, inversion, parity).
- :mod:`repro.logic.bdd` — reduced ordered binary decision diagrams with
  signal-probability evaluation (paper Sec. 2.2.1) and Boolean difference
  (Eq. 7).
"""

from repro.logic.fourvalue import (
    Logic4,
    final_bit,
    from_bits,
    gate_output_value,
    init_bit,
    is_transition,
)
from repro.logic.gates import GATE_LIBRARY, GateSpec, GateType

__all__ = [
    "Logic4",
    "init_bit",
    "final_bit",
    "from_bits",
    "is_transition",
    "gate_output_value",
    "GateType",
    "GateSpec",
    "GATE_LIBRARY",
]
