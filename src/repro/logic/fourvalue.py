"""The four-value logic {0, 1, r, f} of paper Table 1.

A four-value symbol encodes a net's behaviour over one clock cycle as a pair
of bits: the value *before* any transition (initial) and the value *after*
all transitions settle (final).  ``r`` is (0 -> 1), ``f`` is (1 -> 0).

Gate evaluation is *initial/final evaluation*: the output symbol is obtained
by applying the gate's Boolean function to the initial bits and to the final
bits separately.  This reproduces Table 1 exactly, including glitch
filtering — e.g. ``AND(r, f)`` starts at ``0 AND 1 = 0`` and ends at
``1 AND 0 = 0``, hence output ``0`` ("glitches are not counted", Sec. 4).
"""

from __future__ import annotations

import enum
from typing import Sequence

from repro.logic.gates import GateSpec


class Logic4(enum.IntEnum):
    """Four-value logic symbol.  Integer codes are chosen so that
    ``value & 1`` is the final bit and ``value >> 1`` the initial bit."""

    ZERO = 0b00   # stays 0
    ONE = 0b11    # stays 1
    RISE = 0b01   # 0 -> 1
    FALL = 0b10   # 1 -> 0

    def __str__(self) -> str:
        return {Logic4.ZERO: "0", Logic4.ONE: "1",
                Logic4.RISE: "r", Logic4.FALL: "f"}[self]


def init_bit(value: Logic4) -> int:
    """The net's value before any transition this cycle."""
    return (int(value) >> 1) & 1


def final_bit(value: Logic4) -> int:
    """The net's settled value at the end of the cycle."""
    return int(value) & 1


def from_bits(initial: int, final: int) -> Logic4:
    """Build a symbol from initial/final bits."""
    if initial not in (0, 1) or final not in (0, 1):
        raise ValueError(f"bits must be 0/1, got ({initial}, {final})")
    return Logic4((initial << 1) | final)


def is_transition(value: Logic4) -> bool:
    """True for ``r`` and ``f``."""
    return value in (Logic4.RISE, Logic4.FALL)


def invert(value: Logic4) -> Logic4:
    """Logical inversion: 0<->1, r<->f."""
    return from_bits(1 - init_bit(value), 1 - final_bit(value))


def gate_output_value(spec: GateSpec, inputs: Sequence[Logic4]) -> Logic4:
    """Four-value output of a combinational gate (Table 1, any arity).

    Glitches are filtered by construction: only the settled initial and
    final values matter.
    """
    spec.validate_arity(len(inputs))
    out_init = spec.eval_bits([init_bit(v) for v in inputs])
    out_final = spec.eval_bits([final_bit(v) for v in inputs])
    return from_bits(out_init, out_final)


def parse_logic4(symbol: str) -> Logic4:
    """Parse one of '0', '1', 'r', 'f' (case-insensitive)."""
    table = {"0": Logic4.ZERO, "1": Logic4.ONE,
             "r": Logic4.RISE, "f": Logic4.FALL}
    try:
        return table[symbol.strip().lower()]
    except KeyError:
        raise ValueError(
            f"not a four-value logic symbol: {symbol!r}") from None
