"""Reduced ordered binary decision diagrams (ROBDDs).

Built from scratch to support the paper's probability machinery:

- **Signal probability** (Sec. 2.2.1): for independent inputs, the Shannon
  expansion P(f) = P(x1) P(f_x1) + P(~x1) P(f_~x1) (Eq. 5) evaluates in one
  memoized pass, i.e. linear time in the BDD size.
- **Boolean difference** (Eq. 7): df/dx = f|x=1 XOR f|x=0, the propagation
  condition used by transition-density power estimation (Eq. 6).
- **Exact reconvergence-aware probability** (Sec. 3.5): building the BDD of
  an internal net in terms of the primary inputs captures all structural
  correlation exactly, unlike per-gate independent propagation.

The implementation is a classic unique-table + ITE-memo ROBDD without
complement edges — simple, deterministic, and fast enough for the benchmark
circuits used here.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.logic.gates import GateSpec, GateType, gate_spec

# Node references are integers: 0 and 1 are the terminals, >= 2 are internal.
FALSE = 0
TRUE = 1


class BDDManager:
    """Owner of a shared node store; all functions are node indices."""

    def __init__(self, max_nodes: int = 2_000_000) -> None:
        # _nodes[i] = (level, low, high) for i >= 2; levels order variables.
        self._nodes: List[Tuple[int, int, int]] = [(-1, -1, -1), (-1, -1, -1)]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_memo: Dict[Tuple[int, int, int], int] = {}
        self._var_levels: Dict[str, int] = {}
        self._level_names: List[str] = []
        self._max_nodes = max_nodes

    # -- variables ---------------------------------------------------------

    def var(self, name: str) -> int:
        """Return (creating if needed) the function of a single variable.

        Variable order is creation order; create variables in topological
        input order for compact benchmark BDDs.
        """
        if name not in self._var_levels:
            self._var_levels[name] = len(self._level_names)
            self._level_names.append(name)
        level = self._var_levels[name]
        return self._make_node(level, FALSE, TRUE)

    @property
    def var_names(self) -> Tuple[str, ...]:
        return tuple(self._level_names)

    def level_of(self, name: str) -> int:
        return self._var_levels[name]

    @property
    def node_count(self) -> int:
        """Total nodes allocated (including the two terminals)."""
        return len(self._nodes)

    # -- structure ---------------------------------------------------------

    def _make_node(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        if len(self._nodes) >= self._max_nodes:
            raise MemoryError(
                f"BDD node limit exceeded ({self._max_nodes} nodes)")
        idx = len(self._nodes)
        self._nodes.append(key)
        self._unique[key] = idx
        return idx

    def _top_level(self, *funcs: int) -> int:
        level = 1 << 30
        for f in funcs:
            if f > TRUE:
                level = min(level, self._nodes[f][0])
        return level

    def _cofactors(self, f: int, level: int) -> Tuple[int, int]:
        if f <= TRUE:
            return f, f
        node_level, low, high = self._nodes[f]
        if node_level == level:
            return low, high
        return f, f

    # -- core operation ----------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: f g + ~f h — the universal BDD operation."""
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (f, g, h)
        found = self._ite_memo.get(key)
        if found is not None:
            return found
        level = self._top_level(f, g, h)
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        h0, h1 = self._cofactors(h, level)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self._make_node(level, low, high)
        self._ite_memo[key] = result
        return result

    # -- Boolean connectives -----------------------------------------------

    def apply_not(self, f: int) -> int:
        return self.ite(f, FALSE, TRUE)

    def apply_and(self, f: int, g: int) -> int:
        return self.ite(f, g, FALSE)

    def apply_or(self, f: int, g: int) -> int:
        return self.ite(f, TRUE, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self.ite(f, self.apply_not(g), g)

    def apply_gate(self, gate_type: GateType, inputs: Sequence[int]) -> int:
        """Fold a gate function over BDD operand functions."""
        spec: GateSpec = gate_spec(gate_type)
        spec.validate_arity(len(inputs))
        if gate_type is GateType.NOT:
            return self.apply_not(inputs[0])
        if gate_type is GateType.BUFF:
            return inputs[0]
        if gate_type in (GateType.AND, GateType.NAND):
            acc = TRUE
            for f in inputs:
                acc = self.apply_and(acc, f)
        elif gate_type in (GateType.OR, GateType.NOR):
            acc = FALSE
            for f in inputs:
                acc = self.apply_or(acc, f)
        elif gate_type in (GateType.XOR, GateType.XNOR):
            acc = FALSE
            for f in inputs:
                acc = self.apply_xor(acc, f)
        else:
            raise ValueError(f"cannot build BDD for gate {gate_type}")
        if spec.inverting:
            acc = self.apply_not(acc)
        return acc

    # -- cofactor / Boolean difference --------------------------------------

    def restrict(self, f: int, name: str, value: int) -> int:
        """Cofactor f with respect to variable ``name`` fixed to ``value``."""
        level = self._var_levels[name]
        memo: Dict[int, int] = {}

        def walk(node: int) -> int:
            if node <= TRUE:
                return node
            found = memo.get(node)
            if found is not None:
                return found
            node_level, low, high = self._nodes[node]
            if node_level > level:
                result = node
            elif node_level == level:
                result = high if value else low
            else:
                result = self._make_node(node_level, walk(low), walk(high))
            memo[node] = result
            return result

        return walk(f)

    def boolean_difference(self, f: int, name: str) -> int:
        """df/dx = f|x=1 XOR f|x=0 (paper Eq. 7): the condition under which a
        transition on ``name`` propagates to f."""
        return self.apply_xor(self.restrict(f, name, 1),
                              self.restrict(f, name, 0))

    # -- analysis ------------------------------------------------------------

    def support(self, f: int) -> FrozenSet[str]:
        """Set of variable names the function structurally depends on."""
        seen: set = set()
        names: set = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            level, low, high = self._nodes[node]
            names.add(self._level_names[level])
            stack.append(low)
            stack.append(high)
        return frozenset(names)

    def signal_probability(self, f: int,
                           probabilities: Dict[str, float]) -> float:
        """P(f = 1) for independent inputs with P(x=1) given per variable.

        One memoized bottom-up pass — linear in the BDD size (Sec. 2.2.1).
        Variables absent from ``probabilities`` default to 0.5.
        """
        memo: Dict[int, float] = {FALSE: 0.0, TRUE: 1.0}

        def walk(node: int) -> float:
            found = memo.get(node)
            if found is not None:
                return found
            level, low, high = self._nodes[node]
            p = probabilities.get(self._level_names[level], 0.5)
            if not 0.0 <= p <= 1.0:
                raise ValueError(
                    f"P({self._level_names[level]}) = {p} outside [0, 1]")
            result = p * walk(high) + (1.0 - p) * walk(low)
            memo[node] = result
            return result

        return walk(f)

    def sat_count(self, f: int, n_vars: Optional[int] = None) -> int:
        """Number of satisfying assignments over ``n_vars`` variables
        (default: all variables created so far)."""
        total_vars = len(self._level_names) if n_vars is None else n_vars
        uniform = {name: 0.5 for name in self._level_names}
        prob = self.signal_probability(f, uniform)
        return round(prob * (1 << total_vars))

    def evaluate(self, f: int, assignment: Dict[str, int]) -> int:
        """Evaluate the function on a complete 0/1 assignment."""
        node = f
        while node > TRUE:
            level, low, high = self._nodes[node]
            name = self._level_names[level]
            try:
                bit = assignment[name]
            except KeyError:
                raise ValueError(
                    f"assignment missing variable {name!r}") from None
            node = high if bit else low
        return node

    def any_sat(self, f: int) -> Optional[Dict[str, int]]:
        """One satisfying assignment of ``f``, or None if unsatisfiable.

        Variables not on the chosen BDD path are left out (free); callers
        may set them arbitrarily.  Deterministic: prefers the low (0)
        branch when both lead to satisfaction.
        """
        if f == FALSE:
            return None
        assignment: Dict[str, int] = {}
        node = f
        while node > TRUE:
            level, low, high = self._nodes[node]
            name = self._level_names[level]
            if low != FALSE:
                assignment[name] = 0
                node = low
            else:
                assignment[name] = 1
                node = high
        return assignment

    def size(self, f: int) -> int:
        """Number of internal nodes reachable from ``f``."""
        seen: set = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            _, low, high = self._nodes[node]
            stack.append(low)
            stack.append(high)
        return len(seen)
