"""The Boolean gate library shared by every subsystem.

Each combinational gate type carries:

- its Boolean function over bits (``eval_bits``),
- its *controlling value* (the input value that forces the output regardless
  of the other inputs), if any — AND/NAND are controlled by 0, OR/NOR by 1;
  XOR/XNOR have none (parity gates),
- whether it is *inverting* (NAND/NOR/NOT/XNOR),
- the implied four-value timing semantics (paper Table 1): for a
  controlling-value gate, the output transition toward the *non-controlled*
  value takes the MAX of the switching-input arrival times and the transition
  toward the *controlled* value takes the MIN; a parity gate's output always
  settles at the LAST switching input (MAX).

DFF is sequential and handled structurally by the netlist package (its
output is a launch point, its data input a capture endpoint).
"""

from __future__ import annotations

from dataclasses import dataclass
import enum
from typing import Optional, Sequence


class GateType(enum.Enum):
    """All cell types accepted in ISCAS'89 ``.bench`` netlists."""

    AND = "AND"
    OR = "OR"
    NAND = "NAND"
    NOR = "NOR"
    NOT = "NOT"
    BUFF = "BUFF"
    XOR = "XOR"
    XNOR = "XNOR"
    DFF = "DFF"

    @property
    def is_sequential(self) -> bool:
        return self is GateType.DFF


@dataclass(frozen=True)
class GateSpec:
    """Static properties of one combinational gate type."""

    gate_type: GateType
    controlling_value: Optional[int]  # None for parity gates and buffers
    inverting: bool
    is_parity: bool
    min_inputs: int
    max_inputs: Optional[int]  # None = unbounded

    @property
    def controlled_value(self) -> Optional[int]:
        """Output value produced by a controlling input (after inversion)."""
        if self.controlling_value is None:
            return None
        # A controlling input value c yields output c for AND/OR cores (0 for
        # AND, 1 for OR); inversion (NAND/NOR) flips it.
        out = self.controlling_value
        return 1 - out if self.inverting else out

    @property
    def non_controlling_value(self) -> Optional[int]:
        if self.controlling_value is None:
            return None
        return 1 - self.controlling_value

    @property
    def non_controlled_value(self) -> Optional[int]:
        cd = self.controlled_value
        return None if cd is None else 1 - cd

    def eval_bits(self, bits: Sequence[int]) -> int:
        """Evaluate the Boolean function on 0/1 inputs."""
        gt = self.gate_type
        if gt is GateType.AND:
            return int(all(bits))
        if gt is GateType.NAND:
            return int(not all(bits))
        if gt is GateType.OR:
            return int(any(bits))
        if gt is GateType.NOR:
            return int(not any(bits))
        if gt is GateType.NOT:
            return 1 - bits[0]
        if gt is GateType.BUFF:
            return bits[0]
        if gt is GateType.XOR:
            return sum(bits) & 1
        if gt is GateType.XNOR:
            return 1 - (sum(bits) & 1)
        raise ValueError(f"gate type {gt} has no combinational function")

    def validate_arity(self, n_inputs: int) -> None:
        if n_inputs < self.min_inputs:
            raise ValueError(
                f"{self.gate_type.value} needs >= {self.min_inputs} inputs, "
                f"got {n_inputs}")
        if self.max_inputs is not None and n_inputs > self.max_inputs:
            raise ValueError(
                f"{self.gate_type.value} accepts <= {self.max_inputs} inputs, "
                f"got {n_inputs}")


GATE_LIBRARY = {
    GateType.AND: GateSpec(GateType.AND, controlling_value=0, inverting=False,
                           is_parity=False, min_inputs=1, max_inputs=None),
    GateType.NAND: GateSpec(GateType.NAND, controlling_value=0, inverting=True,
                            is_parity=False, min_inputs=1, max_inputs=None),
    GateType.OR: GateSpec(GateType.OR, controlling_value=1, inverting=False,
                          is_parity=False, min_inputs=1, max_inputs=None),
    GateType.NOR: GateSpec(GateType.NOR, controlling_value=1, inverting=True,
                           is_parity=False, min_inputs=1, max_inputs=None),
    GateType.NOT: GateSpec(GateType.NOT, controlling_value=None,
                           inverting=True, is_parity=False,
                           min_inputs=1, max_inputs=1),
    GateType.BUFF: GateSpec(GateType.BUFF, controlling_value=None,
                            inverting=False, is_parity=False,
                            min_inputs=1, max_inputs=1),
    GateType.XOR: GateSpec(GateType.XOR, controlling_value=None,
                           inverting=False, is_parity=True,
                           min_inputs=1, max_inputs=None),
    GateType.XNOR: GateSpec(GateType.XNOR, controlling_value=None,
                            inverting=True, is_parity=True,
                            min_inputs=1, max_inputs=None),
}


def gate_spec(gate_type: GateType) -> GateSpec:
    """Look up the :class:`GateSpec` for a combinational gate type."""
    try:
        return GATE_LIBRARY[gate_type]
    except KeyError:
        raise ValueError(
            f"{gate_type.value} is not a combinational gate") from None
