"""Interconnect substrate: RC trees and crosstalk aggressor alignment.

The paper's Sec. 1 argues that interconnect delay depends on *when*
neighboring nets switch (its refs [6, 7]): a coupling capacitance counts
once when the aggressor is quiet, about twice when it switches the opposite
way in the victim's transition window (Miller effect), and near zero when
it switches the same way.  SSTA cannot weigh these cases — it has no
occurrence probabilities — while SPSTA's TOP functions supply exactly the
alignment statistics needed.

- :mod:`repro.interconnect.rctree` — RC trees, Elmore delay, moments.
- :mod:`repro.interconnect.coupling` — the aggressor-alignment delay model
  and its statistical evaluation from TOP-style inputs.
"""

from repro.interconnect.coupling import (
    AlignmentWindow,
    CoupledStage,
    crosstalk_delay_distribution,
    sample_crosstalk_delays,
    worst_case_crosstalk_delay,
)
from repro.interconnect.rctree import RCNode, RCTree

__all__ = [
    "RCTree",
    "RCNode",
    "CoupledStage",
    "AlignmentWindow",
    "crosstalk_delay_distribution",
    "worst_case_crosstalk_delay",
    "sample_crosstalk_delays",
]
