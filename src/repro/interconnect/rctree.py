"""RC trees with Elmore delay and higher delay moments.

A classic distributed-RC interconnect model: a tree of nodes, each with a
grounded capacitance and a resistance to its parent; the root connects to
the driver.  The Elmore delay to a sink is

    T_D(sink) = sum_over_nodes_k
        R(path(root->sink) intersect path(root->k)) * C_k

computed here by the standard downstream-capacitance path traversal.  The
second moment (m2) supports two-pole style variance estimates; both feed
the crosstalk model in :mod:`repro.interconnect.coupling`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class RCNode:
    """One tree node: resistance to parent, grounded capacitance."""

    __slots__ = ("name", "resistance", "capacitance", "parent", "children")

    def __init__(self, name: str, resistance: float, capacitance: float,
                 parent: Optional["RCNode"]) -> None:
        if resistance < 0.0:
            raise ValueError(f"resistance must be >= 0, got {resistance}")
        if capacitance < 0.0:
            raise ValueError(f"capacitance must be >= 0, got {capacitance}")
        self.name = name
        self.resistance = resistance
        self.capacitance = capacitance
        self.parent = parent
        self.children: List["RCNode"] = []


class RCTree:
    """An RC tree built incrementally from the root (driver) outward."""

    def __init__(self, root_capacitance: float = 0.0,
                 driver_resistance: float = 0.0) -> None:
        self._root = RCNode("root", driver_resistance, root_capacitance,
                            parent=None)
        self._nodes: Dict[str, RCNode] = {"root": self._root}

    def add_segment(self, name: str, parent: str, resistance: float,
                    capacitance: float) -> None:
        """Attach a wire segment/node under ``parent``."""
        if name in self._nodes:
            raise ValueError(f"node {name} already exists")
        parent_node = self._node(parent)
        node = RCNode(name, resistance, capacitance, parent_node)
        parent_node.children.append(node)
        self._nodes[name] = node

    def add_sink(self, name: str, parent: str, resistance: float,
                 wire_capacitance: float, load_capacitance: float) -> None:
        """A leaf with an attached receiver load."""
        self.add_segment(name, parent, resistance,
                         wire_capacitance + load_capacitance)

    def _node(self, name: str) -> RCNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise KeyError(f"no RC node named {name!r}") from None

    @property
    def node_names(self) -> Tuple[str, ...]:
        return tuple(self._nodes)

    def total_capacitance(self) -> float:
        """Sum of all node capacitances (the driver's lumped load)."""
        return sum(node.capacitance for node in self._nodes.values())

    def downstream_capacitance(self, name: str) -> float:
        """Capacitance of the subtree rooted at ``name`` (inclusive)."""
        node = self._node(name)
        total = 0.0
        stack = [node]
        while stack:
            current = stack.pop()
            total += current.capacitance
            stack.extend(current.children)
        return total

    def _path_to_root(self, name: str) -> List[RCNode]:
        path = []
        node: Optional[RCNode] = self._node(name)
        while node is not None:
            path.append(node)
            node = node.parent
        return path

    def elmore_delay(self, sink: str) -> float:
        """First delay moment to ``sink``: sum over the root->sink path of
        each segment's resistance times its downstream capacitance."""
        total = 0.0
        for node in self._path_to_root(sink):
            total += node.resistance * self.downstream_capacitance(node.name)
        return total

    def second_moment(self, sink: str) -> float:
        """Second moment m2 of the impulse response at ``sink``.

        Computed by the standard two-pass recurrence: m2(sink) =
        sum_k R_common(sink, k) * C_k * T_D(k), with T_D the Elmore delay of
        node k.  Used for variance-style estimates (sigma^2 ~ 2 m2 - T_D^2).
        """
        elmore: Dict[str, float] = {
            name: self.elmore_delay(name) for name in self._nodes}
        total = 0.0
        sink_path = {node.name for node in self._path_to_root(sink)}
        for name, node in self._nodes.items():
            # R_common * C_k * T_D(k), accumulated segment by segment.
            common = 0.0
            for step in self._path_to_root(name):
                if step.name in sink_path:
                    common += step.resistance
            total += common * node.capacitance * elmore[name]
        return total

    def delay_spread(self, sink: str) -> float:
        """A two-moment spread estimate: sqrt(max(2 m2 - T_D^2, 0))."""
        td = self.elmore_delay(sink)
        m2 = self.second_moment(sink)
        return max(2.0 * m2 - td * td, 0.0) ** 0.5
