"""Crosstalk aggressor alignment (paper Sec. 1; its refs [6, 7]).

A victim net's stage delay depends on what a capacitively coupled aggressor
does *inside the victim's switching window*:

- quiet aggressor            -> coupling counts once        (kappa = 1)
- opposite-direction switch  -> Miller doubling             (kappa = 2)
- same-direction switch      -> coupling largely cancelled  (kappa = 0)

Whether the aggressor switches, in which direction, and whether it lands in
the window are precisely what SPSTA's TOP functions describe (occurrence
probability + arrival distribution).  SSTA can only assume the worst
(kappa = 2 always) — the pessimism the paper calls out: "the probability
for two signals to arrive at about the same time to activate the crosstalk
coupling effect cannot be accurately estimated in SSTA, it can only be
assumed".

The model here is deliberately first-order: stage delay is linear in kappa
(exact for Elmore delay, since the coupling capacitance enters the delay as
R_common * kappa * Cc) and the alignment test compares arrival times within
a window of configurable width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.interconnect.rctree import RCTree
from repro.stats.mixture import GaussianMixture, MixtureComponent
from repro.stats.normal import Normal, norm_cdf


@dataclass(frozen=True)
class AlignmentWindow:
    """The aggressor-victim arrival-time window that activates coupling."""

    width: float

    def __post_init__(self) -> None:
        if self.width <= 0.0:
            raise ValueError(f"window width must be > 0, got {self.width}")

    def overlap_probability(self, victim: Normal, aggressor: Normal) -> float:
        """P(|t_aggressor - t_victim| <= width / 2) for independent
        Gaussian arrivals."""
        diff_mu = aggressor.mu - victim.mu
        diff_sigma = float(np.hypot(aggressor.sigma, victim.sigma))
        half = self.width / 2.0
        return (norm_cdf(half, diff_mu, diff_sigma)
                - norm_cdf(-half, diff_mu, diff_sigma))


@dataclass(frozen=True)
class CoupledStage:
    """A victim stage with one coupled aggressor.

    ``base_delay`` is the stage delay with a quiet aggressor (kappa = 1);
    ``coupling_delta`` is the delay increase when kappa goes from 1 to 2
    (equal to the decrease when it goes to 0) — for an Elmore stage this is
    R_common(sink, coupling node) * Cc.
    """

    base_delay: float
    coupling_delta: float

    def __post_init__(self) -> None:
        if self.base_delay <= 0.0:
            raise ValueError("base_delay must be > 0")
        if self.coupling_delta < 0.0:
            raise ValueError("coupling_delta must be >= 0")

    def delay(self, kappa: float) -> float:
        """Stage delay for a given Miller factor."""
        return self.base_delay + (kappa - 1.0) * self.coupling_delta

    @classmethod
    def from_rc(cls, tree: RCTree, sink: str, coupling_node: str,
                coupling_cap: float) -> "CoupledStage":
        """Build from an RC tree with Cc attached at ``coupling_node``.

        The base delay includes the coupling capacitance at kappa = 1; the
        delta is obtained exactly from Elmore linearity by perturbing the
        capacitance at the coupling node.
        """
        if coupling_cap < 0.0:
            raise ValueError("coupling_cap must be >= 0")
        node = tree._node(coupling_node)  # noqa: SLF001 - same package
        base_cap = node.capacitance
        try:
            node.capacitance = base_cap + coupling_cap
            base = tree.elmore_delay(sink)
            node.capacitance = base_cap + 2.0 * coupling_cap
            doubled = tree.elmore_delay(sink)
        finally:
            node.capacitance = base_cap
        return cls(base_delay=base, coupling_delta=doubled - base)


#: (occurrence probability, conditional arrival) of one aggressor direction.
DirectionTop = Tuple[float, Optional[Normal]]


def crosstalk_delay_distribution(
        stage: CoupledStage,
        victim_arrival: Normal,
        victim_direction: str,
        aggressor_rise: DirectionTop,
        aggressor_fall: DirectionTop,
        window: AlignmentWindow) -> Tuple[GaussianMixture, Dict[float, float]]:
    """Victim output-arrival distribution under probabilistic alignment.

    Returns the (normalized) Gaussian-mixture output arrival and the
    probability of each Miller factor {0, 1, 2}.  The victim arrival is
    treated as independent of the alignment event (first-order
    approximation; the Monte Carlo sampler below is the exact reference).
    """
    if victim_direction not in ("rise", "fall"):
        raise ValueError("victim_direction must be 'rise' or 'fall'")
    opposite, same = ((aggressor_fall, aggressor_rise)
                      if victim_direction == "rise"
                      else (aggressor_rise, aggressor_fall))

    p_opposite = _aligned_probability(opposite, victim_arrival, window)
    p_same = _aligned_probability(same, victim_arrival, window)
    p_quiet = max(1.0 - p_opposite - p_same, 0.0)
    kappa_probs = {2.0: p_opposite, 1.0: p_quiet, 0.0: p_same}

    components = [
        MixtureComponent(prob, victim_arrival.mu + stage.delay(kappa),
                         victim_arrival.sigma)
        for kappa, prob in kappa_probs.items() if prob > 0.0]
    return GaussianMixture(components), kappa_probs


def _aligned_probability(top: DirectionTop, victim: Normal,
                         window: AlignmentWindow) -> float:
    weight, arrival = top
    if weight <= 0.0 or arrival is None:
        return 0.0
    if not 0.0 <= weight <= 1.0:
        raise ValueError(f"occurrence probability {weight} outside [0, 1]")
    return weight * window.overlap_probability(victim, arrival)


def worst_case_crosstalk_delay(stage: CoupledStage,
                               victim_arrival: Normal) -> Normal:
    """The SSTA-style assumption: the aggressor ALWAYS switches the wrong
    way inside the window (kappa = 2), i.e. maximum pessimism."""
    return victim_arrival.shift(stage.delay(2.0))


def sample_crosstalk_delays(
        stage: CoupledStage,
        victim_arrival: Normal,
        victim_direction: str,
        aggressor_rise: DirectionTop,
        aggressor_fall: DirectionTop,
        window: AlignmentWindow,
        n_samples: int = 100_000,
        rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Monte Carlo reference for :func:`crosstalk_delay_distribution`:
    samples victim/aggressor arrivals jointly, so the conditioning of the
    victim arrival on the alignment event is exact."""
    if rng is None:
        rng = np.random.default_rng(0)
    t_victim = rng.normal(victim_arrival.mu, victim_arrival.sigma, n_samples)

    w_rise, rise = aggressor_rise
    w_fall, fall = aggressor_fall
    u = rng.random(n_samples)
    kappa = np.ones(n_samples)
    half = window.width / 2.0

    def apply(mask: np.ndarray, arrival: Optional[Normal],
              value: float) -> None:
        if arrival is None or not mask.any():
            return
        t_agg = rng.normal(arrival.mu, arrival.sigma, int(mask.sum()))
        aligned = np.abs(t_agg - t_victim[mask]) <= half
        idx = np.flatnonzero(mask)[aligned]
        kappa[idx] = value

    rise_mask = u < w_rise
    fall_mask = (u >= w_rise) & (u < w_rise + w_fall)
    opposite_value, same_value = 2.0, 0.0
    if victim_direction == "rise":
        apply(fall_mask, fall, opposite_value)
        apply(rise_mask, rise, same_value)
    else:
        apply(rise_mask, rise, opposite_value)
        apply(fall_mask, fall, same_value)

    delays = stage.base_delay + (kappa - 1.0) * stage.coupling_delta
    return t_victim + delays
