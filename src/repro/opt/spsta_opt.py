"""SPSTA-in-the-loop statistical gate sizing / derate optimization.

The closed loop the paper motivates for block-based engines ("efficient,
incremental, and suitable for optimization", Sec. 1), built from four
existing layers:

- **cost** — a yield or mean+k·sigma metric computed directly from the
  endpoint TOP functions of an SPSTA engine (moment or mixture algebra);
- **re-timing** — every move repairs only its fan-out cone via
  :class:`repro.core.incremental_spsta.IncrementalSpsta` (bit-identical to
  a full pass, see ``docs/optimization.md``), instead of the
  full-analysis-per-move pattern of the related statistical-timing
  optimizer repos;
- **gradients** — one variational pass with one process parameter per
  candidate gate yields d(endpoint arrival)/d(gate delay) for *all*
  candidates at once (:mod:`repro.core.variational`), so greedy move
  selection never re-runs the statistical engine;
- **oracle** — the final sizing can be validated with the Monte Carlo
  engine's joint (all-endpoints, shared-trial) yield.

Moves are gate upsizes under the classic simplification of
:mod:`repro.opt.sizing`: delay ``base / size`` (and sigma ``sigma / size``
— stronger drive tightens the spread), area cost ``size - 1``.  A greedy
critical-cone phase runs first; an optional simulated-annealing schedule
(random perturbations on the current critical path, Metropolis
acceptance) can refine or replace it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import math
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.bounds.engine import DelayBounds, compute_bounds
from repro.core.delay import NormalDelay
from repro.core.incremental_spsta import (
    IncrementalSpsta,
    assert_matches_full,
)
from repro.core.inputs import CONFIG_I, InputStats
from repro.core.spsta import MixtureAlgebra, MomentAlgebra, TopAlgebra
from repro.core.variational import (
    CanonicalForm,
    ProcessSpace,
    run_variational,
)
from repro.netlist.core import Gate, Netlist
from repro.sim.montecarlo import run_monte_carlo
from repro.sim.parallel import seed_sequence_of
from repro.stats.mixture import GaussianMixture
from repro.stats.normal import Normal

#: Candidate-set cap for the per-move variational gradient pass: one
#: process parameter per candidate, so this bounds the canonical-form
#: dimension (cost of the pass is O(gates * dim)).
GRADIENT_CANDIDATE_CAP = 24


@dataclass(frozen=True)
class SizedNormalDelay:
    """Per-gate sizes over N(base, sigma): delay = N(base/s, sigma/s)."""

    base: float = 1.0
    sigma: float = 0.1
    sizes: Mapping[str, float] = field(default_factory=dict)

    def size_of(self, name: str) -> float:
        return self.sizes.get(name, 1.0)

    def delay(self, gate: Gate) -> Normal:
        size = self.size_of(gate.name)
        return Normal(self.base / size, self.sigma / size)


@dataclass(frozen=True)
class Move:
    """One optimizer move: a gate resize and its re-timing accounting."""

    phase: str              # "greedy" | "anneal"
    gate: str
    size: float             # proposed size
    accepted: bool
    metric_after: float     # natural-units metric after this move settled
    recomputed: int         # incremental gate re-evaluations the move cost


@dataclass(frozen=True)
class McValidation:
    """Monte Carlo oracle check of the final sizing."""

    trials: int
    joint_yield: float      # P(no endpoint transitions after the clock)


@dataclass(frozen=True)
class SpstaSizingResult:
    """Outcome of one :func:`optimize_spsta` run."""

    sizes: Mapping[str, float]
    metric: str                       # "yield" | "mean-ksigma"
    metric_before: float              # natural units (yield / time)
    metric_after: float
    area_cost: float
    iterations: int                   # greedy moves attempted
    anneal_moves_run: int
    accepted_moves: int
    met_target: bool
    recomputed_gates: int             # total per-move gate re-evaluations
    moves: Tuple[Move, ...] = ()
    verified_moves: int = 0           # per-move conformance checks run
    mc_validation: Optional[McValidation] = None
    bounds_pruning: bool = False      # certified pruning was active
    pruned_candidates: int = 0        # gates certified never-critical
    pruned_endpoints: int = 0         # endpoints dropped from worst scans


def optimize_spsta(netlist: Netlist,
                   clock_period: float,
                   *,
                   metric: str = "yield",
                   k_sigma: float = 3.0,
                   target_yield: float = 0.95,
                   max_area: float = 20.0,
                   size_step: float = 0.5,
                   max_size: float = 4.0,
                   base_delay: float = 1.0,
                   delay_sigma: float = 0.1,
                   stats: InputStats = CONFIG_I,
                   algebra: Optional[TopAlgebra] = None,
                   max_iterations: int = 60,
                   patience: int = 6,
                   anneal: bool = False,
                   anneal_moves: int = 120,
                   initial_temperature: float = 0.02,
                   cooling: float = 0.97,
                   rng: Optional[np.random.Generator] = None,
                   mc_validate: int = 0,
                   verify_moves: bool = False,
                   retime: str = "incremental",
                   bounds_pruning: bool = True) -> SpstaSizingResult:
    """Size gates until the SPSTA metric meets its target.

    ``metric="yield"`` maximizes the product over endpoints of
    P(transition settles by ``clock_period``), computed from the endpoint
    TOP functions (rise/fall are disjoint within a cycle; endpoints are
    combined under the paper's independence approximation); the target is
    ``target_yield``.  ``metric="mean-ksigma"`` minimizes the worst
    endpoint ``mean + k_sigma * std``; the target is ``clock_period``.

    ``rng`` drives the annealing schedule and the MC validation through
    per-phase child streams (:func:`repro.sim.parallel.seed_sequence_of`),
    so one seed determines the whole run.  ``verify_moves=True`` asserts
    after *every* applied move (accepted or reverted) that the
    incremental state is bit-identical to a fresh full pass —
    the ``incremental-vs-full`` conformance guarantee, paid for at one
    full analysis per move.  ``retime="full"`` forces that
    full-analysis-per-move repair pattern (benchmark baseline).

    ``bounds_pruning`` (mean-ksigma metric only; a documented no-op for
    yield, whose late probability is not monotone in sigma) runs one
    static interval pass (:func:`repro.bounds.compute_bounds`) over the
    delay box every reachable sizing lives in.  Endpoints whose upper
    criticality bound sits below ``clock_period`` can never be the
    worst endpoint while the loop runs (the loop only runs while the
    worst severity exceeds the clock), so they are dropped from the
    worst-endpoint scans; gates whose entire fan-out cone consists of
    such endpoints can never appear on a critical-path backtrace and
    are dropped from the candidate sets.  Both exclusions are provable
    no-ops on the chosen moves: results are bit-identical with pruning
    on or off (the cost function always scans every endpoint).
    """
    if clock_period <= 0.0:
        raise ValueError("clock_period must be > 0")
    if metric not in ("yield", "mean-ksigma"):
        raise ValueError(f"unknown metric {metric!r}")
    if not 0.0 < target_yield <= 1.0:
        raise ValueError("target_yield must be in (0, 1]")
    if retime not in ("incremental", "full"):
        raise ValueError(f"unknown retime mode {retime!r}")
    if algebra is None:
        algebra = MomentAlgebra()
    if not isinstance(algebra, (MomentAlgebra, MixtureAlgebra)):
        raise ValueError(
            "optimize_spsta needs a closed-form CDF: use MomentAlgebra "
            f"or MixtureAlgebra, not {type(algebra).__name__}")
    if rng is None:
        rng = np.random.default_rng(0)
    seed_seq = seed_sequence_of(rng)

    sizes: Dict[str, float] = {}
    base_model = NormalDelay(base_delay, delay_sigma)
    inc = IncrementalSpsta(netlist, stats, base_model, algebra)
    endpoints = list(netlist.endpoints)
    comb = {g.name for g in netlist.combinational_gates}
    full_mode = retime == "full"

    # -- certified pruning (static, valid for every reachable sizing) ----
    pruning_active = bounds_pruning and metric == "mean-ksigma"
    prunable: frozenset = frozenset()
    scan_endpoints = endpoints
    if pruning_active:
        sizing_box = DelayBounds(base_delay / max_size, base_delay,
                                 delay_sigma / max_size, delay_sigma)
        # The moment algebra admits the tighter Gaussian transfer
        # functions; the mixture algebra only the distribution-free box.
        bounds_mode = ("moment" if isinstance(algebra, MomentAlgebra)
                       else "any")
        static = compute_bounds(
            netlist, stats=stats, k_sigma=k_sigma, include_sp=False,
            delay_bounds=lambda gate: sizing_box, mode=bounds_mode)
        never = set(static.never_critical_endpoints(clock_period))
        prunable = frozenset(static.non_critical_gates(clock_period))
        scan_endpoints = [net for net in endpoints if net not in never]

    state = {"recomputed": 0, "verified": 0}
    moves: List[Move] = []

    def apply(gate: str, size: float) -> int:
        delay = Normal(base_delay / size, delay_sigma / size)
        update = inc.set_delay(gate, delay, full=full_mode)
        state["recomputed"] += update.recomputed
        if verify_moves:
            assert_matches_full(inc)
            state["verified"] += 1
        return update.recomputed

    def cost() -> float:
        """Lower-is-better objective in both metric modes."""
        if metric == "yield":
            return 1.0 - _spsta_yield(inc, endpoints, clock_period)
        return _worst_mean_ksigma(inc, endpoints, k_sigma)

    def natural(c: float) -> float:
        return 1.0 - c if metric == "yield" else c

    def met(c: float) -> bool:
        if metric == "yield":
            return natural(c) >= target_yield
        return c <= clock_period

    cost_before = cost()
    current = cost_before
    iterations = 0
    stalled = 0

    # -- greedy critical-cone phase --------------------------------------
    while iterations < max_iterations and not met(current):
        iterations += 1
        endpoint = _worst_endpoint(inc, scan_endpoints, clock_period,
                                   metric, k_sigma)
        if endpoint is None:
            break
        path = _critical_path(inc, endpoint, comb, k_sigma)
        candidates = [g for g in path
                      if g not in prunable and sizes.get(g, 1.0) < max_size
                      ][:GRADIENT_CANDIDATE_CAP]
        if not candidates:
            break
        scored = _score_candidates(netlist, endpoint, candidates, sizes,
                                   base_delay, delay_sigma, size_step,
                                   max_size)
        chosen: Optional[Tuple[str, float]] = None
        for gate, _score in scored:
            new_size = min(sizes.get(gate, 1.0) + size_step, max_size)
            trial = dict(sizes)
            trial[gate] = new_size
            if _area(trial) <= max_area:
                chosen = (gate, new_size)
                break
        if chosen is None:
            break                       # nothing affordable
        gate, new_size = chosen
        old_size = sizes.get(gate, 1.0)
        recomputed = apply(gate, new_size)
        trial_cost = cost()
        if trial_cost > current + 1e-12:
            # The move hurt: revert (incrementally) and stop the phase.
            recomputed += apply(gate, old_size)
            moves.append(Move("greedy", gate, new_size, False,
                              natural(current), recomputed))
            break
        accepted_stall = trial_cost >= current - 1e-12
        sizes[gate] = new_size
        current = trial_cost
        moves.append(Move("greedy", gate, new_size, True, natural(current),
                          recomputed))
        if accepted_stall:
            stalled += 1
            if stalled > patience:
                break
        else:
            stalled = 0

    # -- optional simulated-annealing schedule ---------------------------
    anneal_moves_run = 0
    if anneal and anneal_moves > 0:
        arng = np.random.default_rng(seed_seq.spawn(1)[0])
        temperature = initial_temperature
        for _ in range(anneal_moves):
            if met(current):
                break
            endpoint = _worst_endpoint(inc, scan_endpoints, clock_period,
                                       metric, k_sigma)
            if endpoint is None:
                break
            path = _critical_path(inc, endpoint, comb, k_sigma)
            if not path:
                break
            gate = path[int(arng.integers(len(path)))]
            old_size = sizes.get(gate, 1.0)
            down_ok = old_size - size_step >= 1.0
            up_ok = old_size + size_step <= max_size
            if not up_ok and not down_ok:
                continue
            go_up = up_ok and (not down_ok or arng.random() < 0.7)
            new_size = old_size + (size_step if go_up else -size_step)
            trial = dict(sizes)
            trial[gate] = new_size
            if _area(trial) > max_area:
                continue
            anneal_moves_run += 1
            recomputed = apply(gate, new_size)
            trial_cost = cost()
            delta = trial_cost - current
            accept = (delta <= 0.0
                      or arng.random() < math.exp(-delta / temperature))
            if accept:
                if new_size == 1.0:
                    sizes.pop(gate, None)
                else:
                    sizes[gate] = new_size
                current = trial_cost
            else:
                recomputed += apply(gate, old_size)
            moves.append(Move("anneal", gate, new_size, accept,
                              natural(current), recomputed))
            temperature *= cooling

    # -- final-point Monte Carlo oracle ----------------------------------
    mc_validation: Optional[McValidation] = None
    if mc_validate > 0:
        mc_rng = np.random.default_rng(seed_seq.spawn(1)[0])
        mc_validation = validate_with_mc(
            netlist, SizedNormalDelay(base_delay, delay_sigma, dict(sizes)),
            stats, clock_period, mc_validate, mc_rng)

    return SpstaSizingResult(
        sizes=dict(sizes), metric=metric,
        metric_before=natural(cost_before), metric_after=natural(current),
        area_cost=_area(sizes), iterations=iterations,
        anneal_moves_run=anneal_moves_run,
        accepted_moves=sum(1 for m in moves if m.accepted),
        met_target=met(current), recomputed_gates=state["recomputed"],
        moves=tuple(moves), verified_moves=state["verified"],
        mc_validation=mc_validation,
        bounds_pruning=pruning_active,
        pruned_candidates=len(prunable),
        pruned_endpoints=len(endpoints) - len(scan_endpoints))


def validate_with_mc(netlist: Netlist, delay_model: SizedNormalDelay,
                     stats: InputStats, clock_period: float, trials: int,
                     rng: np.random.Generator) -> McValidation:
    """Joint-yield oracle: fraction of shared trials in which *no*
    endpoint transition settles after ``clock_period``.

    Unlike the SPSTA yield (per-endpoint independence), the trials share
    every launch draw and gate-delay draw, so cross-endpoint correlation
    is exact — the strictly stronger check an optimizer's final point
    should pass.
    """
    result = run_monte_carlo(netlist, stats, trials, delay_model, rng=rng)
    ok = np.ones(trials, dtype=bool)
    for endpoint in netlist.endpoints:
        wave = result.wave(endpoint)
        transitioned = wave.init != wave.final
        late = np.zeros(trials, dtype=bool)
        late[transitioned] = wave.time[transitioned] > clock_period
        ok &= ~late
    return McValidation(trials=trials, joint_yield=float(ok.mean()))


# -- metric helpers -------------------------------------------------------


def _conditional_cdf(dist: Union[Normal, GaussianMixture],
                     x: float) -> float:
    return dist.cdf(x)


def _endpoint_late_probability(inc: IncrementalSpsta, net: str,
                               clock_period: float) -> float:
    """P(some transition at ``net`` settles after the clock edge).

    Rise and fall are disjoint events within one cycle, so their late
    probabilities add; the no-transition remainder is never late.
    """
    tops = inc.tops[net]
    p_late = 0.0
    for top in (tops.rise, tops.fall):
        if top.occurs:
            p_late += top.weight * (
                1.0 - _conditional_cdf(top.conditional, clock_period))
    return min(max(p_late, 0.0), 1.0)


def _spsta_yield(inc: IncrementalSpsta, endpoints: List[str],
                 clock_period: float) -> float:
    """Product of per-endpoint on-time probabilities (independence
    approximation across endpoints, as in the paper's experiments)."""
    y = 1.0
    for net in endpoints:
        y *= 1.0 - _endpoint_late_probability(inc, net, clock_period)
    return y


def _net_severity(inc: IncrementalSpsta, net: str,
                  k_sigma: float) -> float:
    """Worst occurring mean + k·sigma at a net (-inf if nothing occurs)."""
    worst = -math.inf
    tops = inc.tops[net]
    for top in (tops.rise, tops.fall):
        if top.occurs:
            mean, std = inc.algebra.stats(top.conditional)
            worst = max(worst, mean + k_sigma * std)
    return worst


def _worst_mean_ksigma(inc: IncrementalSpsta, endpoints: List[str],
                       k_sigma: float) -> float:
    worst = max((_net_severity(inc, net, k_sigma) for net in endpoints),
                default=-math.inf)
    return worst if worst > -math.inf else 0.0


def _worst_endpoint(inc: IncrementalSpsta, endpoints: List[str],
                    clock_period: float, metric: str,
                    k_sigma: float) -> Optional[str]:
    """The endpoint contributing most to the current cost."""
    best: Optional[Tuple[float, str]] = None
    for net in endpoints:
        badness = (_endpoint_late_probability(inc, net, clock_period)
                   if metric == "yield"
                   else _net_severity(inc, net, k_sigma))
        if badness <= (0.0 if metric == "yield" else -math.inf):
            continue
        if best is None or badness > best[0]:
            best = (badness, net)
    return best[1] if best is not None else None


def _critical_path(inc: IncrementalSpsta, endpoint: str, comb: set,
                   k_sigma: float) -> List[str]:
    """Gates on the statistically latest path into ``endpoint``.

    Walks back from the endpoint, at each gate following the input with
    the worst mean + k·sigma arrival — a cheap back-trace over the TOPs
    the incremental engine already holds (no path enumeration, no extra
    analysis).  Endpoint-side gates first.
    """
    path: List[str] = []
    net = endpoint
    seen = set()
    while net in comb and net not in seen:
        seen.add(net)
        path.append(net)
        gate = inc.netlist.gates[net]
        best: Optional[Tuple[float, str]] = None
        for src in gate.inputs:
            severity = _net_severity(inc, src, k_sigma)
            if severity == -math.inf:
                continue
            if best is None or severity > best[0]:
                best = (severity, src)
        if best is None:
            break
        net = best[1]
    return path


# -- gradient scoring -----------------------------------------------------


class _MoveGradientDelay:
    """Variational delay model with one unit parameter per candidate gate.

    Candidate ``g``'s delay form carries coefficient 1.0 on its own
    parameter and 0 elsewhere, so the endpoint arrival's sensitivity to
    that parameter *is* d(arrival)/d(delay of g): one variational pass
    prices every candidate move at once.
    """

    def __init__(self, space: ProcessSpace, base: float, sigma: float,
                 sizes: Mapping[str, float]) -> None:
        self.space = space
        self._base = base
        self._sigma = sigma
        self._sizes = sizes

    def delay_form(self, gate: Gate) -> CanonicalForm:
        size = self._sizes.get(gate.name, 1.0)
        coeffs = np.zeros(self.space.dim)
        if gate.name in self.space.names:
            coeffs[self.space.index(gate.name)] = 1.0
        return CanonicalForm(self.space, self._base / size, coeffs,
                             (self._sigma / size) ** 2)


def _score_candidates(netlist: Netlist, endpoint: str,
                      candidates: List[str], sizes: Mapping[str, float],
                      base_delay: float, delay_sigma: float,
                      size_step: float, max_size: float,
                      ) -> List[Tuple[str, float]]:
    """Candidates ranked by (arrival sensitivity x delay gain / area)."""
    space = ProcessSpace(tuple(candidates))
    model = _MoveGradientDelay(space, base_delay, delay_sigma, sizes)
    arrival = run_variational(netlist, model).worst(endpoint)
    scored: List[Tuple[str, float]] = []
    for gate in candidates:
        size = sizes.get(gate, 1.0)
        new_size = min(size + size_step, max_size)
        gain = base_delay / size - base_delay / new_size
        darea = new_size - size
        if darea <= 0.0:
            continue
        sensitivity = arrival.sensitivity(gate)
        scored.append((gate, sensitivity * gain / darea))
    scored.sort(key=lambda item: (-item[1], item[0]))
    return scored


def _area(sizes: Mapping[str, float]) -> float:
    return sum(s - 1.0 for s in sizes.values())
