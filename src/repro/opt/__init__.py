"""Optimization consumers of the statistical timing engines.

- :mod:`repro.opt.sizing` — greedy statistical gate sizing: upsize gates on
  critical paths until a timing-yield target is met, with the variational
  engine (correlation-aware yield) in the evaluation loop.  Demonstrates
  the "suitable for optimization" property the paper credits block-based
  engines with (Sec. 1).
- :mod:`repro.opt.spsta_opt` — the SPSTA-in-the-loop optimizer: a yield or
  mean+k·sigma cost from the SPSTA endpoint TOPs, incremental cone
  re-timing per move (:mod:`repro.core.incremental_spsta`), variational
  move gradients, optional simulated annealing, and a Monte Carlo joint
  yield oracle for the final point (see ``docs/optimization.md``).
"""

from repro.opt.sizing import SizedDelay, SizingResult, optimize_sizing
from repro.opt.spsta_opt import (
    McValidation,
    Move,
    SizedNormalDelay,
    SpstaSizingResult,
    optimize_spsta,
    validate_with_mc,
)

__all__ = [
    "McValidation",
    "Move",
    "SizedDelay",
    "SizedNormalDelay",
    "SizingResult",
    "SpstaSizingResult",
    "optimize_sizing",
    "optimize_spsta",
    "validate_with_mc",
]
