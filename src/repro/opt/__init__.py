"""Optimization consumers of the statistical timing engines.

- :mod:`repro.opt.sizing` — greedy statistical gate sizing: upsize gates on
  critical paths until a timing-yield target is met, with the variational
  engine (correlation-aware yield) in the evaluation loop.  Demonstrates
  the "suitable for optimization" property the paper credits block-based
  engines with (Sec. 1).
"""

from repro.opt.sizing import SizedDelay, SizingResult, optimize_sizing

__all__ = ["SizedDelay", "SizingResult", "optimize_sizing"]
