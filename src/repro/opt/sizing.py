"""Greedy statistical gate sizing against a timing-yield target.

A minimal but complete statistical optimization loop:

1. evaluate correlation-aware timing yield with the variational engine
   (:func:`repro.core.variational.timing_yield`);
2. while below target: find the endpoints' most critical paths, score each
   resident gate by (delay reduction per area cost), upsize the best one;
3. stop at the target, the area budget, or when no move helps.

The delay model is the classic logical-effort-flavoured simplification:
gate delay scales as ``base / size`` (stronger drive), area as ``size``.
The loop exercises the library end-to-end — path enumeration, canonical
variational arrivals, yield sampling — exactly how a downstream user would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.core.paths import k_longest_paths
from repro.core.variational import ProcessSpace, run_variational, timing_yield
from repro.netlist.core import Gate, Netlist
from repro.sim.parallel import seed_sequence_of
from repro.stats.normal import Normal


@dataclass(frozen=True)
class SizedDelay:
    """Per-gate sizes over a nominal delay model: delay = base / size."""

    base: float = 1.0
    sizes: Mapping[str, float] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        object.__setattr__(self, "sizes", dict(self.sizes or {}))

    def size_of(self, name: str) -> float:
        return self.sizes.get(name, 1.0)

    def delay(self, gate: Gate) -> Normal:
        return Normal(self.base / self.size_of(gate.name), 0.0)

    def area(self) -> float:
        """Total upsizing cost: sum of (size - 1) over resized gates."""
        return _area(self.sizes)


@dataclass(frozen=True)
class SizingResult:
    """Outcome of one optimization run."""

    sizes: Mapping[str, float]
    yield_before: float
    yield_after: float
    area_cost: float
    iterations: int
    met_target: bool


def optimize_sizing(netlist: Netlist,
                    clock_period: float,
                    target_yield: float = 0.95,
                    max_area: float = 20.0,
                    size_step: float = 0.5,
                    max_size: float = 4.0,
                    base_delay: float = 1.0,
                    delay_sensitivity: float = 0.05,
                    local_sigma: float = 0.05,
                    n_paths: int = 8,
                    yield_samples: int = 8_000,
                    rng: Optional[np.random.Generator] = None,
                    max_iterations: int = 200,
                    patience: int = 6) -> SizingResult:
    """Greedy upsizing until ``target_yield`` at ``clock_period``.

    The variational evaluation uses one global process parameter (all gate
    delays move together, with relative sensitivity ``delay_sensitivity``)
    plus independent local noise — so the reported yield includes the
    systematic correlation a per-endpoint product would miss.
    """
    if not 0.0 < target_yield <= 1.0:
        raise ValueError("target_yield must be in (0, 1]")
    if clock_period <= 0.0:
        raise ValueError("clock_period must be > 0")
    if rng is None:
        rng = np.random.default_rng(0)
    # Common random numbers: every evaluation replays the same child
    # stream of the caller's generator, so trial-vs-current comparisons
    # are not swamped by independent sampling noise, while different
    # caller rngs still give different (deterministic) yields.
    eval_seed = seed_sequence_of(rng).spawn(1)[0]
    space = ProcessSpace(("P",))
    endpoints = list(netlist.endpoints)
    sizes: Dict[str, float] = {}

    def evaluate(current: Mapping[str, float]) -> float:
        model = _SizedVariationalDelay(space, base_delay, dict(current),
                                       delay_sensitivity, local_sigma)
        result = run_variational(netlist, model)
        return timing_yield(result, endpoints, clock_period,
                            n_samples=yield_samples,
                            rng=np.random.default_rng(eval_seed))

    yield_before = evaluate(sizes)
    current_yield = yield_before
    iterations = 0
    stalled = 0
    while current_yield < target_yield and iterations < max_iterations:
        iterations += 1
        candidate = _best_candidate(netlist, sizes, base_delay, size_step,
                                    max_size, n_paths)
        if candidate is None:
            break
        trial = dict(sizes)
        trial[candidate] = min(trial.get(candidate, 1.0) + size_step,
                               max_size)
        # Budget-check the *trial*, not the pre-move state: checking
        # before applying let the final area overshoot max_area by up to
        # size_step.
        if _area(trial) > max_area:
            break
        trial_yield = evaluate(trial)
        # Fixing ONE of several parallel critical paths often leaves the
        # joint yield flat until its siblings are fixed too; tolerate a
        # bounded run of non-improving (never worsening) moves.
        if trial_yield < current_yield - 1e-12:
            break
        if trial_yield <= current_yield + 1e-12:
            stalled += 1
            if stalled > patience:
                break
        else:
            stalled = 0
        sizes = trial
        current_yield = trial_yield
    return SizingResult(sizes=dict(sizes),
                        yield_before=yield_before,
                        yield_after=current_yield,
                        area_cost=_area(sizes),
                        iterations=iterations,
                        met_target=current_yield >= target_yield)


def _area(sizes: Mapping[str, float]) -> float:
    return sum(s - 1.0 for s in sizes.values())


def _best_candidate(netlist: Netlist, sizes: Mapping[str, float],
                    base_delay: float, size_step: float, max_size: float,
                    n_paths: int) -> Optional[str]:
    """The gate on the current critical paths with the best delay
    reduction per unit area for one more size step."""
    model = SizedDelay(base_delay, sizes)
    paths = k_longest_paths(netlist, k=n_paths, delay_model=model)
    best: Optional[Tuple[float, str]] = None
    for rank, path in enumerate(paths):
        # Earlier (more critical) paths get a slight priority boost.
        priority = 1.0 + 0.1 * (len(paths) - rank)
        for net in path.nets[1:]:
            size = sizes.get(net, 1.0)
            if size >= max_size:
                continue
            new_size = min(size + size_step, max_size)
            gain = base_delay / size - base_delay / new_size
            score = priority * gain / (new_size - size)
            key = (score, net)
            if best is None or key > best:
                best = key
    return best[1] if best is not None else None


class _SizedVariationalDelay:
    """VariationalDelay equivalent that honours per-gate sizes."""

    def __init__(self, space: ProcessSpace, base: float,
                 sizes: Dict[str, float], sensitivity: float,
                 local_sigma: float) -> None:
        self._space = space
        self._base = base
        self._sizes = sizes
        self._sensitivity = sensitivity
        self._local_sigma = local_sigma

    @property
    def space(self) -> ProcessSpace:
        return self._space

    def delay_form(self, gate: Gate):
        from repro.core.variational import CanonicalForm

        nominal = self._base / self._sizes.get(gate.name, 1.0)
        coeffs = np.array([nominal * self._sensitivity])
        return CanonicalForm(self._space, nominal, coeffs,
                             self._local_sigma ** 2)
